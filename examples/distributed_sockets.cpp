// The wire runtime end to end on localhost TCP: one coordinator process
// component and three monitor nodes, each in its own thread, speaking the
// Volley protocol (Hello / LocalViolation / PollRequest / PollResponse /
// StatsReport / AllowanceUpdate / Bye / Shutdown).
//
//   build/examples/distributed_sockets
//
// The run compresses time: one default sampling interval = 1 ms of wall
// time, so a day-scale scenario finishes in about a second.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/metric_source.h"
#include "net/coordinator_node.h"
#include "net/monitor_node.h"

using namespace volley;

int main() {
  constexpr Tick kTicks = 800;
  constexpr std::size_t kMonitors = 3;

  net::CoordinatorNodeOptions copt;
  copt.monitors = kMonitors;
  copt.global_threshold = 9.0;
  copt.error_allowance = 0.03;
  copt.adaptive_allocation = true;
  net::CoordinatorNode coordinator(copt);
  std::printf("coordinator listening on 127.0.0.1:%u\n", coordinator.port());

  // Monitor 0 carries a violation window; 1 and 2 stay quiet but noisy.
  std::vector<std::unique_ptr<CallableSource>> sources;
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick t) { return (t >= 500 && t < 560) ? 12.0 : 1.0; }, kTicks));
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick t) { return 1.0 + 0.1 * static_cast<double>(t % 5); }, kTicks));
  sources.push_back(std::make_unique<CallableSource>(
      [](Tick) { return 0.5; }, kTicks));

  std::vector<std::unique_ptr<net::MonitorNode>> nodes;
  for (MonitorId id = 0; id < kMonitors; ++id) {
    net::MonitorNodeOptions mopt;
    mopt.id = id;
    mopt.coordinator_port = coordinator.port();
    mopt.local_threshold = copt.global_threshold / kMonitors;
    mopt.sampler.error_allowance = copt.error_allowance / kMonitors;
    mopt.sampler.patience = 5;
    mopt.sampler.max_interval = 10;
    mopt.ticks = kTicks;
    mopt.updating_period = 200;
    mopt.tick_micros = 1000;  // 1 ms per default interval
    nodes.push_back(std::make_unique<net::MonitorNode>(mopt, *sources[id]));
  }

  std::thread coordinator_thread([&coordinator] { coordinator.run(); });
  std::vector<std::thread> monitor_threads;
  for (auto& node : nodes) {
    monitor_threads.emplace_back([&node] { node->run(); });
  }
  for (auto& t : monitor_threads) t.join();
  coordinator_thread.join();

  std::printf("\nsession complete:\n");
  std::printf("  global polls: %lld, reallocations: %lld\n",
              static_cast<long long>(coordinator.global_polls()),
              static_cast<long long>(coordinator.reallocations()));
  for (const auto& alert : coordinator.alerts()) {
    std::printf("  STATE ALERT at tick %lld: aggregate %.1f > %.1f\n",
                static_cast<long long>(alert.tick), alert.value,
                copt.global_threshold);
  }
  for (const auto& [id, ops] : coordinator.reported_ops()) {
    std::printf("  monitor %u: %lld sampling ops (periodic would use %lld)\n",
                id, static_cast<long long>(ops),
                static_cast<long long>(kTicks));
  }
  return coordinator.alerts().empty() ? 1 : 0;
}
