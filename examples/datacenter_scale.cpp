// The paper's testbed at full scale, in-process: 20 hosts x 40 VMs =
// 800 VMs, one DDoS-monitoring task per host (40 monitors each), one
// coordinator per 5 hosts, all advanced by the discrete-event simulator on
// a single virtual clock.
//
//   build/examples/datacenter_scale
#include <cstdio>
#include <memory>
#include <vector>

#include "core/threshold_split.h"
#include "sim/datacenter.h"
#include "sim/simulation.h"
#include "tasks/network_task.h"

using namespace volley;

int main() {
  Datacenter datacenter;  // 20 hosts, 40 VMs each, 4 coordinators
  const Tick ticks = 2880;  // half a day at 15 s

  NetworkWorkloadOptions options;
  options.netflow.vms = datacenter.vm_count();
  options.netflow.ticks = ticks;
  options.netflow.ticks_per_day = 5760;
  options.netflow.diurnal_phase = 1440;
  options.netflow.mean_flows_per_tick = 10.0;
  options.netflow.seed = 31;
  options.attack_prototype.peak_syn_rate = 1500.0;
  options.attacks_per_vm = 1;
  options.seed = 33;
  NetworkWorkload workload(options);
  std::printf("generating traffic for %zu VMs...\n", datacenter.vm_count());
  auto traffic = workload.generate_traffic();

  // One distributed task per hosted application: 8 VMs each (100 tasks
  // over the 800 VMs). Aggregating many independent near-zero-mean rho
  // series into one task is ill-conditioned — local thresholds become so
  // tight that every tick polls — so tasks follow application boundaries,
  // as in the paper's scenarios.
  constexpr std::size_t kVmsPerApp = 8;
  const std::size_t apps = datacenter.vm_count() / kVmsPerApp;
  Simulation simulation;
  std::vector<std::vector<std::unique_ptr<SeriesSource>>> sources(apps);
  for (std::size_t host = 0; host < apps; ++host) {
    std::vector<TimeSeries> series;
    for (std::size_t i = 0; i < kVmsPerApp; ++i) {
      series.push_back(traffic[host * kVmsPerApp + i].rho);
    }
    const TimeSeries aggregate = TimeSeries::sum(series);
    TaskSpec spec;
    spec.global_threshold = aggregate.threshold_for_selectivity(0.5);
    spec.error_allowance = 0.02;
    spec.id_seconds = 15.0;
    spec.max_interval = 20;
    spec.estimator.stats_window = 240;
    // Local thresholds proportional to each VM's benign noise scale
    // (robust p90-p10 spread — attack ticks are too few to move it), so
    // every monitor gets the same margin in its own sigma units.
    const auto locals = split_by_spread(spec.global_threshold, series);

    std::vector<std::unique_ptr<Monitor>> monitors;
    for (std::size_t i = 0; i < series.size(); ++i) {
      sources[host].push_back(std::make_unique<SeriesSource>(series[i]));
      monitors.push_back(std::make_unique<Monitor>(
          static_cast<MonitorId>(i), *sources[host][i],
          spec.sampler_options(spec.error_allowance), locals[i]));
    }
    auto coordinator = std::make_unique<Coordinator>(
        spec, std::move(monitors), std::make_unique<AdaptiveAllocation>());
    // Stagger task starts across a default interval.
    simulation.add_task(std::move(coordinator), spec.id_seconds, ticks,
                        0.01 * static_cast<double>(host));
  }

  std::printf("running %zu tasks (%zu monitors) on the event queue...\n",
              simulation.task_count(), datacenter.vm_count());
  const auto events = simulation.run(15.0 * static_cast<double>(ticks) + 1);

  std::int64_t total_ops = 0, total_polls = 0, total_alerts = 0;
  for (std::size_t task = 0; task < simulation.task_count(); ++task) {
    total_ops += simulation.coordinator(task).total_ops();
    total_polls += simulation.coordinator(task).global_polls();
    total_alerts += simulation.stats(task).alerts;
  }
  const auto periodic_ops =
      static_cast<std::int64_t>(datacenter.vm_count()) * ticks;
  std::printf("\nvirtual time: %.1f h, events executed: %llu\n",
              simulation.now() / 3600.0,
              static_cast<unsigned long long>(events));
  std::printf("sampling ops: %lld vs %lld periodic (%.0f%% saved)\n",
              static_cast<long long>(total_ops),
              static_cast<long long>(periodic_ops),
              100.0 * (1.0 - static_cast<double>(total_ops) /
                                 static_cast<double>(periodic_ops)));
  std::printf("global polls: %lld, state alerts: %lld\n",
              static_cast<long long>(total_polls),
              static_cast<long long>(total_alerts));
  return 0;
}
