// Quickstart: monitor one metric stream with Volley's violation-likelihood
// based adaptive sampling and compare against periodic sampling.
//
//   build/examples/quickstart
//
// Walks through the minimal public API: a MetricSource, a TaskSpec, and
// run_volley_single / run_periodic from the experiment runner.
#include <cstdio>

#include "common/rng.h"
#include "sim/runner.h"

using namespace volley;

int main() {
  // 1. A monitored metric: mean-reverting load with one sustained surge.
  //    One tick = one default sampling interval (say 5 seconds).
  const Tick ticks = 20000;
  Rng rng(42);
  TimeSeries load(static_cast<std::size_t>(ticks));
  double x = 40.0;
  for (Tick t = 0; t < ticks; ++t) {
    const double target = (t >= 15000 && t < 15200) ? 95.0 : 40.0;
    x += 0.1 * (target - x) + rng.normal(0.0, 0.8);
    load[static_cast<std::size_t>(t)] = x;
  }

  // 2. The task: alert when load > 80, tolerate missing at most 1% of the
  //    alerts that periodic sampling at the default interval would catch.
  TaskSpec spec;
  spec.global_threshold = 80.0;
  spec.error_allowance = 0.01;   // err
  spec.id_seconds = 5.0;         // Id
  spec.max_interval = 24;        // Im: never sample slower than 2 minutes
  // gamma = 0.2 and p = 20 are the paper's defaults; TaskSpec carries them.

  // 3. Run Volley and the periodic baseline over the same data.
  const auto volley_run = run_volley_single(spec, load);
  const TimeSeries arr[] = {load};
  const auto periodic = run_periodic(arr, spec.global_threshold, 1);

  std::printf("trace: %lld ticks (%.1f hours at Id = %.0f s)\n",
              static_cast<long long>(ticks),
              spec.id_seconds * static_cast<double>(ticks) / 3600.0,
              spec.id_seconds);
  std::printf("periodic sampling:  %6lld ops, misses %lld/%lld alert "
              "episodes\n",
              static_cast<long long>(periodic.total_ops()),
              static_cast<long long>(periodic.true_episodes -
                                     periodic.detected_episodes),
              static_cast<long long>(periodic.true_episodes));
  std::printf("volley sampling:    %6lld ops (%.1f%% of periodic), misses "
              "%lld/%lld alert episodes\n",
              static_cast<long long>(volley_run.total_ops()),
              100.0 * volley_run.sampling_ratio(),
              static_cast<long long>(volley_run.true_episodes -
                                     volley_run.detected_episodes),
              static_cast<long long>(volley_run.true_episodes));
  std::printf("=> %.0f%% of sampling cost saved at the configured %.1f%% "
              "error allowance\n",
              100.0 * (1.0 - volley_run.sampling_ratio()),
              100.0 * spec.error_allowance);
  return 0;
}
