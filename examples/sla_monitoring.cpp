// Application-level SLA monitoring (paper Section V-A): watch the access
// rate of a popular web object at 1-second granularity over a full day of
// diurnal + flash-crowd traffic, and show how the sampling interval adapts
// hour by hour — dense at peak, sparse in the off-peak valley.
//
//   build/examples/sla_monitoring
#include <cstdio>
#include <vector>

#include "sim/runner.h"
#include "tasks/app_task.h"

using namespace volley;

int main() {
  HttpLogOptions options;
  options.objects = 4;
  options.ticks = 86400;  // one day at 1 s
  options.ticks_per_day = 86400;
  options.diurnal_phase = 43200;
  options.diurnal_depth = 0.97;
  options.mean_rps = 25.0;
  options.flash_boost = 6.0;
  options.flash.mean_gap = 9000;
  options.seed = 23;
  HttpLogGenerator generator(options);
  const auto traces = generator.generate();

  auto task = make_app_task(traces[0], 0, 0.5, 0.01);
  task.spec.max_interval = 30;
  task.spec.estimator.stats_window = 300;

  RunOptions run_options;
  run_options.record_ops = true;
  const auto r = run_volley_single(task.spec, task.series, run_options);

  std::printf("SLA task: alert when object-0 access rate > %.0f req/s "
              "(p99.5 of the day), err = 1%%\n\n",
              task.threshold);
  std::printf("hour   avg rate   samples   avg interval\n");
  std::vector<int> ops_per_hour(24, 0);
  for (Tick t : r.op_ticks[0]) ops_per_hour[static_cast<std::size_t>(t / 3600)]++;
  for (int h = 0; h < 24; ++h) {
    double rate = 0;
    for (int s = 0; s < 3600; ++s) {
      rate += task.series[static_cast<std::size_t>(h * 3600 + s)];
    }
    rate /= 3600.0;
    const int ops = ops_per_hour[static_cast<std::size_t>(h)];
    std::printf("%4d   %8.1f   %7d   %9.1f s\n", h, rate, ops,
                ops > 0 ? 3600.0 / ops : 0.0);
  }
  std::printf("\ntotal: %lld ops = %.1f%% of periodic 1 Hz sampling; "
              "missed alert episodes: %lld/%lld\n",
              static_cast<long long>(r.total_ops()),
              100.0 * r.sampling_ratio(),
              static_cast<long long>(r.true_episodes - r.detected_episodes),
              static_cast<long long>(r.true_episodes));
  return 0;
}
