// Distributed DDoS detection (the paper's running example, Section II-A):
// four web servers host one application; each Dom0 monitor watches the
// SYN / SYN-ACK difference rho of its VM, and a coordinator checks the
// global threshold via global polls when local thresholds are exceeded.
//
//   build/examples/ddos_detection
#include <cstdio>
#include <memory>

#include "core/coordinator.h"
#include "sim/experiment.h"
#include "tasks/network_task.h"

using namespace volley;

int main() {
  // Generate benign traffic for 4 VMs and inject one coordinated attack
  // that is only visible in the aggregate (each VM stays near its local
  // threshold, together they cross the global one).
  NetworkWorkloadOptions options;
  options.netflow.vms = 4;
  options.netflow.ticks = 5760;  // one day at 15 s
  options.netflow.ticks_per_day = 5760;
  options.netflow.diurnal_phase = 2880;
  options.netflow.mean_flows_per_tick = 40.0;
  options.netflow.seed = 7;
  options.attacks_per_vm = 0;  // attacks placed manually below
  NetworkWorkload workload(options);
  auto traffic = workload.generate_traffic();

  Rng rng(11);
  for (auto& vm : traffic) {
    DdosEpisode attack;
    attack.start = 4000;
    attack.ramp = 6;
    attack.plateau = 20;
    attack.decay = 6;
    attack.peak_syn_rate = 700.0;  // moderate per VM, large in aggregate
    inject_ddos(vm, attack, rng);
  }

  // Task: aggregate rho over the 4 VMs against a global threshold; local
  // thresholds proportional to each VM's own traffic tail.
  std::vector<TimeSeries> series;
  for (auto& vm : traffic) series.push_back(vm.rho);
  const TimeSeries aggregate = TimeSeries::sum(series);
  TaskSpec spec;
  spec.global_threshold = aggregate.threshold_for_selectivity(0.5);
  spec.error_allowance = 0.02;
  spec.id_seconds = 15.0;
  spec.max_interval = 20;
  std::vector<double> weights;
  for (const auto& s : series)
    weights.push_back(std::max(s.threshold_for_selectivity(0.5), 1.0));
  const auto locals =
      split_threshold(spec.global_threshold, series.size(), weights);

  // Wire monitors + coordinator explicitly (what run_volley does for you).
  std::vector<std::unique_ptr<SeriesSource>> sources;
  std::vector<std::unique_ptr<Monitor>> monitors;
  for (std::size_t i = 0; i < series.size(); ++i) {
    sources.push_back(std::make_unique<SeriesSource>(series[i]));
    monitors.push_back(std::make_unique<Monitor>(
        static_cast<MonitorId>(i), *sources[i],
        spec.sampler_options(spec.error_allowance), locals[i]));
  }
  Coordinator coordinator(spec, std::move(monitors),
                          std::make_unique<AdaptiveAllocation>());

  std::printf("global threshold T = %.1f, local thresholds:",
              spec.global_threshold);
  for (double t : locals) std::printf(" %.1f", t);
  std::printf("\nrunning %lld ticks...\n\n",
              static_cast<long long>(series[0].ticks()));

  Tick first_alert = -1;
  for (Tick t = 0; t < series[0].ticks(); ++t) {
    const auto result = coordinator.run_tick(t);
    if (result.global_violation && first_alert < 0) {
      first_alert = t;
      std::printf("t=%lld (%.1f h): STATE ALERT — aggregate rho %.1f > %.1f "
                  "(global poll after %d local violation(s))\n",
                  static_cast<long long>(t),
                  static_cast<double>(t) * 15.0 / 3600.0,
                  result.global_value, spec.global_threshold,
                  result.local_violations);
    }
  }

  const GroundTruth truth =
      GroundTruth::from_series(aggregate, spec.global_threshold);
  std::printf("\nattack injected at t=4000; first alert at t=%lld\n",
              static_cast<long long>(first_alert));
  std::printf("sampling ops: %lld of %lld periodic (%.0f%% saved), "
              "global polls: %lld, true alert episodes: %zu\n",
              static_cast<long long>(coordinator.total_ops()),
              static_cast<long long>(series[0].ticks() * 4),
              100.0 * (1.0 - static_cast<double>(coordinator.total_ops()) /
                                 static_cast<double>(series[0].ticks() * 4)),
              static_cast<long long>(coordinator.global_polls()),
              truth.episodes.size());
  std::printf("final error-allowance allocation:");
  for (double a : coordinator.allocation()) std::printf(" %.4f", a);
  std::printf("\n");
  return first_alert >= 0 ? 0 : 1;
}
