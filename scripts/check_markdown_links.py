#!/usr/bin/env python3
"""Check markdown files for broken relative links and anchors.

Usage: check_markdown_links.py FILE [FILE...]

Verifies, for every inline markdown link `[text](target)`:
  * http(s)/mailto targets are skipped (no network access in CI);
  * a relative path target resolves to an existing file or directory
    (relative to the linking file's own directory);
  * a `#fragment` on a markdown target (or a bare `#fragment`) matches a
    heading in the target file, using GitHub's anchor slug rules.

Also flags reference-style link usages `[text][label]` whose label is
never defined. Exits 1 with one line per problem, 0 when clean.

Stdlib only — the CI image needs nothing beyond python3.
"""

import re
import sys
import urllib.parse
from pathlib import Path

INLINE_LINK = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_USE = re.compile(r"(?<!\!)\[(?P<text>[^\]]+)\]\[(?P<label>[^\]]*)\]")
REF_DEF = re.compile(r"^\s*\[(?P<label>[^\]]+)\]:\s+\S+", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(?P<title>.+?)\s*$", re.MULTILINE)
CODE_FENCE = re.compile(r"^(```|~~~).*?^\1", re.MULTILINE | re.DOTALL)


def github_slug(title: str) -> str:
    """GitHub's heading-to-anchor rule: lowercase, drop punctuation,
    spaces to hyphens. Inline code/emphasis markers are stripped first."""
    title = re.sub(r"[`*_]", "", title)
    title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)  # linked headings
    slug = []
    for ch in title.lower():
        if ch.isalnum():
            slug.append(ch)
        elif ch in " -":
            slug.append("-" if ch == " " else ch)
        # everything else (punctuation) is dropped
    return "".join(slug)


def anchors_of(path: Path) -> set[str]:
    text = strip_code(path.read_text(encoding="utf-8"))
    seen: dict[str, int] = {}
    out = set()
    for m in HEADING.finditer(text):
        base = github_slug(m.group("title"))
        n = seen.get(base, 0)
        seen[base] = n + 1
        out.add(base if n == 0 else f"{base}-{n}")
    return out


def strip_code(text: str) -> str:
    """Remove fenced code blocks and inline code so example links like
    [i] array indexing don't trip the checker."""
    text = CODE_FENCE.sub("", text)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    problems = []
    raw = path.read_text(encoding="utf-8")
    text = strip_code(raw)
    defined_labels = {m.group("label").lower() for m in REF_DEF.finditer(raw)}

    for m in INLINE_LINK.finditer(text):
        target = m.group("target")
        scheme = urllib.parse.urlparse(target).scheme
        if scheme in ("http", "https", "mailto"):
            continue
        frag = ""
        if "#" in target:
            target, frag = target.split("#", 1)
        dest = path if not target else (path.parent / urllib.parse.unquote(target)).resolve()
        if target and not dest.exists():
            problems.append(f"{path}: broken link [{m.group('text')}]({m.group('target')}) — {dest} does not exist")
            continue
        if frag and dest.suffix == ".md":
            if dest not in anchor_cache:
                anchor_cache[dest] = anchors_of(dest)
            if frag.lower() not in anchor_cache[dest]:
                problems.append(f"{path}: dead anchor [{m.group('text')}]({m.group('target')}) — no such heading in {dest.name}")

    for m in REF_USE.finditer(text):
        label = (m.group("label") or m.group("text")).lower()
        if label not in defined_labels:
            problems.append(f"{path}: undefined reference link [{m.group('text')}][{m.group('label')}]")
    return problems


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    anchor_cache: dict[Path, set[str]] = {}
    problems = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            problems.append(f"{path}: file not found")
            continue
        problems.extend(check_file(path, anchor_cache))
    for p in problems:
        print(p)
    if not problems:
        print(f"ok: {len(argv) - 1} file(s), no broken links")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
