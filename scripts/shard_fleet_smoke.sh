#!/usr/bin/env bash
# Two-tier fleet smoke (CI shard-smoke job; DESIGN.md §13): one root
# coordinator, two aggregator shards, eight monitors over loopback TCP.
# Monitor 0 of shard 0 carries a spike heavy enough to push the global
# aggregate over T, so the run must show an escalation at shard 0 and an
# ALERT at the root. Along the way the script exercises the shard
# introspection surface (volley_stats --shards, volleyctl shards) and the
# in-place budget verb (volleyctl budget).
#
#   scripts/shard_fleet_smoke.sh [build-dir] [out-dir]
set -euo pipefail

BUILD=${1:-build}
OUT=${2:-shard-smoke-out}
TOOLS="$BUILD/src/tools"
mkdir -p "$OUT"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

wait_for_listen() {
  local log=$1
  for _ in $(seq 100); do
    if grep -q "listening on" "$log" 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "shard_fleet_smoke: timed out waiting for listen line in $log" >&2
  return 1
}

listen_port() {
  sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$1" | head -1
}

# Root: 2 shard sessions weighing 4 monitors each (total_weight=8), so each
# shard's boot-task slice is T_s = 16*4/8 = 8 and err_s = 0.04*4/8 = 0.02.
"$TOOLS/volleyd_coordinator" monitors=2 total_weight=8 threshold=16 \
  err=0.04 > "$OUT/root.log" 2>&1 &
PIDS+=($!)
wait_for_listen "$OUT/root.log"
ROOT_PORT=$(listen_port "$OUT/root.log")

declare -a AGG_PORT
for s in 0 1; do
  "$TOOLS/volleyd_aggregator" shard=$s monitors=4 \
    coordinator_port="$ROOT_PORT" threshold=8 err=0.02 \
    summary_interval_ms=50 heartbeat_interval_ms=100 \
    > "$OUT/agg$s.log" 2>&1 &
  PIDS+=($!)
  wait_for_listen "$OUT/agg$s.log"
  AGG_PORT[$s]=$(listen_port "$OUT/agg$s.log")
done

# Both aggregators should appear in the root's shard table once their
# ShardHellos land; poll briefly since the joins are asynchronous.
for _ in $(seq 50); do
  "$TOOLS/volley_stats" --shards port="$ROOT_PORT" \
    > "$OUT/stats_shards.txt" 2>&1 || true
  if grep -q "# shard sessions: 2" "$OUT/stats_shards.txt"; then break; fi
  sleep 0.1
done
grep -q "# shard sessions: 2" "$OUT/stats_shards.txt"
"$TOOLS/volleyctl" shards port="$ROOT_PORT" > "$OUT/ctl_shards.txt"
grep -q "2 shard session(s)" "$OUT/ctl_shards.txt"

# In-place budget update through the root: rescales the live per-shard
# split without restarting any sampler.
"$TOOLS/volleyctl" budget port="$ROOT_PORT" task=0 err=0.05 \
  > "$OUT/ctl_budget.txt"
grep -q "ok" "$OUT/ctl_budget.txt"

MON_PIDS=()
for s in 0 1; do
  for i in 0 1 2 3; do
    EXTRA=""
    if [ "$s" = 0 ] && [ "$i" = 0 ]; then
      # The hot monitor: +40 for 120 ticks pushes shard 0's subset
      # aggregate (~44) past T_s=8 and the global aggregate past T=16.
      EXTRA="spike_at=150 spike_len=120 spike_value=40"
    fi
    # shellcheck disable=SC2086
    "$TOOLS/volleyd_monitor" id=$i port="${AGG_PORT[$s]}" \
      local_threshold=2 err=0.005 ticks=400 tick_micros=500 im=8 \
      patience=3 updating_period=100 source=sine base=1 amplitude=0.1 \
      period=200 noise=0.02 $EXTRA > "$OUT/mon$s-$i.log" 2>&1 &
    MON_PIDS+=($!)
    PIDS+=($!)
  done
done

for pid in "${MON_PIDS[@]}"; do wait "$pid"; done
# Aggregators exit after their monitors say Bye and the root acknowledges;
# the root exits after both shard Byes.
wait "${PIDS[0]}" "${PIDS[1]}" "${PIDS[2]}" 2>/dev/null || true
PIDS=()

echo "--- root ---";  cat "$OUT/root.log"
echo "--- agg0 ---";  cat "$OUT/agg0.log"

# The detection path end to end: shard 0 escalated, the root alerted.
grep -q "ALERT task=0" "$OUT/root.log"
grep -Eq "[1-9][0-9]* escalations" "$OUT/agg0.log"
grep -Eq "[1-9][0-9]* summaries" "$OUT/agg0.log"
grep -Eq "[1-9][0-9]* summaries" "$OUT/agg1.log"
# Every shard reported its summed monitor ops on Bye.
grep -c "monitor .*: .* sampling ops" "$OUT/root.log" | grep -qx 2

echo "shard_fleet_smoke: OK"
