# Empty dependencies file for bench_random_sampling.
# This may be replaced when dependencies are built.
