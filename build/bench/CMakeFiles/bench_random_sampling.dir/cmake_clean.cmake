file(REMOVE_RECURSE
  "CMakeFiles/bench_random_sampling.dir/bench_random_sampling.cpp.o"
  "CMakeFiles/bench_random_sampling.dir/bench_random_sampling.cpp.o.d"
  "bench_random_sampling"
  "bench_random_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_random_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
