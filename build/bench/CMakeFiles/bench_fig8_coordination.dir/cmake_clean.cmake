file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_coordination.dir/bench_fig8_coordination.cpp.o"
  "CMakeFiles/bench_fig8_coordination.dir/bench_fig8_coordination.cpp.o.d"
  "bench_fig8_coordination"
  "bench_fig8_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
