# Empty dependencies file for bench_fig5_application.
# This may be replaced when dependencies are built.
