# Empty compiler generated dependencies file for bench_window_tasks.
# This may be replaced when dependencies are built.
