file(REMOVE_RECURSE
  "CMakeFiles/bench_window_tasks.dir/bench_window_tasks.cpp.o"
  "CMakeFiles/bench_window_tasks.dir/bench_window_tasks.cpp.o.d"
  "bench_window_tasks"
  "bench_window_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
