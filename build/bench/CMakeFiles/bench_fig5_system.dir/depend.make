# Empty dependencies file for bench_fig5_system.
# This may be replaced when dependencies are built.
