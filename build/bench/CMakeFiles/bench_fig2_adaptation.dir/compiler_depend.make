# Empty compiler generated dependencies file for bench_fig2_adaptation.
# This may be replaced when dependencies are built.
