# Empty dependencies file for bench_billing.
# This may be replaced when dependencies are built.
