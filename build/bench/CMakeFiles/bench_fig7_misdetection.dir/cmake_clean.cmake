file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_misdetection.dir/bench_fig7_misdetection.cpp.o"
  "CMakeFiles/bench_fig7_misdetection.dir/bench_fig7_misdetection.cpp.o.d"
  "bench_fig7_misdetection"
  "bench_fig7_misdetection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_misdetection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
