# Empty dependencies file for bench_fig7_misdetection.
# This may be replaced when dependencies are built.
