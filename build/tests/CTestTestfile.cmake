# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_likelihood[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive_sampler[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_coordinator[1]_include.cmake")
include("/root/repo/build/tests/test_error_allocation[1]_include.cmake")
include("/root/repo/build/tests/test_correlation_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_netflow[1]_include.cmake")
include("/root/repo/build/tests/test_sysmetrics_httplog[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_runner[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_log_analysis[1]_include.cmake")
