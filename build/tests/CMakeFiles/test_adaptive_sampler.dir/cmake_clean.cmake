file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_sampler.dir/test_adaptive_sampler.cpp.o"
  "CMakeFiles/test_adaptive_sampler.dir/test_adaptive_sampler.cpp.o.d"
  "test_adaptive_sampler"
  "test_adaptive_sampler.pdb"
  "test_adaptive_sampler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
