# Empty compiler generated dependencies file for test_adaptive_sampler.
# This may be replaced when dependencies are built.
