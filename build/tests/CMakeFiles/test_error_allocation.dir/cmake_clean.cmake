file(REMOVE_RECURSE
  "CMakeFiles/test_error_allocation.dir/test_error_allocation.cpp.o"
  "CMakeFiles/test_error_allocation.dir/test_error_allocation.cpp.o.d"
  "test_error_allocation"
  "test_error_allocation.pdb"
  "test_error_allocation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
