file(REMOVE_RECURSE
  "CMakeFiles/test_netflow.dir/test_netflow.cpp.o"
  "CMakeFiles/test_netflow.dir/test_netflow.cpp.o.d"
  "test_netflow"
  "test_netflow.pdb"
  "test_netflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
