file(REMOVE_RECURSE
  "CMakeFiles/test_log_analysis.dir/test_log_analysis.cpp.o"
  "CMakeFiles/test_log_analysis.dir/test_log_analysis.cpp.o.d"
  "test_log_analysis"
  "test_log_analysis.pdb"
  "test_log_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
