# Empty dependencies file for test_log_analysis.
# This may be replaced when dependencies are built.
