# Empty dependencies file for test_sysmetrics_httplog.
# This may be replaced when dependencies are built.
