file(REMOVE_RECURSE
  "CMakeFiles/test_sysmetrics_httplog.dir/test_sysmetrics_httplog.cpp.o"
  "CMakeFiles/test_sysmetrics_httplog.dir/test_sysmetrics_httplog.cpp.o.d"
  "test_sysmetrics_httplog"
  "test_sysmetrics_httplog.pdb"
  "test_sysmetrics_httplog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysmetrics_httplog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
