# Empty compiler generated dependencies file for test_correlation_scheduler.
# This may be replaced when dependencies are built.
