file(REMOVE_RECURSE
  "CMakeFiles/test_correlation_scheduler.dir/test_correlation_scheduler.cpp.o"
  "CMakeFiles/test_correlation_scheduler.dir/test_correlation_scheduler.cpp.o.d"
  "test_correlation_scheduler"
  "test_correlation_scheduler.pdb"
  "test_correlation_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_correlation_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
