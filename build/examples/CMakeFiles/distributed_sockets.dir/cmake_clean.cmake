file(REMOVE_RECURSE
  "CMakeFiles/distributed_sockets.dir/distributed_sockets.cpp.o"
  "CMakeFiles/distributed_sockets.dir/distributed_sockets.cpp.o.d"
  "distributed_sockets"
  "distributed_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
