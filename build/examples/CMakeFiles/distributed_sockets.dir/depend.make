# Empty dependencies file for distributed_sockets.
# This may be replaced when dependencies are built.
