# Empty compiler generated dependencies file for datacenter_scale.
# This may be replaced when dependencies are built.
