file(REMOVE_RECURSE
  "CMakeFiles/datacenter_scale.dir/datacenter_scale.cpp.o"
  "CMakeFiles/datacenter_scale.dir/datacenter_scale.cpp.o.d"
  "datacenter_scale"
  "datacenter_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
