# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ddos_detection "/root/repo/build/examples/ddos_detection")
set_tests_properties(example_ddos_detection PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sla_monitoring "/root/repo/build/examples/sla_monitoring")
set_tests_properties(example_sla_monitoring PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_sockets "/root/repo/build/examples/distributed_sockets")
set_tests_properties(example_distributed_sockets PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datacenter_scale "/root/repo/build/examples/datacenter_scale")
set_tests_properties(example_datacenter_scale PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
