# Empty compiler generated dependencies file for volleyd_monitor.
# This may be replaced when dependencies are built.
