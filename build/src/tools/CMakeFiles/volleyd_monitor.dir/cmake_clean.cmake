file(REMOVE_RECURSE
  "CMakeFiles/volleyd_monitor.dir/volleyd_monitor.cpp.o"
  "CMakeFiles/volleyd_monitor.dir/volleyd_monitor.cpp.o.d"
  "volleyd_monitor"
  "volleyd_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volleyd_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
