# Empty dependencies file for volleyd_coordinator.
# This may be replaced when dependencies are built.
