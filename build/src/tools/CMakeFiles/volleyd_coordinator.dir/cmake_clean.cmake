file(REMOVE_RECURSE
  "CMakeFiles/volleyd_coordinator.dir/volleyd_coordinator.cpp.o"
  "CMakeFiles/volleyd_coordinator.dir/volleyd_coordinator.cpp.o.d"
  "volleyd_coordinator"
  "volleyd_coordinator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volleyd_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
