file(REMOVE_RECURSE
  "CMakeFiles/volley_tools.dir/source_factory.cpp.o"
  "CMakeFiles/volley_tools.dir/source_factory.cpp.o.d"
  "libvolley_tools.a"
  "libvolley_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volley_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
