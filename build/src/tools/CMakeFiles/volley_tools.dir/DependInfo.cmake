
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/source_factory.cpp" "src/tools/CMakeFiles/volley_tools.dir/source_factory.cpp.o" "gcc" "src/tools/CMakeFiles/volley_tools.dir/source_factory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tasks/CMakeFiles/volley_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/volley_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/volley_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/volley_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/volley_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/volley_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
