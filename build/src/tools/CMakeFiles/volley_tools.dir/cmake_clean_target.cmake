file(REMOVE_RECURSE
  "libvolley_tools.a"
)
