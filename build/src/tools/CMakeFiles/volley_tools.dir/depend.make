# Empty dependencies file for volley_tools.
# This may be replaced when dependencies are built.
