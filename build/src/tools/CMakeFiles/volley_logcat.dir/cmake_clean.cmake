file(REMOVE_RECURSE
  "CMakeFiles/volley_logcat.dir/volley_logcat.cpp.o"
  "CMakeFiles/volley_logcat.dir/volley_logcat.cpp.o.d"
  "volley_logcat"
  "volley_logcat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volley_logcat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
