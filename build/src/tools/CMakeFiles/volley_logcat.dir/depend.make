# Empty dependencies file for volley_logcat.
# This may be replaced when dependencies are built.
