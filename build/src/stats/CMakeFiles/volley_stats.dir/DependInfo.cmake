
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/volley_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/volley_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/volley_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/volley_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/online_stats.cpp" "src/stats/CMakeFiles/volley_stats.dir/online_stats.cpp.o" "gcc" "src/stats/CMakeFiles/volley_stats.dir/online_stats.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/stats/CMakeFiles/volley_stats.dir/quantile.cpp.o" "gcc" "src/stats/CMakeFiles/volley_stats.dir/quantile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/volley_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
