file(REMOVE_RECURSE
  "CMakeFiles/volley_stats.dir/correlation.cpp.o"
  "CMakeFiles/volley_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/volley_stats.dir/histogram.cpp.o"
  "CMakeFiles/volley_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/volley_stats.dir/online_stats.cpp.o"
  "CMakeFiles/volley_stats.dir/online_stats.cpp.o.d"
  "CMakeFiles/volley_stats.dir/quantile.cpp.o"
  "CMakeFiles/volley_stats.dir/quantile.cpp.o.d"
  "libvolley_stats.a"
  "libvolley_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volley_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
