file(REMOVE_RECURSE
  "libvolley_stats.a"
)
