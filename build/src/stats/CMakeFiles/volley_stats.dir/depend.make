# Empty dependencies file for volley_stats.
# This may be replaced when dependencies are built.
