
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/ddos.cpp" "src/trace/CMakeFiles/volley_trace.dir/ddos.cpp.o" "gcc" "src/trace/CMakeFiles/volley_trace.dir/ddos.cpp.o.d"
  "/root/repo/src/trace/generators.cpp" "src/trace/CMakeFiles/volley_trace.dir/generators.cpp.o" "gcc" "src/trace/CMakeFiles/volley_trace.dir/generators.cpp.o.d"
  "/root/repo/src/trace/httplog.cpp" "src/trace/CMakeFiles/volley_trace.dir/httplog.cpp.o" "gcc" "src/trace/CMakeFiles/volley_trace.dir/httplog.cpp.o.d"
  "/root/repo/src/trace/netflow.cpp" "src/trace/CMakeFiles/volley_trace.dir/netflow.cpp.o" "gcc" "src/trace/CMakeFiles/volley_trace.dir/netflow.cpp.o.d"
  "/root/repo/src/trace/sampling.cpp" "src/trace/CMakeFiles/volley_trace.dir/sampling.cpp.o" "gcc" "src/trace/CMakeFiles/volley_trace.dir/sampling.cpp.o.d"
  "/root/repo/src/trace/sysmetrics.cpp" "src/trace/CMakeFiles/volley_trace.dir/sysmetrics.cpp.o" "gcc" "src/trace/CMakeFiles/volley_trace.dir/sysmetrics.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/volley_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/volley_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/volley_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/volley_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/volley_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
