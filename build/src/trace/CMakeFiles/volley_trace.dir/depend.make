# Empty dependencies file for volley_trace.
# This may be replaced when dependencies are built.
