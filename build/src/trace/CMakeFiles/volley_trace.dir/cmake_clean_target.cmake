file(REMOVE_RECURSE
  "libvolley_trace.a"
)
