file(REMOVE_RECURSE
  "CMakeFiles/volley_trace.dir/ddos.cpp.o"
  "CMakeFiles/volley_trace.dir/ddos.cpp.o.d"
  "CMakeFiles/volley_trace.dir/generators.cpp.o"
  "CMakeFiles/volley_trace.dir/generators.cpp.o.d"
  "CMakeFiles/volley_trace.dir/httplog.cpp.o"
  "CMakeFiles/volley_trace.dir/httplog.cpp.o.d"
  "CMakeFiles/volley_trace.dir/netflow.cpp.o"
  "CMakeFiles/volley_trace.dir/netflow.cpp.o.d"
  "CMakeFiles/volley_trace.dir/sampling.cpp.o"
  "CMakeFiles/volley_trace.dir/sampling.cpp.o.d"
  "CMakeFiles/volley_trace.dir/sysmetrics.cpp.o"
  "CMakeFiles/volley_trace.dir/sysmetrics.cpp.o.d"
  "CMakeFiles/volley_trace.dir/trace.cpp.o"
  "CMakeFiles/volley_trace.dir/trace.cpp.o.d"
  "libvolley_trace.a"
  "libvolley_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volley_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
