file(REMOVE_RECURSE
  "CMakeFiles/volley_core.dir/adaptive_sampler.cpp.o"
  "CMakeFiles/volley_core.dir/adaptive_sampler.cpp.o.d"
  "CMakeFiles/volley_core.dir/coordinator.cpp.o"
  "CMakeFiles/volley_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/volley_core.dir/correlation.cpp.o"
  "CMakeFiles/volley_core.dir/correlation.cpp.o.d"
  "CMakeFiles/volley_core.dir/error_allocation.cpp.o"
  "CMakeFiles/volley_core.dir/error_allocation.cpp.o.d"
  "CMakeFiles/volley_core.dir/likelihood.cpp.o"
  "CMakeFiles/volley_core.dir/likelihood.cpp.o.d"
  "CMakeFiles/volley_core.dir/monitor.cpp.o"
  "CMakeFiles/volley_core.dir/monitor.cpp.o.d"
  "CMakeFiles/volley_core.dir/periodic_sampler.cpp.o"
  "CMakeFiles/volley_core.dir/periodic_sampler.cpp.o.d"
  "CMakeFiles/volley_core.dir/threshold_split.cpp.o"
  "CMakeFiles/volley_core.dir/threshold_split.cpp.o.d"
  "CMakeFiles/volley_core.dir/window_aggregate.cpp.o"
  "CMakeFiles/volley_core.dir/window_aggregate.cpp.o.d"
  "libvolley_core.a"
  "libvolley_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volley_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
