
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_sampler.cpp" "src/core/CMakeFiles/volley_core.dir/adaptive_sampler.cpp.o" "gcc" "src/core/CMakeFiles/volley_core.dir/adaptive_sampler.cpp.o.d"
  "/root/repo/src/core/coordinator.cpp" "src/core/CMakeFiles/volley_core.dir/coordinator.cpp.o" "gcc" "src/core/CMakeFiles/volley_core.dir/coordinator.cpp.o.d"
  "/root/repo/src/core/correlation.cpp" "src/core/CMakeFiles/volley_core.dir/correlation.cpp.o" "gcc" "src/core/CMakeFiles/volley_core.dir/correlation.cpp.o.d"
  "/root/repo/src/core/error_allocation.cpp" "src/core/CMakeFiles/volley_core.dir/error_allocation.cpp.o" "gcc" "src/core/CMakeFiles/volley_core.dir/error_allocation.cpp.o.d"
  "/root/repo/src/core/likelihood.cpp" "src/core/CMakeFiles/volley_core.dir/likelihood.cpp.o" "gcc" "src/core/CMakeFiles/volley_core.dir/likelihood.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/volley_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/volley_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/periodic_sampler.cpp" "src/core/CMakeFiles/volley_core.dir/periodic_sampler.cpp.o" "gcc" "src/core/CMakeFiles/volley_core.dir/periodic_sampler.cpp.o.d"
  "/root/repo/src/core/threshold_split.cpp" "src/core/CMakeFiles/volley_core.dir/threshold_split.cpp.o" "gcc" "src/core/CMakeFiles/volley_core.dir/threshold_split.cpp.o.d"
  "/root/repo/src/core/window_aggregate.cpp" "src/core/CMakeFiles/volley_core.dir/window_aggregate.cpp.o" "gcc" "src/core/CMakeFiles/volley_core.dir/window_aggregate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/volley_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/volley_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
