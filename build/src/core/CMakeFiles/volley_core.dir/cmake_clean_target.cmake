file(REMOVE_RECURSE
  "libvolley_core.a"
)
