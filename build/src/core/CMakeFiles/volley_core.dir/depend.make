# Empty dependencies file for volley_core.
# This may be replaced when dependencies are built.
