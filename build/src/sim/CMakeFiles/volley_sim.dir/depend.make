# Empty dependencies file for volley_sim.
# This may be replaced when dependencies are built.
