file(REMOVE_RECURSE
  "libvolley_sim.a"
)
