file(REMOVE_RECURSE
  "CMakeFiles/volley_sim.dir/cost_model.cpp.o"
  "CMakeFiles/volley_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/volley_sim.dir/datacenter.cpp.o"
  "CMakeFiles/volley_sim.dir/datacenter.cpp.o.d"
  "CMakeFiles/volley_sim.dir/event_queue.cpp.o"
  "CMakeFiles/volley_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/volley_sim.dir/experiment.cpp.o"
  "CMakeFiles/volley_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/volley_sim.dir/faults.cpp.o"
  "CMakeFiles/volley_sim.dir/faults.cpp.o.d"
  "CMakeFiles/volley_sim.dir/runner.cpp.o"
  "CMakeFiles/volley_sim.dir/runner.cpp.o.d"
  "CMakeFiles/volley_sim.dir/simulation.cpp.o"
  "CMakeFiles/volley_sim.dir/simulation.cpp.o.d"
  "libvolley_sim.a"
  "libvolley_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volley_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
