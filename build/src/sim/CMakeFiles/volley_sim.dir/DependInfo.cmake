
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/volley_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/volley_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/datacenter.cpp" "src/sim/CMakeFiles/volley_sim.dir/datacenter.cpp.o" "gcc" "src/sim/CMakeFiles/volley_sim.dir/datacenter.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/volley_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/volley_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/volley_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/volley_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/faults.cpp" "src/sim/CMakeFiles/volley_sim.dir/faults.cpp.o" "gcc" "src/sim/CMakeFiles/volley_sim.dir/faults.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/sim/CMakeFiles/volley_sim.dir/runner.cpp.o" "gcc" "src/sim/CMakeFiles/volley_sim.dir/runner.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/sim/CMakeFiles/volley_sim.dir/simulation.cpp.o" "gcc" "src/sim/CMakeFiles/volley_sim.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/volley_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/volley_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/volley_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/volley_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
