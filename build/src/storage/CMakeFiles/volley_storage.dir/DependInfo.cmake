
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/log_analysis.cpp" "src/storage/CMakeFiles/volley_storage.dir/log_analysis.cpp.o" "gcc" "src/storage/CMakeFiles/volley_storage.dir/log_analysis.cpp.o.d"
  "/root/repo/src/storage/sample_log.cpp" "src/storage/CMakeFiles/volley_storage.dir/sample_log.cpp.o" "gcc" "src/storage/CMakeFiles/volley_storage.dir/sample_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/volley_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/volley_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/volley_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
