file(REMOVE_RECURSE
  "libvolley_storage.a"
)
