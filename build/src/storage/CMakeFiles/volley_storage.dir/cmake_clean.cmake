file(REMOVE_RECURSE
  "CMakeFiles/volley_storage.dir/log_analysis.cpp.o"
  "CMakeFiles/volley_storage.dir/log_analysis.cpp.o.d"
  "CMakeFiles/volley_storage.dir/sample_log.cpp.o"
  "CMakeFiles/volley_storage.dir/sample_log.cpp.o.d"
  "libvolley_storage.a"
  "libvolley_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volley_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
