# Empty compiler generated dependencies file for volley_storage.
# This may be replaced when dependencies are built.
