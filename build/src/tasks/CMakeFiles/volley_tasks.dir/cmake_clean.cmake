file(REMOVE_RECURSE
  "CMakeFiles/volley_tasks.dir/app_task.cpp.o"
  "CMakeFiles/volley_tasks.dir/app_task.cpp.o.d"
  "CMakeFiles/volley_tasks.dir/network_task.cpp.o"
  "CMakeFiles/volley_tasks.dir/network_task.cpp.o.d"
  "CMakeFiles/volley_tasks.dir/system_task.cpp.o"
  "CMakeFiles/volley_tasks.dir/system_task.cpp.o.d"
  "libvolley_tasks.a"
  "libvolley_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volley_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
