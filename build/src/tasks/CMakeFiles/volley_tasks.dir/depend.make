# Empty dependencies file for volley_tasks.
# This may be replaced when dependencies are built.
