file(REMOVE_RECURSE
  "libvolley_tasks.a"
)
