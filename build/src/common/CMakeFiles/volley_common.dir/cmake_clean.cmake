file(REMOVE_RECURSE
  "CMakeFiles/volley_common.dir/config.cpp.o"
  "CMakeFiles/volley_common.dir/config.cpp.o.d"
  "CMakeFiles/volley_common.dir/log.cpp.o"
  "CMakeFiles/volley_common.dir/log.cpp.o.d"
  "CMakeFiles/volley_common.dir/rng.cpp.o"
  "CMakeFiles/volley_common.dir/rng.cpp.o.d"
  "libvolley_common.a"
  "libvolley_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volley_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
