file(REMOVE_RECURSE
  "libvolley_common.a"
)
