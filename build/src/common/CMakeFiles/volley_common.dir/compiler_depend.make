# Empty compiler generated dependencies file for volley_common.
# This may be replaced when dependencies are built.
