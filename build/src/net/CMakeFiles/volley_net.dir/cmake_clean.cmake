file(REMOVE_RECURSE
  "CMakeFiles/volley_net.dir/coordinator_node.cpp.o"
  "CMakeFiles/volley_net.dir/coordinator_node.cpp.o.d"
  "CMakeFiles/volley_net.dir/framing.cpp.o"
  "CMakeFiles/volley_net.dir/framing.cpp.o.d"
  "CMakeFiles/volley_net.dir/messages.cpp.o"
  "CMakeFiles/volley_net.dir/messages.cpp.o.d"
  "CMakeFiles/volley_net.dir/monitor_node.cpp.o"
  "CMakeFiles/volley_net.dir/monitor_node.cpp.o.d"
  "CMakeFiles/volley_net.dir/socket.cpp.o"
  "CMakeFiles/volley_net.dir/socket.cpp.o.d"
  "libvolley_net.a"
  "libvolley_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volley_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
