file(REMOVE_RECURSE
  "libvolley_net.a"
)
