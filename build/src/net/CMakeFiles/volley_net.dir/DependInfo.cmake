
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/coordinator_node.cpp" "src/net/CMakeFiles/volley_net.dir/coordinator_node.cpp.o" "gcc" "src/net/CMakeFiles/volley_net.dir/coordinator_node.cpp.o.d"
  "/root/repo/src/net/framing.cpp" "src/net/CMakeFiles/volley_net.dir/framing.cpp.o" "gcc" "src/net/CMakeFiles/volley_net.dir/framing.cpp.o.d"
  "/root/repo/src/net/messages.cpp" "src/net/CMakeFiles/volley_net.dir/messages.cpp.o" "gcc" "src/net/CMakeFiles/volley_net.dir/messages.cpp.o.d"
  "/root/repo/src/net/monitor_node.cpp" "src/net/CMakeFiles/volley_net.dir/monitor_node.cpp.o" "gcc" "src/net/CMakeFiles/volley_net.dir/monitor_node.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/net/CMakeFiles/volley_net.dir/socket.cpp.o" "gcc" "src/net/CMakeFiles/volley_net.dir/socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/volley_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/volley_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/volley_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/volley_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
