# Empty dependencies file for volley_net.
# This may be replaced when dependencies are built.
