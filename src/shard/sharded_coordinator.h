// Two-tier coordination: the paper's error decomposition nested one level
// up (DESIGN.md §13).
//
// β_c ≤ Σ_i β_i (Section IV-B) holds for any partition of the monitor set,
// so it nests: slice the monitors into S shards, give shard s the threshold
// slice T_s = Σ_{i∈s} T_i and the budget slice err_s = err · n_s/n, and
// each shard is a "super-monitor" whose miss probability is bounded by the
// sum of its members' β_i. Concretely each shard runs an unmodified
// core::Coordinator over its subset — adaptive sampling, local polls on
// local violations, AIMD allowance reallocation — and the root tier runs
// the *identical* allocation algorithm one level up, over shard summaries
// instead of raw monitors:
//
//  * escalation: a shard whose subset aggregate exceeds T_s reports
//    upward; the root then polls every shard (reusing any subset aggregate
//    already collected this tick) and compares the total against T. A
//    local violation that stays under its shard's T_s costs n_s forced
//    samples instead of the flat coordinator's n — the scaling win — and
//    can only hide a global violation with probability bounded by the
//    shard's β budget (Σ T_s = T, so all subsets quiet ⇒ no global
//    violation, exactly the Section II-A argument one level up).
//  * reallocation: once per updating period the root collects each
//    shard's summed (r, e) statistics (Coordinator::last_period_stats) and
//    reassigns the per-shard budgets err_s with the same yield-
//    proportional scheme the shards use internally; shards fold their new
//    budget into their current per-monitor split proportionally
//    (Coordinator::set_error_budget). Budgets always sum to err, so
//    β_c ≤ Σ_shards Σ_i β_i ≤ err is preserved at both levels.
//
// Identity discipline: with shards == 1, run_tick forwards to the single
// Coordinator and the root tier is never entered — no extra metrics, no
// extra traces, bit-identical results to the flat tick loop (asserted by
// tests/test_shard.cpp and bench_shard, the same discipline as
// VOLLEY_SCAN_TICKS / VOLLEY_SCALAR_BETA).
//
// Thread-safety: none — one ShardedCoordinator is one single-threaded tick
// loop, like the flat Coordinator. The distributed mirror (AggregatorNode
// in src/net) runs each shard in its own process instead.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/coordinator.h"
#include "core/error_allocation.h"
#include "core/monitor.h"
#include "core/task.h"
#include "core/types.h"
#include "shard/placement.h"

namespace volley::shard {

class ShardedCoordinator {
 public:
  /// Builds one allocator per instantiation of the allocation loop —
  /// called once per shard (lanes = that shard's monitor count) and once
  /// for the root (lanes = shard count). May return null (never
  /// reallocate at that level).
  using AllocatorFactory =
      std::function<std::unique_ptr<AllowanceAllocator>(std::size_t lanes)>;

  /// Takes ownership of the monitors (global id order) and slices them by
  /// contiguous_placement. With shards == 1 the spec is used verbatim for
  /// the single shard (the flat-identity case); otherwise shard s gets
  /// T_s = Σ of its monitors' local thresholds and err_s = err · n_s/n.
  ShardedCoordinator(const TaskSpec& spec,
                     std::vector<std::unique_ptr<Monitor>> monitors,
                     std::size_t shards,
                     const AllocatorFactory& allocator_factory);

  /// Advances every shard by one tick, then runs the root tier: escalation
  /// (poll all shards when any shard's aggregate exceeded its T_s) and the
  /// root reallocation round. The result's global_value / global_violation
  /// are root-level (aggregate vs T); global_poll is set when any shard
  /// polled or the root escalated.
  Coordinator::TickResult run_tick(Tick t);

  const TaskSpec& spec() const { return spec_; }
  std::size_t shard_count() const { return shards_.size(); }
  const Coordinator& shard(std::size_t s) const { return *shards_.at(s); }
  Coordinator& shard(std::size_t s) { return *shards_.at(s); }
  const std::vector<ShardRange>& placement() const { return placement_; }

  /// Current per-shard error budgets (sum to the task err).
  const std::vector<double>& budgets() const { return budgets_; }

  std::size_t monitor_count() const { return monitor_count_; }
  /// Monitor by *global* index (the flat runner's id order).
  const Monitor& monitor(std::size_t i) const;
  Monitor& monitor(std::size_t i);

  // --- accounting -----------------------------------------------------
  /// Shard-tier polls (subset aggregations on local violations).
  std::int64_t shard_polls() const;
  /// Root escalations: ticks where some shard aggregate exceeded its T_s
  /// and the root polled every shard. Always 0 with shards == 1.
  std::int64_t escalations() const { return escalations_; }
  /// Root-level state alerts (aggregate > T).
  std::int64_t global_violations() const;
  /// Shard-local reallocation rounds plus root rounds.
  std::int64_t reallocations() const;
  std::int64_t root_reallocations() const { return root_reallocations_; }
  std::int64_t total_ops() const;
  double total_cost() const;

 private:
  void maybe_root_reallocate(Tick t);

  TaskSpec spec_;
  std::vector<ShardRange> placement_;
  std::vector<std::unique_ptr<Coordinator>> shards_;
  std::unique_ptr<AllowanceAllocator> root_allocator_;
  std::vector<double> budgets_;
  std::size_t monitor_count_{0};
  Tick next_root_update_{0};

  std::vector<Coordinator::TickResult> tick_scratch_;
  std::vector<CoordStats> stats_scratch_;

  std::int64_t escalations_{0};
  std::int64_t root_violations_{0};
  std::int64_t root_reallocations_{0};
};

}  // namespace volley::shard
