// Sharded experiment driver: run_volley over a two-tier ShardedCoordinator
// (DESIGN.md §13).
//
// run_volley_sharded mirrors sim/runner.h's run_volley tick for tick — the
// same validation, the same run-scoped metrics registry, the same RunResult
// bookkeeping — with the flat Coordinator swapped for a ShardedCoordinator.
// With options.shards == 1 the result (metrics_json included) is
// byte-identical to run_volley: the single shard IS a flat coordinator and
// the root tier is never entered (tests/test_shard.cpp and bench_shard
// assert it, the same discipline as VOLLEY_SCAN_TICKS).
#pragma once

#include <cstddef>
#include <span>

#include "core/task.h"
#include "shard/sharded_coordinator.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "trace/trace.h"

namespace volley::shard {

struct ShardedRunOptions {
  std::size_t shards{1};
  AllocatorKind allocator{AllocatorKind::kAdaptive};
  bool record_ops{false};        // fill RunResult::op_ticks
  bool record_intervals{false};  // fill RunResult::interval_trajectory
};

/// Allocator factory matching sim/runner's make_allocator per level: the
/// flat defaults, except that AdaptiveAllocation's per-lane minimum is
/// capped at half an even share (min(0.01, 0.5/lanes)) so the paper's
/// err/100 floor stays feasible past 100 lanes. At <= 50 lanes the cap is
/// inactive and the options equal the flat defaults exactly — which is why
/// shards == 1 runs over small fleets are byte-identical to run_volley.
ShardedCoordinator::AllocatorFactory make_allocator_factory(
    AllocatorKind kind);

/// Runs Volley over a distributed task split into options.shards shards:
/// one monitor per series with the given local thresholds (must sum to the
/// spec's global threshold; asserted as in run_volley).
RunResult run_volley_sharded(const TaskSpec& spec,
                             std::span<const TimeSeries> monitor_series,
                             std::span<const double> local_thresholds,
                             const ShardedRunOptions& options = {});

/// run_volley_sharded against precomputed ground truth (see run_volley's
/// overload for why: sweeps reuse one GroundTruth across cells).
RunResult run_volley_sharded(const TaskSpec& spec,
                             std::span<const TimeSeries> monitor_series,
                             std::span<const double> local_thresholds,
                             const GroundTruth& truth,
                             const ShardedRunOptions& options = {});

}  // namespace volley::shard
