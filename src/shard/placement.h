// Monitor → shard placement (DESIGN.md §13).
//
// The sharded tiers slice a task's monitor set into contiguous,
// near-equal-size subsets: shard s owns the global monitor indices
// [begin, end). Contiguity keeps the global id order recoverable from
// (shard, local index) — the sharded runner reports per-monitor results in
// the same order as the flat runner — and near-equal sizes keep every
// shard's poll cost within one monitor of n/S.
//
// The placement is a pure function of (monitors, shards): the same inputs
// always produce the same slicing, which is what lets a crashed aggregator
// recompute its subset on restart without coordination.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace volley::shard {

/// One shard's slice of the global monitor index space: [begin, end).
struct ShardRange {
  std::size_t begin{0};
  std::size_t end{0};

  std::size_t size() const { return end - begin; }
  bool contains(std::size_t i) const { return i >= begin && i < end; }
};

/// Slices `monitors` global indices into `shards` contiguous ranges whose
/// sizes differ by at most one (the first monitors % shards ranges hold the
/// extra element). Requires 1 <= shards <= monitors.
inline std::vector<ShardRange> contiguous_placement(std::size_t monitors,
                                                    std::size_t shards) {
  if (monitors == 0)
    throw std::invalid_argument("contiguous_placement: monitors > 0");
  if (shards == 0 || shards > monitors)
    throw std::invalid_argument(
        "contiguous_placement: 1 <= shards <= monitors");
  std::vector<ShardRange> out;
  out.reserve(shards);
  const std::size_t base = monitors / shards;
  const std::size_t extra = monitors % shards;
  std::size_t at = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    out.push_back(ShardRange{at, at + size});
    at += size;
  }
  return out;
}

/// Inverse of contiguous_placement for a single monitor index.
inline std::size_t shard_of(std::span<const ShardRange> placement,
                            std::size_t monitor) {
  for (std::size_t s = 0; s < placement.size(); ++s) {
    if (placement[s].contains(monitor)) return s;
  }
  throw std::out_of_range("shard_of: monitor outside placement");
}

}  // namespace volley::shard
