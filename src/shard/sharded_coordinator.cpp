#include "shard/sharded_coordinator.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace_events.h"

namespace volley::shard {

namespace {

// Root-tier instrumentation. Only ever touched on shards > 1 paths:
// registering these counters in a run-scoped registry would already change
// metrics_json, and the shards == 1 configuration must stay byte-identical
// to the flat coordinator.
struct ShardMetrics {
  obs::Counter* escalations;
  obs::Counter* alerts;
  obs::Counter* root_reallocations;

  static ShardMetrics make(obs::MetricsRegistry& m) {
    return ShardMetrics{
        &m.counter("volley_shard_escalations_total",
                   "Root polls triggered by a shard aggregate exceeding its "
                   "threshold slice T_s"),
        &m.counter("volley_shard_root_violations_total",
                   "Root escalations whose task aggregate exceeded T (state "
                   "alerts)"),
        &m.counter("volley_shard_root_reallocations_total",
                   "Root budget reallocation rounds over shard summaries"),
    };
  }

  static const ShardMetrics& get() { return obs::scoped_handles(&make); }
};

}  // namespace

ShardedCoordinator::ShardedCoordinator(
    const TaskSpec& spec, std::vector<std::unique_ptr<Monitor>> monitors,
    std::size_t shards, const AllocatorFactory& allocator_factory)
    : spec_(spec) {
  spec_.validate();
  if (monitors.empty())
    throw std::invalid_argument(
        "ShardedCoordinator: needs at least one monitor");
  monitor_count_ = monitors.size();
  placement_ = contiguous_placement(monitor_count_, shards);

  shards_.reserve(shards);
  budgets_.reserve(shards);
  for (const ShardRange& range : placement_) {
    TaskSpec shard_spec = spec_;
    if (shards > 1) {
      // T_s = Σ of the subset's local thresholds, err_s = err · n_s/n.
      // With one shard the spec is used verbatim instead: the float sum of
      // the thresholds may differ from T in the last ulp, and the identity
      // discipline demands the exact flat configuration.
      double slice = 0.0;
      for (std::size_t i = range.begin; i < range.end; ++i)
        slice += monitors[i]->local_threshold();
      shard_spec.global_threshold = slice;
      shard_spec.error_allowance =
          spec_.error_allowance * static_cast<double>(range.size()) /
          static_cast<double>(monitor_count_);
    }
    budgets_.push_back(shard_spec.error_allowance);

    std::vector<std::unique_ptr<Monitor>> subset;
    subset.reserve(range.size());
    for (std::size_t i = range.begin; i < range.end; ++i)
      subset.push_back(std::move(monitors[i]));
    shards_.push_back(std::make_unique<Coordinator>(
        shard_spec, std::move(subset),
        allocator_factory ? allocator_factory(range.size()) : nullptr));
  }
  if (shards > 1 && allocator_factory)
    root_allocator_ = allocator_factory(shards);
  next_root_update_ = spec_.updating_period;
}

const Monitor& ShardedCoordinator::monitor(std::size_t i) const {
  const std::size_t s = shard_of(placement_, i);
  return shards_[s]->monitor(i - placement_[s].begin);
}

Monitor& ShardedCoordinator::monitor(std::size_t i) {
  const std::size_t s = shard_of(placement_, i);
  return shards_[s]->monitor(i - placement_[s].begin);
}

Coordinator::TickResult ShardedCoordinator::run_tick(Tick t) {
  // Flat identity: one shard means no root tier at all — same results,
  // same metrics, same traces as a bare Coordinator.
  if (shards_.size() == 1) return shards_[0]->run_tick(t);

  Coordinator::TickResult result;
  bool escalate = false;
  tick_scratch_.clear();
  for (auto& shard : shards_) {
    const auto tick = shard->run_tick(t);
    result.any_due = result.any_due || tick.any_due;
    result.local_violations += tick.local_violations;
    result.global_poll = result.global_poll || tick.global_poll;
    escalate = escalate || tick.global_violation;
    tick_scratch_.push_back(tick);
  }

  if (escalate) {
    // Root poll: aggregate every shard. A shard that already polled this
    // tick collected its subset aggregate at t — reuse it; the rest pay a
    // forced subset poll (n_s operations, cached for monitors that
    // sampled at t anyway). The total is exactly the flat coordinator's
    // poll aggregate at t.
    ++escalations_;
    ShardMetrics::get().escalations->inc();
    double total = 0.0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      total += tick_scratch_[s].global_poll ? tick_scratch_[s].global_value
                                            : shards_[s]->force_poll(t);
    }
    result.global_poll = true;
    result.global_value = total;
    result.global_violation = total > spec_.global_threshold;
    if (result.global_violation) {
      ++root_violations_;
      ShardMetrics::get().alerts->inc();
      if (obs::trace_enabled()) {
        obs::trace().record(obs::TraceKind::kAlertRaised, t, 0, total,
                            spec_.global_threshold);
      }
    }
  }

  maybe_root_reallocate(t);
  return result;
}

void ShardedCoordinator::maybe_root_reallocate(Tick t) {
  if (shards_.size() < 2) return;
  if (t < next_root_update_) return;
  next_root_update_ = t + spec_.updating_period;
  if (!root_allocator_) return;

  // The shards share the task's updating period, so their own reallocation
  // rounds (inside run_tick, above) have just drained this period's
  // per-monitor statistics: last_period_stats() is fresh. The root
  // reassigns budgets from those summaries; the new budgets shape the
  // shards' *next* rounds.
  stats_scratch_.clear();
  for (auto& shard : shards_) stats_scratch_.push_back(shard->last_period_stats());
  budgets_ =
      root_allocator_->allocate(spec_.error_allowance, budgets_, stats_scratch_);
  for (std::size_t s = 0; s < shards_.size(); ++s)
    shards_[s]->set_error_budget(budgets_[s]);
  ++root_reallocations_;
  ShardMetrics::get().root_reallocations->inc();
}

std::int64_t ShardedCoordinator::shard_polls() const {
  std::int64_t polls = 0;
  for (const auto& shard : shards_) polls += shard->global_polls();
  return polls;
}

std::int64_t ShardedCoordinator::global_violations() const {
  if (shards_.size() == 1) return shards_[0]->global_violations();
  return root_violations_;
}

std::int64_t ShardedCoordinator::reallocations() const {
  std::int64_t rounds = root_reallocations_;
  for (const auto& shard : shards_) rounds += shard->reallocations();
  return rounds;
}

std::int64_t ShardedCoordinator::total_ops() const {
  std::int64_t ops = 0;
  for (const auto& shard : shards_) ops += shard->total_ops();
  return ops;
}

double ShardedCoordinator::total_cost() const {
  double cost = 0.0;
  for (const auto& shard : shards_) cost += shard->total_cost();
  return cost;
}

}  // namespace volley::shard
