#include "shard/runner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/error_allocation.h"
#include "core/monitor.h"
#include "sim/run_registry.h"

namespace volley::shard {

ShardedCoordinator::AllocatorFactory make_allocator_factory(
    AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kNone:
      return nullptr;
    case AllocatorKind::kEven:
      return [](std::size_t) -> std::unique_ptr<AllowanceAllocator> {
        return std::make_unique<EvenAllocation>();
      };
    case AllocatorKind::kAdaptive:
      return [](std::size_t lanes) -> std::unique_ptr<AllowanceAllocator> {
        AdaptiveAllocation::Options options;
        options.min_fraction =
            std::min(options.min_fraction, 0.5 / static_cast<double>(lanes));
        return std::make_unique<AdaptiveAllocation>(options);
      };
  }
  throw std::invalid_argument("make_allocator_factory: unknown kind");
}

RunResult run_volley_sharded(const TaskSpec& spec,
                             std::span<const TimeSeries> monitor_series,
                             std::span<const double> local_thresholds,
                             const ShardedRunOptions& options) {
  if (monitor_series.empty())
    throw std::invalid_argument("run_volley_sharded: no monitors");
  const TimeSeries aggregate = TimeSeries::sum(monitor_series);
  const GroundTruth truth =
      GroundTruth::from_series(aggregate, spec.global_threshold);
  return run_volley_sharded(spec, monitor_series, local_thresholds, truth,
                            options);
}

RunResult run_volley_sharded(const TaskSpec& spec,
                             std::span<const TimeSeries> monitor_series,
                             std::span<const double> local_thresholds,
                             const GroundTruth& truth,
                             const ShardedRunOptions& options) {
  spec.validate();
  if (monitor_series.empty())
    throw std::invalid_argument("run_volley_sharded: no monitors");
  if (monitor_series.size() != local_thresholds.size())
    throw std::invalid_argument(
        "run_volley_sharded: thresholds size mismatch");
  const Tick ticks = monitor_series.front().ticks();
  for (const auto& s : monitor_series) {
    if (s.ticks() != ticks)
      throw std::invalid_argument(
          "run_volley_sharded: series length mismatch");
  }
  {
    double sum = 0.0;
    for (double t : local_thresholds) sum += t;
    const double scale =
        std::max({std::abs(sum), std::abs(spec.global_threshold), 1.0});
    if (std::abs(sum - spec.global_threshold) > 1e-6 * scale)
      throw std::invalid_argument(
          "run_volley_sharded: local thresholds must sum to the global "
          "threshold");
  }

  return with_run_registry([&]() {
    // Sources must outlive the monitors.
    std::vector<std::unique_ptr<SeriesSource>> sources;
    sources.reserve(monitor_series.size());
    for (const auto& s : monitor_series)
      sources.push_back(std::make_unique<SeriesSource>(s));

    std::vector<std::unique_ptr<Monitor>> monitors;
    monitors.reserve(monitor_series.size());
    for (std::size_t i = 0; i < monitor_series.size(); ++i) {
      // As in run_volley: the per-monitor allowance is overwritten by each
      // shard coordinator's initial even split.
      monitors.push_back(std::make_unique<Monitor>(
          static_cast<MonitorId>(i), *sources[i],
          spec.sampler_options(spec.error_allowance), local_thresholds[i]));
    }
    ShardedCoordinator coordinator(spec, std::move(monitors), options.shards,
                                   make_allocator_factory(options.allocator));

    RunResult result;
    result.ticks = ticks;
    result.monitors = monitor_series.size();
    std::vector<char> detected(static_cast<std::size_t>(ticks), 0);
    std::vector<std::int64_t> prev_ops(monitor_series.size(), 0);
    if (options.record_ops) result.op_ticks.resize(monitor_series.size());

    for (Tick t = 0; t < ticks; ++t) {
      const auto tick = coordinator.run_tick(t);
      if (tick.global_violation) detected[static_cast<std::size_t>(t)] = 1;
      result.local_violations += tick.local_violations;
      if (options.record_ops || options.record_intervals) {
        for (std::size_t i = 0; i < coordinator.monitor_count(); ++i) {
          const std::int64_t ops = coordinator.monitor(i).total_ops();
          if (ops != prev_ops[i]) {
            prev_ops[i] = ops;
            if (options.record_ops) result.op_ticks[i].push_back(t);
            if (options.record_intervals && i == 0)
              result.interval_trajectory.push_back(
                  coordinator.monitor(0).interval());
          }
        }
      }
    }

    for (std::size_t i = 0; i < coordinator.monitor_count(); ++i) {
      result.scheduled_ops += coordinator.monitor(i).scheduled_ops();
      result.forced_ops += coordinator.monitor(i).forced_ops();
    }
    result.total_cost = coordinator.total_cost();
    // Shard polls plus root escalations: with one shard escalations are 0
    // and this is exactly the flat count.
    result.global_polls = coordinator.shard_polls() + coordinator.escalations();
    result.reallocations = coordinator.reallocations();

    score_detection(result, truth, detected);
    return result;
  });
}

}  // namespace volley::shard
