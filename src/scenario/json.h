// Minimal strict JSON parser for scenario files.
//
// The scenario engine needs to *read* JSON; the rest of the codebase only
// ever emits it (obs/metrics.h, bench timing records). This parser is
// deliberately small and strict: RFC 8259 values only (no comments, no
// trailing commas, no NaN/Infinity), duplicate object keys rejected, and
// every error carries the line:column where parsing stopped plus what was
// expected — a scenario typo must produce an actionable message, not a
// silently defaulted knob (same philosophy as common/config.h).
//
// Objects preserve no insertion order (std::map, key-sorted) — scenario
// semantics never depend on key order, and deterministic iteration keeps
// everything downstream byte-reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace volley::scenario {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(std::nullptr_t) : value_(nullptr) {}
  explicit JsonValue(bool b) : value_(b) {}
  explicit JsonValue(double d) : value_(d) {}
  explicit JsonValue(std::string s) : value_(std::move(s)) {}
  explicit JsonValue(Array a) : value_(std::move(a)) {}
  explicit JsonValue(Object o) : value_(std::move(o)) {}

  /// Parses one JSON document; trailing non-whitespace is an error.
  /// Throws std::invalid_argument with "json:<line>:<col>: <reason>".
  static JsonValue parse(std::string_view text);

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  // Typed accessors. `where` names the field for the error message
  // ("scenario: <where>: expected <type>").
  bool as_bool(const std::string& where) const;
  double as_number(const std::string& where) const;
  std::int64_t as_int(const std::string& where) const;  // rejects fractions
  const std::string& as_string(const std::string& where) const;
  const Array& as_array(const std::string& where) const;
  const Object& as_object(const std::string& where) const;

  /// Object member lookup; nullptr when absent (or when not an object).
  const JsonValue* find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace volley::scenario
