// Declarative scenario engine: one JSON file describes a complete hostile
// environment for a Volley deployment — the workload every monitor sees,
// the faults the messaging layer suffers, and the control-plane churn the
// registry absorbs — plus the phases and invariants a soak run is judged
// against (scenario/soak.h executes it, tools/volley_soak drives it).
//
// Everything a scenario produces is a pure function of {file, seed}: the
// composed metric series, the churn schedule, and every fault draw derive
// from Rng(seed) in fixed order. A failing soak run therefore replays
// byte-identically from the same scenario file, which is what turns a chaos
// run into a regression asset (scenarios/ holds the committed exemplars).
//
// File format (see EXPERIMENTS.md "Scenarios & soak" for the full
// reference):
//
//   {
//     "name": "diurnal-burst", "seed": 7, "monitors": 4, "ticks": 4000,
//     "task": {"threshold_selectivity": 4.0, "error_allowance": 0.02, ...},
//     "workload": {
//       "base":   {"mean": 0.5, "theta": 0.05, "sigma": 0.05, ...},
//       "layers": [
//         {"kind": "diurnal", "period": 2000, "depth": 0.6},
//         {"kind": "burst", "mean_gap": 900, "scale": 3.0, ...},
//         {"kind": "spike", "at": 2500, "len": 40, "value": 2.0,
//          "monitors": [0, 1]},
//         {"kind": "regime_shift", "at": 3000, "mean": 0.85, "sigma": 0.1}
//       ]
//     },
//     "faults": [
//       {"profile": "flaky-link", "start": 1200, "end": 1800},
//       {"profile": "partition", "start": 2600, "end": 2900,
//        "monitors": [1]}
//     ],
//     "churn": {
//       "events": [{"op": "add", "tick": 500, "task": 7}, ...],
//       "random": {"arrivals": 4, "hold_min": 300, "hold_max": 900,
//                  "first_task": 100}
//     },
//     "phases": [{"name": "warmup", "start": 0, "end": 1000}, ...],
//     "invariants": {"tolerance": 0.05, "net_tolerance": 1.0,
//                    "allowance_epsilon": 1e-6, "stuck_factor": 4}
//   }
//
// Fault profiles are *named*, netem-style (à la `tc netem` recipes): a
// window references a profile ("flaky-link", "partition", "slow-drip",
// "crash-restart") instead of spelling out probabilities, so scenarios
// stay legible and the sim/net mapping lives in one table. In sim mode a
// profile contributes message-loss probabilities (and, for outage-class
// profiles, MonitorOutage windows) to the tick loop; in net mode the same
// profile maps onto the chaos proxy's NetFaultPlan fields.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/task.h"
#include "sim/faults.h"
#include "sim/runner.h"
#include "trace/generators.h"
#include "trace/trace.h"

namespace volley::scenario {

/// One named fault recipe. Loss fields use the simulator's independent
/// Bernoulli semantics (sim/faults.h); delay/partial-write/disconnect
/// fields only exist on the wire and map onto net::ChaosProxy's plan.
struct FaultProfile {
  std::string_view name;
  double report_loss{0.0};    // LocalViolation drop probability
  double response_loss{0.0};  // PollResponse drop probability
  double heartbeat_loss{0.0};
  double delay_prob{0.0};
  int delay_ms{0};
  double partial_write_prob{0.0};
  /// Outage-class profile: in sim mode each window becomes MonitorOutage
  /// rows for the targeted monitors; in net mode it maps to mid-stream
  /// disconnects (a partitioned/crashed monitor's link is cut and the node
  /// reconnects through its backoff machinery).
  bool outage{false};
  std::int64_t disconnect_after_frames{-1};
  int disconnects_per_window{0};
};

/// nullptr on unknown names. The table: "flaky-link" (correlated loss +
/// jitter), "partition" (outage; link cut), "slow-drip" (heavy delay +
/// partial writes, light loss), "crash-restart" (outage windows shaped
/// like a process crash and supervised restart).
const FaultProfile* find_fault_profile(std::string_view name);
/// All known profile names, for error messages and docs.
std::vector<std::string_view> fault_profile_names();

/// A scheduled application of a profile over [start, end) ticks, hitting
/// `monitors` (empty = all).
struct FaultWindow {
  std::string profile;
  Tick start{0};
  Tick end{0};
  std::vector<std::size_t> monitors;
};

/// One workload layer composed over the base process. Layers apply in file
/// order to the targeted monitors (empty target list = all):
///  * diurnal      — multiplies by a DiurnalCurve (period/depth/phase);
///  * burst        — adds scale * BurstProcess episodes (per-monitor
///                   independent forks of the scenario seed);
///  * spike        — adds a fixed rectangle [at, at+len) of `value` to the
///                   targeted monitors *simultaneously* (the correlated
///                   cross-node spike no per-monitor process can produce);
///  * regime_shift — from tick `at` on, re-targets the base OU process to a
//                    new mean/sigma (stresses the estimator's n>1000
//                    restart discipline).
struct WorkloadLayer {
  enum class Kind { kDiurnal, kBurst, kSpike, kRegimeShift };
  Kind kind{Kind::kDiurnal};
  std::vector<std::size_t> monitors;  // empty = all
  // diurnal
  Tick period{2000};
  double depth{0.5};
  Tick phase{0};
  // burst (BurstProcess::Options) + amplitude
  BurstProcess::Options burst{};
  double scale{1.0};
  // spike
  Tick at{0};
  Tick len{0};
  double value{0.0};
  // regime_shift
  double mean{0.5};
  double sigma{0.05};
};

/// Scheduled control-plane churn. Explicit events carry their tick and
/// task id; `random_arrivals` instances are drawn on top via
/// make_churn_schedule (sim/runner.h) from the scenario seed. Both explicit
/// and random arrivals run the boot task's spec scaled by
/// `threshold_scale` (churned tasks watch the same series at an offset
/// threshold, exercising per-task allowance tuning).
struct ChurnSpec {
  struct Event {
    enum class Op { kAdd, kRemove, kUpdate };
    Op op{Op::kAdd};
    Tick tick{0};
    TaskId task{0};
    double threshold_scale{1.0};  // kAdd/kUpdate: boot threshold multiplier
  };
  std::vector<Event> events;
  int random_arrivals{0};
  Tick hold_min{200};
  Tick hold_max{800};
  TaskId first_task{100};
  double threshold_scale{1.1};  // random arrivals' threshold multiplier
};

/// A scored slice of the run: invariants are evaluated per phase, so a
/// regression report says *when* the system went out of budget, not just
/// that it did. Phases must tile [0, ticks) in ascending order.
struct ScenarioPhase {
  std::string name;
  Tick start{0};
  Tick end{0};
  /// Sim-mode error-budget tolerance for this phase; < 0 uses the
  /// scenario-level invariants.tolerance. Net mode always judges against
  /// invariants.net_tolerance (the proxy applies the union fault plan to
  /// the whole run, so phase-tuned budgets only make sense in sim).
  double tolerance{-1.0};
};

struct ScenarioInvariants {
  /// Sim mode: per-phase episode miss rate may exceed the task's error
  /// allowance by at most this much.
  double tolerance{0.05};
  /// Net mode error-budget tolerance. Wall-clock scheduling adds noise the
  /// simulator doesn't have; 1.0 disables the check (the other invariants
  /// still apply) unless a scenario opts into a strict bound.
  double net_tolerance{1.0};
  /// |sum(per-monitor allowance) - task allowance| bound.
  double allowance_epsilon{1e-6};
  /// A monitor counts as stuck only in phases at least this many
  /// max_interval spans long (shorter phases can't prove liveness).
  int stuck_factor{4};
};

struct Scenario {
  std::string name;
  std::uint64_t seed{1};
  std::size_t monitors{1};
  Tick ticks{0};

  /// Boot task (id 0). Exactly one of `threshold` (absolute) or
  /// `threshold_selectivity` (percent of aggregate ticks above T, resolved
  /// against the composed series) is set; selectivity is the robust choice
  /// for seeded workloads.
  TaskSpec task{};
  double threshold{0.0};
  double threshold_selectivity{-1.0};  // < 0: use absolute `threshold`

  OuProcess::Options base{};
  std::vector<WorkloadLayer> layers;
  std::vector<FaultWindow> faults;
  ChurnSpec churn;
  std::vector<ScenarioPhase> phases;
  ScenarioInvariants invariants;

  /// Net mode pacing: microseconds of wall clock per tick.
  int tick_micros{300};
  /// Artifact cadence: a metrics snapshot every this many ticks (0 = phase
  /// boundaries only).
  Tick snapshot_every{0};

  /// Parses and validates. Throws std::invalid_argument with an actionable
  /// message (JSON syntax errors carry line:col; semantic errors name the
  /// offending field/window/profile).
  static Scenario from_json_text(std::string_view text);
  static Scenario from_file(const std::string& path);

  /// Structural validation (from_json_text already ran it; public for
  /// programmatically built scenarios): probabilities in range, fault
  /// windows within [0, ticks) with no same-profile/same-monitor overlap
  /// (delegated to FaultPlan::validate), known profile names, phases tiling
  /// [0, ticks), churn events in range.
  void validate() const;

  /// Proportionally rescales every tick field to `target_ticks` (quick
  /// CI runs). No-op when ticks <= target_ticks. Degenerate windows the
  /// rescale collapses (end <= start) are dropped.
  Scenario scaled(Tick target_ticks) const;
};

// --- deterministic builders ------------------------------------------------

/// Composes the per-monitor series from {base, layers, seed}. Each monitor
/// forks its own generator stream from Rng(seed), so adding monitors never
/// perturbs existing ones.
std::vector<TimeSeries> build_monitor_series(const Scenario& scenario);

/// The boot TaskSpec with its threshold resolved against the composed
/// aggregate (selectivity scenarios need the series; absolute ones don't).
TaskSpec resolve_boot_task(const Scenario& scenario,
                           const TimeSeries& aggregate);

/// The full churn schedule (explicit + seed-derived random arrivals), in
/// canonical_churn_order, with every spec resolved from the boot task.
std::vector<TaskChurnEvent> build_churn_events(const Scenario& scenario,
                                               const TaskSpec& boot);

/// Sim-mode fault view: per-tick effective loss probabilities (windows
/// compose as independent drops) and outage membership.
class SimFaultModel {
 public:
  SimFaultModel(const Scenario& scenario);

  double report_loss_at(Tick t) const;
  double response_loss_at(Tick t) const;
  bool in_outage(std::size_t monitor, Tick t) const;
  /// Outage rows (for FaultPlan-style accounting and validation reuse).
  const std::vector<MonitorOutage>& outages() const { return outages_; }

 private:
  struct LossWindow {
    Tick start{0}, end{0};
    double report_loss{0.0}, response_loss{0.0};
  };
  std::vector<LossWindow> loss_windows_;
  std::vector<MonitorOutage> outages_;
};

/// Net-mode fault plan for the chaos proxy: the union of the scenario's
/// windows (the proxy applies one static plan for its lifetime, so loss
/// fields take each profile's maximum across windows and outage-class
/// windows become mid-stream disconnect budgets). Seeded from the scenario
/// seed.
NetFaultPlan build_net_fault_plan(const Scenario& scenario);

}  // namespace volley::scenario
