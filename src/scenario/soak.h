// Soak runner: executes a Scenario end to end and judges it against the
// scenario's per-phase invariants, producing a deterministic report plus
// optional JSONL artifacts.
//
// Two execution modes share one report shape:
//
//  * sim — a fault-aware tick loop over the composed series (the
//    run_volley_faulty semantics of sim/faults.cpp generalized to a churning
//    task set): monitors sample through outage windows, violation reports
//    and poll responses drop with the scenario's windowed probabilities,
//    per-task allowance reallocation runs on each task's updating period,
//    and control-plane churn mutates a control::TaskRegistry mid-run. The
//    whole run is a pure function of {scenario, seed}: re-running produces a
//    byte-identical report (SoakReport::to_json), which is what the replay
//    discipline and the CI regression assertions stand on.
//
//  * net — the real wire runtime: a CoordinatorNode, the scenario's
//    monitors as MonitorNode threads, every monitor connection interposed
//    by a ChaosProxy armed with the scenario's merged NetFaultPlan, and
//    churn delivered as AddTask/RemoveTask/UpdateTask control RPCs on the
//    scenario's tick schedule. Fault *injection* is seeded and
//    deterministic per frame sequence, but wall-clock interleaving is not —
//    the report's counters are stable in expectation, and the byte-identity
//    guarantee applies to sim mode (EXPERIMENTS.md "Scenarios & soak").
//
// Invariants evaluated per phase (sim; net evaluates the subset it can
// observe):
//  * error_budget          — per task instance, the episode miss rate over
//    the phase∩lifetime window stays within err + tolerance (windows
//    shorter than stuck_factor * Im are reported as skipped: too short to
//    judge);
//  * allowance_conservation — each live task's per-monitor allowances sum
//    to the task's err within allowance_epsilon;
//  * no_stuck_monitors     — every monitor with enough non-outage ticks in
//    the phase made sampling progress;
// and globally:
//  * epochs_monotone       — the registry epochs consumed by churn are
//    strictly increasing (exactly the control plane's ordering contract).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "scenario/scenario.h"

namespace volley::scenario {

struct SoakOptions {
  enum class Mode { kSim, kNet };
  Mode mode{Mode::kSim};
  /// When non-empty, the runner writes `<name>-<mode>-report.json` and
  /// `<name>-<mode>-snapshots.jsonl` here (directories are created).
  std::string artifact_dir{};
  /// Rescale the scenario to at most quick_ticks ticks (CI smoke runs).
  bool quick{false};
  Tick quick_ticks{1200};
};

/// One invariant evaluation. `pass` is true for skipped checks too (the
/// detail says why); only a genuine violation fails a phase.
struct InvariantCheck {
  std::string name;
  bool pass{true};
  std::string detail;
};

struct PhaseReport {
  std::string phase;
  Tick start{0};
  Tick end{0};
  // Counter deltas over the phase.
  std::int64_t ops{0};
  std::int64_t local_violations{0};
  std::int64_t global_polls{0};
  std::int64_t reallocations{0};
  std::int64_t lost_reports{0};
  std::int64_t lost_responses{0};
  std::int64_t outage_monitor_ticks{0};
  std::int64_t stale_polls{0};
  std::int64_t alerts{0};  // detected global-violation ticks in the phase
  std::vector<InvariantCheck> checks;

  bool passed() const {
    for (const auto& check : checks)
      if (!check.pass) return false;
    return true;
  }
};

struct SoakReport {
  std::string scenario;
  std::string mode;  // "sim" | "net"
  std::uint64_t seed{0};
  Tick ticks{0};
  std::size_t monitors{0};
  double boot_threshold{0.0};
  std::vector<PhaseReport> phases;
  /// Registry epochs consumed by churn mutations, in application order.
  std::vector<std::uint64_t> epochs;
  std::vector<InvariantCheck> global_checks;

  bool passed() const {
    for (const auto& phase : phases)
      if (!phase.passed()) return false;
    for (const auto& check : global_checks)
      if (!check.pass) return false;
    return true;
  }

  /// Deterministic rendering: fixed key order, fixed float formatting, no
  /// timestamps — two runs of the same {scenario, seed} in sim mode return
  /// byte-identical strings.
  std::string to_json() const;
};

/// Executes the scenario in the given mode. Throws std::invalid_argument on
/// scenario problems and std::runtime_error on execution failures (e.g. an
/// unwritable artifact dir); an invariant violation is NOT an error — it is
/// a failed check in the returned report.
SoakReport run_scenario(const Scenario& scenario,
                        const SoakOptions& options = {});

SoakReport run_scenario_sim(const Scenario& scenario,
                            const SoakOptions& options = {});
SoakReport run_scenario_net(const Scenario& scenario,
                            const SoakOptions& options = {});

}  // namespace volley::scenario
