#include "scenario/scenario.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"
#include "scenario/json.h"

namespace volley::scenario {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("scenario: " + message);
}

// The named netem-style fault recipes. Loss probabilities follow the
// simulator's Bernoulli semantics; wire-only fields (delay, partial
// writes, disconnects) are what the chaos proxy applies. Keep this the
// single source of truth for both modes.
constexpr std::array<FaultProfile, 4> kProfiles{{
    // Lossy, jittery link: the classic netem "loss 25% delay 20ms" recipe.
    {"flaky-link", 0.25, 0.25, 0.15, 0.5, 20, 0.1, false, -1, 0},
    // Clean cut: the monitor is unreachable for the window (sim outage);
    // on the wire its proxied link is severed and it must reconnect.
    {"partition", 0.0, 0.0, 0.0, 0.0, 0, 0.0, true, 50, 1},
    // Heavy delay and fragmented writes with a trickle of loss — the slow
    // failing NIC / overloaded middlebox shape.
    {"slow-drip", 0.05, 0.05, 0.0, 0.9, 40, 0.5, false, -1, 0},
    // Process crash + supervised restart: offline window in sim; repeated
    // mid-stream cuts on the wire.
    {"crash-restart", 0.0, 0.0, 0.0, 0.0, 0, 0.0, true, 150, 2},
}};

std::string known_profiles_hint() {
  std::string out = "known profiles:";
  for (const auto& p : kProfiles) {
    out += ' ';
    out += p.name;
  }
  return out;
}

/// Rejects unknown keys so a typo'd knob fails loudly instead of silently
/// running the default.
void check_keys(const JsonValue::Object& obj, const std::string& where,
                std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : obj) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end())
      fail(where + ": unknown key '" + key + "'");
  }
}

double get_number(const JsonValue::Object& obj, const std::string& key,
                  const std::string& where, double def) {
  const auto it = obj.find(key);
  return it == obj.end() ? def : it->second.as_number(where + "." + key);
}

std::int64_t get_int(const JsonValue::Object& obj, const std::string& key,
                     const std::string& where, std::int64_t def) {
  const auto it = obj.find(key);
  return it == obj.end() ? def : it->second.as_int(where + "." + key);
}

std::vector<std::size_t> get_monitor_list(const JsonValue::Object& obj,
                                          const std::string& where) {
  std::vector<std::size_t> out;
  const auto it = obj.find("monitors");
  if (it == obj.end()) return out;
  for (const auto& v : it->second.as_array(where + ".monitors")) {
    const auto i = v.as_int(where + ".monitors[]");
    if (i < 0) fail(where + ".monitors: negative monitor index");
    out.push_back(static_cast<std::size_t>(i));
  }
  return out;
}

WorkloadLayer parse_layer(const JsonValue& value, std::size_t index) {
  const std::string where = "workload.layers[" + std::to_string(index) + "]";
  const auto& obj = value.as_object(where);
  const auto kind_it = obj.find("kind");
  if (kind_it == obj.end()) fail(where + ": missing 'kind'");
  const std::string& kind = kind_it->second.as_string(where + ".kind");

  WorkloadLayer layer;
  layer.monitors = get_monitor_list(obj, where);
  if (kind == "diurnal") {
    check_keys(obj, where, {"kind", "monitors", "period", "depth", "phase"});
    layer.kind = WorkloadLayer::Kind::kDiurnal;
    layer.period = static_cast<Tick>(get_int(obj, "period", where, 2000));
    layer.depth = get_number(obj, "depth", where, 0.5);
    layer.phase = static_cast<Tick>(get_int(obj, "phase", where, 0));
  } else if (kind == "burst") {
    check_keys(obj, where,
               {"kind", "monitors", "mean_gap", "ramp", "plateau", "decay",
                "peak_lo", "peak_hi", "scale"});
    layer.kind = WorkloadLayer::Kind::kBurst;
    layer.burst.mean_gap = get_number(obj, "mean_gap", where, 2000.0);
    layer.burst.ramp = static_cast<Tick>(get_int(obj, "ramp", where, 10));
    layer.burst.plateau =
        static_cast<Tick>(get_int(obj, "plateau", where, 20));
    layer.burst.decay = static_cast<Tick>(get_int(obj, "decay", where, 20));
    layer.burst.peak_lo = get_number(obj, "peak_lo", where, 0.5);
    layer.burst.peak_hi = get_number(obj, "peak_hi", where, 1.0);
    layer.scale = get_number(obj, "scale", where, 1.0);
  } else if (kind == "spike") {
    check_keys(obj, where, {"kind", "monitors", "at", "len", "value"});
    layer.kind = WorkloadLayer::Kind::kSpike;
    layer.at = static_cast<Tick>(get_int(obj, "at", where, 0));
    layer.len = static_cast<Tick>(get_int(obj, "len", where, 1));
    layer.value = get_number(obj, "value", where, 1.0);
  } else if (kind == "regime_shift") {
    check_keys(obj, where, {"kind", "monitors", "at", "mean", "sigma"});
    layer.kind = WorkloadLayer::Kind::kRegimeShift;
    layer.at = static_cast<Tick>(get_int(obj, "at", where, 0));
    layer.mean = get_number(obj, "mean", where, 0.5);
    layer.sigma = get_number(obj, "sigma", where, 0.05);
  } else {
    fail(where + ": unknown layer kind '" + kind +
         "' (known: diurnal, burst, spike, regime_shift)");
  }
  return layer;
}

ChurnSpec::Event parse_churn_event(const JsonValue& value,
                                   std::size_t index) {
  const std::string where = "churn.events[" + std::to_string(index) + "]";
  const auto& obj = value.as_object(where);
  check_keys(obj, where, {"op", "tick", "task", "threshold_scale"});
  const auto op_it = obj.find("op");
  if (op_it == obj.end()) fail(where + ": missing 'op'");
  const std::string& op = op_it->second.as_string(where + ".op");

  ChurnSpec::Event event;
  if (op == "add") event.op = ChurnSpec::Event::Op::kAdd;
  else if (op == "remove") event.op = ChurnSpec::Event::Op::kRemove;
  else if (op == "update") event.op = ChurnSpec::Event::Op::kUpdate;
  else fail(where + ": unknown op '" + op + "' (known: add, remove, update)");
  event.tick = static_cast<Tick>(get_int(obj, "tick", where, 0));
  event.task = static_cast<TaskId>(get_int(obj, "task", where, 0));
  event.threshold_scale = get_number(obj, "threshold_scale", where, 1.0);
  return event;
}

}  // namespace

const FaultProfile* find_fault_profile(std::string_view name) {
  for (const auto& profile : kProfiles) {
    if (profile.name == name) return &profile;
  }
  return nullptr;
}

std::vector<std::string_view> fault_profile_names() {
  std::vector<std::string_view> names;
  names.reserve(kProfiles.size());
  for (const auto& profile : kProfiles) names.push_back(profile.name);
  return names;
}

Scenario Scenario::from_json_text(std::string_view text) {
  const JsonValue root = JsonValue::parse(text);
  const auto& top = root.as_object("document");
  check_keys(top, "document",
             {"name", "seed", "monitors", "ticks", "task", "workload",
              "faults", "churn", "phases", "invariants", "tick_micros",
              "snapshot_every"});

  Scenario s;
  if (const auto* name = root.find("name"))
    s.name = name->as_string("name");
  if (s.name.empty()) fail("missing or empty 'name'");
  s.seed = static_cast<std::uint64_t>(get_int(top, "seed", "document", 1));
  s.monitors =
      static_cast<std::size_t>(get_int(top, "monitors", "document", 1));
  s.ticks = static_cast<Tick>(get_int(top, "ticks", "document", 0));
  s.tick_micros =
      static_cast<int>(get_int(top, "tick_micros", "document", 300));
  s.snapshot_every =
      static_cast<Tick>(get_int(top, "snapshot_every", "document", 0));

  if (const auto* task = root.find("task")) {
    const auto& obj = task->as_object("task");
    check_keys(obj, "task",
               {"threshold", "threshold_selectivity", "error_allowance",
                "id_seconds", "max_interval", "slack_ratio", "patience",
                "updating_period"});
    s.threshold = get_number(obj, "threshold", "task", 0.0);
    s.threshold_selectivity =
        get_number(obj, "threshold_selectivity", "task", -1.0);
    s.task.error_allowance =
        get_number(obj, "error_allowance", "task", s.task.error_allowance);
    s.task.id_seconds = get_number(obj, "id_seconds", "task", 1.0);
    s.task.max_interval = static_cast<Tick>(
        get_int(obj, "max_interval", "task", s.task.max_interval));
    s.task.slack_ratio =
        get_number(obj, "slack_ratio", "task", s.task.slack_ratio);
    s.task.patience =
        static_cast<int>(get_int(obj, "patience", "task", s.task.patience));
    s.task.updating_period = static_cast<Tick>(
        get_int(obj, "updating_period", "task", s.task.updating_period));
    if (obj.count("threshold") && obj.count("threshold_selectivity"))
      fail("task: set 'threshold' or 'threshold_selectivity', not both");
    if (!obj.count("threshold") && !obj.count("threshold_selectivity"))
      fail("task: one of 'threshold' / 'threshold_selectivity' is required");
  } else {
    fail("missing 'task' object");
  }

  if (const auto* workload = root.find("workload")) {
    const auto& obj = workload->as_object("workload");
    check_keys(obj, "workload", {"base", "layers"});
    if (const auto* base = workload->find("base")) {
      const auto& b = base->as_object("workload.base");
      check_keys(b, "workload.base",
                 {"mean", "theta", "sigma", "lo", "hi", "start"});
      s.base.mean = get_number(b, "mean", "workload.base", 0.5);
      s.base.theta = get_number(b, "theta", "workload.base", 0.05);
      s.base.sigma = get_number(b, "sigma", "workload.base", 0.02);
      s.base.lo = get_number(b, "lo", "workload.base", 0.0);
      s.base.hi = get_number(b, "hi", "workload.base", 1.0);
      s.base.start = get_number(b, "start", "workload.base", s.base.mean);
    }
    if (const auto* layers = workload->find("layers")) {
      const auto& arr = layers->as_array("workload.layers");
      for (std::size_t i = 0; i < arr.size(); ++i)
        s.layers.push_back(parse_layer(arr[i], i));
    }
  }

  if (const auto* faults = root.find("faults")) {
    const auto& arr = faults->as_array("faults");
    for (std::size_t i = 0; i < arr.size(); ++i) {
      const std::string where = "faults[" + std::to_string(i) + "]";
      const auto& obj = arr[i].as_object(where);
      check_keys(obj, where, {"profile", "start", "end", "monitors"});
      FaultWindow window;
      const auto profile_it = obj.find("profile");
      if (profile_it == obj.end()) fail(where + ": missing 'profile'");
      window.profile = profile_it->second.as_string(where + ".profile");
      window.start = static_cast<Tick>(get_int(obj, "start", where, 0));
      window.end = static_cast<Tick>(get_int(obj, "end", where, 0));
      window.monitors = get_monitor_list(obj, where);
      s.faults.push_back(std::move(window));
    }
  }

  if (const auto* churn = root.find("churn")) {
    const auto& obj = churn->as_object("churn");
    check_keys(obj, "churn", {"events", "random"});
    if (const auto* events = churn->find("events")) {
      const auto& arr = events->as_array("churn.events");
      for (std::size_t i = 0; i < arr.size(); ++i)
        s.churn.events.push_back(parse_churn_event(arr[i], i));
    }
    if (const auto* random = churn->find("random")) {
      const auto& r = random->as_object("churn.random");
      check_keys(r, "churn.random",
                 {"arrivals", "hold_min", "hold_max", "first_task",
                  "threshold_scale"});
      s.churn.random_arrivals =
          static_cast<int>(get_int(r, "arrivals", "churn.random", 0));
      s.churn.hold_min = static_cast<Tick>(
          get_int(r, "hold_min", "churn.random", s.churn.hold_min));
      s.churn.hold_max = static_cast<Tick>(
          get_int(r, "hold_max", "churn.random", s.churn.hold_max));
      s.churn.first_task = static_cast<TaskId>(
          get_int(r, "first_task", "churn.random", s.churn.first_task));
      s.churn.threshold_scale = get_number(r, "threshold_scale",
                                           "churn.random",
                                           s.churn.threshold_scale);
    }
  }

  if (const auto* phases = root.find("phases")) {
    const auto& arr = phases->as_array("phases");
    for (std::size_t i = 0; i < arr.size(); ++i) {
      const std::string where = "phases[" + std::to_string(i) + "]";
      const auto& obj = arr[i].as_object(where);
      check_keys(obj, where, {"name", "start", "end", "tolerance"});
      ScenarioPhase phase;
      const auto name_it = obj.find("name");
      if (name_it == obj.end()) fail(where + ": missing 'name'");
      phase.name = name_it->second.as_string(where + ".name");
      phase.start = static_cast<Tick>(get_int(obj, "start", where, 0));
      phase.end = static_cast<Tick>(get_int(obj, "end", where, 0));
      phase.tolerance = get_number(obj, "tolerance", where, -1.0);
      s.phases.push_back(std::move(phase));
    }
  }

  if (const auto* invariants = root.find("invariants")) {
    const auto& obj = invariants->as_object("invariants");
    check_keys(obj, "invariants",
               {"tolerance", "net_tolerance", "allowance_epsilon",
                "stuck_factor"});
    s.invariants.tolerance =
        get_number(obj, "tolerance", "invariants", s.invariants.tolerance);
    s.invariants.net_tolerance = get_number(obj, "net_tolerance",
                                            "invariants",
                                            s.invariants.net_tolerance);
    s.invariants.allowance_epsilon =
        get_number(obj, "allowance_epsilon", "invariants",
                   s.invariants.allowance_epsilon);
    s.invariants.stuck_factor = static_cast<int>(
        get_int(obj, "stuck_factor", "invariants",
                s.invariants.stuck_factor));
  }

  s.validate();
  return s;
}

Scenario Scenario::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open scenario file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return from_json_text(buffer.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void Scenario::validate() const {
  if (name.empty()) fail("empty name");
  if (monitors < 1) fail("monitors >= 1");
  if (ticks < 1) fail("ticks >= 1");
  if (tick_micros < 1) fail("tick_micros >= 1");
  if (snapshot_every < 0) fail("snapshot_every >= 0");
  task.validate();
  if (threshold_selectivity >= 0.0 &&
      (threshold_selectivity <= 0.0 || threshold_selectivity >= 100.0))
    fail("task.threshold_selectivity in (0, 100)");
  if (base.theta <= 0.0 || base.theta > 1.0)
    fail("workload.base.theta in (0, 1]");
  if (base.sigma < 0.0) fail("workload.base.sigma >= 0");
  if (base.lo >= base.hi) fail("workload.base: lo < hi");

  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& layer = layers[i];
    const std::string where = "workload.layers[" + std::to_string(i) + "]";
    for (std::size_t m : layer.monitors) {
      if (m >= monitors)
        fail(where + ": monitor index " + std::to_string(m) +
             " out of range (monitors=" + std::to_string(monitors) + ")");
    }
    switch (layer.kind) {
      case WorkloadLayer::Kind::kDiurnal:
        if (layer.period < 2) fail(where + ": diurnal period >= 2");
        if (layer.depth < 0.0 || layer.depth >= 1.0)
          fail(where + ": diurnal depth in [0, 1)");
        break;
      case WorkloadLayer::Kind::kBurst:
        if (layer.burst.mean_gap <= 0.0) fail(where + ": mean_gap > 0");
        if (layer.burst.ramp < 1 || layer.burst.plateau < 0 ||
            layer.burst.decay < 1)
          fail(where + ": burst ramp/decay >= 1, plateau >= 0");
        if (layer.burst.peak_lo > layer.burst.peak_hi)
          fail(where + ": burst peak_lo <= peak_hi");
        if (layer.scale <= 0.0) fail(where + ": burst scale > 0");
        break;
      case WorkloadLayer::Kind::kSpike:
        if (layer.at < 0 || layer.len < 1 || layer.at + layer.len > ticks)
          fail(where + ": spike window [at, at+len) must lie in [0, ticks)");
        break;
      case WorkloadLayer::Kind::kRegimeShift:
        if (layer.at < 0 || layer.at >= ticks)
          fail(where + ": regime_shift at in [0, ticks)");
        if (layer.sigma < 0.0) fail(where + ": regime_shift sigma >= 0");
        break;
    }
  }

  // Fault windows: known profiles, in-range bounds and targets, and no
  // same-profile overlap on one monitor. Overlap detection delegates to
  // FaultPlan::validate — the exact rule the simulator's fault plans
  // already enforce — by expanding each profile's windows to per-monitor
  // outage rows.
  std::map<std::string, FaultPlan> per_profile;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto& window = faults[i];
    const std::string where = "faults[" + std::to_string(i) + "]";
    const FaultProfile* profile = find_fault_profile(window.profile);
    if (!profile)
      fail(where + ": unknown profile '" + window.profile + "' (" +
           known_profiles_hint() + ")");
    if (window.start < 0 || window.end > ticks || window.end <= window.start)
      fail(where + ": window [start, end) must be non-empty and lie in [0, " +
           std::to_string(ticks) + ")");
    for (std::size_t m : window.monitors) {
      if (m >= monitors)
        fail(where + ": monitor index " + std::to_string(m) +
             " out of range (monitors=" + std::to_string(monitors) + ")");
    }
    auto& plan = per_profile[window.profile];
    if (window.monitors.empty()) {
      for (std::size_t m = 0; m < monitors; ++m)
        plan.outages.push_back({m, window.start, window.end});
    } else {
      for (std::size_t m : window.monitors)
        plan.outages.push_back({m, window.start, window.end});
    }
  }
  for (const auto& [profile, plan] : per_profile) {
    try {
      plan.validate();
    } catch (const std::invalid_argument&) {
      fail("faults: overlapping '" + profile +
           "' windows on one monitor (merge or split the windows)");
    }
  }

  // Churn: boot task id 0 is reserved; explicit ids must stay clear of the
  // random-arrival id range; removes/updates must name plausible targets.
  if (churn.random_arrivals < 0) fail("churn.random.arrivals >= 0");
  if (churn.random_arrivals > 0) {
    if (churn.hold_min < 1 || churn.hold_max < churn.hold_min)
      fail("churn.random: 1 <= hold_min <= hold_max");
    if (churn.first_task == 0) fail("churn.random.first_task != 0 (boot id)");
    if (churn.threshold_scale <= 0.0) fail("churn.random.threshold_scale > 0");
  }
  for (std::size_t i = 0; i < churn.events.size(); ++i) {
    const auto& event = churn.events[i];
    const std::string where = "churn.events[" + std::to_string(i) + "]";
    if (event.task == 0) fail(where + ": task id 0 is the reserved boot task");
    if (event.tick < 0 || event.tick >= ticks)
      fail(where + ": tick in [0, ticks)");
    if (event.op != ChurnSpec::Event::Op::kRemove &&
        event.threshold_scale <= 0.0)
      fail(where + ": threshold_scale > 0");
    if (churn.random_arrivals > 0 &&
        event.task >= churn.first_task &&
        event.task < churn.first_task +
                         static_cast<TaskId>(churn.random_arrivals))
      fail(where + ": task id collides with churn.random id range [" +
           std::to_string(churn.first_task) + ", " +
           std::to_string(churn.first_task + churn.random_arrivals) + ")");
  }

  // Phases must tile [0, ticks) in order — gaps or overlaps would silently
  // skip (or double-score) run slices.
  if (!phases.empty()) {
    if (phases.front().start != 0) fail("phases[0].start must be 0");
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const auto& phase = phases[i];
      const std::string where = "phases[" + std::to_string(i) + "]";
      if (phase.name.empty()) fail(where + ": empty name");
      if (phase.end <= phase.start) fail(where + ": end > start required");
      if (phase.end > ticks)
        fail(where + ": end " + std::to_string(phase.end) +
             " out of range (ticks=" + std::to_string(ticks) + ")");
      if (i > 0 && phase.start != phases[i - 1].end)
        fail(where + ": start must equal phases[" + std::to_string(i - 1) +
             "].end (phases tile the run)");
      if (phase.tolerance >= 0.0 && phase.tolerance > 1.0)
        fail(where + ": tolerance in [0, 1]");
    }
    if (phases.back().end != ticks)
      fail("phases must cover the full run (last end == ticks)");
  }

  if (invariants.tolerance < 0.0 || invariants.tolerance > 1.0)
    fail("invariants.tolerance in [0, 1]");
  if (invariants.net_tolerance < 0.0 || invariants.net_tolerance > 1.0)
    fail("invariants.net_tolerance in [0, 1]");
  if (invariants.allowance_epsilon < 0.0)
    fail("invariants.allowance_epsilon >= 0");
  if (invariants.stuck_factor < 1) fail("invariants.stuck_factor >= 1");
}

Scenario Scenario::scaled(Tick target_ticks) const {
  if (target_ticks < 1) fail("scaled: target_ticks >= 1");
  if (ticks <= target_ticks) return *this;
  Scenario out = *this;
  const auto scale = [&](Tick t) -> Tick {
    return static_cast<Tick>((static_cast<std::int64_t>(t) * target_ticks) /
                             ticks);
  };
  const auto scale_min1 = [&](Tick t) -> Tick {
    return std::max<Tick>(1, scale(t));
  };
  out.ticks = target_ticks;
  out.task.updating_period = scale_min1(task.updating_period);
  for (auto& layer : out.layers) {
    switch (layer.kind) {
      case WorkloadLayer::Kind::kDiurnal:
        layer.period = std::max<Tick>(2, scale(layer.period));
        layer.phase = scale(layer.phase);
        break;
      case WorkloadLayer::Kind::kBurst:
        layer.burst.mean_gap = layer.burst.mean_gap *
                               static_cast<double>(target_ticks) /
                               static_cast<double>(ticks);
        layer.burst.ramp = scale_min1(layer.burst.ramp);
        layer.burst.plateau = scale(layer.burst.plateau);
        layer.burst.decay = scale_min1(layer.burst.decay);
        break;
      case WorkloadLayer::Kind::kSpike:
        layer.at = scale(layer.at);
        layer.len = scale_min1(layer.len);
        if (layer.at + layer.len > target_ticks)
          layer.at = target_ticks - layer.len;
        break;
      case WorkloadLayer::Kind::kRegimeShift:
        layer.at = std::min(scale(layer.at), target_ticks - 1);
        break;
    }
  }
  std::vector<FaultWindow> windows;
  for (auto& window : out.faults) {
    window.start = scale(window.start);
    window.end = scale(window.end);
    if (window.end > window.start) windows.push_back(std::move(window));
  }
  out.faults = std::move(windows);
  for (auto& event : out.churn.events)
    event.tick = std::min(scale(event.tick), target_ticks - 1);
  out.churn.hold_min = scale_min1(churn.hold_min);
  out.churn.hold_max = std::max(out.churn.hold_min, scale(churn.hold_max));
  std::vector<ScenarioPhase> scaled_phases;
  for (auto& phase : out.phases) {
    phase.start = scale(phase.start);
    phase.end = scale(phase.end);
    if (phase.end > phase.start) scaled_phases.push_back(std::move(phase));
  }
  if (!scaled_phases.empty()) {
    scaled_phases.front().start = 0;
    for (std::size_t i = 1; i < scaled_phases.size(); ++i)
      scaled_phases[i].start = scaled_phases[i - 1].end;
    scaled_phases.back().end = target_ticks;
  }
  out.phases = std::move(scaled_phases);
  if (out.snapshot_every > 0)
    out.snapshot_every = scale_min1(out.snapshot_every);
  out.validate();
  return out;
}

std::vector<TimeSeries> build_monitor_series(const Scenario& scenario) {
  scenario.validate();
  Rng root(scenario.seed);
  std::vector<TimeSeries> series;
  series.reserve(scenario.monitors);

  for (std::size_t m = 0; m < scenario.monitors; ++m) {
    // One fork per monitor, drawn in monitor order: monitor m's stream
    // never depends on how many monitors follow it.
    Rng rng = root.fork();

    const auto targets = [&](const WorkloadLayer& layer) {
      return layer.monitors.empty() ||
             std::find(layer.monitors.begin(), layer.monitors.end(), m) !=
                 layer.monitors.end();
    };

    OuProcess ou(scenario.base);
    // Per-monitor burst processes, one per burst layer (independent
    // episodes per node; correlated spikes use the `spike` layer).
    struct ActiveBurst {
      const WorkloadLayer* layer;
      BurstProcess process;
    };
    std::vector<ActiveBurst> bursts;
    for (const auto& layer : scenario.layers) {
      if (layer.kind == WorkloadLayer::Kind::kBurst && targets(layer))
        bursts.push_back({&layer, BurstProcess(layer.burst, rng)});
    }
    // Regime shifts targeting this monitor, ascending activation tick.
    std::vector<const WorkloadLayer*> shifts;
    for (const auto& layer : scenario.layers) {
      if (layer.kind == WorkloadLayer::Kind::kRegimeShift && targets(layer))
        shifts.push_back(&layer);
    }
    std::sort(shifts.begin(), shifts.end(),
              [](const WorkloadLayer* a, const WorkloadLayer* b) {
                return a->at < b->at;
              });
    std::size_t next_shift = 0;

    TimeSeries out(static_cast<std::size_t>(scenario.ticks));
    for (Tick t = 0; t < scenario.ticks; ++t) {
      while (next_shift < shifts.size() && shifts[next_shift]->at <= t) {
        // Re-target the mean-reverting base in place: keep the current
        // level (no teleport) but revert toward the new regime.
        OuProcess::Options opts = scenario.base;
        opts.mean = shifts[next_shift]->mean;
        opts.sigma = shifts[next_shift]->sigma;
        opts.start = ou.current();
        ou = OuProcess(opts);
        ++next_shift;
      }
      double v = ou.next(rng);
      for (const auto& layer : scenario.layers) {
        if (layer.kind == WorkloadLayer::Kind::kDiurnal && targets(layer))
          v *= DiurnalCurve(layer.period, layer.depth, layer.phase)
                   .multiplier(t);
      }
      for (auto& burst : bursts)
        v += burst.layer->scale * burst.process.next(rng);
      for (const auto& layer : scenario.layers) {
        if (layer.kind == WorkloadLayer::Kind::kSpike && targets(layer) &&
            t >= layer.at && t < layer.at + layer.len)
          v += layer.value;
      }
      out[static_cast<std::size_t>(t)] = v;
    }
    series.push_back(std::move(out));
  }
  return series;
}

TaskSpec resolve_boot_task(const Scenario& scenario,
                           const TimeSeries& aggregate) {
  TaskSpec spec = scenario.task;
  spec.global_threshold =
      scenario.threshold_selectivity >= 0.0
          ? aggregate.threshold_for_selectivity(scenario.threshold_selectivity)
          : scenario.threshold;
  return spec;
}

std::vector<TaskChurnEvent> build_churn_events(const Scenario& scenario,
                                               const TaskSpec& boot) {
  std::vector<TaskChurnEvent> events;
  for (const auto& event : scenario.churn.events) {
    TaskSpec spec = boot;
    spec.global_threshold = boot.global_threshold * event.threshold_scale;
    switch (event.op) {
      case ChurnSpec::Event::Op::kAdd:
        events.push_back(
            {TaskChurnEvent::Kind::kArrive, event.tick, event.task, spec});
        break;
      case ChurnSpec::Event::Op::kRemove:
        events.push_back(
            {TaskChurnEvent::Kind::kDepart, event.tick, event.task, {}});
        break;
      case ChurnSpec::Event::Op::kUpdate:
        // The sim mirror of UpdateTask: retire and re-add at the same tick
        // (canonical order applies the depart first). Epoch numbering
        // differs from the wire runtime (two epochs instead of one), but
        // monotonicity — the invariant — is identical.
        events.push_back(
            {TaskChurnEvent::Kind::kDepart, event.tick, event.task, {}});
        events.push_back(
            {TaskChurnEvent::Kind::kArrive, event.tick, event.task, spec});
        break;
    }
  }
  if (scenario.churn.random_arrivals > 0) {
    ChurnScheduleOptions options;
    // Independent stream from the workload composition: same scenario seed,
    // fixed domain-separation constant.
    options.seed = scenario.seed ^ 0xC4CEB9FE1A85EC53ULL;
    options.ticks = scenario.ticks;
    options.arrivals = scenario.churn.random_arrivals;
    options.first_task = scenario.churn.first_task;
    options.hold_min = scenario.churn.hold_min;
    options.hold_max = scenario.churn.hold_max;
    options.spec = boot;
    options.spec.global_threshold =
        boot.global_threshold * scenario.churn.threshold_scale;
    auto random = make_churn_schedule(options);
    events.insert(events.end(), random.begin(), random.end());
  }
  return canonical_churn_order(std::move(events));
}

SimFaultModel::SimFaultModel(const Scenario& scenario) {
  for (const auto& window : scenario.faults) {
    const FaultProfile* profile = find_fault_profile(window.profile);
    if (!profile) fail("SimFaultModel: unknown profile " + window.profile);
    if (profile->outage) {
      if (window.monitors.empty()) {
        for (std::size_t m = 0; m < scenario.monitors; ++m)
          outages_.push_back({m, window.start, window.end});
      } else {
        for (std::size_t m : window.monitors)
          outages_.push_back({m, window.start, window.end});
      }
    }
    if (profile->report_loss > 0.0 || profile->response_loss > 0.0) {
      loss_windows_.push_back({window.start, window.end,
                               profile->report_loss,
                               profile->response_loss});
    }
  }
}

double SimFaultModel::report_loss_at(Tick t) const {
  double survive = 1.0;
  for (const auto& w : loss_windows_) {
    if (t >= w.start && t < w.end) survive *= 1.0 - w.report_loss;
  }
  return 1.0 - survive;
}

double SimFaultModel::response_loss_at(Tick t) const {
  double survive = 1.0;
  for (const auto& w : loss_windows_) {
    if (t >= w.start && t < w.end) survive *= 1.0 - w.response_loss;
  }
  return 1.0 - survive;
}

bool SimFaultModel::in_outage(std::size_t monitor, Tick t) const {
  for (const auto& outage : outages_) {
    if (outage.monitor == monitor && t >= outage.start && t < outage.end)
      return true;
  }
  return false;
}

NetFaultPlan build_net_fault_plan(const Scenario& scenario) {
  NetFaultPlan plan;
  plan.message_loss.seed = scenario.seed;
  for (const auto& window : scenario.faults) {
    const FaultProfile* profile = find_fault_profile(window.profile);
    if (!profile) fail("build_net_fault_plan: unknown " + window.profile);
    auto& loss = plan.message_loss;
    loss.violation_report_loss =
        std::max(loss.violation_report_loss, profile->report_loss);
    loss.poll_response_loss =
        std::max(loss.poll_response_loss, profile->response_loss);
    plan.heartbeat_loss = std::max(plan.heartbeat_loss,
                                   profile->heartbeat_loss);
    if (profile->delay_prob > plan.delay_prob) {
      plan.delay_prob = profile->delay_prob;
      plan.delay_ms = profile->delay_ms;
    }
    plan.partial_write_prob =
        std::max(plan.partial_write_prob, profile->partial_write_prob);
    if (profile->disconnect_after_frames > 0) {
      plan.disconnect_after_frames =
          plan.disconnect_after_frames < 0
              ? profile->disconnect_after_frames
              : std::min(plan.disconnect_after_frames,
                         profile->disconnect_after_frames);
      plan.max_disconnects += profile->disconnects_per_window;
    }
  }
  plan.validate();
  return plan;
}

}  // namespace volley::scenario
