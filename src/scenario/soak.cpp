#include "scenario/soak.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "control/task_registry.h"
#include "core/error_allocation.h"
#include "core/monitor.h"
#include "net/chaos_proxy.h"
#include "net/coordinator_node.h"
#include "net/framing.h"
#include "net/messages.h"
#include "net/monitor_node.h"
#include "net/socket.h"
#include "sim/experiment.h"

namespace volley::scenario {

namespace {

// --- deterministic JSON rendering ------------------------------------------

std::string fmt_double(double v) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.9g", v);
  return buf.data();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void append_check(std::string& out, const InvariantCheck& check) {
  out += "{\"name\":\"" + json_escape(check.name) + "\",\"pass\":";
  out += check.pass ? "true" : "false";
  out += ",\"detail\":\"" + json_escape(check.detail) + "\"}";
}

// --- phase bookkeeping ------------------------------------------------------

std::vector<ScenarioPhase> effective_phases(const Scenario& scenario) {
  if (!scenario.phases.empty()) return scenario.phases;
  return {{"run", 0, scenario.ticks, -1.0}};
}

double phase_tolerance(const Scenario& scenario, const ScenarioPhase& phase,
                       bool net) {
  // Net mode always judges against net_tolerance: per-phase tolerances are
  // tuned for the simulator's windowed faults, while the chaos proxy applies
  // the union fault plan to the whole run (scenario.h, build_net_fault_plan),
  // so sim-phase budgets carry no meaning on the wire.
  if (net) return scenario.invariants.net_tolerance;
  return phase.tolerance >= 0.0 ? phase.tolerance
                                : scenario.invariants.tolerance;
}

/// Episode miss rate over the window [begin, end): the fraction of ground
/// truth alert episodes overlapping the window in which no overlap tick was
/// detected (the same windowed rule as run_dynamic_tasks scoring).
struct WindowScore {
  std::int64_t episodes{0};
  std::int64_t detected{0};
  double miss_rate() const {
    return episodes == 0
               ? 0.0
               : 1.0 - static_cast<double>(detected) /
                           static_cast<double>(episodes);
  }
};

WindowScore score_episodes(const GroundTruth& truth,
                           std::span<const char> detected, Tick begin,
                           Tick end) {
  WindowScore score;
  for (const auto& [start, stop] : truth.episodes) {
    const Tick lo = std::max(start, begin);
    const Tick hi = std::min(stop, end);
    if (lo >= hi) continue;
    ++score.episodes;
    for (Tick t = lo; t < hi; ++t) {
      if (detected[static_cast<std::size_t>(t)]) {
        ++score.detected;
        break;
      }
    }
  }
  return score;
}

/// Writes the report and snapshot artifacts; throws std::runtime_error on
/// I/O failure (a soak harness must not silently lose its evidence).
class ArtifactWriter {
 public:
  ArtifactWriter(const std::string& dir, const std::string& scenario,
                 const std::string& mode) {
    if (dir.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
      throw std::runtime_error("soak: cannot create artifact dir '" + dir +
                               "': " + ec.message());
    base_ = dir + "/" + scenario + "-" + mode;
    snapshots_.open(base_ + "-snapshots.jsonl",
                    std::ios::binary | std::ios::trunc);
    if (!snapshots_)
      throw std::runtime_error("soak: cannot write " + base_ +
                               "-snapshots.jsonl");
  }

  bool enabled() const { return !base_.empty(); }

  void snapshot(const std::string& line) {
    if (!enabled()) return;
    snapshots_ << line << '\n';
    if (!snapshots_)
      throw std::runtime_error("soak: snapshot write failed (" + base_ + ")");
  }

  void report(const std::string& json) {
    if (!enabled()) return;
    std::ofstream out(base_ + "-report.json",
                      std::ios::binary | std::ios::trunc);
    out << json << '\n';
    if (!out)
      throw std::runtime_error("soak: cannot write " + base_ +
                               "-report.json");
  }

 private:
  std::string base_;
  std::ofstream snapshots_;
};

void check_epochs_monotone(SoakReport& report) {
  InvariantCheck check;
  check.name = "epochs_monotone";
  std::string bad;
  for (std::size_t i = 1; i < report.epochs.size(); ++i) {
    if (report.epochs[i] <= report.epochs[i - 1]) {
      bad = "epoch " + std::to_string(report.epochs[i]) + " after " +
            std::to_string(report.epochs[i - 1]);
      break;
    }
  }
  check.pass = bad.empty();
  check.detail = check.pass ? std::to_string(report.epochs.size()) +
                                  " mutations, strictly increasing"
                            : bad;
  report.global_checks.push_back(std::move(check));
}

}  // namespace

std::string SoakReport::to_json() const {
  std::string out = "{";
  out += "\"scenario\":\"" + json_escape(scenario) + "\",";
  out += "\"mode\":\"" + mode + "\",";
  out += "\"seed\":" + std::to_string(seed) + ",";
  out += "\"ticks\":" + std::to_string(ticks) + ",";
  out += "\"monitors\":" + std::to_string(monitors) + ",";
  out += "\"boot_threshold\":" + fmt_double(boot_threshold) + ",";
  out += "\"passed\":";
  out += passed() ? "true" : "false";
  out += ",\"epochs\":[";
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(epochs[i]);
  }
  out += "],\"phases\":[";
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const auto& phase = phases[p];
    if (p > 0) out += ',';
    out += "{\"phase\":\"" + json_escape(phase.phase) + "\",";
    out += "\"start\":" + std::to_string(phase.start) + ",";
    out += "\"end\":" + std::to_string(phase.end) + ",";
    out += "\"ops\":" + std::to_string(phase.ops) + ",";
    out += "\"local_violations\":" + std::to_string(phase.local_violations) +
           ",";
    out += "\"global_polls\":" + std::to_string(phase.global_polls) + ",";
    out += "\"reallocations\":" + std::to_string(phase.reallocations) + ",";
    out += "\"lost_reports\":" + std::to_string(phase.lost_reports) + ",";
    out += "\"lost_responses\":" + std::to_string(phase.lost_responses) + ",";
    out += "\"outage_monitor_ticks\":" +
           std::to_string(phase.outage_monitor_ticks) + ",";
    out += "\"stale_polls\":" + std::to_string(phase.stale_polls) + ",";
    out += "\"alerts\":" + std::to_string(phase.alerts) + ",";
    out += "\"passed\":";
    out += phase.passed() ? "true" : "false";
    out += ",\"checks\":[";
    for (std::size_t c = 0; c < phase.checks.size(); ++c) {
      if (c > 0) out += ',';
      append_check(out, phase.checks[c]);
    }
    out += "]}";
  }
  out += "],\"global_checks\":[";
  for (std::size_t c = 0; c < global_checks.size(); ++c) {
    if (c > 0) out += ',';
    append_check(out, global_checks[c]);
  }
  out += "]}";
  return out;
}

// --- sim mode ---------------------------------------------------------------

namespace {

/// One live task instance of the sim soak loop.
struct SoakTask {
  TaskSpec spec;
  std::uint64_t epoch{0};
  Tick arrived{0};
  std::vector<std::unique_ptr<Monitor>> monitors;
  std::vector<double> allocation;
  std::vector<double> last_known;
  std::vector<char> detected;  // full run length
  std::unique_ptr<AllowanceAllocator> allocator;
  Tick next_update{0};
  const GroundTruth* truth{nullptr};
};

struct SimCounters {
  std::int64_t ops{0};  // retired tasks' ops folded in
  std::int64_t local_violations{0};
  std::int64_t global_polls{0};
  std::int64_t reallocations{0};
  std::int64_t lost_reports{0};
  std::int64_t lost_responses{0};
  std::int64_t outage_monitor_ticks{0};
  std::int64_t stale_polls{0};
  std::int64_t alerts{0};
};

std::int64_t live_ops(const std::map<TaskId, SoakTask>& live) {
  std::int64_t ops = 0;
  for (const auto& [id, task] : live)
    for (const auto& m : task.monitors) ops += m->total_ops();
  return ops;
}

}  // namespace

SoakReport run_scenario_sim(const Scenario& input,
                            const SoakOptions& options) {
  const Scenario scenario =
      options.quick ? input.scaled(options.quick_ticks) : input;
  scenario.validate();

  const std::vector<TimeSeries> series = build_monitor_series(scenario);
  const TimeSeries aggregate = TimeSeries::sum(series);
  const TaskSpec boot = resolve_boot_task(scenario, aggregate);
  const SimFaultModel faults(scenario);
  const std::vector<ScenarioPhase> phases = effective_phases(scenario);
  const std::size_t n = scenario.monitors;

  // Churn schedule: the boot task arrives at tick 0 ahead of everything
  // else, then the scenario's explicit + seed-derived events.
  std::vector<TaskChurnEvent> events;
  events.push_back({TaskChurnEvent::Kind::kArrive, 0, 0, boot});
  {
    auto churn = build_churn_events(scenario, boot);
    events.insert(events.end(), churn.begin(), churn.end());
  }
  events = canonical_churn_order(std::move(events));

  ArtifactWriter artifacts(options.artifact_dir, scenario.name, "sim");

  SoakReport report;
  report.scenario = scenario.name;
  report.mode = "sim";
  report.seed = scenario.seed;
  report.ticks = scenario.ticks;
  report.monitors = n;
  report.boot_threshold = boot.global_threshold;

  control::TaskRegistry registry;
  std::vector<std::unique_ptr<SeriesSource>> sources;
  sources.reserve(n);
  for (const auto& s : series)
    sources.push_back(std::make_unique<SeriesSource>(s));

  // Ground truth per distinct threshold (churned tasks share thresholds).
  std::map<double, GroundTruth> truths;
  const auto truth_for = [&](double threshold) -> const GroundTruth& {
    auto it = truths.find(threshold);
    if (it == truths.end()) {
      it = truths
               .emplace(threshold,
                        GroundTruth::from_series(aggregate, threshold))
               .first;
    }
    return it->second;
  };

  std::map<TaskId, SoakTask> live;
  SimCounters counters;  // cumulative over the whole run
  // All fault draws come from one stream consumed in (tick, task id,
  // monitor id) order — fixed by the canonical churn order and the sorted
  // task map, independent of anything external.
  Rng rng(scenario.seed ^ 0x9E3779B97F4A7C15ULL);

  const auto make_task = [&](const TaskSpec& spec, std::uint64_t epoch,
                             Tick arrived) {
    SoakTask task;
    task.spec = spec;
    task.epoch = epoch;
    task.arrived = arrived;
    const double share = spec.error_allowance / static_cast<double>(n);
    const auto thresholds = split_threshold(spec.global_threshold, n);
    for (std::size_t i = 0; i < n; ++i) {
      task.monitors.push_back(std::make_unique<Monitor>(
          static_cast<MonitorId>(i), *sources[i],
          spec.sampler_options(share), thresholds[i]));
    }
    task.allocation.assign(n, share);
    task.last_known.assign(n, 0.0);
    task.detected.assign(static_cast<std::size_t>(scenario.ticks), 0);
    task.allocator = std::make_unique<AdaptiveAllocation>();
    task.next_update = arrived + spec.updating_period;
    task.truth = &truth_for(spec.global_threshold);
    return task;
  };

  // Per-phase state: counters + per-task ops/detected baselines at entry.
  std::size_t phase_index = 0;
  SimCounters phase_start_counters;
  std::int64_t phase_start_ops = 0;
  // (task id, monitor) ops at phase entry; tasks arriving mid-phase are
  // added on arrival.
  std::map<TaskId, std::vector<std::int64_t>> phase_ops_baseline;
  const auto baseline_task = [&](TaskId id, const SoakTask& task) {
    auto& ops = phase_ops_baseline[id];
    ops.clear();
    for (const auto& m : task.monitors) ops.push_back(m->total_ops());
  };

  const auto begin_phase = [&]() {
    phase_start_counters = counters;
    phase_start_ops = counters.ops + live_ops(live);
    phase_ops_baseline.clear();
    for (const auto& [id, task] : live) baseline_task(id, task);
  };

  const auto emit_snapshot = [&](Tick t) {
    if (!artifacts.enabled()) return;
    std::string line = "{\"tick\":" + std::to_string(t);
    line += ",\"tasks\":" + std::to_string(live.size());
    line += ",\"ops\":" + std::to_string(counters.ops + live_ops(live));
    line += ",\"global_polls\":" + std::to_string(counters.global_polls);
    line += ",\"alerts\":" + std::to_string(counters.alerts);
    line += ",\"lost_reports\":" + std::to_string(counters.lost_reports);
    line += ",\"registry_version\":" + std::to_string(registry.version());
    line += "}";
    artifacts.snapshot(line);
  };

  const auto end_phase = [&](const ScenarioPhase& phase) {
    PhaseReport out;
    out.phase = phase.name;
    out.start = phase.start;
    out.end = phase.end;
    out.ops = counters.ops + live_ops(live) - phase_start_ops;
    out.local_violations =
        counters.local_violations - phase_start_counters.local_violations;
    out.global_polls =
        counters.global_polls - phase_start_counters.global_polls;
    out.reallocations =
        counters.reallocations - phase_start_counters.reallocations;
    out.lost_reports =
        counters.lost_reports - phase_start_counters.lost_reports;
    out.lost_responses =
        counters.lost_responses - phase_start_counters.lost_responses;
    out.outage_monitor_ticks = counters.outage_monitor_ticks -
                               phase_start_counters.outage_monitor_ticks;
    out.stale_polls = counters.stale_polls - phase_start_counters.stale_polls;
    out.alerts = counters.alerts - phase_start_counters.alerts;

    const double tolerance = phase_tolerance(scenario, phase, false);

    // error_budget: every live task instance, over phase∩lifetime.
    {
      InvariantCheck check;
      check.name = "error_budget";
      std::string detail;
      for (const auto& [id, task] : live) {
        const Tick lo = std::max(phase.start, task.arrived);
        const Tick hi = phase.end;
        const Tick min_window = static_cast<Tick>(
            scenario.invariants.stuck_factor) * task.spec.max_interval;
        if (hi - lo < min_window) {
          detail += "task " + std::to_string(id) + ": skipped (window " +
                    std::to_string(hi - lo) + " < " +
                    std::to_string(min_window) + "); ";
          continue;
        }
        const auto score = score_episodes(*task.truth, task.detected, lo, hi);
        const double budget = task.spec.error_allowance + tolerance;
        const bool ok = score.miss_rate() <= budget;
        detail += "task " + std::to_string(id) + ": miss=" +
                  fmt_double(score.miss_rate()) + " (" +
                  std::to_string(score.detected) + "/" +
                  std::to_string(score.episodes) + " episodes) budget=" +
                  fmt_double(budget) + "; ";
        if (!ok) check.pass = false;
      }
      check.detail = detail.empty() ? "no live tasks" : detail;
      out.checks.push_back(std::move(check));
    }

    // allowance_conservation: per live task, sum(allocation) == err.
    {
      InvariantCheck check;
      check.name = "allowance_conservation";
      std::string detail;
      for (const auto& [id, task] : live) {
        double sum = 0.0;
        for (double a : task.allocation) sum += a;
        const double drift = std::abs(sum - task.spec.error_allowance);
        if (drift > scenario.invariants.allowance_epsilon) {
          check.pass = false;
          detail += "task " + std::to_string(id) + ": drift=" +
                    fmt_double(drift) + "; ";
        }
      }
      check.detail = detail.empty()
                         ? std::to_string(live.size()) + " task(s) conserve"
                         : detail;
      out.checks.push_back(std::move(check));
    }

    // no_stuck_monitors: sampling progress for every monitor with enough
    // non-outage room in the phase.
    {
      InvariantCheck check;
      check.name = "no_stuck_monitors";
      std::string detail;
      for (const auto& [id, task] : live) {
        const auto baseline = phase_ops_baseline.find(id);
        if (baseline == phase_ops_baseline.end()) continue;
        const Tick lo = std::max(phase.start, task.arrived);
        const Tick min_window = static_cast<Tick>(
            scenario.invariants.stuck_factor) * task.spec.max_interval;
        if (phase.end - lo < min_window) continue;
        for (std::size_t i = 0; i < n; ++i) {
          Tick available = 0;
          for (Tick t = lo; t < phase.end; ++t)
            if (!faults.in_outage(i, t)) ++available;
          if (available <= task.spec.max_interval) continue;  // mostly down
          if (task.monitors[i]->total_ops() <= baseline->second[i]) {
            check.pass = false;
            detail += "task " + std::to_string(id) + " monitor " +
                      std::to_string(i) + " made no progress; ";
          }
        }
      }
      check.detail = detail.empty() ? "all monitors progressed" : detail;
      out.checks.push_back(std::move(check));
    }

    report.phases.push_back(std::move(out));
    emit_snapshot(phase.end);
  };

  std::size_t next_event = 0;
  begin_phase();
  for (Tick t = 0; t < scenario.ticks; ++t) {
    // Control-plane churn scheduled for this tick.
    while (next_event < events.size() && events[next_event].tick <= t) {
      const TaskChurnEvent& event = events[next_event++];
      if (event.kind == TaskChurnEvent::Kind::kArrive) {
        const auto result = registry.add(event.task, event.spec);
        if (!result.ok())
          throw std::invalid_argument("soak: churn add failed: " +
                                      result.error);
        report.epochs.push_back(result.epoch);
        auto task = make_task(event.spec, result.epoch, t);
        baseline_task(event.task, task);
        live.emplace(event.task, std::move(task));
      } else {
        const auto it = live.find(event.task);
        if (it == live.end())
          throw std::invalid_argument("soak: churn depart of unknown task " +
                                      std::to_string(event.task));
        const auto removed = registry.remove(event.task);
        if (!removed.ok())
          throw std::invalid_argument("soak: churn remove failed: " +
                                      removed.error);
        report.epochs.push_back(removed.epoch);
        for (const auto& m : it->second.monitors)
          counters.ops += m->total_ops();
        phase_ops_baseline.erase(event.task);
        live.erase(it);
      }
    }

    // Per-task tick: sampling, lossy reports, lossy polls, reallocation.
    for (auto& [id, task] : live) {
      int surviving_reports = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (faults.in_outage(i, t)) {
          ++counters.outage_monitor_ticks;
          continue;
        }
        Monitor& m = *task.monitors[i];
        if (!m.due(t)) continue;
        const auto outcome = m.step(t);
        task.last_known[i] = outcome.sample.value;
        if (outcome.local_violation) {
          ++counters.local_violations;
          if (rng.bernoulli(faults.report_loss_at(t))) {
            ++counters.lost_reports;
          } else {
            ++surviving_reports;
          }
        }
      }

      if (surviving_reports > 0) {
        ++counters.global_polls;
        bool stale = false;
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const bool down = faults.in_outage(i, t);
          const bool dropped =
              !down && rng.bernoulli(faults.response_loss_at(t));
          if (down || dropped) {
            if (dropped) ++counters.lost_responses;
            stale = true;
            sum += task.last_known[i];
            continue;
          }
          const auto outcome = task.monitors[i]->force_sample(t);
          task.last_known[i] = outcome.sample.value;
          sum += outcome.sample.value;
        }
        if (stale) ++counters.stale_polls;
        if (sum > task.spec.global_threshold) {
          task.detected[static_cast<std::size_t>(t)] = 1;
          ++counters.alerts;
        }
      }

      if (t >= task.next_update) {
        task.next_update = t + task.spec.updating_period;
        std::vector<CoordStats> stats;
        stats.reserve(n);
        for (auto& m : task.monitors) stats.push_back(m->drain_coord_stats());
        task.allocation = task.allocator->allocate(
            task.spec.error_allowance, task.allocation, stats);
        for (std::size_t i = 0; i < n; ++i)
          task.monitors[i]->set_error_allowance(task.allocation[i]);
        ++counters.reallocations;
      }
    }

    if (scenario.snapshot_every > 0 && t > 0 &&
        t % scenario.snapshot_every == 0)
      emit_snapshot(t);

    // Phase boundary: the phase [start, end) is scored once tick end-1 ran.
    if (t + 1 == phases[phase_index].end) {
      end_phase(phases[phase_index]);
      ++phase_index;
      if (phase_index < phases.size()) begin_phase();
    }
  }

  check_epochs_monotone(report);
  {
    InvariantCheck check;
    check.name = "registry_version_matches";
    const std::uint64_t expected =
        report.epochs.empty() ? 0 : report.epochs.back();
    check.pass = registry.version() == expected;
    check.detail = "version=" + std::to_string(registry.version()) +
                   " last_epoch=" + std::to_string(expected);
    report.global_checks.push_back(std::move(check));
  }

  artifacts.report(report.to_json());
  return report;
}

// --- net mode ---------------------------------------------------------------

namespace {

/// One scheduled control-plane RPC of the net soak run.
struct WireChurnOp {
  Tick tick{0};
  net::Message request;
  std::string label;
};

/// Control round trip on a fresh connection (the volleyctl exchange,
/// in-process). nullopt on transport failure.
std::optional<net::Message> control_round_trip(std::uint16_t port,
                                               const net::Message& request,
                                               int timeout_ms) {
  auto conn = TcpConnection::try_connect("127.0.0.1", port, timeout_ms);
  if (!conn) return std::nullopt;
  if (!conn->send_all(frame_payload(net::encode(request))))
    return std::nullopt;
  FrameReader reader;
  std::array<std::byte, 8192> buf;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto n = conn->recv_some(buf);
    if (!n) continue;
    if (*n == 0) break;
    reader.feed(std::span<const std::byte>(buf.data(), *n));
    if (auto payload = reader.next()) return net::decode(*payload);
  }
  return std::nullopt;
}

std::vector<WireChurnOp> build_wire_churn(const Scenario& scenario,
                                          const TaskSpec& boot) {
  std::vector<WireChurnOp> ops;
  for (const auto& event : scenario.churn.events) {
    TaskSpec spec = boot;
    spec.global_threshold = boot.global_threshold * event.threshold_scale;
    WireChurnOp op;
    op.tick = event.tick;
    switch (event.op) {
      case ChurnSpec::Event::Op::kAdd:
        op.request = net::AddTask{event.task, spec};
        op.label = "add " + std::to_string(event.task);
        break;
      case ChurnSpec::Event::Op::kRemove:
        op.request = net::RemoveTask{event.task};
        op.label = "remove " + std::to_string(event.task);
        break;
      case ChurnSpec::Event::Op::kUpdate:
        op.request = net::UpdateTask{event.task, spec};
        op.label = "update " + std::to_string(event.task);
        break;
    }
    ops.push_back(std::move(op));
  }
  if (scenario.churn.random_arrivals > 0) {
    ChurnScheduleOptions schedule;
    schedule.seed = scenario.seed ^ 0xC4CEB9FE1A85EC53ULL;
    schedule.ticks = scenario.ticks;
    schedule.arrivals = scenario.churn.random_arrivals;
    schedule.first_task = scenario.churn.first_task;
    schedule.hold_min = scenario.churn.hold_min;
    schedule.hold_max = scenario.churn.hold_max;
    schedule.spec = boot;
    schedule.spec.global_threshold =
        boot.global_threshold * scenario.churn.threshold_scale;
    for (const auto& event : make_churn_schedule(schedule)) {
      WireChurnOp op;
      op.tick = event.tick;
      if (event.kind == TaskChurnEvent::Kind::kArrive) {
        op.request = net::AddTask{event.task, event.spec};
        op.label = "add " + std::to_string(event.task);
      } else {
        op.request = net::RemoveTask{event.task};
        op.label = "remove " + std::to_string(event.task);
      }
      ops.push_back(std::move(op));
    }
  }
  std::stable_sort(ops.begin(), ops.end(),
                   [](const WireChurnOp& a, const WireChurnOp& b) {
                     return a.tick < b.tick;
                   });
  return ops;
}

}  // namespace

SoakReport run_scenario_net(const Scenario& input,
                            const SoakOptions& options) {
  const Scenario scenario =
      options.quick ? input.scaled(options.quick_ticks) : input;
  scenario.validate();

  const std::vector<TimeSeries> series = build_monitor_series(scenario);
  const TimeSeries aggregate = TimeSeries::sum(series);
  const TaskSpec boot = resolve_boot_task(scenario, aggregate);
  const std::vector<ScenarioPhase> phases = effective_phases(scenario);
  const std::size_t n = scenario.monitors;
  const std::vector<WireChurnOp> churn = build_wire_churn(scenario, boot);

  ArtifactWriter artifacts(options.artifact_dir, scenario.name, "net");

  SoakReport report;
  report.scenario = scenario.name;
  report.mode = "net";
  report.seed = scenario.seed;
  report.ticks = scenario.ticks;
  report.monitors = n;
  report.boot_threshold = boot.global_threshold;

  net::CoordinatorNodeOptions copt;
  copt.monitors = n;
  copt.global_threshold = boot.global_threshold;
  copt.error_allowance = boot.error_allowance;
  copt.adaptive_allocation = true;
  net::CoordinatorNode coordinator(copt);

  net::ChaosProxyOptions popt;
  popt.upstream_port = coordinator.port();
  popt.plan = build_net_fault_plan(scenario);
  net::ChaosProxy proxy(popt);

  std::vector<std::unique_ptr<SeriesSource>> sources;
  std::vector<std::unique_ptr<net::MonitorNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    sources.push_back(std::make_unique<SeriesSource>(series[i]));
    net::MonitorNodeOptions mopt;
    mopt.id = static_cast<MonitorId>(i);
    mopt.coordinator_port = proxy.port();
    mopt.local_threshold =
        boot.global_threshold / static_cast<double>(n);
    mopt.sampler = boot.sampler_options(boot.error_allowance /
                                        static_cast<double>(n));
    mopt.ticks = scenario.ticks;
    mopt.updating_period = boot.updating_period;
    mopt.tick_micros = scenario.tick_micros;
    nodes.push_back(std::make_unique<net::MonitorNode>(mopt, *sources[i]));
  }

  std::thread coord_thread([&coordinator] { coordinator.run(); });
  std::thread proxy_thread([&proxy] { proxy.run(); });
  std::vector<std::thread> monitor_threads;
  monitor_threads.reserve(nodes.size());
  for (auto& node : nodes)
    monitor_threads.emplace_back([&node] { node->run(); });

  // Churn driver: control RPCs go straight to the coordinator (the fault
  // plan is for the data plane; a dropped AddTask would make the epoch
  // record ambiguous). Ops fire on the scenario's tick schedule mapped to
  // the monitors' compressed wall clock.
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::pair<std::string, bool>> churn_outcomes;
  std::optional<net::TaskListReply> last_list;
  for (const auto& op : churn) {
    std::this_thread::sleep_until(
        wall_start + std::chrono::microseconds(
                         static_cast<std::int64_t>(op.tick) *
                         scenario.tick_micros));
    const auto reply = control_round_trip(coordinator.port(), op.request,
                                          2000);
    bool ok = false;
    if (reply) {
      if (const auto* control = std::get_if<net::ControlReply>(&*reply)) {
        ok = control->status == control::ControlStatus::kOk;
        if (ok) report.epochs.push_back(control->epoch);
      }
    }
    churn_outcomes.emplace_back(op.label, ok);
    if (artifacts.enabled()) {
      artifacts.snapshot("{\"churn\":\"" + json_escape(op.label) +
                         "\",\"tick\":" + std::to_string(op.tick) +
                         ",\"ok\":" + (ok ? "true" : "false") + "}");
    }
    if (const auto list_reply =
            control_round_trip(coordinator.port(), net::ListTasks{}, 2000)) {
      if (const auto* list = std::get_if<net::TaskListReply>(&*list_reply))
        last_list = *list;
    }
  }

  for (auto& t : monitor_threads) t.join();
  coord_thread.join();
  proxy.request_stop();
  proxy_thread.join();

  // Ground truth scoring: the coordinator's boot-task alerts, judged per
  // phase against the composed aggregate.
  const GroundTruth truth =
      GroundTruth::from_series(aggregate, boot.global_threshold);
  std::vector<char> detected(static_cast<std::size_t>(scenario.ticks), 0);
  for (const auto& alert : coordinator.alerts()) {
    if (alert.task == 0 && alert.tick >= 0 && alert.tick < scenario.ticks)
      detected[static_cast<std::size_t>(alert.tick)] = 1;
  }

  for (const auto& phase : phases) {
    PhaseReport out;
    out.phase = phase.name;
    out.start = phase.start;
    out.end = phase.end;
    for (const auto& alert : coordinator.alerts()) {
      if (alert.tick >= phase.start && alert.tick < phase.end) ++out.alerts;
    }

    const double tolerance = phase_tolerance(scenario, phase, true);
    InvariantCheck budget;
    budget.name = "error_budget";
    const Tick min_window =
        static_cast<Tick>(scenario.invariants.stuck_factor) *
        boot.max_interval;
    if (tolerance >= 1.0) {
      budget.detail = "skipped (net_tolerance disables the check)";
    } else if (phase.end - phase.start < min_window) {
      budget.detail = "skipped (phase shorter than " +
                      std::to_string(min_window) + " ticks)";
    } else {
      const auto score =
          score_episodes(truth, detected, phase.start, phase.end);
      const double cap = boot.error_allowance + tolerance;
      budget.pass = score.miss_rate() <= cap;
      budget.detail = "miss=" + fmt_double(score.miss_rate()) + " (" +
                      std::to_string(score.detected) + "/" +
                      std::to_string(score.episodes) + " episodes) budget=" +
                      fmt_double(cap);
    }
    out.checks.push_back(std::move(budget));
    report.phases.push_back(std::move(out));
  }

  // Global invariants.
  check_epochs_monotone(report);
  {
    InvariantCheck check;
    check.name = "churn_accepted";
    std::string failed;
    for (const auto& [label, ok] : churn_outcomes) {
      if (!ok) failed += label + "; ";
    }
    check.pass = failed.empty();
    check.detail = check.pass ? std::to_string(churn_outcomes.size()) +
                                    " control op(s) accepted"
                              : "rejected/lost: " + failed;
    report.global_checks.push_back(std::move(check));
  }
  {
    InvariantCheck check;
    check.name = "no_stuck_monitors";
    std::string detail;
    for (std::size_t i = 0; i < n; ++i) {
      const auto it =
          coordinator.reported_ops().find(static_cast<MonitorId>(i));
      if (it == coordinator.reported_ops().end()) {
        check.pass = false;
        detail += "monitor " + std::to_string(i) + " never said Bye; ";
      } else if (it->second <= 0) {
        check.pass = false;
        detail += "monitor " + std::to_string(i) + " reported 0 ops; ";
      }
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i]->coordinator_lost()) {
        check.pass = false;
        detail += "monitor " + std::to_string(i) +
                  " abandoned reconnection; ";
      }
    }
    check.detail = detail.empty() ? "all monitors reported ops" : detail;
    report.global_checks.push_back(std::move(check));
  }
  {
    InvariantCheck check;
    check.name = "allowance_conservation";
    if (!last_list) {
      check.detail = churn.empty()
                         ? "skipped (no churn, no registry snapshot taken)"
                         : "skipped (no ListTasks snapshot survived)";
    } else {
      std::string detail;
      for (const auto& task : last_list->tasks) {
        double sum = 0.0;
        for (const auto& [monitor, allowance] : task.allowance_split)
          sum += allowance;
        const double drift = std::abs(sum - task.error_allowance);
        // The wire runtime reclaims allowance from dead monitors, so the
        // split can be a strict subset mid-fault; conservation means never
        // exceeding the task budget.
        if (sum > task.error_allowance +
                      scenario.invariants.allowance_epsilon) {
          check.pass = false;
          detail += "task " + std::to_string(task.task) + ": over-budget " +
                    fmt_double(drift) + "; ";
        }
      }
      check.detail = detail.empty()
                         ? std::to_string(last_list->tasks.size()) +
                               " task(s) within budget"
                         : detail;
    }
    report.global_checks.push_back(std::move(check));
  }

  artifacts.report(report.to_json());
  return report;
}

SoakReport run_scenario(const Scenario& scenario, const SoakOptions& options) {
  return options.mode == SoakOptions::Mode::kSim
             ? run_scenario_sim(scenario, options)
             : run_scenario_net(scenario, options);
}

}  // namespace volley::scenario
