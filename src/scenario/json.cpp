#include "scenario/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace volley::scenario {

namespace {

/// Recursive-descent parser over the input with line:column tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& reason) const {
    throw std::invalid_argument("json:" + std::to_string(line_) + ":" +
                                std::to_string(col_) + ": " + reason);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char take() {
    if (eof()) fail("unexpected end of input");
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void expect(char want, const char* what) {
    if (eof() || peek() != want)
      fail(std::string("expected ") + what);
    take();
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        take();
      } else {
        break;
      }
    }
  }

  JsonValue value() {
    if (eof()) fail("unexpected end of input, expected a value");
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return JsonValue(string());
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return JsonValue(nullptr);
      default:
        return number();
    }
  }

  void literal(std::string_view word) {
    for (char want : word) {
      if (eof() || peek() != want)
        fail("invalid literal (expected '" + std::string(word) + "')");
      take();
    }
  }

  JsonValue boolean() {
    if (peek() == 't') {
      literal("true");
      return JsonValue(true);
    }
    literal("false");
    return JsonValue(false);
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') take();
    bool digits = false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      take();
      digits = true;
    }
    if (!digits) fail("invalid number");
    if (!eof() && peek() == '.') {
      take();
      bool frac = false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        take();
        frac = true;
      }
      if (!frac) fail("invalid number: digits required after '.'");
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      take();
      if (!eof() && (peek() == '+' || peek() == '-')) take();
      bool exp = false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        take();
        exp = true;
      }
      if (!exp) fail("invalid number: digits required in exponent");
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), out);
    if (ec != std::errc() || ptr != token.data() + token.size() ||
        !std::isfinite(out))
      fail("number out of range");
    return JsonValue(out);
  }

  std::string string() {
    expect('"', "'\"'");
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) fail("truncated \\u escape");
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are rejected:
          // scenario files are ASCII-first config, not prose).
          if (code >= 0xD800 && code <= 0xDFFF)
            fail("surrogate \\u escapes are not supported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape character");
      }
    }
  }

  JsonValue array() {
    expect('[', "'['");
    JsonValue::Array out;
    skip_ws();
    if (!eof() && peek() == ']') {
      take();
      return JsonValue(std::move(out));
    }
    for (;;) {
      skip_ws();
      out.push_back(value());
      skip_ws();
      if (eof()) fail("unterminated array");
      const char c = take();
      if (c == ']') return JsonValue(std::move(out));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue object() {
    expect('{', "'{'");
    JsonValue::Object out;
    skip_ws();
    if (!eof() && peek() == '}') {
      take();
      return JsonValue(std::move(out));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = string();
      skip_ws();
      expect(':', "':' after object key");
      skip_ws();
      if (!out.emplace(key, value()).second)
        fail("duplicate object key '" + key + "'");
      skip_ws();
      if (eof()) fail("unterminated object");
      const char c = take();
      if (c == '}') return JsonValue(std::move(out));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
  std::size_t line_{1};
  std::size_t col_{1};
};

[[noreturn]] void type_error(const std::string& where, const char* want) {
  throw std::invalid_argument("scenario: " + where + ": expected " + want);
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).run(); }

bool JsonValue::as_bool(const std::string& where) const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  type_error(where, "a boolean");
}

double JsonValue::as_number(const std::string& where) const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  type_error(where, "a number");
}

std::int64_t JsonValue::as_int(const std::string& where) const {
  const double d = as_number(where);
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) type_error(where, "an integer");
  return i;
}

const std::string& JsonValue::as_string(const std::string& where) const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  type_error(where, "a string");
}

const JsonValue::Array& JsonValue::as_array(const std::string& where) const {
  if (const auto* a = std::get_if<Array>(&value_)) return *a;
  type_error(where, "an array");
}

const JsonValue::Object& JsonValue::as_object(const std::string& where) const {
  if (const auto* o = std::get_if<Object>(&value_)) return *o;
  type_error(where, "an object");
}

const JsonValue* JsonValue::find(const std::string& key) const {
  const auto* obj = std::get_if<Object>(&value_);
  if (!obj) return nullptr;
  const auto it = obj->find(key);
  return it == obj->end() ? nullptr : &it->second;
}

}  // namespace volley::scenario
