#include "storage/sample_log.h"

#include <array>
#include <cstring>
#include <stdexcept>

namespace volley {

namespace {

constexpr char kMagic[4] = {'V', 'L', 'O', 'G'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kPayloadBytes = 4 + 8 + 8 + 1;  // monitor,tick,value,reason
constexpr std::size_t kRecordBytes = kPayloadBytes + 4;

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void encode_payload(const SampleRecord& record, unsigned char* out) {
  std::memcpy(out, &record.monitor, 4);
  std::memcpy(out + 4, &record.tick, 8);
  std::memcpy(out + 12, &record.value, 8);
  out[20] = static_cast<unsigned char>(record.reason);
}

bool decode_payload(const unsigned char* in, SampleRecord& record) {
  std::memcpy(&record.monitor, in, 4);
  std::memcpy(&record.tick, in + 4, 8);
  std::memcpy(&record.value, in + 12, 8);
  if (in[20] > 1) return false;  // unknown reason byte
  record.reason = static_cast<SampleReason>(in[20]);
  return true;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t length) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < length; ++i) {
    c = crc_table()[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

SampleLogWriter::SampleLogWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw std::runtime_error("SampleLogWriter: cannot open " + path);
  out_.write(kMagic, 4);
  out_.write(reinterpret_cast<const char*>(&kVersion), 4);
  if (!out_) throw std::runtime_error("SampleLogWriter: header write failed");
}

void SampleLogWriter::append(const SampleRecord& record) {
  unsigned char buf[kRecordBytes];
  encode_payload(record, buf);
  const std::uint32_t crc = crc32(buf, kPayloadBytes);
  std::memcpy(buf + kPayloadBytes, &crc, 4);
  out_.write(reinterpret_cast<const char*>(buf), kRecordBytes);
  if (!out_) throw std::runtime_error("SampleLogWriter: append failed");
  ++records_;
}

void SampleLogWriter::flush() { out_.flush(); }

SampleLogReadResult read_sample_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_sample_log: cannot open " + path);
  char header[kHeaderBytes];
  in.read(header, kHeaderBytes);
  if (in.gcount() != static_cast<std::streamsize>(kHeaderBytes) ||
      std::memcmp(header, kMagic, 4) != 0) {
    throw std::runtime_error("read_sample_log: not a sample log: " + path);
  }
  std::uint32_t version = 0;
  std::memcpy(&version, header + 4, 4);
  if (version != kVersion) {
    throw std::runtime_error("read_sample_log: unsupported version");
  }

  SampleLogReadResult result;
  std::size_t offset = kHeaderBytes;
  unsigned char buf[kRecordBytes];
  while (true) {
    in.read(reinterpret_cast<char*>(buf), kRecordBytes);
    const auto got = in.gcount();
    if (got == 0) break;  // clean EOF
    if (got != static_cast<std::streamsize>(kRecordBytes)) {
      result.clean = false;  // truncated tail (crash mid-append)
      result.bad_offset = offset;
      break;
    }
    std::uint32_t stored = 0;
    std::memcpy(&stored, buf + kPayloadBytes, 4);
    SampleRecord record;
    if (stored != crc32(buf, kPayloadBytes) ||
        !decode_payload(buf, record)) {
      result.clean = false;
      result.bad_offset = offset;
      break;
    }
    result.records.push_back(record);
    offset += kRecordBytes;
  }
  return result;
}

}  // namespace volley
