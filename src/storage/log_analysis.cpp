#include "storage/log_analysis.h"

#include <algorithm>
#include <stdexcept>

namespace volley {

std::map<MonitorId, MonitorLogSummary> summarize_log(
    std::span<const SampleRecord> records) {
  std::map<MonitorId, MonitorLogSummary> out;
  std::map<MonitorId, Tick> prev_tick;
  std::map<MonitorId, std::int64_t> gap_count;
  std::map<MonitorId, double> gap_sum;

  for (const auto& record : records) {
    auto [it, fresh] = out.try_emplace(record.monitor);
    MonitorLogSummary& s = it->second;
    if (fresh) {
      s.first_tick = record.tick;
      s.min_value = record.value;
      s.max_value = record.value;
    } else {
      if (record.tick > prev_tick[record.monitor]) {
        const Tick gap = record.tick - prev_tick[record.monitor];
        gap_sum[record.monitor] += static_cast<double>(gap);
        ++gap_count[record.monitor];
        s.max_interval = std::max(s.max_interval, gap);
      }
      s.min_value = std::min(s.min_value, record.value);
      s.max_value = std::max(s.max_value, record.value);
    }
    s.last_tick = std::max(s.last_tick, record.tick);
    prev_tick[record.monitor] = record.tick;
    if (record.reason == SampleReason::kScheduled) {
      ++s.scheduled_ops;
    } else {
      ++s.forced_ops;
    }
  }
  for (auto& [id, s] : out) {
    if (gap_count[id] > 0) {
      s.mean_interval = gap_sum[id] / static_cast<double>(gap_count[id]);
    }
  }
  return out;
}

std::vector<LoggedAlert> alerts_in_log(std::span<const SampleRecord> records,
                                       double threshold) {
  std::vector<LoggedAlert> out;
  for (const auto& record : records) {
    if (record.value > threshold) {
      out.push_back(LoggedAlert{record.monitor, record.tick, record.value});
    }
  }
  return out;
}

std::vector<std::int64_t> interval_histogram(
    std::span<const SampleRecord> records, Tick max_interval) {
  if (max_interval < 1)
    throw std::invalid_argument("interval_histogram: max_interval >= 1");
  std::vector<std::int64_t> out(static_cast<std::size_t>(max_interval) + 1,
                                0);
  std::map<MonitorId, Tick> prev_tick;
  for (const auto& record : records) {
    auto it = prev_tick.find(record.monitor);
    if (it != prev_tick.end() && record.tick > it->second) {
      const Tick gap = std::min(record.tick - it->second, max_interval);
      ++out[static_cast<std::size_t>(gap)];
    }
    prev_tick[record.monitor] = record.tick;
  }
  return out;
}

}  // namespace volley
