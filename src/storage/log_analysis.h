// Offline analysis over persisted sample logs.
//
// The paper motivates dense monitoring data with offline event analysis
// (Section I: with 15-minute periodic sampling, an event between samples
// leaves no data at all). These helpers answer the analysis questions a
// persisted Volley log supports: how much was sampled and when (interval
// timeline per monitor), and which alert instants the record shows.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "storage/sample_log.h"

namespace volley {

struct MonitorLogSummary {
  std::int64_t scheduled_ops{0};
  std::int64_t forced_ops{0};
  Tick first_tick{0};
  Tick last_tick{0};
  double mean_interval{0.0};  // mean gap between consecutive observations
  Tick max_interval{0};
  double min_value{0.0};
  double max_value{0.0};
};

/// Per-monitor statistics over a (time-ordered per monitor) record stream.
std::map<MonitorId, MonitorLogSummary> summarize_log(
    std::span<const SampleRecord> records);

struct LoggedAlert {
  MonitorId monitor{0};
  Tick tick{0};
  double value{0.0};
};

/// All observations exceeding the threshold — the persisted evidence of
/// (local) state alerts.
std::vector<LoggedAlert> alerts_in_log(std::span<const SampleRecord> records,
                                       double threshold);

/// Sampling-interval histogram counts: result[i] = number of gaps of
/// exactly i ticks (index 0 unused; gaps above `max_interval` clamp into
/// the last bucket).
std::vector<std::int64_t> interval_histogram(
    std::span<const SampleRecord> records, Tick max_interval);

}  // namespace volley
