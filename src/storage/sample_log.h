// Append-only persistence for sampling observations.
//
// The paper counts "sampling data persistence" among the costs of every
// sampling operation (Section III-B) and motivates dense data for offline
// event analysis (Section I: a 15-minute interval "is very likely to
// provide no data at all for the analysis of an event"). This module is
// that persistence substrate: monitors append each observation to a local
// log; analysis tooling replays it later.
//
// Format (little-endian):
//   file header:  magic "VLOG" + u32 version
//   record:       u32 monitor | i64 tick | f64 value | u8 reason |
//                 u32 crc32 (over the preceding 21 bytes)
//
// Durability/robustness: records are CRC-protected; the reader stops at
// the first corrupt or truncated record and reports how many bytes were
// salvageable, so a crash mid-append loses at most the last record.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"

namespace volley {

/// CRC-32 (IEEE 802.3, reflected) — shared by writer and reader.
std::uint32_t crc32(const void* data, std::size_t length);

struct SampleRecord {
  MonitorId monitor{0};
  Tick tick{0};
  double value{0.0};
  SampleReason reason{SampleReason::kScheduled};

  bool operator==(const SampleRecord&) const = default;
};

class SampleLogWriter {
 public:
  /// Creates/truncates the file and writes the header. Throws
  /// std::runtime_error when the file cannot be opened.
  explicit SampleLogWriter(const std::string& path);

  /// Appends one record (buffered; call flush() for durability points).
  void append(const SampleRecord& record);
  void flush();

  std::int64_t records_written() const { return records_; }

 private:
  std::ofstream out_;
  std::int64_t records_{0};
};

struct SampleLogReadResult {
  std::vector<SampleRecord> records;
  bool clean{true};        // false when corruption/truncation was hit
  std::size_t bad_offset{0};  // byte offset of the first bad record, if any
};

/// Reads as many valid records as the file contains. Throws
/// std::runtime_error only when the file is missing or the header is not a
/// sample log at all; data corruption is reported, not thrown.
SampleLogReadResult read_sample_log(const std::string& path);

}  // namespace volley
