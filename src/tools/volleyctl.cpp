// volleyctl — mutate and inspect a live coordinator's task registry.
//
//   volleyctl add    port=P task=ID threshold=T [err=E] [id_seconds=S]
//                    [max_interval=I] [slack=G] [patience=N]
//                    [updating_period=U]
//   volleyctl update port=P task=ID threshold=T [same knobs as add]
//   volleyctl remove port=P task=ID
//   volleyctl list   port=P
//   volleyctl watch  port=P [interval_ms=MS] [count=N]
//   volleyctl shards port=P
//   volleyctl budget port=P task=ID err=E
//
// Common options: host=H (default 127.0.0.1), timeout_ms=MS (default 2000).
//
// Each verb opens a fresh connection, sends one control frame in place of
// Hello (AddTask / UpdateTask / RemoveTask / ListTasks), prints the single
// reply (ControlReply or TaskListReply) and exits; the coordinator drops
// the connection after answering, and the tool never counts as a monitor.
// `watch` re-lists every interval_ms and prints the task table whenever the
// registry version changes (count=N stops after N lists; 0 = forever).
//
// Two-tier fleets (DESIGN.md §13): `shards` lists a root coordinator's
// shard sessions (one row per aggregator: monitors owned, boot-task
// allowance, last-summary age); `budget` sets a task's error budget *in
// place* via ShardAllowance — the live allowance split rescales without the
// sampler restarts an `update` would cause.
//
// Exit status — distinct codes so scripts can branch on the failure class:
//   0  success
//   1  transport/protocol failure after connecting (send failed, no reply
//      within the timeout, malformed or unexpected reply frame)
//   2  bad usage (unknown verb, missing/invalid arguments)
//   3  mutation rejected by the coordinator (kNotFound / kExists / kInvalid)
//   4  cannot connect (refused or connect timeout — the coordinator is not
//      reachable at host:port)
#include <cstdio>
#include <array>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "control/task_registry.h"
#include "net/framing.h"
#include "net/messages.h"
#include "net/socket.h"

namespace {

using namespace volley;

void usage() {
  std::printf(
      "usage: volleyctl <verb> port=P [host=H] [timeout_ms=MS] ...\n"
      "  add    task=ID threshold=T [err=E] [id_seconds=S]\n"
      "         [max_interval=I] [slack=G] [patience=N] [updating_period=U]\n"
      "  update task=ID threshold=T [same knobs as add]\n"
      "  remove task=ID\n"
      "  list\n"
      "  watch  [interval_ms=MS] [count=N]\n"
      "  shards\n"
      "  budget task=ID err=E\n");
}

// Exit codes (see the header comment).
constexpr int kExitOk = 0;
constexpr int kExitTransport = 1;
constexpr int kExitUsage = 2;
constexpr int kExitRejected = 3;
constexpr int kExitConnectRefused = 4;

/// One-shot control exchange: connect, send `request`, await one reply.
/// On failure, `exit_code` distinguishes a dead coordinator
/// (kExitConnectRefused) from an established-but-broken exchange
/// (kExitTransport).
std::optional<net::Message> round_trip(const std::string& host,
                                       std::uint16_t port, int timeout_ms,
                                       const net::Message& request,
                                       int& exit_code) {
  auto conn = TcpConnection::try_connect(host, port, timeout_ms);
  if (!conn) {
    std::fprintf(stderr,
                 "volleyctl: cannot connect to %s:%u "
                 "(connection refused or timed out after %d ms) — is the "
                 "coordinator running?\n",
                 host.c_str(), port, timeout_ms);
    exit_code = kExitConnectRefused;
    return std::nullopt;
  }
  if (!conn->send_all(frame_payload(net::encode(request)))) {
    std::fprintf(stderr, "volleyctl: send failed (connection broke)\n");
    exit_code = kExitTransport;
    return std::nullopt;
  }
  FrameReader reader;
  std::array<std::byte, 8192> buf;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto n = conn->recv_some(buf);
    if (!n) continue;    // spurious wakeup on a blocking socket
    if (*n == 0) break;  // peer closed before replying
    reader.feed(std::span<const std::byte>(buf.data(), *n));
    if (auto payload = reader.next()) {
      auto reply = net::decode(*payload);
      if (reply) return reply;
      std::fprintf(stderr, "volleyctl: malformed reply frame\n");
      exit_code = kExitTransport;
      return std::nullopt;
    }
  }
  std::fprintf(stderr, "volleyctl: no reply within %d ms\n", timeout_ms);
  exit_code = kExitTransport;
  return std::nullopt;
}

/// Builds the TaskSpec an add/update verb describes. `threshold` is
/// required; everything else falls back to the TaskSpec defaults.
TaskSpec spec_from_config(const Config& config) {
  TaskSpec spec;
  spec.global_threshold = config.get_double("threshold", 0.0);
  spec.error_allowance = config.get_double("err", spec.error_allowance);
  spec.id_seconds = config.get_double("id_seconds", spec.id_seconds);
  spec.max_interval =
      static_cast<Tick>(config.get_int("max_interval", spec.max_interval));
  spec.slack_ratio = config.get_double("slack", spec.slack_ratio);
  spec.patience = static_cast<int>(config.get_int("patience", spec.patience));
  spec.updating_period = static_cast<Tick>(
      config.get_int("updating_period", spec.updating_period));
  return spec;
}

int print_control_reply(const net::Message& reply) {
  const auto* control = std::get_if<net::ControlReply>(&reply);
  if (!control) {
    std::fprintf(stderr, "volleyctl: unexpected reply type\n");
    return kExitTransport;
  }
  if (control->status != control::ControlStatus::kOk) {
    std::fprintf(stderr,
                 "volleyctl: coordinator rejected the mutation: %s%s%s "
                 "(registry version %llu)\n",
                 control::control_status_name(control->status),
                 control->message.empty() ? "" : ": ",
                 control->message.c_str(),
                 static_cast<unsigned long long>(control->registry_version));
    return kExitRejected;
  }
  std::printf("ok: epoch=%llu registry_version=%llu\n",
              static_cast<unsigned long long>(control->epoch),
              static_cast<unsigned long long>(control->registry_version));
  return kExitOk;
}

void print_task_table(const net::TaskListReply& list) {
  std::printf("registry version %llu, %zu task(s)\n",
              static_cast<unsigned long long>(list.registry_version),
              list.tasks.size());
  std::printf("%6s %8s %12s %12s %10s  %s\n", "task", "epoch", "threshold",
              "err", "period", "allowance split");
  for (const auto& task : list.tasks) {
    std::printf("%6u %8llu %12.4f %12.6f %10lld  ", task.task,
                static_cast<unsigned long long>(task.epoch),
                task.global_threshold, task.error_allowance,
                static_cast<long long>(task.updating_period));
    for (std::size_t i = 0; i < task.allowance_split.size(); ++i) {
      const auto& [monitor, allowance] = task.allowance_split[i];
      std::printf("%s%u:%.6f", i == 0 ? "" : " ", monitor, allowance);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  // The verb is the one token without '='; Config rejects it, so split it
  // out before parsing the key=value remainder.
  std::string verb;
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "help" || arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg.find('=') == std::string::npos && verb.empty()) {
      verb = arg;
    } else {
      tokens.push_back(arg);
    }
  }
  if (verb.empty()) {
    usage();
    return kExitUsage;
  }

  Config config;
  try {
    config = Config::from_args(tokens);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad arguments: %s\n", e.what());
    return kExitUsage;
  }

  try {
    const std::string host = config.get_string("host", "127.0.0.1");
    const auto port = static_cast<std::uint16_t>(config.get_int("port", 0));
    const int timeout_ms =
        static_cast<int>(config.get_int("timeout_ms", 2000));
    if (port == 0) {
      std::fprintf(stderr, "volleyctl: port=P is required\n");
      return kExitUsage;
    }

    if (verb == "add" || verb == "update") {
      if (!config.has("task") || !config.has("threshold")) {
        std::fprintf(stderr, "volleyctl: %s needs task=ID threshold=T\n",
                     verb.c_str());
        return kExitUsage;
      }
      const auto task = static_cast<TaskId>(config.get_int("task", 0));
      const TaskSpec spec = spec_from_config(config);
      const net::Message request =
          verb == "add" ? net::Message{net::AddTask{task, spec}}
                        : net::Message{net::UpdateTask{task, spec}};
      int exit_code = kExitTransport;
      const auto reply =
          round_trip(host, port, timeout_ms, request, exit_code);
      return reply ? print_control_reply(*reply) : exit_code;
    }

    if (verb == "remove") {
      if (!config.has("task")) {
        std::fprintf(stderr, "volleyctl: remove needs task=ID\n");
        return kExitUsage;
      }
      const auto task = static_cast<TaskId>(config.get_int("task", 0));
      int exit_code = kExitTransport;
      const auto reply = round_trip(host, port, timeout_ms,
                                    net::RemoveTask{task}, exit_code);
      return reply ? print_control_reply(*reply) : exit_code;
    }

    if (verb == "budget") {
      if (!config.has("task") || !config.has("err")) {
        std::fprintf(stderr, "volleyctl: budget needs task=ID err=E\n");
        return kExitUsage;
      }
      const auto task = static_cast<TaskId>(config.get_int("task", 0));
      const double err = config.get_double("err", 0.0);
      int exit_code = kExitTransport;
      const auto reply = round_trip(host, port, timeout_ms,
                                    net::ShardAllowance{task, err}, exit_code);
      return reply ? print_control_reply(*reply) : exit_code;
    }

    if (verb == "shards") {
      net::StatsRequest request;
      request.flags |= net::StatsRequest::kIncludeShards;
      int exit_code = kExitTransport;
      const auto reply =
          round_trip(host, port, timeout_ms, request, exit_code);
      if (!reply) return exit_code;
      const auto* stats = std::get_if<net::StatsReply>(&*reply);
      if (!stats) {
        std::fprintf(stderr, "volleyctl: unexpected reply type\n");
        return kExitTransport;
      }
      std::printf("%zu shard session(s)\n", stats->shards.size());
      std::printf("%6s %10s %14s %18s\n", "shard", "monitors", "allowance",
                  "last_summary_ms");
      for (const auto& row : stats->shards) {
        if (row.last_summary_age_ms < 0) {
          std::printf("%6u %10u %14.6f %18s\n", row.shard, row.monitors,
                      row.allowance, "never");
        } else {
          std::printf("%6u %10u %14.6f %18lld\n", row.shard, row.monitors,
                      row.allowance,
                      static_cast<long long>(row.last_summary_age_ms));
        }
      }
      return kExitOk;
    }

    if (verb == "list" || verb == "watch") {
      const bool watch = verb == "watch";
      const int interval_ms =
          static_cast<int>(config.get_int("interval_ms", 1000));
      const std::int64_t count = config.get_int("count", watch ? 0 : 1);
      std::uint64_t last_version = ~0ull;
      for (std::int64_t i = 0; count == 0 || i < count; ++i) {
        if (i > 0)
          std::this_thread::sleep_for(
              std::chrono::milliseconds(interval_ms));
        int exit_code = kExitTransport;
        const auto reply = round_trip(host, port, timeout_ms,
                                      net::ListTasks{}, exit_code);
        if (!reply) return exit_code;
        const auto* list = std::get_if<net::TaskListReply>(&*reply);
        if (!list) {
          std::fprintf(stderr, "volleyctl: unexpected reply type\n");
          return kExitTransport;
        }
        if (!watch || list->registry_version != last_version) {
          print_task_table(*list);
          last_version = list->registry_version;
        }
        if (!watch && count == 1) break;
      }
      return kExitOk;
    }

    std::fprintf(stderr, "volleyctl: unknown verb '%s'\n", verb.c_str());
    usage();
    return kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "volleyctl: %s\n", e.what());
    return kExitTransport;
  }
}
