// volleyd_monitor — a Volley monitor node as a standalone daemon.
//
//   volleyd_monitor id=0 port=7601 local_threshold=3.0 err=0.01 \
//                   ticks=1000 tick_micros=1000 \
//                   source=sine base=1 amplitude=0.2 noise=0.05
//
// Connects to a volleyd_coordinator, monitors the configured synthetic
// source at a compressed timescale (tick_micros of wall time per default
// sampling interval), reports local violations and coordination
// statistics, and exits on the coordinator's Shutdown.
// See src/tools/source_factory.h for the source=... parameter reference.
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "net/monitor_node.h"
#include "tools/source_factory.h"

int main(int argc, char** argv) {
  using namespace volley;
  std::vector<std::string> args(argv + 1, argv + argc);
  Config config;
  try {
    config = Config::from_args(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad arguments: %s\n", e.what());
    return 2;
  }
  if (config.has("help")) {
    std::printf("usage: volleyd_monitor id=I port=P local_threshold=T "
                "[host=H] [err=E] [ticks=N] [tick_micros=US] [im=IM] "
                "[patience=P] [gamma=G] [updating_period=N] "
                "[heartbeat_ms=MS] [coordinator_timeout_ms=MS] "
                "[backoff_ms=MS] [backoff_max_ms=MS] [max_reconnects=N] "
                "[log=PATH] source=sine|netflow|sysmetric|http [source params...]\n");
    return 0;
  }

  try {
    auto source = tools::make_source(config);

    net::MonitorNodeOptions options;
    options.id = static_cast<MonitorId>(config.get_int("id", 0));
    options.coordinator_host = config.get_string("host", "127.0.0.1");
    options.coordinator_port =
        static_cast<std::uint16_t>(config.get_int("port", 0));
    options.local_threshold = config.get_double("local_threshold", 0.0);
    options.ticks = config.get_int("ticks", source->length());
    if (options.ticks > source->length()) options.ticks = source->length();
    options.updating_period = config.get_int("updating_period", 1000);
    options.tick_micros =
        static_cast<int>(config.get_int("tick_micros", 1000));
    options.sampler.error_allowance = config.get_double("err", 0.01);
    options.sampler.max_interval = config.get_int("im", 40);
    options.sampler.patience =
        static_cast<int>(config.get_int("patience", 20));
    options.sampler.slack_ratio = config.get_double("gamma", 0.2);
    options.sample_log_path = config.get_string("log", "");
    options.heartbeat_interval_ms =
        static_cast<int>(config.get_int("heartbeat_ms", 500));
    options.coordinator_timeout_ms =
        static_cast<int>(config.get_int("coordinator_timeout_ms", 2500));
    options.reconnect_backoff_ms =
        static_cast<int>(config.get_int("backoff_ms", 50));
    options.reconnect_backoff_max_ms =
        static_cast<int>(config.get_int("backoff_max_ms", 1000));
    options.max_reconnect_attempts =
        static_cast<int>(config.get_int("max_reconnects", 60));

    net::MonitorNode node(options, *source);
    std::printf("volleyd_monitor %u: %lld ticks against %s:%u "
                "(local T=%.3f, err=%.4f)\n",
                options.id, static_cast<long long>(options.ticks),
                options.coordinator_host.c_str(), options.coordinator_port,
                options.local_threshold, options.sampler.error_allowance);
    std::fflush(stdout);
    node.run();
    std::printf("volleyd_monitor %u: done — %lld scheduled + %lld forced "
                "ops, %lld local violations, %lld reconnects, "
                "%lld degraded ticks%s\n",
                options.id, static_cast<long long>(node.scheduled_ops()),
                static_cast<long long>(node.forced_ops()),
                static_cast<long long>(node.local_violations()),
                static_cast<long long>(node.reconnects()),
                static_cast<long long>(node.degraded_ticks()),
                node.coordinator_lost() ? " (coordinator lost)" : "");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "volleyd_monitor: %s\n", e.what());
    return 1;
  }
}
