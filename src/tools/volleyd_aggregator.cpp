// volleyd_aggregator — the middle tier of a two-level Volley fleet
// (DESIGN.md §13) as a standalone daemon.
//
//   volleyd_aggregator shard=1 monitors=4 coordinator_port=7601
//                      listen_port=7611 threshold=3.0 err=0.01
//                      [allocation=adaptive|even] [summary_interval_ms=500]
//
// Joins the root coordinator at coordinator_host:coordinator_port as shard
// `shard` with weight `monitors`, and listens on listen_port for that many
// MonitorNode connections. threshold/err describe the *shard's slice* of
// the boot task: threshold is T_s (what the subset's local thresholds sum
// to) and err is err_s (the shard's error budget) — the driver must slice
// the global task consistently across shards, exactly as it already splits
// local thresholds across monitors in a flat fleet. listen_port=0 picks a
// free port and prints it so scripts can wire monitors up.
//
// Runs until the shard's monitors say Bye and the root acknowledges the
// shard's own Bye (or the root is lost — the shard then completes
// standalone; the subset guarantee needs no root).
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "net/aggregator_node.h"

int main(int argc, char** argv) {
  using namespace volley;
  std::vector<std::string> args(argv + 1, argv + argc);
  Config config;
  try {
    config = Config::from_args(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad arguments: %s\n", e.what());
    return 2;
  }
  if (config.has("help")) {
    std::printf(
        "usage: volleyd_aggregator shard=ID monitors=N coordinator_port=P "
        "[coordinator_host=H] [listen_port=P] [threshold=T_s] [err=E_s] "
        "[allocation=adaptive|even] [summary_interval_ms=MS] "
        "[heartbeat_interval_ms=MS] [poll_timeout_ms=MS] "
        "[idle_timeout_ms=MS] [heartbeat_timeout_ms=MS] "
        "[staleness_bound_ms=MS] [registry=PATH]\n");
    return 0;
  }

  net::AggregatorNodeOptions options;
  try {
    options.shard_id = static_cast<std::uint32_t>(config.get_int("shard", 0));
    options.monitors =
        static_cast<std::size_t>(config.get_int("monitors", 1));
    options.coordinator_host =
        config.get_string("coordinator_host", "127.0.0.1");
    options.coordinator_port =
        static_cast<std::uint16_t>(config.get_int("coordinator_port", 0));
    options.listen_port =
        static_cast<std::uint16_t>(config.get_int("listen_port", 0));
    options.global_threshold = config.get_double("threshold", 0.0);
    options.error_allowance = config.get_double("err", 0.01);
    options.adaptive_allocation =
        config.get_string("allocation", "adaptive") == "adaptive";
    options.summary_interval_ms =
        static_cast<int>(config.get_int("summary_interval_ms", 500));
    options.heartbeat_interval_ms =
        static_cast<int>(config.get_int("heartbeat_interval_ms", 500));
    options.poll_timeout_ms =
        static_cast<int>(config.get_int("poll_timeout_ms", 1000));
    options.idle_timeout_ms =
        static_cast<int>(config.get_int("idle_timeout_ms", 30000));
    options.heartbeat_timeout_ms =
        static_cast<int>(config.get_int("heartbeat_timeout_ms", 2000));
    options.staleness_bound_ms =
        static_cast<int>(config.get_int("staleness_bound_ms", 6000));
    options.registry_path = config.get_string("registry", "");
    if (options.coordinator_port == 0) {
      std::fprintf(stderr,
                   "volleyd_aggregator: coordinator_port=P is required\n");
      return 2;
    }

    net::AggregatorNode node(options);
    std::printf("volleyd_aggregator: shard %u listening on 127.0.0.1:%u for "
                "%zu monitor(s); root at %s:%u, T_s=%.3f err_s=%.4f\n",
                options.shard_id, node.port(), options.monitors,
                options.coordinator_host.c_str(), options.coordinator_port,
                options.global_threshold, options.error_allowance);
    std::fflush(stdout);
    node.run();

    const auto& down = node.downstream();
    std::printf("shard %u finished: %lld subset polls, %lld reallocations, "
                "%zu subset alerts, %lld escalations, %lld summaries%s\n",
                options.shard_id,
                static_cast<long long>(down.global_polls()),
                static_cast<long long>(down.reallocations()),
                down.alerts().size(),
                static_cast<long long>(node.escalations()),
                static_cast<long long>(node.summaries_sent()),
                node.coordinator_lost() ? " (root lost; ran standalone)"
                                        : "");
    for (const auto& [id, ops] : down.reported_ops()) {
      std::printf("  monitor %u: %lld sampling ops\n", id,
                  static_cast<long long>(ops));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "volleyd_aggregator: %s\n", e.what());
    return 1;
  }
}
