// volley_logcat — inspect a persisted sample log.
//
//   volley_logcat file=monitor0.vlog [threshold=T] [hist=IM] [dump=1]
//
// Prints per-monitor sampling statistics (op counts, interval timeline),
// optionally the alert instants above a threshold, the sampling-interval
// histogram, or a full record dump. Tolerates truncated/corrupt tails and
// reports how much was salvaged.
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "storage/log_analysis.h"
#include "storage/sample_log.h"

int main(int argc, char** argv) {
  using namespace volley;
  std::vector<std::string> args(argv + 1, argv + argc);
  Config config;
  try {
    config = Config::from_args(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad arguments: %s\n", e.what());
    return 2;
  }
  if (config.has("help") || !config.has("file")) {
    std::printf("usage: volley_logcat file=PATH [threshold=T] [hist=MAX_I] "
                "[dump=1]\n");
    return config.has("help") ? 0 : 2;
  }

  try {
    const auto result = read_sample_log(config.get_string("file", ""));
    std::printf("%zu records%s\n", result.records.size(),
                result.clean ? ""
                             : " (log damaged; stopped at first bad record)");

    const auto summaries = summarize_log(result.records);
    for (const auto& [id, s] : summaries) {
      std::printf("monitor %u: %lld scheduled + %lld forced ops, ticks "
                  "[%lld, %lld], mean interval %.2f (max %lld), values "
                  "[%.3f, %.3f]\n",
                  id, static_cast<long long>(s.scheduled_ops),
                  static_cast<long long>(s.forced_ops),
                  static_cast<long long>(s.first_tick),
                  static_cast<long long>(s.last_tick), s.mean_interval,
                  static_cast<long long>(s.max_interval), s.min_value,
                  s.max_value);
    }

    if (config.has("threshold")) {
      const double threshold = config.get_double("threshold", 0.0);
      const auto alerts = alerts_in_log(result.records, threshold);
      std::printf("%zu observations above %.3f:\n", alerts.size(), threshold);
      for (const auto& alert : alerts) {
        std::printf("  monitor %u tick %lld value %.3f\n", alert.monitor,
                    static_cast<long long>(alert.tick), alert.value);
      }
    }

    if (config.has("hist")) {
      const Tick max_interval = config.get_int("hist", 16);
      const auto hist = interval_histogram(result.records, max_interval);
      std::printf("interval histogram (gap: count):\n");
      for (std::size_t i = 1; i < hist.size(); ++i) {
        if (hist[i] > 0) {
          std::printf("  %zu%s: %lld\n", i,
                      i + 1 == hist.size() ? "+" : "",
                      static_cast<long long>(hist[i]));
        }
      }
    }

    if (config.get_bool("dump", false)) {
      for (const auto& record : result.records) {
        std::printf("%u %lld %.6f %s\n", record.monitor,
                    static_cast<long long>(record.tick), record.value,
                    record.reason == SampleReason::kScheduled ? "sched"
                                                              : "poll");
      }
    }
    return result.clean ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "volley_logcat: %s\n", e.what());
    return 1;
  }
}
