// Builds a MetricSource from a key=value Config — the glue that lets the
// CLI daemons (volleyd_monitor) and scripts choose what a monitor watches
// without recompiling.
//
// Config keys:
//   source=sine      base=, amplitude=, period=, noise=, seed=
//                    spike_at=, spike_len=, spike_value=   (optional burst)
//   source=netflow   vm=, vms=, ticks=, mean_flows=, seed=,
//                    attack_at=, attack_peak=               (optional)
//   source=sysmetric node=, metric= (index or exact name), ticks=, seed=
//   source=http      object=, objects=, ticks=, mean_rps=, seed=
// Common:            ticks= (trace length; default 86400)
#pragma once

#include <memory>

#include "common/config.h"
#include "core/metric_source.h"

namespace volley::tools {

/// Throws std::invalid_argument on unknown source kinds or bad parameters.
std::unique_ptr<MetricSource> make_source(const Config& config);

}  // namespace volley::tools
