// volley_chaos — a fault-injecting TCP proxy between volleyd monitors and a
// volleyd_coordinator (src/net/chaos_proxy.h).
//
//   volleyd_coordinator monitors=2 port=7601 &
//   volley_chaos listen=7700 upstream_port=7601 report_loss=0.2 \
//                delay_prob=0.1 delay_ms=40 cut_after=500 max_cuts=2 &
//   volleyd_monitor id=0 port=7700 ... &
//   volleyd_monitor id=1 port=7700 ...
//
// Monitors dial the proxy instead of the coordinator; the proxy forwards
// whole protocol frames and injects drops, delays, partial writes, and
// mid-stream disconnects from a seeded plan. Ctrl-C stops the proxy and
// prints the injection accounting.
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "net/chaos_proxy.h"

namespace {
volley::net::ChaosProxy* g_proxy = nullptr;

void handle_signal(int) {
  if (g_proxy) g_proxy->request_stop();
}
}  // namespace

int main(int argc, char** argv) {
  using namespace volley;
  std::vector<std::string> args(argv + 1, argv + argc);
  Config config;
  try {
    config = Config::from_args(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad arguments: %s\n", e.what());
    return 2;
  }
  if (config.has("help")) {
    std::printf(
        "usage: volley_chaos upstream_port=P [listen=P] [upstream_host=H]\n"
        "         [report_loss=R] [response_loss=R] [heartbeat_loss=R]\n"
        "         [delay_prob=R] [delay_ms=MS] [partial_prob=R]\n"
        "         [cut_after=FRAMES] [max_cuts=N] [seed=S]\n");
    return 0;
  }

  try {
    net::ChaosProxyOptions options;
    options.listen_port =
        static_cast<std::uint16_t>(config.get_int("listen", 0));
    options.upstream_host = config.get_string("upstream_host", "127.0.0.1");
    options.upstream_port =
        static_cast<std::uint16_t>(config.get_int("upstream_port", 0));
    options.plan.message_loss.violation_report_loss =
        config.get_double("report_loss", 0.0);
    options.plan.message_loss.poll_response_loss =
        config.get_double("response_loss", 0.0);
    options.plan.message_loss.seed =
        static_cast<std::uint64_t>(config.get_int("seed", 99));
    options.plan.heartbeat_loss = config.get_double("heartbeat_loss", 0.0);
    options.plan.delay_prob = config.get_double("delay_prob", 0.0);
    options.plan.delay_ms = static_cast<int>(config.get_int("delay_ms", 0));
    options.plan.partial_write_prob = config.get_double("partial_prob", 0.0);
    options.plan.disconnect_after_frames = config.get_int("cut_after", -1);
    options.plan.max_disconnects =
        static_cast<int>(config.get_int("max_cuts", 0));

    net::ChaosProxy proxy(options);
    g_proxy = &proxy;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::printf("volley_chaos: 127.0.0.1:%u -> %s:%u (report_loss=%.2f "
                "response_loss=%.2f delay=%.2f/%dms cut_after=%lld)\n",
                proxy.port(), options.upstream_host.c_str(),
                options.upstream_port,
                options.plan.message_loss.violation_report_loss,
                options.plan.message_loss.poll_response_loss,
                options.plan.delay_prob, options.plan.delay_ms,
                static_cast<long long>(options.plan.disconnect_after_frames));
    std::fflush(stdout);
    proxy.run();

    const auto& stats = proxy.stats();
    std::printf("volley_chaos: %lld connections, %lld frames forwarded, "
                "%lld violations + %lld responses + %lld heartbeats "
                "dropped, %lld delayed, %lld partial, %lld cuts\n",
                static_cast<long long>(stats.connections),
                static_cast<long long>(stats.forwarded_frames),
                static_cast<long long>(stats.dropped_violations),
                static_cast<long long>(stats.dropped_responses),
                static_cast<long long>(stats.dropped_heartbeats),
                static_cast<long long>(stats.delayed_frames),
                static_cast<long long>(stats.partial_writes),
                static_cast<long long>(stats.disconnects));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "volley_chaos: %s\n", e.what());
    return 1;
  }
}
