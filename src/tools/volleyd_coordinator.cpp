// volleyd_coordinator — the Volley coordinator as a standalone daemon.
//
//   volleyd_coordinator monitors=3 port=7601 threshold=9.0 err=0.03 \
//                       allocation=adaptive poll_timeout_ms=1000 \
//                       registry=/var/lib/volley/registry
//
// Listens for `monitors` MonitorNode connections, runs the session
// (global polls on local violations, error-allowance reallocation), prints
// alerts as they arrive after the run, and exits when all monitors say Bye.
// port=0 picks a free port and prints it, so scripts can wire monitors up.
//
// threshold/err describe the *boot task* (task 0); further tasks are added
// at runtime with tools/volleyctl. With registry=PATH the task registry is
// durable (PATH.snapshot + PATH.journal) and a restarted coordinator
// resumes the full task set at its exact epochs.
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "net/coordinator_node.h"

int main(int argc, char** argv) {
  using namespace volley;
  std::vector<std::string> args(argv + 1, argv + argc);
  Config config;
  try {
    config = Config::from_args(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad arguments: %s\n", e.what());
    return 2;
  }
  if (config.has("help")) {
    std::printf("usage: volleyd_coordinator monitors=N [port=P] "
                "[threshold=T] [err=E] [allocation=adaptive|even] "
                "[total_weight=W] [poll_timeout_ms=MS] [idle_timeout_ms=MS] "
                "[heartbeat_timeout_ms=MS] [staleness_bound_ms=MS] "
                "[registry=PATH]\n");
    return 0;
  }

  net::CoordinatorNodeOptions options;
  try {
    options.monitors =
        static_cast<std::size_t>(config.get_int("monitors", 1));
    options.port = static_cast<std::uint16_t>(config.get_int("port", 0));
    options.global_threshold = config.get_double("threshold", 0.0);
    options.error_allowance = config.get_double("err", 0.01);
    options.adaptive_allocation =
        config.get_string("allocation", "adaptive") == "adaptive";
    options.poll_timeout_ms =
        static_cast<int>(config.get_int("poll_timeout_ms", 1000));
    options.idle_timeout_ms =
        static_cast<int>(config.get_int("idle_timeout_ms", 30000));
    options.heartbeat_timeout_ms =
        static_cast<int>(config.get_int("heartbeat_timeout_ms", 2000));
    options.staleness_bound_ms =
        static_cast<int>(config.get_int("staleness_bound_ms", 6000));
    options.registry_path = config.get_string("registry", "");
    // Root of a two-tier fleet (DESIGN.md §13): monitors=S aggregator
    // sessions, total_weight=the fleet-wide monitor count, so per-shard
    // threshold/allowance slices are weighted by each ShardHello's w.
    options.total_weight =
        static_cast<std::size_t>(config.get_int("total_weight", 0));

    net::CoordinatorNode node(options);
    std::printf("volleyd_coordinator: listening on 127.0.0.1:%u for %zu "
                "monitor(s), T=%.3f err=%.4f (%s allocation)\n",
                node.port(), options.monitors, options.global_threshold,
                options.error_allowance,
                options.adaptive_allocation ? "adaptive" : "even");
    if (!options.registry_path.empty()) {
      const auto& load = node.registry_load_stats();
      std::printf("registry: %zu task(s) at version %llu (%s%zu journal "
                  "op(s)%s)\n",
                  node.registry().size(),
                  static_cast<unsigned long long>(node.registry().version()),
                  load.had_snapshot ? "snapshot + " : "", load.journal_ops,
                  load.journal_clean ? "" : ", torn tail dropped");
    }
    std::fflush(stdout);
    node.run();

    std::printf("session finished: %lld global polls, %lld reallocations, "
                "%zu alerts\n",
                static_cast<long long>(node.global_polls()),
                static_cast<long long>(node.reallocations()),
                node.alerts().size());
    for (const auto& alert : node.alerts()) {
      std::printf("  ALERT task=%u tick=%lld aggregate=%.3f\n", alert.task,
                  static_cast<long long>(alert.tick), alert.value);
    }
    for (const auto& [id, ops] : node.reported_ops()) {
      std::printf("  monitor %u: %lld sampling ops\n", id,
                  static_cast<long long>(ops));
    }
    const auto& faults = node.fault_stats();
    if (faults.suspected > 0 || faults.stale_polls > 0 ||
        faults.reconnects > 0) {
      std::printf("  faults: %lld suspected, %lld dead, %lld reconnects, "
                  "%lld stale polls, %lld allowance reclaims\n",
                  static_cast<long long>(faults.suspected),
                  static_cast<long long>(faults.declared_dead),
                  static_cast<long long>(faults.reconnects),
                  static_cast<long long>(faults.stale_polls),
                  static_cast<long long>(faults.allowance_reclaims));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "volleyd_coordinator: %s\n", e.what());
    return 1;
  }
}
