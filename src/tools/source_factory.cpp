#include "tools/source_factory.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "tasks/network_task.h"
#include "trace/httplog.h"
#include "trace/sysmetrics.h"
#include "trace/trace.h"

namespace volley::tools {

namespace {

std::unique_ptr<MetricSource> make_sine(const Config& config) {
  const Tick ticks = config.get_int("ticks", 86400);
  const double base = config.get_double("base", 10.0);
  const double amplitude = config.get_double("amplitude", 5.0);
  const double period = config.get_double("period", 1000.0);
  const double noise = config.get_double("noise", 0.5);
  const Tick spike_at = config.get_int("spike_at", -1);
  const Tick spike_len = config.get_int("spike_len", 20);
  const double spike_value = config.get_double("spike_value", 0.0);
  Rng rng(static_cast<std::uint64_t>(config.get_int("seed", 1)));

  TimeSeries series(static_cast<std::size_t>(ticks));
  for (Tick t = 0; t < ticks; ++t) {
    double v = base +
               amplitude * std::sin(2.0 * std::numbers::pi *
                                    static_cast<double>(t) / period) +
               rng.normal(0.0, noise);
    if (spike_at >= 0 && t >= spike_at && t < spike_at + spike_len) {
      v += spike_value;
    }
    series[static_cast<std::size_t>(t)] = v;
  }
  return std::make_unique<SeriesSource>(std::move(series));
}

std::unique_ptr<MetricSource> make_netflow(const Config& config) {
  NetflowOptions options;
  options.vms = static_cast<std::size_t>(config.get_int("vms", 4));
  options.ticks = config.get_int("ticks", 5760);
  options.ticks_per_day = config.get_int("ticks_per_day", 5760);
  options.mean_flows_per_tick = config.get_double("mean_flows", 40.0);
  options.seed = static_cast<std::uint64_t>(config.get_int("seed", 1));
  const auto vm = static_cast<std::size_t>(config.get_int("vm", 0));
  if (vm >= options.vms)
    throw std::invalid_argument("source_factory: vm out of range");

  NetflowGenerator generator(options);
  auto traffic = generator.generate();
  auto& chosen = traffic[vm];

  const Tick attack_at = config.get_int("attack_at", -1);
  if (attack_at >= 0) {
    DdosEpisode attack;
    attack.start = attack_at;
    attack.peak_syn_rate = config.get_double("attack_peak", 2000.0);
    Rng rng(options.seed + 1);
    inject_ddos(chosen, attack, rng);
  }
  return std::make_unique<SeriesSource>(std::move(chosen.rho),
                                        std::move(chosen.in_packets));
}

std::unique_ptr<MetricSource> make_sysmetric(const Config& config) {
  SysMetricsOptions options;
  options.nodes = static_cast<std::size_t>(config.get_int("nodes", 1));
  options.ticks = config.get_int("ticks", 17280);
  options.ticks_per_day = config.get_int("ticks_per_day", 17280);
  options.seed = static_cast<std::uint64_t>(config.get_int("seed", 7));
  SysMetricsGenerator generator(options);

  const auto node = static_cast<std::size_t>(config.get_int("node", 0));
  std::size_t metric = 0;
  if (auto name = config.get("metric")) {
    // Accept an index or an exact catalog name.
    bool numeric = !name->empty() &&
                   name->find_first_not_of("0123456789") == std::string::npos;
    if (numeric) {
      metric = static_cast<std::size_t>(std::stoull(*name));
    } else {
      const auto& catalog = SysMetricsGenerator::catalog();
      bool found = false;
      for (std::size_t i = 0; i < catalog.size(); ++i) {
        if (catalog[i].name == *name) {
          metric = i;
          found = true;
          break;
        }
      }
      if (!found)
        throw std::invalid_argument("source_factory: unknown metric " + *name);
    }
  }
  return std::make_unique<SeriesSource>(generator.generate_metric(node, metric));
}

std::unique_ptr<MetricSource> make_http(const Config& config) {
  HttpLogOptions options;
  options.objects = static_cast<std::size_t>(config.get_int("objects", 4));
  options.ticks = config.get_int("ticks", 86400);
  options.ticks_per_day = config.get_int("ticks_per_day", 86400);
  options.mean_rps = config.get_double("mean_rps", 25.0);
  options.seed = static_cast<std::uint64_t>(config.get_int("seed", 11));
  const auto object = static_cast<std::size_t>(config.get_int("object", 0));
  if (object >= options.objects)
    throw std::invalid_argument("source_factory: object out of range");
  HttpLogGenerator generator(options);
  auto traces = generator.generate();
  return std::make_unique<SeriesSource>(std::move(traces[object].rate));
}

}  // namespace

std::unique_ptr<MetricSource> make_source(const Config& config) {
  const std::string kind = config.get_string("source", "sine");
  if (kind == "sine") return make_sine(config);
  if (kind == "netflow") return make_netflow(config);
  if (kind == "sysmetric") return make_sysmetric(config);
  if (kind == "http") return make_http(config);
  throw std::invalid_argument("source_factory: unknown source '" + kind + "'");
}

}  // namespace volley::tools
