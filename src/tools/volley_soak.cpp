// volley_soak — execute a declarative scenario (scenario/scenario.h) and
// judge it against its per-phase invariants.
//
//   volley_soak scenario=FILE [mode=sim|net|both] [artifacts=DIR]
//               [quick=0|1] [quick_ticks=N] [replay_check=0|1]
//               [expect_fail=0|1]
//
//   mode          sim (default): deterministic fault-aware tick loop;
//                 net: real coordinator/monitor processes through the chaos
//                 proxy; both: sim then net.
//   artifacts     write <name>-<mode>-report.json and
//                 <name>-<mode>-snapshots.jsonl under DIR.
//   quick         rescale the scenario to quick_ticks (default 1200) ticks —
//                 the CI smoke setting.
//   replay_check  (sim only) run the scenario twice and require the two
//                 reports to be byte-identical — the replay contract.
//   expect_fail   invert the invariant verdict: the run must TRIP at least
//                 one invariant (regression scenarios that prove detection).
//
// Exit status: 0 all runs passed (or tripped, under expect_fail);
// 1 execution error (unreadable scenario, I/O failure); 2 bad usage;
// 3 invariant verdict wrong (a check failed — or, with expect_fail, none
// did); 5 replay mismatch (two same-seed sim runs differed).
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/config.h"
#include "scenario/scenario.h"
#include "scenario/soak.h"

namespace {

using namespace volley;
using namespace volley::scenario;

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInvariant = 3;
constexpr int kExitReplayMismatch = 5;

void usage() {
  std::printf(
      "usage: volley_soak scenario=FILE [mode=sim|net|both]\n"
      "                   [artifacts=DIR] [quick=0|1] [quick_ticks=N]\n"
      "                   [replay_check=0|1] [expect_fail=0|1]\n");
}

void print_summary(const SoakReport& report) {
  std::printf("%s\n", report.to_json().c_str());
  std::fprintf(stderr, "soak[%s/%s]: %zu phase(s), %zu epoch(s): %s\n",
               report.scenario.c_str(), report.mode.c_str(),
               report.phases.size(), report.epochs.size(),
               report.passed() ? "PASS" : "FAIL");
  for (const auto& phase : report.phases) {
    for (const auto& check : phase.checks) {
      if (!check.pass)
        std::fprintf(stderr, "  phase %s: %s FAILED: %s\n",
                     phase.phase.c_str(), check.name.c_str(),
                     check.detail.c_str());
    }
  }
  for (const auto& check : report.global_checks) {
    if (!check.pass)
      std::fprintf(stderr, "  global: %s FAILED: %s\n", check.name.c_str(),
                   check.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "help" || arg == "--help" || arg == "-h") {
      usage();
      return kExitOk;
    }
    tokens.push_back(arg);
  }

  Config config;
  try {
    config = Config::from_args(tokens);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad arguments: %s\n", e.what());
    return kExitUsage;
  }

  const std::string path = config.get_string("scenario", "");
  if (path.empty()) {
    std::fprintf(stderr, "volley_soak: scenario=FILE is required\n");
    usage();
    return kExitUsage;
  }
  const std::string mode = config.get_string("mode", "sim");
  if (mode != "sim" && mode != "net" && mode != "both") {
    std::fprintf(stderr, "volley_soak: mode must be sim, net, or both\n");
    return kExitUsage;
  }
  const bool expect_fail = config.get_bool("expect_fail", false);
  const bool replay_check = config.get_bool("replay_check", false);

  SoakOptions options;
  options.artifact_dir = config.get_string("artifacts", "");
  options.quick = config.get_bool("quick", false);
  options.quick_ticks =
      static_cast<Tick>(config.get_int("quick_ticks", options.quick_ticks));

  try {
    const Scenario scenario = Scenario::from_file(path);

    bool all_passed = true;
    if (mode == "sim" || mode == "both") {
      options.mode = SoakOptions::Mode::kSim;
      const SoakReport report = run_scenario_sim(scenario, options);
      print_summary(report);
      all_passed = all_passed && report.passed();
      if (replay_check) {
        // Replay contract: a second run of the same {scenario, seed} must
        // render the byte-identical report. Artifacts off — the first run
        // owns the files.
        SoakOptions replay = options;
        replay.artifact_dir.clear();
        const SoakReport again = run_scenario_sim(scenario, replay);
        if (again.to_json() != report.to_json()) {
          std::fprintf(stderr,
                       "volley_soak: replay mismatch — two runs of "
                       "{%s, seed=%llu} produced different reports\n",
                       scenario.name.c_str(),
                       static_cast<unsigned long long>(scenario.seed));
          return kExitReplayMismatch;
        }
        std::fprintf(stderr, "soak[%s/sim]: replay check OK\n",
                     scenario.name.c_str());
      }
    }
    if (mode == "net" || mode == "both") {
      options.mode = SoakOptions::Mode::kNet;
      const SoakReport report = run_scenario_net(scenario, options);
      print_summary(report);
      all_passed = all_passed && report.passed();
    }

    if (expect_fail) {
      if (all_passed) {
        std::fprintf(stderr,
                     "volley_soak: expected an invariant to trip, but every "
                     "check passed\n");
        return kExitInvariant;
      }
      std::fprintf(stderr,
                   "volley_soak: invariant tripped as expected (detection "
                   "proven)\n");
      return kExitOk;
    }
    return all_passed ? kExitOk : kExitInvariant;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "volley_soak: %s\n", e.what());
    return kExitError;
  }
}
