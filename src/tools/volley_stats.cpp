// volley_stats — query a live coordinator's observability snapshot.
//
//   volley_stats port=7601 [host=127.0.0.1] [format=prometheus|json]
//                [trace=0|1] [timeout_ms=2000]
//   volley_stats --tasks port=7601 [host=127.0.0.1] [timeout_ms=2000]
//   volley_stats --shards port=7601 [host=127.0.0.1] [timeout_ms=2000]
//
// Connects to a running volleyd_coordinator, sends a StatsRequest in place
// of Hello, and pretty-prints the single StatsReply: session counters
// (global polls, reallocations, alerts), the process-global metrics
// registry (Prometheus text by default, JSON with format=json), and — with
// trace=1 — the newest structured trace events as JSONL. With --tasks it
// sends a ListTasks control frame instead and prints the live task set:
// id, epoch, global threshold, task error allowance, and the coordinator's
// current per-monitor allowance split. With --shards the StatsRequest asks
// for the shard-session table (two-tier fleets, DESIGN.md §13): one row per
// aggregator — monitors owned, current boot-task allowance, and the age of
// its last ShardSummary. The coordinator drops the connection after
// replying; this tool never counts as a monitor.
#include <cstdio>
#include <array>
#include <chrono>
#include <string>
#include <vector>

#include "common/config.h"
#include "net/framing.h"
#include "net/messages.h"
#include "net/socket.h"

int main(int argc, char** argv) {
  using namespace volley;
  // --tasks is the one flag without '='; Config rejects it, so peel it off
  // before parsing the key=value remainder.
  bool want_tasks = false;
  bool want_shards = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tasks" || arg == "tasks") {
      want_tasks = true;
    } else if (arg == "--shards" || arg == "shards") {
      want_shards = true;
    } else {
      args.push_back(arg);
    }
  }
  Config config;
  try {
    config = Config::from_args(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad arguments: %s\n", e.what());
    return 2;
  }
  if (config.has("help")) {
    std::printf("usage: volley_stats [--tasks] [--shards] port=P [host=H] "
                "[format=prometheus|json] [trace=0|1] [timeout_ms=MS]\n");
    return 0;
  }

  try {
    const std::string host = config.get_string("host", "127.0.0.1");
    const auto port = static_cast<std::uint16_t>(config.get_int("port", 0));
    const std::string format = config.get_string("format", "prometheus");
    const bool want_trace = config.get_int("trace", 0) != 0;
    const int timeout_ms =
        static_cast<int>(config.get_int("timeout_ms", 2000));
    if (port == 0) {
      std::fprintf(stderr, "volley_stats: port=P is required\n");
      return 2;
    }
    if (format != "prometheus" && format != "json") {
      std::fprintf(stderr, "volley_stats: format must be prometheus|json\n");
      return 2;
    }

    auto conn = TcpConnection::try_connect(host, port, timeout_ms);
    if (!conn) {
      std::fprintf(stderr, "volley_stats: cannot reach %s:%u\n", host.c_str(),
                   port);
      return 1;
    }

    net::Message request_message;
    if (want_tasks) {
      request_message = net::ListTasks{};
    } else {
      net::StatsRequest request;
      if (want_trace) request.flags |= net::StatsRequest::kIncludeTrace;
      if (format == "json") request.flags |= net::StatsRequest::kMetricsJson;
      if (want_shards) request.flags |= net::StatsRequest::kIncludeShards;
      request_message = request;
    }
    if (!conn->send_all(frame_payload(net::encode(request_message)))) {
      std::fprintf(stderr, "volley_stats: send failed\n");
      return 1;
    }

    // The socket stays blocking; bound the wait with a wall-clock deadline
    // so a wedged coordinator cannot hang the tool past timeout_ms.
    FrameReader reader;
    std::array<std::byte, 8192> buf;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    std::optional<net::Message> reply;
    while (!reply && std::chrono::steady_clock::now() < deadline) {
      const auto n = conn->recv_some(buf);
      if (!n) continue;   // spurious wakeup on a blocking socket
      if (*n == 0) break; // peer closed before replying
      reader.feed(std::span<const std::byte>(buf.data(), *n));
      if (auto payload = reader.next()) reply = net::decode(*payload);
    }
    if (!reply) {
      std::fprintf(stderr, "volley_stats: no reply within %d ms\n",
                   timeout_ms);
      return 1;
    }
    if (want_tasks) {
      const auto* list = std::get_if<net::TaskListReply>(&*reply);
      if (!list) {
        std::fprintf(stderr, "volley_stats: unexpected reply type\n");
        return 1;
      }
      std::printf("# coordinator %s:%u registry_version=%llu tasks=%zu\n",
                  host.c_str(), port,
                  static_cast<unsigned long long>(list->registry_version),
                  list->tasks.size());
      std::printf("%6s %8s %12s %12s %10s  %s\n", "task", "epoch",
                  "threshold", "err", "period", "allowance split");
      for (const auto& task : list->tasks) {
        std::printf("%6u %8llu %12.4f %12.6f %10lld  ", task.task,
                    static_cast<unsigned long long>(task.epoch),
                    task.global_threshold, task.error_allowance,
                    static_cast<long long>(task.updating_period));
        for (std::size_t i = 0; i < task.allowance_split.size(); ++i) {
          const auto& [monitor, allowance] = task.allowance_split[i];
          std::printf("%s%u:%.6f", i == 0 ? "" : " ", monitor, allowance);
        }
        std::printf("\n");
      }
      return 0;
    }
    const auto* stats = std::get_if<net::StatsReply>(&*reply);
    if (!stats) {
      std::fprintf(stderr, "volley_stats: unexpected reply type\n");
      return 1;
    }

    std::printf("# coordinator %s:%u\n", host.c_str(), port);
    std::printf("# global_polls=%lld reallocations=%lld alerts=%lld\n",
                static_cast<long long>(stats->global_polls),
                static_cast<long long>(stats->reallocations),
                static_cast<long long>(stats->alerts));
    if (want_shards) {
      std::printf("# shard sessions: %zu\n", stats->shards.size());
      std::printf("%6s %10s %14s %18s\n", "shard", "monitors", "allowance",
                  "last_summary_ms");
      for (const auto& row : stats->shards) {
        if (row.last_summary_age_ms < 0) {
          std::printf("%6u %10u %14.6f %18s\n", row.shard, row.monitors,
                      row.allowance, "never");
        } else {
          std::printf("%6u %10u %14.6f %18lld\n", row.shard, row.monitors,
                      row.allowance,
                      static_cast<long long>(row.last_summary_age_ms));
        }
      }
    }
    std::fputs(stats->metrics.c_str(), stdout);
    if (!stats->metrics.empty() && stats->metrics.back() != '\n')
      std::fputc('\n', stdout);
    if (want_trace) {
      std::printf("# trace (newest events, oldest first)\n");
      std::fputs(stats->trace_jsonl.c_str(), stdout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "volley_stats: %s\n", e.what());
    return 1;
  }
}
