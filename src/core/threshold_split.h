// Local-threshold decomposition strategies (paper Section II-A: choose
// T_1..T_n with sum T_i = T so that "as long as v_i < T_i, no violation is
// possible" — monitors then communicate only on local violations).
//
// How T is split determines how often local violations (and the global
// polls they trigger) happen. Three strategies, from naive to robust:
//
//  * split_even            — T/n each. Fine for homogeneous monitors; a
//    high-volume monitor under a Zipf workload will violate constantly.
//  * split_by_tail         — proportional to each monitor's own high
//    percentile. Follows each stream's alert scale, but anomaly-dominated
//    tails can starve quiet monitors.
//  * split_by_spread       — proportional to a robust scale estimate
//    (inter-percentile spread, default p90-p10, immune to rare anomaly
//    ticks): every monitor gets the same margin in its own sigma units,
//    which minimizes the worst per-monitor violation rate for roughly
//    Gaussian noise.
//
// All strategies return thresholds that sum to T exactly (up to floating
// error) and are validated by tests/test_threshold_split.cpp.
#pragma once

#include <span>
#include <vector>

#include "core/task.h"
#include "trace/trace.h"

namespace volley {

/// T/n for every monitor.
std::vector<double> split_even(double global_threshold, std::size_t monitors);

/// Proportional to each series' (100-k)-th percentile (clamped to a small
/// positive floor so degenerate series still receive a share).
std::vector<double> split_by_tail(double global_threshold,
                                  std::span<const TimeSeries> series,
                                  double k_percent);

/// Proportional to each series' inter-percentile spread.
std::vector<double> split_by_spread(double global_threshold,
                                    std::span<const TimeSeries> series,
                                    double lo_percentile = 10.0,
                                    double hi_percentile = 90.0);

}  // namespace volley
