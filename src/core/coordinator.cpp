#include "core/coordinator.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace_events.h"

namespace volley {

namespace {

struct CoordinatorMetrics {
  obs::Counter* polls;
  obs::Counter* alerts;
  obs::Counter* reallocations;
  obs::HistogramMetric* allowance_share;

  static CoordinatorMetrics make(obs::MetricsRegistry& m) {
    return CoordinatorMetrics{
        &m.counter("volley_coordinator_global_polls_total",
                   "Global polls triggered by local violation reports"),
        &m.counter("volley_coordinator_global_violations_total",
                   "Global polls whose aggregate exceeded the task threshold "
                   "T (state alerts)"),
        &m.counter("volley_coordinator_reallocations_total",
                   "Error-allowance reallocation rounds (once per updating "
                   "period)"),
        &m.histogram("volley_coordinator_allowance_share", 0.0, 1.0, 20,
                     "Per-monitor share err_i/err assigned at each "
                     "reallocation"),
    };
  }

  static const CoordinatorMetrics& get() {
    return obs::scoped_handles(&make);
  }
};

}  // namespace

Coordinator::Coordinator(const TaskSpec& spec,
                         std::vector<std::unique_ptr<Monitor>> monitors,
                         std::unique_ptr<AllowanceAllocator> allocator)
    : spec_(spec), monitors_(std::move(monitors)),
      allocator_(std::move(allocator)) {
  spec_.validate();
  if (monitors_.empty())
    throw std::invalid_argument("Coordinator: needs at least one monitor");
  // Initial allocation: even split (Section IV-B, Figure 3 step 1).
  const double share =
      spec_.error_allowance / static_cast<double>(monitors_.size());
  allocation_.assign(monitors_.size(), share);
  for (auto& m : monitors_) m->set_error_allowance(share);
  next_update_ = spec_.updating_period;
}

Coordinator::TickResult Coordinator::run_tick(Tick t) {
  TickResult result;
  for (auto& m : monitors_) {
    if (!m->due(t)) continue;
    const auto outcome = m->step(t);
    result.any_due = true;
    if (outcome.local_violation) ++result.local_violations;
  }

  if (result.local_violations > 0) {
    // Global poll: collect the value of every monitor at this tick. The
    // monitors that just sampled serve their datum from cache; the rest
    // pay one forced sampling operation each.
    result.global_poll = true;
    ++global_polls_;
    CoordinatorMetrics::get().polls->inc();
    double sum = 0.0;
    for (auto& m : monitors_) {
      sum += m->force_sample(t).sample.value;
    }
    result.global_value = sum;
    result.global_violation = sum > spec_.global_threshold;
    if (result.global_violation) {
      ++global_violations_;
      CoordinatorMetrics::get().alerts->inc();
      obs::trace().record(obs::TraceKind::kAlertRaised, t, 0, sum,
                          spec_.global_threshold);
    }
  }

  maybe_reallocate(t);
  return result;
}

void Coordinator::maybe_reallocate(Tick t) {
  if (t < next_update_) return;
  next_update_ = t + spec_.updating_period;
  if (!allocator_) return;

  std::vector<CoordStats> stats;
  stats.reserve(monitors_.size());
  for (auto& m : monitors_) stats.push_back(m->drain_coord_stats());

  const std::vector<double> previous = allocation_;
  allocation_ = allocator_->allocate(spec_.error_allowance, allocation_,
                                     stats);
  const auto& om = CoordinatorMetrics::get();
  for (std::size_t i = 0; i < monitors_.size(); ++i) {
    monitors_[i]->set_error_allowance(allocation_[i]);
    if (spec_.error_allowance > 0.0)
      om.allowance_share->observe(allocation_[i] / spec_.error_allowance);
    if (allocation_[i] != previous[i]) {
      obs::trace().record(obs::TraceKind::kAllowanceAdjusted, t,
                          static_cast<std::uint32_t>(i), allocation_[i],
                          previous[i]);
    }
  }
  ++reallocations_;
  om.reallocations->inc();
}

std::int64_t Coordinator::total_ops() const {
  std::int64_t ops = 0;
  for (const auto& m : monitors_) ops += m->total_ops();
  return ops;
}

double Coordinator::total_cost() const {
  double cost = 0.0;
  for (const auto& m : monitors_) cost += m->total_cost();
  return cost;
}

}  // namespace volley
