#include "core/coordinator.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace_events.h"

namespace volley {

namespace {

struct CoordinatorMetrics {
  obs::Counter* polls;
  obs::Counter* alerts;
  obs::Counter* reallocations;
  obs::HistogramMetric* allowance_share;

  static CoordinatorMetrics make(obs::MetricsRegistry& m) {
    return CoordinatorMetrics{
        &m.counter("volley_coordinator_global_polls_total",
                   "Global polls triggered by local violation reports"),
        &m.counter("volley_coordinator_global_violations_total",
                   "Global polls whose aggregate exceeded the task threshold "
                   "T (state alerts)"),
        &m.counter("volley_coordinator_reallocations_total",
                   "Error-allowance reallocation rounds (once per updating "
                   "period)"),
        &m.histogram("volley_coordinator_allowance_share", 0.0, 1.0, 20,
                     "Per-monitor share err_i/err assigned at each "
                     "reallocation"),
    };
  }

  static const CoordinatorMetrics& get() {
    return obs::scoped_handles(&make);
  }
};

/// Minimum number of due monitors before the batched begin_step /
/// beta_bound_batch / finish_step drain pays for its lane bookkeeping;
/// below this the per-monitor step() loop is at least as fast. The drain
/// is bit-identical either way, so the constant is pure tuning.
constexpr std::size_t kBatchMin = 8;

/// VOLLEY_SCAN_TICKS: set (and not "0") forces the legacy scan-all loop.
bool scan_ticks_from_env() {
  // Read once per Coordinator construction, before any monitor threads
  // exist; nothing in-tree calls setenv concurrently.
  const char* v = std::getenv("VOLLEY_SCAN_TICKS");  // NOLINT(concurrency-mt-unsafe)
  return v != nullptr && std::strcmp(v, "0") != 0;
}

}  // namespace

Coordinator::Coordinator(const TaskSpec& spec,
                         std::vector<std::unique_ptr<Monitor>> monitors,
                         std::unique_ptr<AllowanceAllocator> allocator)
    : spec_(spec), monitors_(std::move(monitors)),
      allocator_(std::move(allocator)) {
  spec_.validate();
  if (monitors_.empty())
    throw std::invalid_argument("Coordinator: needs at least one monitor");
  // Initial allocation: even split (Section IV-B, Figure 3 step 1).
  const double share =
      spec_.error_allowance / static_cast<double>(monitors_.size());
  allocation_.assign(monitors_.size(), share);
  for (auto& m : monitors_) m->set_error_allowance(share);
  next_update_ = spec_.updating_period;

  scan_ticks_ = scan_ticks_from_env();
  Tick max_interval = 1;
  for (const auto& m : monitors_)
    max_interval = std::max(max_interval, m->sampler().max_interval());
  window_ = static_cast<std::size_t>(max_interval) + 2;
  buckets_.resize(window_);
  rebuild_due_index();
}

void Coordinator::set_scan_ticks(bool scan) {
  if (scan == scan_ticks_) return;
  scan_ticks_ = scan;
  // Re-entering indexed mode: the ring is stale (scan mode doesn't maintain
  // it), so re-derive it from the monitors' current schedules.
  if (!scan) rebuild_due_index();
}

void Coordinator::due_index_insert(MonitorId id, Tick next) {
  if (next < cursor_) next = cursor_;
  // The ring slot is derived from the cached cursor slot instead of
  // `next % window_`: window_ is not a compile-time constant, so a real
  // division here costs more than scanning a handful of monitors would —
  // small tasks in the event-driven fleet pay it on every sample.
  auto offset = static_cast<std::size_t>(next - cursor_);
  if (offset >= window_) offset %= window_;  // never taken by the invariant
  std::size_t slot = cursor_slot_ + offset;
  if (slot >= window_) slot -= window_;
  buckets_[slot].push_back(id);
}

void Coordinator::rebuild_due_index() {
  for (auto& bucket : buckets_) bucket.clear();
  cursor_slot_ = static_cast<std::size_t>(cursor_) % window_;
  for (MonitorId i = 0; i < monitors_.size(); ++i)
    due_index_insert(i, monitors_[i]->next_sample_tick());
}

void Coordinator::collect_due(Tick t) {
  due_scratch_.clear();
  if (t < cursor_) return;  // a re-run tick never has anything pending
  // Every pending entry lives within window_ ticks of cursor_, so a jump
  // larger than the ring (a task's first tick at t >> 0) is covered by
  // draining every bucket once.
  const Tick jump = t - cursor_ + 1;
  const auto window = static_cast<Tick>(window_);
  const Tick span = jump > window ? window : jump;
  auto slot = cursor_slot_;
  for (Tick k = 0; k < span; ++k) {
    auto& bucket = buckets_[slot];
    if (!bucket.empty()) {
      due_scratch_.insert(due_scratch_.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    if (++slot == window_) slot = 0;
  }
  cursor_ = t + 1;
  // The loop's final slot is the new cursor's slot whenever the cursor
  // advanced by exactly `span`; a jump past the ring (rare: first tick of
  // a late-starting task) recomputes it.
  cursor_slot_ = jump == span ? slot : static_cast<std::size_t>(cursor_) % window_;
  // Buckets accumulate ids in insertion order across ticks; the legacy
  // contract is ascending id order among same-tick monitors.
  if (due_scratch_.size() > 1)
    std::sort(due_scratch_.begin(), due_scratch_.end());
}

Coordinator::TickResult Coordinator::run_tick(Tick t) {
  TickResult result;
  if (scan_ticks_) {
    // Legacy path: scan every monitor. Kept verbatim as the identity
    // baseline (VOLLEY_SCAN_TICKS, identity tests, bench_scale).
    for (auto& m : monitors_) {
      if (!m->due(t)) continue;
      const auto outcome = m->step(t);
      result.any_due = true;
      if (outcome.local_violation) ++result.local_violations;
    }
    if (t >= cursor_) cursor_ = t + 1;
  } else {
    collect_due(t);
    if (due_scratch_.size() >= kBatchMin && !scalar_beta()) {
      // Batched drain: every due monitor's β̄ is evaluated in one
      // likelihood-kernel invocation (DESIGN.md §11). Side effects run in
      // the finish phase, in ascending id order, so metrics, traces, and
      // results stay bit-identical to the per-monitor loop below.
      beta_batch_.clear();
      for (const MonitorId id : due_scratch_)
        monitors_[id]->begin_step(t, beta_batch_);
      beta_bound_batch(beta_batch_);
      std::size_t lane = 0;
      for (const MonitorId id : due_scratch_) {
        Monitor& m = *monitors_[id];
        const auto outcome = m.finish_step(t, beta_batch_.beta[lane++]);
        result.any_due = true;
        if (outcome.local_violation) ++result.local_violations;
        due_index_insert(id, m.next_sample_tick());
      }
    } else {
      for (const MonitorId id : due_scratch_) {
        Monitor& m = *monitors_[id];
        const auto outcome = m.step(t);
        result.any_due = true;
        if (outcome.local_violation) ++result.local_violations;
        due_index_insert(id, m.next_sample_tick());
      }
    }
  }

  if (result.local_violations > 0) {
    // Global poll: collect the value of every monitor at this tick. The
    // monitors that just sampled serve their datum from cache; the rest
    // pay one forced sampling operation each.
    result.global_poll = true;
    ++global_polls_;
    CoordinatorMetrics::get().polls->inc();
    double sum = 0.0;
    for (auto& m : monitors_) {
      sum += m->force_sample(t).sample.value;
    }
    result.global_value = sum;
    result.global_violation = sum > spec_.global_threshold;
    if (result.global_violation) {
      ++global_violations_;
      CoordinatorMetrics::get().alerts->inc();
      if (obs::trace_enabled()) {
        obs::trace().record(obs::TraceKind::kAlertRaised, t, 0, sum,
                            spec_.global_threshold);
      }
    }
    // The poll rescheduled every monitor that wasn't already sampled at t,
    // invalidating their ring entries wholesale; re-derive the index.
    if (!scan_ticks_) rebuild_due_index();
  }

  maybe_reallocate(t);
  return result;
}

double Coordinator::force_poll(Tick t) {
  double sum = 0.0;
  for (auto& m : monitors_) sum += m->force_sample(t).sample.value;
  // Every monitor that wasn't already sampled at t rescheduled; the ring's
  // entries are stale wholesale (same invariant as the in-tick poll).
  if (!scan_ticks_) rebuild_due_index();
  return sum;
}

void Coordinator::set_error_budget(double err) {
  if (err < 0.0 || err > 1.0)
    throw std::invalid_argument("Coordinator: error budget in [0,1]");
  spec_.error_allowance = err;
  double sum = 0.0;
  for (double a : allocation_) sum += a;
  if (sum > 0.0) {
    for (double& a : allocation_) a *= err / sum;
  } else {
    const double share = err / static_cast<double>(allocation_.size());
    for (double& a : allocation_) a = share;
  }
  for (std::size_t i = 0; i < monitors_.size(); ++i)
    monitors_[i]->set_error_allowance(allocation_[i]);
}

void Coordinator::maybe_reallocate(Tick t) {
  if (t < next_update_) return;
  next_update_ = t + spec_.updating_period;
  if (!allocator_) return;

  std::vector<CoordStats> stats;
  stats.reserve(monitors_.size());
  for (auto& m : monitors_) stats.push_back(m->drain_coord_stats());
  last_period_stats_ = CoordStats{};
  for (const CoordStats& s : stats) {
    last_period_stats_.avg_gain += s.avg_gain;
    last_period_stats_.avg_allowance += s.avg_allowance;
    last_period_stats_.observations += s.observations;
  }

  const std::vector<double> previous = allocation_;
  allocation_ = allocator_->allocate(spec_.error_allowance, allocation_,
                                     stats);
  const auto& om = CoordinatorMetrics::get();
  for (std::size_t i = 0; i < monitors_.size(); ++i) {
    monitors_[i]->set_error_allowance(allocation_[i]);
    if (spec_.error_allowance > 0.0)
      om.allowance_share->observe(allocation_[i] / spec_.error_allowance);
    if (allocation_[i] != previous[i]) {
      obs::trace().record(obs::TraceKind::kAllowanceAdjusted, t,
                          static_cast<std::uint32_t>(i), allocation_[i],
                          previous[i]);
    }
  }
  ++reallocations_;
  om.reallocations->inc();
}

std::int64_t Coordinator::total_ops() const {
  std::int64_t ops = 0;
  for (const auto& m : monitors_) ops += m->total_ops();
  return ops;
}

double Coordinator::total_cost() const {
  double cost = 0.0;
  for (const auto& m : monitors_) cost += m->total_cost();
  return cost;
}

}  // namespace volley
