// Fast evaluation kernel for the Chebyshev mis-detection bound β̄(I)
// (DESIGN.md §11; the derivation itself lives in likelihood.h and is not
// repeated here).
//
// `beta_bound_with(value, threshold, stats, I, chebyshev_step_bound)` in
// likelihood.h is the *identity baseline*: an O(I) loop with two divisions
// per step. After the due index (DESIGN.md §10) made idle ticks O(1), that
// loop dominated every sample tick (ROADMAP "kill the β̄ bottleneck"). This
// kernel removes it with three layers, every one of which returns the
// **bitwise-identical** double the baseline would have returned:
//
//  1. Zero-β̄ certificate (O(1)). When every per-step survival factor
//     fl(1 - p_i) rounds to exactly 1.0 — the common case for a quiet
//     metric far below its threshold, which is precisely when adaptive
//     sampling has stretched I to Im — the whole product is exactly 1.0
//     and β̄ is exactly 0.0. Two endpoint evaluations of k_i certify this
//     (k is monotone in i), with a 2× headroom over the rounding threshold
//     and a conditioning guard on the margin subtraction; DESIGN.md §11
//     gives the ulp argument.
//
//  2. Incremental prefix reuse (O(ΔI)). A small per-estimator memo
//     (`BetaBoundCache`) keeps the survive product after the last
//     evaluation. While (value, threshold, mean, stddev) are bitwise
//     unchanged, re-evaluating at the same I is a lookup and at a larger I
//     extends the product from the cached prefix — the same multiply
//     sequence the baseline performs, hence bitwise identical. (A log-space
//     running sum Σ log(k_i²/(1+k_i²)) was considered and rejected:
//     exp(Σlog) is not the FP product, so it cannot meet the identity
//     contract; the prefix-product memo gives the same O(1)/O(ΔI)
//     re-evaluation for the AIMD access pattern. See DESIGN.md §11.)
//
//  3. Blocked/SIMD step loop. When the loop must run, per-step factors are
//     computed block-wise in a branch-light form the compiler can
//     vectorize (`#pragma omp simd` when built with -fopenmp-simd; plain
//     scalar code otherwise — selected at build time, no runtime dispatch),
//     then folded serially in i order so the product and its saturation
//     early-exits match the baseline step for step.
//
// `beta_bound_batch` evaluates a structure-of-arrays fleet of lanes in one
// call — the coordinator's sample-tick drain feeds every due monitor into
// it, so a phase-locked fleet is one kernel invocation instead of 50k
// virtual-call chains. Lanes carry the estimator options that matter
// (cold start, Gaussian ablation bound) so a batch evaluation is exactly
// `ViolationLikelihoodEstimator::beta_bound` per lane.
//
// Escape hatch / identity baseline: `set_scalar_beta(true)` (env:
// `VOLLEY_SCALAR_BETA=1`, read once like VOLLEY_SCAN_TICKS) routes every
// evaluation back through the verbatim baseline loop and disables the
// coordinator's batch drain. tests/test_likelihood_kernel.cpp asserts
// kernel == baseline bitwise across a property sweep; bench_scale
// re-asserts identical runs scalar-vs-kernel on every invocation.
//
// Thread-safety: the flag accessors are thread-safe (relaxed atomic). A
// `BetaBoundCache` belongs to one estimator and inherits its confinement
// (one monitor, one thread). A `BetaBatch` is scratch owned by one
// coordinator; concurrent coordinator shards must each own their batch —
// the kernel itself keeps no mutable global state, so shards never
// contend (the contract the sharding work in ROADMAP relies on).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "core/likelihood.h"

namespace volley {

/// True when the legacy scalar β̄ path is forced. Initialized from the
/// VOLLEY_SCALAR_BETA environment variable (set and not "0") on first use.
bool scalar_beta();

/// Overrides the escape hatch at runtime (tests and benches flip it per
/// run to prove both paths agree).
void set_scalar_beta(bool scalar);

/// Chebyshev β̄(I), bitwise identical to
/// `beta_bound_with(value, threshold, stats, interval, chebyshev_step_bound)`.
/// `cache` may be null (no reuse across calls).
double beta_bound_chebyshev(double value, double threshold,
                            const DeltaStats& stats, Tick interval,
                            BetaBoundCache* cache = nullptr);

/// Structure-of-arrays lane set for one batch evaluation. Vectors are
/// parallel; `clear()` keeps capacity so a reused batch allocates nothing
/// in steady state (same discipline as the due index's scratch).
struct BetaBatch {
  std::vector<double> value;
  std::vector<double> threshold;
  std::vector<double> mean;
  std::vector<double> stddev;
  std::vector<Tick> interval;
  std::vector<std::uint8_t> cold;      // 1: no statistics yet -> β̄ = 1
  std::vector<std::uint8_t> gaussian;  // 1: kGaussian ablation bound
  std::vector<BetaBoundCache*> cache;  // per-lane memo, entries may be null
  std::vector<double> beta;            // output, sized by beta_bound_batch

  void clear();
  std::size_t size() const { return value.size(); }
  void push_lane(double v, double t, const DeltaStats& s, Tick i,
                 bool is_cold, bool is_gaussian, BetaBoundCache* memo);
};

/// Evaluates every lane: per lane the result is bitwise identical to what
/// `ViolationLikelihoodEstimator::beta_bound` would return for that
/// estimator state — including the cold-start 1.0, the Gaussian ablation
/// path, and the scalar_beta() escape hatch.
void beta_bound_batch(BetaBatch& batch);

}  // namespace volley
