#include "core/likelihood_kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace volley {

namespace {

// `#pragma omp simd` when the build passes -fopenmp-simd (top-level CMake
// probes the flag and defines VOLLEY_OPENMP_SIMD); expands to nothing
// otherwise, leaving the identical scalar loop. No runtime dispatch: both
// variants execute the same expression sequence per element, so the
// selection cannot change results, only speed (DESIGN.md §11).
#if defined(VOLLEY_OPENMP_SIMD)
#define VOLLEY_SIMD _Pragma("omp simd")
#else
#define VOLLEY_SIMD
#endif

/// Factor block size: long enough to fill 2–8-wide double vectors and
/// amortize the loop overhead, short enough that the work thrown away
/// when a saturation early-exit lands mid-block stays negligible.
constexpr std::size_t kBlock = 16;

/// Every certified k satisfies k² ≥ 2^56, so p = fl(1/fl(1+fl(k²))) ≤
/// 2^-55.9 < 2^-54, and fl(1 - p) is exactly 1.0 under round-to-nearest
/// (ties at 2^-54 round to even, i.e. to 1.0). The 2× headroom over the
/// 2^27 the rounding argument needs absorbs every intermediate rounding
/// of k itself; see DESIGN.md §11 for the full ulp budget.
constexpr double kCertMinK = 0x1p28;

/// Conditioning floor for the margin subtraction T − v − i·μ: the margin
/// must carry at least 2^-20 of the subtraction's magnitude at both
/// endpoints. Margins are linear in i, so interior margins are bounded by
/// the endpoints and keep relative rounding error ≲ 2^-32 — far inside
/// the certificate's headroom. A cancellation-degenerate margin (smaller
/// than this floor) fails the certificate and takes the exact loop.
constexpr double kCertCondition = 0x1p-20;

/// True when fl(1 − p_i) == 1.0 for every step i in [lo, hi], making the
/// survive product over that range — and hence β̄'s value — bitwise
/// unchanged by those steps. k_i and the margin are monotone in i (their
/// derivatives have constant sign), so two endpoint checks bound the
/// interior. σ == 0 qualifies via the margin checks alone: each
/// deterministic-drift step with margin > 0 contributes an exact 1.0.
bool unit_factor_certificate(double tv, const DeltaStats& s, Tick lo,
                             Tick hi) {
  if (s.stddev < 0.0) return false;  // never produced by OnlineStats
  const Tick ends[2] = {lo, hi};
  for (const Tick e : ends) {
    const double di = static_cast<double>(e);
    const double drift = di * s.mean;
    const double margin = tv - drift;
    // Written as positive conditions so a NaN anywhere fails the
    // certificate and falls back to the exact loop.
    if (!(margin > kCertCondition * (std::fabs(tv) + std::fabs(drift))))
      return false;
    if (s.stddev > 0.0 && !(margin / (di * s.stddev) >= kCertMinK))
      return false;
  }
  return true;
}

/// Per-step survival factors fl(1 − chebyshev_step_bound(v, T, s, i)) for
/// i in [i0, i0+n), σ > 0 case. Mirrors chebyshev_step_bound's expression
/// sequence exactly — including NaN behavior: a NaN k fails `k <= 0`
/// there and falls through to the division, so the select keys on k <= 0.
void chebyshev_factors(double tv, const DeltaStats& s, Tick i0,
                       std::size_t n, double* out) {
  VOLLEY_SIMD
  for (std::size_t j = 0; j < n; ++j) {
    const double di = static_cast<double>(i0 + static_cast<Tick>(j));
    const double margin = tv - di * s.mean;
    const double k = margin / (di * s.stddev);
    const double p = 1.0 / (1.0 + k * k);
    out[j] = k <= 0.0 ? 0.0 : 1.0 - p;
  }
}

/// σ ≤ 0 (deterministic drift): per-step bound is 0 or 1 exactly, so the
/// factor is 1.0 or 0.0.
void deterministic_factors(double tv, const DeltaStats& s, Tick i0,
                           std::size_t n, double* out) {
  VOLLEY_SIMD
  for (std::size_t j = 0; j < n; ++j) {
    const double di = static_cast<double>(i0 + static_cast<Tick>(j));
    const double margin = tv - di * s.mean;
    out[j] = margin > 0.0 ? 1.0 : 0.0;
  }
}

struct LoopOutcome {
  double result{1.0};
  double survive{1.0};
  Tick reached{0};     // last step folded into `survive`
  bool saturated{false};
};

/// The baseline product loop, factors computed block-wise then folded
/// serially in i order with the baseline's two early-exit checks after
/// every multiply. Factors computed past an early-exit are discarded
/// (they have no side effects), so results match step for step.
LoopOutcome beta_loop(double tv, const DeltaStats& s, Tick from,
                      double survive0, Tick interval) {
  double factors[kBlock];
  LoopOutcome out;
  out.survive = survive0;
  Tick i = from;
  while (i <= interval) {
    const auto n = static_cast<std::size_t>(
        std::min<Tick>(static_cast<Tick>(kBlock), interval - i + 1));
    if (s.stddev <= 0.0) {
      deterministic_factors(tv, s, i, n, factors);
    } else {
      chebyshev_factors(tv, s, i, n, factors);
    }
    for (std::size_t j = 0; j < n; ++j) {
      out.survive *= factors[j];
      if (out.survive <= 0.0 || 1.0 - out.survive == 1.0) {
        out.result = 1.0;
        out.reached = i + static_cast<Tick>(j);
        out.saturated = true;
        return out;
      }
    }
    i += static_cast<Tick>(n);
  }
  out.result = 1.0 - out.survive;
  out.reached = interval;
  return out;
}

void store(BetaBoundCache* cache, double value, double threshold,
           const DeltaStats& stats, const LoopOutcome& out) {
  if (cache == nullptr) return;
  cache->value = value;
  cache->threshold = threshold;
  cache->stats = stats;
  cache->interval = out.reached;
  cache->survive = out.survive;
  cache->result = out.result;
  cache->saturated = out.saturated;
}

std::atomic<bool>& scalar_beta_flag() {
  static std::atomic<bool> flag{[] {
    // Read once at first use, like VOLLEY_SCAN_TICKS; nothing in-tree
    // calls setenv concurrently.
    const char* v = std::getenv("VOLLEY_SCALAR_BETA");  // NOLINT(concurrency-mt-unsafe)
    return v != nullptr && std::strcmp(v, "0") != 0;
  }()};
  return flag;
}

}  // namespace

bool scalar_beta() {
  return scalar_beta_flag().load(std::memory_order_relaxed);
}

void set_scalar_beta(bool scalar) {
  scalar_beta_flag().store(scalar, std::memory_order_relaxed);
}

double beta_bound_chebyshev(double value, double threshold,
                            const DeltaStats& stats, Tick interval,
                            BetaBoundCache* cache) {
  if (interval < 1)
    throw std::invalid_argument("beta_bound_chebyshev: interval >= 1");
  const double tv = threshold - value;

  if (cache != nullptr && cache->matches(value, threshold, stats)) {
    if (cache->saturated) {
      // The early-exit fired at step cache->interval; any I at or past it
      // exits at the same step with the same 1.0.
      if (interval >= cache->interval) return 1.0;
    } else if (interval == cache->interval) {
      return cache->result;
    } else if (interval > cache->interval) {
      // Extend the cached prefix: same multiply sequence the baseline
      // runs from scratch, continued from term cache->interval + 1. If
      // the remaining factors are certifiably all 1.0 the product — and
      // the already-rounded β̄ — is unchanged bit for bit.
      if (unit_factor_certificate(tv, stats, cache->interval + 1,
                                  interval)) {
        cache->interval = interval;
        return cache->result;
      }
      const LoopOutcome ext =
          beta_loop(tv, stats, cache->interval + 1, cache->survive, interval);
      store(cache, value, threshold, stats, ext);
      return ext.result;
    }
    // interval < cache->interval: the prefix cannot be un-multiplied;
    // fall through to a fresh evaluation (which refreshes the memo).
  }

  if (unit_factor_certificate(tv, stats, 1, interval)) {
    if (cache != nullptr) {
      cache->value = value;
      cache->threshold = threshold;
      cache->stats = stats;
      cache->interval = interval;
      cache->survive = 1.0;
      cache->result = 0.0;
      cache->saturated = false;
    }
    return 0.0;
  }

  const LoopOutcome full = beta_loop(tv, stats, 1, 1.0, interval);
  store(cache, value, threshold, stats, full);
  return full.result;
}

void BetaBatch::clear() {
  value.clear();
  threshold.clear();
  mean.clear();
  stddev.clear();
  interval.clear();
  cold.clear();
  gaussian.clear();
  cache.clear();
  beta.clear();
}

void BetaBatch::push_lane(double v, double t, const DeltaStats& s, Tick i,
                          bool is_cold, bool is_gaussian,
                          BetaBoundCache* memo) {
  value.push_back(v);
  threshold.push_back(t);
  mean.push_back(s.mean);
  stddev.push_back(s.stddev);
  interval.push_back(i);
  cold.push_back(is_cold ? 1 : 0);
  gaussian.push_back(is_gaussian ? 1 : 0);
  cache.push_back(memo);
  beta.push_back(0.0);
}

void beta_bound_batch(BetaBatch& batch) {
  const std::size_t lanes = batch.size();
  batch.beta.resize(lanes);
  const bool scalar = scalar_beta();
  for (std::size_t l = 0; l < lanes; ++l) {
    if (batch.cold[l] != 0) {
      batch.beta[l] = 1.0;  // cold start: conservative bound (likelihood.h)
      continue;
    }
    const DeltaStats s{batch.mean[l], batch.stddev[l]};
    if (batch.gaussian[l] != 0) {
      // The Gaussian ablation bound has no kernel fast path (erfc per
      // step); it runs the baseline loop exactly as the estimator does.
      batch.beta[l] = beta_bound_with(batch.value[l], batch.threshold[l], s,
                                      batch.interval[l], gaussian_step_bound);
    } else if (scalar) {
      batch.beta[l] = beta_bound_with(batch.value[l], batch.threshold[l], s,
                                      batch.interval[l], chebyshev_step_bound);
    } else {
      batch.beta[l] = beta_bound_chebyshev(batch.value[l], batch.threshold[l],
                                           s, batch.interval[l],
                                           batch.cache[l]);
    }
  }
}

}  // namespace volley
