// Abstraction over "what a sampling operation returns".
//
// A MetricSource yields the monitored state value at a given tick (one tick
// = one default sampling interval Id). Trace-driven sources (src/trace,
// src/tasks) replay synthetic datacenter data; tests use closures.
//
// `sampling_cost` reports the abstract cost of performing one sampling
// operation at that tick (e.g. packets that deep-packet-inspection must
// process for the DDoS task). The Dom0 CPU model of Figure 6 integrates it.
#pragma once

#include <functional>
#include <utility>

#include "common/clock.h"

namespace volley {

class MetricSource {
 public:
  virtual ~MetricSource() = default;

  /// Monitored state value at tick t. Must be callable for any t in the
  /// source's advertised range and is idempotent (sampling twice at the
  /// same tick returns the same value).
  virtual double value_at(Tick t) const = 0;

  /// Number of ticks for which values exist (t in [0, length())).
  virtual Tick length() const = 0;

  /// Abstract cost units of one sampling operation at tick t. Default: 1
  /// (every operation costs the same), matching the paper's op counting.
  virtual double sampling_cost(Tick t) const {
    (void)t;
    return 1.0;
  }
};

/// Adapts a callable (Tick -> double) into a MetricSource; handy in tests
/// and examples.
class CallableSource final : public MetricSource {
 public:
  CallableSource(std::function<double(Tick)> fn, Tick length)
      : fn_(std::move(fn)), length_(length) {}

  double value_at(Tick t) const override { return fn_(t); }
  Tick length() const override { return length_; }

 private:
  std::function<double(Tick)> fn_;
  Tick length_;
};

}  // namespace volley
