#include "core/error_allocation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace_events.h"

namespace volley {

namespace {

struct AllocationMetrics {
  obs::Counter* uniform_skips;
  obs::Counter* floor_clamps;
  obs::Counter* reclaims;

  static AllocationMetrics make(obs::MetricsRegistry& m) {
    return AllocationMetrics{
        &m.counter("volley_allocation_uniform_skips_total",
                   "Reallocation rounds skipped because yields were within "
                   "the uniformity band"),
        &m.counter("volley_allocation_floor_clamps_total",
                   "Per-monitor assignments raised to the err/100 minimum"),
        &m.counter("volley_allowance_reclaims_total",
                   "Dead monitors' allowance redistributed to survivors"),
    };
  }

  static const AllocationMetrics& get() {
    return obs::scoped_handles(&make);
  }
};

}  // namespace

std::vector<double> EvenAllocation::allocate(double err,
                                             std::span<const double> current,
                                             std::span<const CoordStats>) {
  if (current.empty())
    throw std::invalid_argument("EvenAllocation: no monitors");
  return std::vector<double>(current.size(),
                             err / static_cast<double>(current.size()));
}

AdaptiveAllocation::AdaptiveAllocation(const Options& options)
    : options_(options) {
  if (options.min_fraction < 0.0 || options.min_fraction > 1.0)
    throw std::invalid_argument("AdaptiveAllocation: min_fraction in [0,1]");
  if (options.min_fraction * 2.0 > 1.0)
    throw std::invalid_argument(
        "AdaptiveAllocation: min_fraction too large to satisfy for >=2 "
        "monitors");
  if (options.uniformity_band < 0.0)
    throw std::invalid_argument("AdaptiveAllocation: uniformity_band >= 0");
  if (options.smoothing <= 0.0 || options.smoothing > 1.0)
    throw std::invalid_argument("AdaptiveAllocation: smoothing in (0,1]");
}

std::vector<double> clamp_and_normalize(std::vector<double> alloc,
                                        double total, double floor_value) {
  const std::size_t n = alloc.size();
  if (n == 0) throw std::invalid_argument("clamp_and_normalize: empty");
  if (floor_value * static_cast<double>(n) > total) {
    throw std::invalid_argument(
        "clamp_and_normalize: floor infeasible for total");
  }
  // Raise entries below the floor; take the excess proportionally from the
  // mass above the floor. Iterate because lowering can push entries below.
  std::int64_t clamped = 0;
  for (double a : alloc) {
    if (a < floor_value) ++clamped;
  }
  if (clamped > 0) AllocationMetrics::get().floor_clamps->inc(clamped);
  for (int pass = 0; pass < 64; ++pass) {
    double deficit = 0.0;
    double above = 0.0;
    for (double a : alloc) {
      if (a < floor_value) {
        deficit += floor_value - a;
      } else {
        above += a - floor_value;
      }
    }
    if (deficit <= 0.0 || above <= 0.0) break;
    const double scale = (above - deficit) / above;
    for (double& a : alloc) {
      if (a < floor_value) {
        a = floor_value;
      } else {
        a = floor_value + (a - floor_value) * scale;
      }
    }
  }
  // Final renormalization to absorb floating-point drift.
  const double sum = std::accumulate(alloc.begin(), alloc.end(), 0.0);
  if (sum > 0.0) {
    for (double& a : alloc) a *= total / sum;
  } else {
    for (double& a : alloc) a = total / static_cast<double>(n);
  }
  return alloc;
}

std::vector<double> redistribute_allowance(
    double err, std::span<const double> current,
    std::span<const std::size_t> excluded) {
  const std::size_t n = current.size();
  if (n == 0) throw std::invalid_argument("redistribute_allowance: empty");
  std::vector<bool> dead(n, false);
  for (std::size_t i : excluded) {
    if (i >= n)
      throw std::invalid_argument("redistribute_allowance: bad index");
    dead[i] = true;
  }
  std::vector<double> out(current.begin(), current.end());
  std::vector<double> alive;
  alive.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) {
      out[i] = 0.0;
    } else {
      alive.push_back(out[i]);
    }
  }
  if (alive.empty()) return out;
  AllocationMetrics::get().reclaims->inc();
  obs::trace().record(obs::TraceKind::kAllowanceReclaimed, 0, 0,
                      static_cast<double>(alive.size()),
                      static_cast<double>(excluded.size()));
  const double sum =
      std::accumulate(alive.begin(), alive.end(), 0.0);
  if (sum <= 0.0) {
    // Degenerate survivors (all at zero): fall back to an even split.
    for (double& a : alive) a = err / static_cast<double>(alive.size());
  } else {
    for (double& a : alive) a *= err / sum;
  }
  alive = clamp_and_normalize(std::move(alive), err, 0.01 * err);
  std::size_t j = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!dead[i]) out[i] = alive[j++];
  }
  return out;
}

std::vector<double> AdaptiveAllocation::allocate(
    double err, std::span<const double> current,
    std::span<const CoordStats> stats) {
  if (current.size() != stats.size())
    throw std::invalid_argument("AdaptiveAllocation: size mismatch");
  const std::size_t n = current.size();
  if (n == 0) throw std::invalid_argument("AdaptiveAllocation: no monitors");
  if (n == 1) return {err};

  std::vector<double> yields(n, 0.0);
  double max_y = 0.0;
  double min_y = std::numeric_limits<double>::infinity();
  bool any_positive = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = std::max(stats[i].avg_allowance,
                              options_.epsilon_allowance);
    const double y = stats[i].avg_gain > 0.0 ? stats[i].avg_gain / e : 0.0;
    yields[i] = y;
    max_y = std::max(max_y, y);
    min_y = std::min(min_y, y);
    if (y > 0.0) any_positive = true;
  }

  std::vector<double> out(current.begin(), current.end());
  if (!any_positive) return out;  // nothing can grow; keep the allocation

  // Uniformity throttle (the paper's "max{y_i/y_j} < 0.1" read as a
  // near-uniformity test, see the header): when the largest pairwise yield
  // ratio is under 1 + band, reallocation would only churn — keep the
  // current assignment. min_y == 0 (a monitor that cannot grow) never
  // skips: its allowance should move to monitors that can use it.
  if (min_y > 0.0 && max_y / min_y - 1.0 < options_.uniformity_band) {
    AllocationMetrics::get().uniform_skips->inc();
    return out;
  }

  const double sum_y = std::accumulate(yields.begin(), yields.end(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double target = err * yields[i] / sum_y;
    out[i] += options_.smoothing * (target - out[i]);
  }
  return clamp_and_normalize(std::move(out), err,
                             options_.min_fraction * err);
}

}  // namespace volley
