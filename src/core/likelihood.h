// Violation-likelihood estimation (paper Section III-A).
//
// This header is the single authoritative statement of the β̄ math; every
// other file (adaptive_sampler.h, likelihood_kernel.h, DESIGN.md §11)
// references it rather than restating the derivation.
//
// Model: delta, the change between two samples taken one default interval Id
// apart, is a time-independent random variable with (online-estimated) mean
// mu and standard deviation sigma. The probability that the value i default
// intervals after the current sample v exceeds the threshold T is bounded by
// the one-sided Chebyshev inequality (Inequality 1):
//
//     P[v + i*delta > T] = P[delta > (T - v)/i] <= 1 / (1 + k_i^2),
//     k_i = (T - v - i*mu) / (i*sigma),          valid only when k_i > 0.
//
// The mis-detection rate of sampling interval I (Definition 2) is the
// probability that at least one of the I skipped/next points violates;
// treating the per-step events through their individual bounds gives
// (Inequality 3):
//
//     beta(I) = 1 - prod_{i=1..I} (1 - P[v + i*delta > T])
//            <= 1 - prod_{i=1..I} k_i^2 / (1 + k_i^2)   =: beta_bound(I)
//
// Conservative edge handling (all err toward predicting a violation):
//  * k_i <= 0 (the mean drift alone reaches T)  -> per-step bound = 1.
//  * sigma == 0 (deterministic drift)           -> bound = 0 or 1 exactly.
//  * too few delta observations                 -> bound = 1 (cold start
//    pins the sampler at the default interval until statistics exist).
//
// Evaluation contract: `beta_bound_with` below — the literal product loop
// with its saturation early-exit — is the semantic *and bitwise* definition
// of β̄'s value. The fast paths in likelihood_kernel.h (zero-β̄ certificate,
// incremental prefix reuse, blocked/SIMD loop, SoA batch) are pure
// accelerations: they must return the identical double for every input,
// property-tested in tests/test_likelihood_kernel.cpp and re-asserted by
// bench_scale on every run. `VOLLEY_SCALAR_BETA=1` (or set_scalar_beta)
// routes evaluation back through this loop verbatim. Numerics notes,
// including why the incremental form keeps a product prefix rather than a
// log-space sum, live in DESIGN.md §11.
//
// `GaussianLikelihoodEstimator` is the ablation comparator (bench_ablation_
// estimator): identical interface but assumes delta ~ Normal(mu, sigma),
// giving much tighter (riskier) per-step probabilities than Chebyshev.
//
// Units: values and thresholds are in the monitored metric's own unit
// (requests/s, % CPU, ...); intervals and gaps are integer multiples of the
// default sampling interval Id (type Tick); all probabilities/bounds are
// dimensionless in [0, 1].
//
// Thread-safety: none. An estimator belongs to one monitor and is driven
// from that monitor's sampling loop; confine each instance to one thread.
// The embedded BetaBoundCache memo inherits that confinement — batch
// evaluation (likelihood_kernel.h) runs on the owning coordinator's
// thread, never concurrently with the monitor's own calls.
#pragma once

#include <cstdint>
#include <optional>

#include "common/clock.h"
#include "stats/online_stats.h"

namespace volley {

/// Statistics snapshot used for one bound evaluation.
struct DeltaStats {
  double mean{0.0};
  double stddev{0.0};
};

struct BetaBatch;  // likelihood_kernel.h

/// Memo of the most recent Chebyshev β̄ evaluation for one estimator
/// state (the kernel's incremental layer, DESIGN.md §11). Valid while the
/// (value, threshold, mean, stddev) key is bitwise unchanged; `interval`
/// == 0 means empty. `survive` is the running survival product after
/// `interval` factors; `saturated` records that the baseline's early-exit
/// fired at step `interval` (every larger I then yields exactly 1.0).
struct BetaBoundCache {
  double value{0.0};
  double threshold{0.0};
  DeltaStats stats{};
  Tick interval{0};
  double survive{1.0};
  double result{1.0};
  bool saturated{false};

  void invalidate() { interval = 0; }
  bool matches(double v, double t, const DeltaStats& s) const {
    return interval > 0 && value == v && threshold == t &&
           stats.mean == s.mean && stats.stddev == s.stddev;
  }
};

/// One-sided Chebyshev bound on P[v + i*delta > T]. Pure function — the
/// estimator classes supply the delta statistics.
double chebyshev_step_bound(double value, double threshold,
                            const DeltaStats& stats, Tick i);

/// Exact per-step probability under delta ~ Normal(mean, stddev^2).
double gaussian_step_bound(double value, double threshold,
                           const DeltaStats& stats, Tick i);

/// beta_bound(I) given a per-step bound function.
template <typename StepFn>
double beta_bound_with(double value, double threshold, const DeltaStats& stats,
                       Tick interval, StepFn&& step) {
  double survive = 1.0;  // probability that no step violates
  for (Tick i = 1; i <= interval; ++i) {
    const double p = step(value, threshold, stats, i);
    survive *= (1.0 - p);
    if (survive <= 0.0) return 1.0;
    // Saturation early-exit: every remaining factor is in [0, 1], so
    // `survive` can only shrink further — once `1.0 - survive` already
    // rounds to exactly 1.0 in double precision, the final result is
    // determined and the remaining (interval - i) step evaluations are
    // pure waste. Bit-identical to the full product by construction.
    if (1.0 - survive == 1.0) return 1.0;
  }
  return 1.0 - survive;
}

/// Online violation-likelihood estimator: maintains the delta statistics
/// (with the paper's 1000-sample restart policy) and evaluates beta_bound.
class ViolationLikelihoodEstimator {
 public:
  enum class Bound { kChebyshev, kGaussian };

  struct Options {
    std::int64_t stats_window{1000};  // restart n when it exceeds this
    std::int64_t stats_warmup{8};     // see WindowedStats
    std::int64_t min_observations{2}; // below this, beta_bound == 1
    Bound bound{Bound::kChebyshev};
  };

  ViolationLikelihoodEstimator() : ViolationLikelihoodEstimator(Options{}) {}
  explicit ViolationLikelihoodEstimator(const Options& options);

  /// Feeds one observation. `value` was sampled `gap` ticks after the
  /// previous sample; the update uses the per-Id normalized change
  /// delta_hat = (value - previous) / gap (Section III-B). The first call
  /// only seeds the previous value.
  void observe(double value, Tick gap);

  /// Upper bound on the mis-detection rate beta(I) for the given sampling
  /// interval, from the most recent observation. Returns 1 while fewer than
  /// `min_observations` delta values have been seen. Chebyshev evaluations
  /// go through the likelihood kernel (certificate + incremental memo +
  /// SIMD loop) unless scalar_beta() is set; the value returned is bitwise
  /// identical either way (the kernel's identity contract).
  double beta_bound(double threshold, Tick interval) const;

  /// Pushes this estimator's current β̄ evaluation inputs — post-observe
  /// value, stats snapshot or cold flag, bound choice, memo pointer — as
  /// one lane of a batch evaluation (likelihood_kernel.h). The lane's
  /// result is bitwise identical to beta_bound(threshold, interval).
  void push_lane(double threshold, Tick interval, BetaBatch& batch) const;

  /// P[next value at +i ticks exceeds threshold] bound (Definition 1 for a
  /// horizon of i ticks).
  double violation_likelihood(double threshold, Tick i) const;

  bool has_statistics() const;
  std::optional<DeltaStats> delta_stats() const;
  std::optional<double> last_value() const { return last_value_; }
  std::int64_t delta_count() const { return stats_.total_count(); }

  void reset();

 private:
  /// One delta-statistics resolution for a whole bound evaluation: checks
  /// the cold-start guards and snapshots mean/stddev from a single pass
  /// over the windowed estimator (beta_bound and violation_likelihood call
  /// this exactly once per evaluation).
  std::optional<DeltaStats> snapshot_stats() const;

  Options options_;
  WindowedStats stats_;
  std::optional<double> last_value_;
  // Kernel memo; logically state of the evaluation, not of the estimate,
  // hence mutable behind the const beta_bound.
  mutable BetaBoundCache cache_;
};

}  // namespace volley
