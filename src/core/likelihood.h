// Violation-likelihood estimation (paper Section III-A).
//
// Model: delta, the change between two samples taken one default interval Id
// apart, is a time-independent random variable with (online-estimated) mean
// mu and standard deviation sigma. The probability that the value i default
// intervals after the current sample v exceeds the threshold T is bounded by
// the one-sided Chebyshev inequality:
//
//     P[v + i*delta > T] = P[delta > (T - v)/i] <= 1 / (1 + k_i^2),
//     k_i = (T - v - i*mu) / (i*sigma),          valid only when k_i > 0.
//
// The mis-detection rate of sampling interval I (Definition 2) is the
// probability that at least one of the I skipped/next points violates:
//
//     beta(I) = 1 - prod_{i=1..I} (1 - P[v + i*delta > T])
//            <= 1 - prod_{i=1..I} k_i^2 / (1 + k_i^2)   =: beta_bound(I)
//
// Conservative edge handling (all err toward predicting a violation):
//  * k_i <= 0 (the mean drift alone reaches T)  -> per-step bound = 1.
//  * sigma == 0 (deterministic drift)           -> bound = 0 or 1 exactly.
//  * too few delta observations                 -> bound = 1 (cold start
//    pins the sampler at the default interval until statistics exist).
//
// `GaussianLikelihoodEstimator` is the ablation comparator (bench_ablation_
// estimator): identical interface but assumes delta ~ Normal(mu, sigma),
// giving much tighter (riskier) per-step probabilities than Chebyshev.
//
// Units: values and thresholds are in the monitored metric's own unit
// (requests/s, % CPU, ...); intervals and gaps are integer multiples of the
// default sampling interval Id (type Tick); all probabilities/bounds are
// dimensionless in [0, 1].
//
// Thread-safety: none. An estimator belongs to one monitor and is driven
// from that monitor's sampling loop; confine each instance to one thread.
#pragma once

#include <cstdint>
#include <optional>

#include "common/clock.h"
#include "stats/online_stats.h"

namespace volley {

/// Statistics snapshot used for one bound evaluation.
struct DeltaStats {
  double mean{0.0};
  double stddev{0.0};
};

/// One-sided Chebyshev bound on P[v + i*delta > T]. Pure function — the
/// estimator classes supply the delta statistics.
double chebyshev_step_bound(double value, double threshold,
                            const DeltaStats& stats, Tick i);

/// Exact per-step probability under delta ~ Normal(mean, stddev^2).
double gaussian_step_bound(double value, double threshold,
                           const DeltaStats& stats, Tick i);

/// beta_bound(I) given a per-step bound function.
template <typename StepFn>
double beta_bound_with(double value, double threshold, const DeltaStats& stats,
                       Tick interval, StepFn&& step) {
  double survive = 1.0;  // probability that no step violates
  for (Tick i = 1; i <= interval; ++i) {
    const double p = step(value, threshold, stats, i);
    survive *= (1.0 - p);
    if (survive <= 0.0) return 1.0;
    // Saturation early-exit: every remaining factor is in [0, 1], so
    // `survive` can only shrink further — once `1.0 - survive` already
    // rounds to exactly 1.0 in double precision, the final result is
    // determined and the remaining (interval - i) step evaluations are
    // pure waste. Bit-identical to the full product by construction.
    if (1.0 - survive == 1.0) return 1.0;
  }
  return 1.0 - survive;
}

/// Online violation-likelihood estimator: maintains the delta statistics
/// (with the paper's 1000-sample restart policy) and evaluates beta_bound.
class ViolationLikelihoodEstimator {
 public:
  enum class Bound { kChebyshev, kGaussian };

  struct Options {
    std::int64_t stats_window{1000};  // restart n when it exceeds this
    std::int64_t stats_warmup{8};     // see WindowedStats
    std::int64_t min_observations{2}; // below this, beta_bound == 1
    Bound bound{Bound::kChebyshev};
  };

  ViolationLikelihoodEstimator() : ViolationLikelihoodEstimator(Options{}) {}
  explicit ViolationLikelihoodEstimator(const Options& options);

  /// Feeds one observation. `value` was sampled `gap` ticks after the
  /// previous sample; the update uses the per-Id normalized change
  /// delta_hat = (value - previous) / gap (Section III-B). The first call
  /// only seeds the previous value.
  void observe(double value, Tick gap);

  /// Upper bound on the mis-detection rate beta(I) for the given sampling
  /// interval, from the most recent observation. Returns 1 while fewer than
  /// `min_observations` delta values have been seen.
  double beta_bound(double threshold, Tick interval) const;

  /// P[next value at +i ticks exceeds threshold] bound (Definition 1 for a
  /// horizon of i ticks).
  double violation_likelihood(double threshold, Tick i) const;

  bool has_statistics() const;
  std::optional<DeltaStats> delta_stats() const;
  std::optional<double> last_value() const { return last_value_; }
  std::int64_t delta_count() const { return stats_.total_count(); }

  void reset();

 private:
  /// One delta-statistics resolution for a whole bound evaluation: checks
  /// the cold-start guards and snapshots mean/stddev from a single pass
  /// over the windowed estimator (beta_bound and violation_likelihood call
  /// this exactly once per evaluation).
  std::optional<DeltaStats> snapshot_stats() const;

  Options options_;
  WindowedStats stats_;
  std::optional<double> last_value_;
};

}  // namespace volley
