// Aggregation-time-window state monitoring — the paper's named future work
// ("we are studying techniques to support advanced state monitoring forms
// (e.g. tasks with aggregation time window)", Section VII).
//
// A windowed task alerts when an aggregate of the last W ticks — moving
// average, moving sum, or moving max — exceeds the threshold, instead of
// the instantaneous value. Monitoring the windowed stream is equivalent to
// monitoring a transformed series, so the whole Volley stack applies
// unchanged; the transform also *smooths* the stream (a W-average divides
// white-noise delta-sigma by ~W), which lengthens the safe intervals —
// windowed tasks are strictly cheaper to monitor (bench_window_tasks).
//
// Implementation notes: average/sum are O(1) per tick via a running sum;
// max is O(1) amortized via a monotonic deque (indices with decreasing
// values). `WindowedSource` lazily materializes the transform over any
// MetricSource so simulation and wire runtime can both use it.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>

#include "core/metric_source.h"
#include "trace/trace.h"

namespace volley {

enum class WindowAggregate { kAverage, kSum, kMax };

/// Eagerly transforms a series: out[t] aggregates in[max(0, t-W+1) .. t].
/// Leading ticks aggregate over the shorter available prefix.
TimeSeries window_transform(const TimeSeries& in, Tick window,
                            WindowAggregate kind);

/// Streaming transformer with O(1) amortized updates; push values in tick
/// order and read the current windowed aggregate.
class WindowAggregator {
 public:
  WindowAggregator(Tick window, WindowAggregate kind);

  void push(double value);
  /// Aggregate over the last min(window, pushed) values.
  double value() const;
  std::int64_t count() const { return pushed_; }

 private:
  Tick window_;
  WindowAggregate kind_;
  std::int64_t pushed_{0};
  std::deque<double> values_;               // retained window
  double running_sum_{0.0};
  std::deque<std::pair<std::int64_t, double>> max_deque_;  // (index, value)
};

/// MetricSource decorator: value_at(t) is the windowed aggregate of the
/// wrapped source. Evaluation is O(window) per call (the monitor samples
/// sparsely, so streaming state cannot be reused across gaps); sampling
/// cost is inherited from the underlying source at tick t plus a per-tick
/// scan charge, reflecting that a real windowed sample must read W raw
/// observations from the collection substrate.
class WindowedSource final : public MetricSource {
 public:
  WindowedSource(const MetricSource& inner, Tick window, WindowAggregate kind,
                 double scan_cost_per_tick = 0.0);

  double value_at(Tick t) const override;
  Tick length() const override { return inner_.length(); }
  double sampling_cost(Tick t) const override;

  Tick window() const { return window_; }

 private:
  const MetricSource& inner_;
  Tick window_;
  WindowAggregate kind_;
  double scan_cost_per_tick_;
};

}  // namespace volley
