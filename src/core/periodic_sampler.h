// Fixed-interval sampling — the baseline every figure compares against
// (the "CloudWatch model" of Section I: periodic sampling is the only option
// commercial monitoring systems offer). Shares the sampler interface shape
// of AdaptiveSampler so monitors can be templated over either policy.
#pragma once

#include "core/types.h"

namespace volley {

class PeriodicSampler {
 public:
  /// `interval` is in default sampling intervals; 1 reproduces the paper's
  /// accuracy reference (sampling at Id), larger values model the cheap-but-
  /// inaccurate schemes of Figure 1 (scheme B).
  explicit PeriodicSampler(Tick interval);

  Tick observe(double /*value*/, Tick /*gap*/) { return interval_; }
  Tick interval() const { return interval_; }

 private:
  Tick interval_;
};

}  // namespace volley
