// Task specification (paper Section II): a distributed state monitoring task
// has a global threshold T over the sum of per-monitor values, an error
// allowance err relative to periodic sampling at the default interval Id,
// and optional knobs for the adaptation (gamma, p, Im).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/clock.h"
#include "core/adaptive_sampler.h"

namespace volley {

struct TaskSpec {
  double global_threshold{0.0};  // T over the aggregate state
  double error_allowance{0.01};  // err, task level
  double id_seconds{1.0};        // default sampling interval Id in seconds
  Tick max_interval{40};         // Im
  double slack_ratio{0.2};       // gamma
  int patience{20};              // p
  Tick updating_period{1000};    // coordinator reallocation period (in Id)
  ViolationLikelihoodEstimator::Options estimator{};

  /// Sampler options for a monitor given its share of the allowance.
  [[nodiscard]] AdaptiveSamplerOptions sampler_options(
      double local_allowance) const {
    AdaptiveSamplerOptions o;
    o.error_allowance = local_allowance;
    o.slack_ratio = slack_ratio;
    o.patience = patience;
    o.max_interval = max_interval;
    o.estimator = estimator;
    return o;
  }

  void validate() const {
    if (error_allowance < 0.0 || error_allowance > 1.0)
      throw std::invalid_argument("TaskSpec: err in [0,1]");
    if (id_seconds <= 0.0)
      throw std::invalid_argument("TaskSpec: id_seconds > 0");
    if (max_interval < 1) throw std::invalid_argument("TaskSpec: Im >= 1");
    if (updating_period < 1)
      throw std::invalid_argument("TaskSpec: updating_period >= 1");
  }
};

/// Splits the global threshold into local thresholds summing to T
/// (Section II-A: as long as every v_i <= T_i, no global violation is
/// possible). `weights` need not be normalized; empty weights mean even.
inline std::vector<double> split_threshold(
    double global_threshold, std::size_t monitors,
    const std::vector<double>& weights = {}) {
  if (monitors == 0)
    throw std::invalid_argument("split_threshold: monitors > 0");
  std::vector<double> out(monitors);
  if (weights.empty()) {
    for (auto& t : out) t = global_threshold / static_cast<double>(monitors);
    return out;
  }
  if (weights.size() != monitors)
    throw std::invalid_argument("split_threshold: weights size mismatch");
  double sum = 0.0;
  for (double w : weights) {
    if (w <= 0.0)
      throw std::invalid_argument("split_threshold: weights must be > 0");
    sum += w;
  }
  for (std::size_t i = 0; i < monitors; ++i)
    out[i] = global_threshold * weights[i] / sum;
  return out;
}

}  // namespace volley
