#include "core/threshold_split.h"

#include <algorithm>
#include <stdexcept>

namespace volley {

std::vector<double> split_even(double global_threshold,
                               std::size_t monitors) {
  return split_threshold(global_threshold, monitors);
}

std::vector<double> split_by_tail(double global_threshold,
                                  std::span<const TimeSeries> series,
                                  double k_percent) {
  if (series.empty()) throw std::invalid_argument("split_by_tail: empty");
  std::vector<double> weights;
  weights.reserve(series.size());
  for (const auto& s : series) {
    weights.push_back(
        std::max(s.threshold_for_selectivity(k_percent), 1e-6));
  }
  return split_threshold(global_threshold, series.size(), weights);
}

std::vector<double> split_by_spread(double global_threshold,
                                    std::span<const TimeSeries> series,
                                    double lo_percentile,
                                    double hi_percentile) {
  if (series.empty()) throw std::invalid_argument("split_by_spread: empty");
  if (!(lo_percentile < hi_percentile) || lo_percentile < 0.0 ||
      hi_percentile > 100.0) {
    throw std::invalid_argument(
        "split_by_spread: need 0 <= lo < hi <= 100");
  }
  std::vector<double> weights;
  weights.reserve(series.size());
  for (const auto& s : series) {
    // threshold_for_selectivity(k) is the (100-k)-th percentile, so the
    // spread between the hi and lo percentiles is:
    const double hi = s.threshold_for_selectivity(100.0 - hi_percentile);
    const double lo = s.threshold_for_selectivity(100.0 - lo_percentile);
    weights.push_back(std::max(hi - lo, 1e-6));
  }
  return split_threshold(global_threshold, series.size(), weights);
}

}  // namespace volley
