// Monitor-level violation-likelihood based sampling adaptation
// (paper Section III-B, Figure 2).
//
// The sampler owns a ViolationLikelihoodEstimator and applies the paper's
// AIMD-like rule after every sampling operation. The mis-detection bound
// beta = beta_bound(I) is defined — mathematically and bitwise — in
// likelihood.h (Inequalities 1 and 3); this header deliberately does not
// restate that derivation. The rule itself:
//
//   if beta > err:                  // unsafe -> multiplicative decrease
//       I <- 1 (the default interval), streak <- 0
//   elif beta <= (1 - gamma) * err: // comfortably safe
//       if ++streak >= p: I <- min(I + 1, Im), streak <- 0   // additive inc.
//   else:                           // safe but within the slack band
//       streak <- 0
//
// Defaults gamma = 0.2 and p = 20 are the paper's recommended practice.
// All intervals are integer multiples of the default interval Id (Tick).
//
// The sampler also exports the two statistics the distributed coordination
// layer needs (Section IV-B):
//   r_i = 1/I - 1/(I+1)   cost-reduction gain of growing the interval by one
//                          (zero when already at Im — no growth possible);
//   e_i = beta / (1-gamma) error allowance that growth would require
//                          (inverts the increase rule above).
//
// Batched evaluation: the rule factors into observe_begin (feed the
// estimator, emit a β̄ evaluation lane) and observe_finish (apply the rule
// to the evaluated β̄), so a coordinator can drain a whole tick's due
// monitors into one likelihood-kernel batch (DESIGN.md §11). observe() is
// begin+evaluate+finish fused; both shapes produce bit-identical decisions
// because the kernel's β̄ is bit-identical to the scalar evaluation.
//
// Units: values/thresholds are in the monitored metric's unit; intervals
// are integer multiples of Id (Tick); err, gamma, beta are dimensionless
// probabilities in [0, 1].
//
// Thread-safety: none — one sampler per monitor, driven from one thread.
// A batch (BetaBatch) holds borrowed pointers into its samplers'
// estimators, so it is confined to the same thread as the monitors it
// drains: one coordinator, one thread. Future coordinator shards each own
// their monitors and their batch, so shards never share sampler state —
// the kernel itself is stateless apart from the process-global escape
// hatch (an atomic). Every observe_finish() also feeds the process-global
// obs/ registry (counters volley_sampler_*, histograms of chosen interval
// and beta bound); those instruments are thread-safe, so concurrent
// monitors can share them.
#pragma once

#include <cstdint>

#include "core/likelihood.h"
#include "core/types.h"

namespace volley {

struct AdaptiveSamplerOptions {
  double error_allowance{0.01};  // err, in [0, 1]
  double slack_ratio{0.2};       // gamma, in [0, 1)
  int patience{20};              // p, consecutive safe checks before growth
  Tick max_interval{40};         // Im, in default intervals
  ViolationLikelihoodEstimator::Options estimator{};

  void validate() const;
};

class AdaptiveSampler {
 public:
  AdaptiveSampler(const AdaptiveSamplerOptions& options, double threshold);

  /// Records a sampled value observed `gap` ticks after the previous sample
  /// and applies the adaptation rule. Returns the interval (ticks) to wait
  /// before the next scheduled sample.
  Tick observe(double value, Tick gap);

  /// Phase 1 of a batched observation: feeds the estimator and pushes this
  /// sampler's β̄ evaluation (current value/threshold/stats/interval) as
  /// one lane of `batch`. Pair with observe_finish once the batch has been
  /// evaluated; interleaving another observe breaks the pairing.
  void observe_begin(double value, Tick gap, BetaBatch& batch);

  /// Phase 2: applies the adaptation rule to the evaluated bound `beta`
  /// (this sampler's lane result) and returns the next interval. Also the
  /// tail of observe(), so both shapes share one rule implementation.
  Tick observe_finish(double beta);

  /// Current sampling interval in ticks.
  Tick interval() const { return interval_; }

  /// beta_bound(I) computed at the most recent observe() call; 1 before any.
  double last_beta() const { return last_beta_; }

  double threshold() const { return threshold_; }
  void set_threshold(double threshold) { threshold_ = threshold; }

  /// Im: the hard cap on the sampling interval, in default intervals. The
  /// coordinator's due-index sizes its bucket ring from this.
  Tick max_interval() const { return options_.max_interval; }

  double error_allowance() const { return options_.error_allowance; }
  /// Used by the coordinator when reallocating the task-level allowance.
  void set_error_allowance(double err);

  /// r_i of Section IV-B; zero when the interval is pinned at Im.
  double cost_reduction_gain() const;
  /// e_i of Section IV-B.
  double allowance_to_grow() const;

  const ViolationLikelihoodEstimator& estimator() const { return estimator_; }
  int safe_streak() const { return safe_streak_; }

  /// Resets interval, streak and statistics (threshold and options remain).
  void reset();

 private:
  AdaptiveSamplerOptions options_;
  double threshold_;
  ViolationLikelihoodEstimator estimator_;
  Tick interval_{1};
  int safe_streak_{0};
  double last_beta_{1.0};
};

}  // namespace volley
