// Shared identifiers and small value types of the Volley core.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace volley {

using MonitorId = std::uint32_t;
using TaskId = std::uint32_t;

/// The task every daemon seeds from its command-line options at startup
/// (registry epoch 1). Dynamically added tasks use any other id.
inline constexpr TaskId kBootTaskId = 0;

/// The boot task's registry epoch on a fresh (non-restored) deployment.
inline constexpr std::uint64_t kBootTaskEpoch = 1;

/// One sampling observation made by a monitor.
struct Sample {
  Tick tick{0};
  double value{0.0};
};

/// Why a sampling operation happened — monitors schedule their own samples;
/// the coordinator forces extra ones during global polls.
enum class SampleReason { kScheduled, kGlobalPoll };

/// Per-monitor statistics the coordinator collects once per updating period
/// to drive the error-allowance reallocation of Section IV-B.
struct CoordStats {
  double avg_gain{0.0};       // average r_i over the period
  double avg_allowance{0.0};  // average e_i over the period
  std::int64_t observations{0};
};

}  // namespace volley
