// The coordinator of a distributed state monitoring task
// (paper Sections II, IV; Figure 3).
//
// Responsibilities:
//  * drive the task's monitors tick by tick (synchronous in-process runs;
//    the socket runtime in src/net speaks the same protocol over TCP);
//  * on any local violation, run a *global poll*: force-sample every
//    monitor, aggregate, and compare against the global threshold T;
//  * once per updating period (paper: 1000 Id), collect the averaged
//    r_i / e_i statistics from all monitors and reallocate the task-level
//    error allowance via the configured AllowanceAllocator.
//
// Units: ticks are multiples of the task's default interval Id; threshold
// and aggregate values are in the monitored metric's unit; allowances are
// probabilities in [0, 1] summing to the task's err.
//
// Thread-safety: none. A Coordinator and its monitors form one single-
// threaded tick loop; run concurrent tasks as separate Coordinator
// instances. Instrumentation (volley_coordinator_* counters, the allowance-
// share histogram, kAlertRaised / kAllowanceAdjusted trace events) goes to
// the thread-safe process-global obs/ sinks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/error_allocation.h"
#include "core/likelihood_kernel.h"
#include "core/monitor.h"
#include "core/task.h"
#include "core/types.h"

namespace volley {

class Coordinator {
 public:
  struct TickResult {
    bool any_due{false};          // at least one scheduled sample happened
    int local_violations{0};      // local violations observed this tick
    bool global_poll{false};      // a poll was triggered
    double global_value{0.0};     // aggregate at poll time (if polled)
    bool global_violation{false}; // aggregate exceeded T (if polled)
  };

  /// Takes ownership of the monitors; allocator may be null for a task that
  /// never reallocates (fixed even split).
  Coordinator(const TaskSpec& spec,
              std::vector<std::unique_ptr<Monitor>> monitors,
              std::unique_ptr<AllowanceAllocator> allocator);

  /// Advances the task by one tick. Touches only the monitors due at `t`
  /// (see the due-index notes below); the result and every observable side
  /// effect are bit-identical to scanning all monitors in id order. When
  /// enough monitors are due at once, their β̄ evaluations are drained
  /// into one likelihood-kernel batch invocation (begin_step /
  /// beta_bound_batch / finish_step, DESIGN.md §11) — also bit-identical,
  /// and disabled along with the kernel by VOLLEY_SCALAR_BETA.
  TickResult run_tick(Tick t);

  /// Escape hatch: when true, run_tick scans every monitor calling due(t)
  /// — the legacy O(monitors) loop — instead of consulting the due index.
  /// Initialized from the VOLLEY_SCAN_TICKS environment variable (set and
  /// not "0"); the identity tests and bench_scale flip it per run to prove
  /// both paths agree. Switching scanning back off rebuilds the index from
  /// the monitors' current schedules.
  void set_scan_ticks(bool scan);
  bool scan_ticks() const { return scan_ticks_; }

  const TaskSpec& spec() const { return spec_; }
  std::size_t monitor_count() const { return monitors_.size(); }
  const Monitor& monitor(std::size_t i) const { return *monitors_.at(i); }
  Monitor& monitor(std::size_t i) { return *monitors_.at(i); }

  /// Current per-monitor error-allowance allocation (sums to task err).
  const std::vector<double>& allocation() const { return allocation_; }

  // --- shard-tier hooks (src/shard, DESIGN.md §13) --------------------
  //
  // A ShardedCoordinator nests the paper's decomposition one level up by
  // treating each Coordinator as a super-monitor. These hooks deliberately
  // have *no* counter/metric/trace side effects of their own: a shard
  // count of 1 must stay byte-identical to the flat tick loop, so all
  // shard-tier accounting lives with the caller.

  /// Root-tier escalation: force-samples every monitor at tick t and
  /// returns the aggregate. Unlike the poll inside run_tick this does not
  /// count a global poll, raise alerts, or touch metrics — the caller owns
  /// that accounting. Forced samples reschedule monitors wholesale, so the
  /// due index is rebuilt.
  double force_poll(Tick t);

  /// Replaces the task-level error budget err (the root tier pushes a new
  /// per-shard budget once per root updating period). The per-monitor
  /// allocation is rescaled proportionally — even re-split when the
  /// current allocation is all zero — so it sums to `err` again, and the
  /// monitors see their new allowances immediately. Future reallocation
  /// rounds allocate the new budget.
  void set_error_budget(double err);

  /// Sums of the per-monitor coordination statistics drained at the most
  /// recent reallocation round — the (r, e) shard summary the root tier
  /// feeds its own allocator. Zero-valued until the first round.
  CoordStats last_period_stats() const { return last_period_stats_; }

  // --- accounting -----------------------------------------------------
  std::int64_t global_polls() const { return global_polls_; }
  std::int64_t global_violations() const { return global_violations_; }
  std::int64_t reallocations() const { return reallocations_; }
  /// Total sampling operations across all monitors (scheduled + forced).
  std::int64_t total_ops() const;
  /// Total abstract sampling cost across all monitors.
  double total_cost() const;

 private:
  void maybe_reallocate(Tick t);

  // --- due index ------------------------------------------------------
  //
  // A calendar (bucket-ring) queue over the monitors' next-sample ticks,
  // so a tick where nothing is due costs O(1) instead of O(monitors) —
  // the in-process mirror of why adaptive sampling exists at all.
  //
  // Invariants (when scan_ticks_ is false):
  //  * cursor_ is the next tick run_tick will consume; every monitor's
  //    pending entry lives at a tick in [cursor_, cursor_ + window_ - 1],
  //    which is why window_ = max Im + 2 buckets suffice: a sample at t
  //    reschedules to at most t + Im < (t + 1) + window_ - 1.
  //  * each monitor has exactly one entry, at max(next_sample, cursor_)
  //    (the clamp lets a freshly built index catch up when the first
  //    run_tick happens at t > 0, e.g. tasks arriving mid-run).
  //  * same-tick monitors run in ascending id order — collect_due sorts
  //    the drained ids — so results are bit-identical to the legacy scan.
  //  * a global poll force-samples every monitor, invalidating most
  //    entries at once; rebuild_due_index() re-derives the ring in O(n),
  //    the same order as the poll itself.
  //
  // The coordinator owns its monitors' schedules: force-sampling a monitor
  // behind the coordinator's back would leave the index stale (nothing
  // in-tree does; use run_tick / the coordinator's own poll).
  void collect_due(Tick t);                        // fills due_scratch_
  void due_index_insert(MonitorId id, Tick next);  // clamps next to cursor_
  void rebuild_due_index();

  TaskSpec spec_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::unique_ptr<AllowanceAllocator> allocator_;
  std::vector<double> allocation_;
  Tick next_update_{0};
  CoordStats last_period_stats_{};

  bool scan_ticks_{false};
  Tick cursor_{0};
  std::size_t cursor_slot_{0};                    // cursor_ % window_, cached
  std::size_t window_{0};                         // bucket count (max Im + 2)
  std::vector<std::vector<MonitorId>> buckets_;   // ring keyed tick % window_
  std::vector<MonitorId> due_scratch_;            // ids due this tick, sorted
  BetaBatch beta_batch_;                          // sample-tick drain scratch

  std::int64_t global_polls_{0};
  std::int64_t global_violations_{0};
  std::int64_t reallocations_{0};
};

}  // namespace volley
