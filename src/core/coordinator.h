// The coordinator of a distributed state monitoring task
// (paper Sections II, IV; Figure 3).
//
// Responsibilities:
//  * drive the task's monitors tick by tick (synchronous in-process runs;
//    the socket runtime in src/net speaks the same protocol over TCP);
//  * on any local violation, run a *global poll*: force-sample every
//    monitor, aggregate, and compare against the global threshold T;
//  * once per updating period (paper: 1000 Id), collect the averaged
//    r_i / e_i statistics from all monitors and reallocate the task-level
//    error allowance via the configured AllowanceAllocator.
//
// Units: ticks are multiples of the task's default interval Id; threshold
// and aggregate values are in the monitored metric's unit; allowances are
// probabilities in [0, 1] summing to the task's err.
//
// Thread-safety: none. A Coordinator and its monitors form one single-
// threaded tick loop; run concurrent tasks as separate Coordinator
// instances. Instrumentation (volley_coordinator_* counters, the allowance-
// share histogram, kAlertRaised / kAllowanceAdjusted trace events) goes to
// the thread-safe process-global obs/ sinks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/error_allocation.h"
#include "core/monitor.h"
#include "core/task.h"
#include "core/types.h"

namespace volley {

class Coordinator {
 public:
  struct TickResult {
    bool any_due{false};          // at least one scheduled sample happened
    int local_violations{0};      // local violations observed this tick
    bool global_poll{false};      // a poll was triggered
    double global_value{0.0};     // aggregate at poll time (if polled)
    bool global_violation{false}; // aggregate exceeded T (if polled)
  };

  /// Takes ownership of the monitors; allocator may be null for a task that
  /// never reallocates (fixed even split).
  Coordinator(const TaskSpec& spec,
              std::vector<std::unique_ptr<Monitor>> monitors,
              std::unique_ptr<AllowanceAllocator> allocator);

  /// Advances the task by one tick.
  TickResult run_tick(Tick t);

  const TaskSpec& spec() const { return spec_; }
  std::size_t monitor_count() const { return monitors_.size(); }
  const Monitor& monitor(std::size_t i) const { return *monitors_.at(i); }
  Monitor& monitor(std::size_t i) { return *monitors_.at(i); }

  /// Current per-monitor error-allowance allocation (sums to task err).
  const std::vector<double>& allocation() const { return allocation_; }

  // --- accounting -----------------------------------------------------
  std::int64_t global_polls() const { return global_polls_; }
  std::int64_t global_violations() const { return global_violations_; }
  std::int64_t reallocations() const { return reallocations_; }
  /// Total sampling operations across all monitors (scheduled + forced).
  std::int64_t total_ops() const;
  /// Total abstract sampling cost across all monitors.
  double total_cost() const;

 private:
  void maybe_reallocate(Tick t);

  TaskSpec spec_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::unique_ptr<AllowanceAllocator> allocator_;
  std::vector<double> allocation_;
  Tick next_update_{0};

  std::int64_t global_polls_{0};
  std::int64_t global_violations_{0};
  std::int64_t reallocations_{0};
};

}  // namespace volley
