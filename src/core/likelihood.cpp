#include "core/likelihood.h"

#include <cmath>
#include <stdexcept>

#include "core/likelihood_kernel.h"

namespace volley {

double chebyshev_step_bound(double value, double threshold,
                            const DeltaStats& stats, Tick i) {
  if (i < 1) throw std::invalid_argument("chebyshev_step_bound: i >= 1");
  const double di = static_cast<double>(i);
  const double margin = threshold - value - di * stats.mean;
  if (stats.stddev <= 0.0) {
    // Deterministic drift: violation happens iff the drift alone crosses T.
    return margin > 0.0 ? 0.0 : 1.0;
  }
  const double k = margin / (di * stats.stddev);
  if (k <= 0.0) return 1.0;  // Chebyshev gives no information for k <= 0
  return 1.0 / (1.0 + k * k);
}

double gaussian_step_bound(double value, double threshold,
                           const DeltaStats& stats, Tick i) {
  if (i < 1) throw std::invalid_argument("gaussian_step_bound: i >= 1");
  const double di = static_cast<double>(i);
  const double margin = threshold - value - di * stats.mean;
  if (stats.stddev <= 0.0) return margin > 0.0 ? 0.0 : 1.0;
  // P[v + i*delta > T] with i*delta ~ N(i*mu, (i*sigma)^2): the paper treats
  // consecutive steps via the same per-step variable, so we keep the same
  // i*sigma scaling as the Chebyshev form for a like-for-like ablation.
  const double z = margin / (di * stats.stddev);
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

ViolationLikelihoodEstimator::ViolationLikelihoodEstimator(
    const Options& options)
    : options_(options), stats_(options.stats_window, options.stats_warmup) {
  if (options.min_observations < 1)
    throw std::invalid_argument(
        "ViolationLikelihoodEstimator: min_observations >= 1");
}

void ViolationLikelihoodEstimator::observe(double value, Tick gap) {
  if (gap < 1)
    throw std::invalid_argument("ViolationLikelihoodEstimator: gap >= 1");
  if (last_value_) {
    const double delta_hat = (value - *last_value_) / static_cast<double>(gap);
    stats_.add(delta_hat);
  }
  last_value_ = value;
}

bool ViolationLikelihoodEstimator::has_statistics() const {
  return snapshot_stats().has_value();
}

std::optional<DeltaStats> ViolationLikelihoodEstimator::delta_stats() const {
  const auto snap = stats_.snapshot();
  if (!snap) return std::nullopt;
  return DeltaStats{snap->mean, snap->stddev};
}

std::optional<DeltaStats> ViolationLikelihoodEstimator::snapshot_stats()
    const {
  if (!last_value_ || stats_.total_count() < options_.min_observations)
    return std::nullopt;
  return delta_stats();
}

double ViolationLikelihoodEstimator::beta_bound(double threshold,
                                                Tick interval) const {
  if (interval < 1)
    throw std::invalid_argument("beta_bound: interval >= 1");
  const auto stats = snapshot_stats();
  if (!stats) return 1.0;
  const double v = *last_value_;
  if (options_.bound == Bound::kGaussian) {
    return beta_bound_with(v, threshold, *stats, interval,
                           gaussian_step_bound);
  }
  if (scalar_beta()) {
    // Escape hatch (VOLLEY_SCALAR_BETA): the verbatim identity baseline.
    return beta_bound_with(v, threshold, *stats, interval,
                           chebyshev_step_bound);
  }
  return beta_bound_chebyshev(v, threshold, *stats, interval, &cache_);
}

void ViolationLikelihoodEstimator::push_lane(double threshold, Tick interval,
                                             BetaBatch& batch) const {
  if (interval < 1)
    throw std::invalid_argument("push_lane: interval >= 1");
  const auto stats = snapshot_stats();
  if (!stats) {
    batch.push_lane(0.0, threshold, DeltaStats{}, interval, /*is_cold=*/true,
                    /*is_gaussian=*/false, nullptr);
    return;
  }
  batch.push_lane(*last_value_, threshold, *stats, interval,
                  /*is_cold=*/false,
                  options_.bound == Bound::kGaussian, &cache_);
}

double ViolationLikelihoodEstimator::violation_likelihood(double threshold,
                                                          Tick i) const {
  if (i < 1) throw std::invalid_argument("violation_likelihood: i >= 1");
  const auto stats = snapshot_stats();
  if (!stats) return 1.0;
  if (options_.bound == Bound::kGaussian) {
    return gaussian_step_bound(*last_value_, threshold, *stats, i);
  }
  return chebyshev_step_bound(*last_value_, threshold, *stats, i);
}

void ViolationLikelihoodEstimator::reset() {
  stats_.reset();
  last_value_.reset();
  cache_.invalidate();
}

}  // namespace volley
