// A local monitor (paper Section II / IV): samples its metric source on the
// schedule chosen by the adaptive sampler, checks the local threshold, and
// keeps the bookkeeping the coordinator needs (sampling-operation counts and
// the averaged r_i / e_i coordination statistics of Section IV-B).
//
// Time is driven externally (by core::Coordinator for synchronous runs, by
// sim::EventQueue for the datacenter simulation, or by the socket runtime):
// the owner calls `due(t)` / `step(t)` each tick. A *global poll* forces an
// out-of-schedule sample via `force_sample(t)`; forced samples feed the
// estimator too (they are real observations) and reschedule the next
// scheduled sample, so the poll's cost buys fresher statistics.
#pragma once

#include <cstdint>
#include <optional>

#include "core/adaptive_sampler.h"
#include "core/metric_source.h"
#include "core/types.h"
#include "stats/online_stats.h"

namespace volley {

class Monitor {
 public:
  struct Outcome {
    Sample sample;
    bool local_violation{false};
    SampleReason reason{SampleReason::kScheduled};
  };

  /// The source must outlive the monitor.
  Monitor(MonitorId id, const MetricSource& source,
          const AdaptiveSamplerOptions& options, double local_threshold);

  MonitorId id() const { return id_; }

  /// True when a scheduled sample is due at tick t.
  bool due(Tick t) const { return t >= next_sample_; }

  /// Performs the scheduled sampling operation at tick t (caller must have
  /// checked due(t)). Applies the adaptation rule and schedules the next
  /// sample.
  Outcome step(Tick t);

  /// Batched form of step(), split so the coordinator can evaluate every
  /// due monitor's β̄ in one likelihood-kernel invocation (DESIGN.md §11):
  /// begin_step samples the source and feeds the estimator, pushing this
  /// monitor's evaluation lane; finish_step applies the adaptation rule to
  /// the lane's result and completes the bookkeeping/rescheduling exactly
  /// as step() would. Calls must be strictly paired, both at the same t.
  /// begin_step(t); finish_step(t, beta) with the kernel's beta is
  /// bit-identical to step(t) — asserted by tests and bench_scale.
  void begin_step(Tick t, BetaBatch& batch);
  Outcome finish_step(Tick t, double beta);

  /// Coordinator-forced sample (global poll). Counts as a sampling op —
  /// unless the monitor already sampled at tick t, in which case the cached
  /// value is returned at no extra cost (a real deployment reuses the datum
  /// it just collected instead of re-running the collection).
  Outcome force_sample(Tick t);

  double local_threshold() const { return sampler_.threshold(); }
  void set_local_threshold(double threshold) {
    sampler_.set_threshold(threshold);
  }

  double error_allowance() const { return sampler_.error_allowance(); }
  void set_error_allowance(double err) { sampler_.set_error_allowance(err); }

  Tick interval() const { return sampler_.interval(); }
  Tick next_sample_tick() const { return next_sample_; }
  const AdaptiveSampler& sampler() const { return sampler_; }

  /// Averaged coordination statistics accumulated since the last drain
  /// (one updating period). Resets the accumulators.
  CoordStats drain_coord_stats();

  // --- accounting -----------------------------------------------------
  std::int64_t scheduled_ops() const { return scheduled_ops_; }
  std::int64_t forced_ops() const { return forced_ops_; }
  std::int64_t total_ops() const { return scheduled_ops_ + forced_ops_; }
  std::int64_t local_violations() const { return local_violations_; }
  /// Sum of source-reported sampling costs over all operations.
  double total_cost() const { return total_cost_; }

 private:
  Outcome sample_at(Tick t, SampleReason reason);
  /// Post-adaptation tail shared by sample_at and finish_step: violation
  /// check, coordination-stat accumulators, accounting, metrics, traces,
  /// and the next-sample schedule.
  Outcome apply_sample(Tick t, double value, Tick interval,
                       SampleReason reason);

  MonitorId id_;
  const MetricSource& source_;
  AdaptiveSampler sampler_;
  Tick next_sample_{0};
  std::optional<Tick> last_sample_tick_;
  double last_value_{0.0};
  bool last_was_violation_{false};
  double pending_value_{0.0};  // begin_step -> finish_step handoff

  OnlineStats gain_acc_;       // r_i accumulator within the updating period
  OnlineStats allowance_acc_;  // e_i accumulator

  std::int64_t scheduled_ops_{0};
  std::int64_t forced_ops_{0};
  std::int64_t local_violations_{0};
  double total_cost_{0.0};
};

}  // namespace volley
