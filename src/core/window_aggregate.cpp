#include "core/window_aggregate.h"

#include <algorithm>

namespace volley {

WindowAggregator::WindowAggregator(Tick window, WindowAggregate kind)
    : window_(window), kind_(kind) {
  if (window < 1) throw std::invalid_argument("WindowAggregator: window >= 1");
}

void WindowAggregator::push(double value) {
  ++pushed_;
  values_.push_back(value);
  running_sum_ += value;
  if (static_cast<Tick>(values_.size()) > window_) {
    running_sum_ -= values_.front();
    values_.pop_front();
  }
  // Monotonic deque for the moving max.
  while (!max_deque_.empty() && max_deque_.back().second <= value) {
    max_deque_.pop_back();
  }
  max_deque_.emplace_back(pushed_ - 1, value);
  while (max_deque_.front().first <= pushed_ - 1 - window_) {
    max_deque_.pop_front();
  }
}

double WindowAggregator::value() const {
  if (values_.empty()) throw std::logic_error("WindowAggregator: empty");
  switch (kind_) {
    case WindowAggregate::kSum:
      return running_sum_;
    case WindowAggregate::kAverage:
      return running_sum_ / static_cast<double>(values_.size());
    case WindowAggregate::kMax:
      return max_deque_.front().second;
  }
  throw std::logic_error("WindowAggregator: unknown kind");
}

TimeSeries window_transform(const TimeSeries& in, Tick window,
                            WindowAggregate kind) {
  WindowAggregator agg(window, kind);
  TimeSeries out(in.size());
  for (std::size_t t = 0; t < in.size(); ++t) {
    agg.push(in[t]);
    out[t] = agg.value();
  }
  return out;
}

WindowedSource::WindowedSource(const MetricSource& inner, Tick window,
                               WindowAggregate kind,
                               double scan_cost_per_tick)
    : inner_(inner), window_(window), kind_(kind),
      scan_cost_per_tick_(scan_cost_per_tick) {
  if (window < 1) throw std::invalid_argument("WindowedSource: window >= 1");
  if (scan_cost_per_tick < 0.0)
    throw std::invalid_argument("WindowedSource: scan cost >= 0");
}

double WindowedSource::value_at(Tick t) const {
  const Tick start = std::max<Tick>(0, t - window_ + 1);
  double sum = 0.0;
  double max_value = inner_.value_at(start);
  for (Tick i = start; i <= t; ++i) {
    const double v = inner_.value_at(i);
    sum += v;
    max_value = std::max(max_value, v);
  }
  switch (kind_) {
    case WindowAggregate::kSum:
      return sum;
    case WindowAggregate::kAverage:
      return sum / static_cast<double>(t - start + 1);
    case WindowAggregate::kMax:
      return max_value;
  }
  throw std::logic_error("WindowedSource: unknown kind");
}

double WindowedSource::sampling_cost(Tick t) const {
  const Tick start = std::max<Tick>(0, t - window_ + 1);
  return inner_.sampling_cost(t) +
         scan_cost_per_tick_ * static_cast<double>(t - start + 1);
}

}  // namespace volley
