#include "core/adaptive_sampler.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "core/likelihood_kernel.h"
#include "obs/metrics.h"

namespace volley {

namespace {

/// Handles into the current registry, re-resolved per thread whenever a
/// scoped registry is installed (registration locks; the per-observe
/// increments below never do).
struct SamplerMetrics {
  obs::Counter* observations;
  obs::Counter* resets;
  obs::Counter* growths;
  obs::HistogramMetric* beta;

  static SamplerMetrics make(obs::MetricsRegistry& m) {
    return SamplerMetrics{
        &m.counter("volley_sampler_observations_total",
                   "Adaptation-rule evaluations (one per sampling operation)"),
        &m.counter("volley_sampler_interval_resets_total",
                   "Multiplicative decreases: beta_bound exceeded err, "
                   "interval reset to Id"),
        &m.counter("volley_sampler_interval_growths_total",
                   "Additive increases: p consecutive safe checks grew the "
                   "interval by one Id"),
        &m.histogram("volley_sampler_beta_bound", 0.0, 1.0, 20,
                     "Violation-likelihood bound beta_bound(I) at each "
                     "adaptation decision"),
    };
  }

  static const SamplerMetrics& get() { return obs::scoped_handles(&make); }
};

/// The chosen-interval histogram, with the upper bound derived from the
/// first-registering sampler's Im instead of the former hard cap of 64
/// (which silently funneled every interval of a large-Im configuration
/// into the overflow bucket). The bound is Im+1 rounded up to a multiple
/// of 64, one unit-width bin per interval (bins capped at 1024): rounding
/// keeps every configuration with Im <= 63 on the exact legacy 0-64x64
/// shape, so run-private registries with heterogeneous small Im stay
/// merge-compatible with their parent (Histogram::merge requires matching
/// shapes). Per MetricsRegistry semantics the shape is fixed by the first
/// registration in each registry; later samplers with a larger Im in the
/// same registry spill into overflow (visible in the snapshot's overflow
/// count). Documented in DESIGN.md's metric catalog.
obs::HistogramMetric& interval_histogram(Tick max_interval) {
  thread_local std::uint64_t owner_uid = 0;  // no registry has uid 0
  thread_local obs::HistogramMetric* handle = nullptr;
  obs::MetricsRegistry& m = obs::metrics();
  if (m.uid() != owner_uid) {
    const Tick hi = (max_interval / 64 + 1) * 64;
    const auto bins =
        static_cast<std::size_t>(std::min<Tick>(hi, 1024));
    handle = &m.histogram("volley_sampler_interval_ticks", 0.0,
                          static_cast<double>(hi), bins,
                          "Sampling interval chosen after each observation, "
                          "in default intervals Id (upper bound derived "
                          "from max_interval at first registration)");
    owner_uid = m.uid();
  }
  return *handle;
}

}  // namespace

void AdaptiveSamplerOptions::validate() const {
  if (error_allowance < 0.0 || error_allowance > 1.0)
    throw std::invalid_argument("AdaptiveSampler: err in [0,1]");
  if (slack_ratio < 0.0 || slack_ratio >= 1.0)
    throw std::invalid_argument("AdaptiveSampler: gamma in [0,1)");
  if (patience < 1)
    throw std::invalid_argument("AdaptiveSampler: patience >= 1");
  if (max_interval < 1)
    throw std::invalid_argument("AdaptiveSampler: max_interval >= 1");
}

AdaptiveSampler::AdaptiveSampler(const AdaptiveSamplerOptions& options,
                                 double threshold)
    : options_(options), threshold_(threshold),
      estimator_(options.estimator) {
  options_.validate();
}

Tick AdaptiveSampler::observe(double value, Tick gap) {
  estimator_.observe(value, gap);
  return observe_finish(estimator_.beta_bound(threshold_, interval_));
}

void AdaptiveSampler::observe_begin(double value, Tick gap,
                                    BetaBatch& batch) {
  estimator_.observe(value, gap);
  estimator_.push_lane(threshold_, interval_, batch);
}

Tick AdaptiveSampler::observe_finish(double beta) {
  last_beta_ = beta;

  const auto& om = SamplerMetrics::get();
  om.observations->inc();
  om.beta->observe(last_beta_);

  const double err = options_.error_allowance;
  if (last_beta_ > err) {
    // Estimated mis-detection rate exceeds the allowance: fall back to the
    // default interval immediately (multiplicative-decrease step).
    if (interval_ != 1) om.resets->inc();
    interval_ = 1;
    safe_streak_ = 0;
  } else if (last_beta_ <= (1.0 - options_.slack_ratio) * err) {
    if (++safe_streak_ >= options_.patience) {
      if (interval_ < options_.max_interval) {
        ++interval_;
        om.growths->inc();
      }
      safe_streak_ = 0;
    }
  } else {
    // Inside the slack band: acceptable, but growing would be risky.
    safe_streak_ = 0;
  }
  interval_histogram(options_.max_interval)
      .observe(static_cast<double>(interval_));
  return interval_;
}

void AdaptiveSampler::set_error_allowance(double err) {
  if (err < 0.0 || err > 1.0)
    throw std::invalid_argument("set_error_allowance: err in [0,1]");
  options_.error_allowance = err;
}

double AdaptiveSampler::cost_reduction_gain() const {
  if (interval_ >= options_.max_interval) return 0.0;
  const double i = static_cast<double>(interval_);
  return 1.0 / i - 1.0 / (i + 1.0);
}

double AdaptiveSampler::allowance_to_grow() const {
  return last_beta_ / (1.0 - options_.slack_ratio);
}

void AdaptiveSampler::reset() {
  estimator_.reset();
  interval_ = 1;
  safe_streak_ = 0;
  last_beta_ = 1.0;
}

}  // namespace volley
