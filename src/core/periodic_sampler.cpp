#include "core/periodic_sampler.h"

#include <stdexcept>

namespace volley {

PeriodicSampler::PeriodicSampler(Tick interval) : interval_(interval) {
  if (interval < 1)
    throw std::invalid_argument("PeriodicSampler: interval >= 1");
}

}  // namespace volley
