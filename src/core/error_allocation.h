// Task-level error-allowance allocation (paper Section IV-B).
//
// Because a missed local violation can hide a global violation and
// beta_c <= sum_i beta_i, the coordinator may distribute the task's error
// allowance err across monitors any way that keeps sum_i err_i = err.
// Different splits cost differently; the paper's iterative scheme moves
// allowance toward monitors with the highest *cost-reduction yield*
//
//     y_i = r_i / e_i,
//     r_i = 1/I_i - 1/(I_i+1)   (gain of growing monitor i's interval by 1)
//     e_i = beta_i(I_i)/(1-gamma) (allowance that growth would require)
//
// and reassigns err_i = err * y_i / sum_j y_j once per updating period.
// Throttles (both from the paper):
//   * minimum assignment: no monitor drops below err/100;
//   * uniformity throttle: the paper states "no reallocation if
//     max{y_i/y_j} < 0.1". Read literally that predicate is never true —
//     the max over ordered pairs is >= 1 (take i = j). The evident intent
//     is a near-uniformity test, and the implemented rule is exactly
//
//         skip  iff  min_y > 0  and  max_y / min_y - 1 < uniformity_band
//
//     with uniformity_band = 0.1: the largest pairwise yield ratio
//     max_{i,j} y_i/y_j stays below 1.1, i.e. the best yield exceeds the
//     worst by less than 10% *of the worst*. A zero yield (a monitor whose
//     interval cannot grow) disables the skip — its allowance should flow
//     to monitors that can use it. test_error_allocation.cpp pins both
//     edges of the band and the zero-yield case.
//
// `EvenAllocation` (the paper's "even" comparison scheme in Figure 8)
// always splits err uniformly.
//
// Units: every allowance (err, err_i, e_i) is a dimensionless probability
// in [0, 1]; r_i and y_i are dimensionless rates derived from interval
// counts.
//
// Thread-safety: allocators are stateless apart from their Options —
// allocate() is safe to call from any single thread at a time; the free
// functions are pure. Reallocation outcomes are observable through the
// volley_allocation_* counters in the process-global obs/ registry.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/types.h"

namespace volley {

class AllowanceAllocator {
 public:
  virtual ~AllowanceAllocator() = default;

  /// Computes the next per-monitor allowances. `current` holds the present
  /// allocation (summing to err); `stats` the averaged r/e statistics of
  /// the finished updating period. Returns the new allocation (sums to err).
  virtual std::vector<double> allocate(double err,
                                       std::span<const double> current,
                                       std::span<const CoordStats> stats) = 0;
};

/// Uniform split (baseline "even" scheme of Figure 8).
class EvenAllocation final : public AllowanceAllocator {
 public:
  std::vector<double> allocate(double err, std::span<const double> current,
                               std::span<const CoordStats> stats) override;
};

/// The paper's iterative yield-proportional scheme.
class AdaptiveAllocation final : public AllowanceAllocator {
 public:
  struct Options {
    double min_fraction{0.01};      // err_min = min_fraction * err
    double uniformity_band{0.1};    // skip when max_y/min_y - 1 < band
    double epsilon_allowance{1e-9}; // floor for e_i to avoid division by 0
    // Step size toward the yield-proportional target per updating period.
    // The paper's literal rule (err_i = err * y_i / sum y_j, i.e. step 1.0)
    // oscillates in practice: a monitor that just grew has a small marginal
    // gain r_i, so the rule strips its allowance, collapsing its interval
    // to Id, after which it looks high-yield again — and the paper itself
    // expects the assignment to "gradually" converge. The damped iteration
    // keeps the fixed point of the paper's rule but actually converges.
    double smoothing{0.3};
  };

  AdaptiveAllocation() : AdaptiveAllocation(Options{}) {}
  explicit AdaptiveAllocation(const Options& options);

  std::vector<double> allocate(double err, std::span<const double> current,
                               std::span<const CoordStats> stats) override;

 private:
  Options options_;
};

/// Clamps every entry to at least `floor_value` and rescales the remainder
/// so the vector still sums to `total`. Exposed for testing.
std::vector<double> clamp_and_normalize(std::vector<double> alloc,
                                        double total, double floor_value);

/// Reclaims the allowance of failed monitors. Entries whose index appears
/// in `excluded` are zeroed; the surviving entries are rescaled (keeping
/// their relative proportions, with the standard err/100 floor) so the
/// whole vector sums to `err` again — because beta_c <= sum_i beta_i holds
/// over the *reachable* monitors, a dead monitor's unused allowance is free
/// error budget for the survivors. Excluding every monitor yields all
/// zeros.
std::vector<double> redistribute_allowance(
    double err, std::span<const double> current,
    std::span<const std::size_t> excluded);

}  // namespace volley
