// Multi-task state-correlation based sampling (paper Section II-B and the
// "Multi-Task Level" bullet of Section II-C; the full design was deferred to
// a technical report, so this module is a documented reconstruction —
// see DESIGN.md "Substitutions").
//
// Idea from the paper: states of different tasks correlate (growing DDoS
// traffic asymmetry implies growing response time). When task L (cheap) is a
// *necessary-condition indicator* for task F (expensive), F only needs high
// frequency sampling while L suggests high violation likelihood; otherwise F
// can rest at its maximum interval.
//
// Reconstruction:
//  * Detection: per task we retain a bounded history of state values on a
//    common tick grid; every `plan_period` ticks we compute the best-lag
//    Pearson correlation for each ordered pair (L leads F when the best lag
//    is >= 0) and keep edges with |corr| >= min_correlation. Each follower
//    is gated by the single admissible leader maximizing
//    corr * (follower cost saved), and a task never both leads and follows
//    the same partner (no 2-cycles).
//  * Gating: follower F is *suppressed* (sampling clamped to its rest
//    interval) while its leader's latest value stays below trigger_ratio *
//    leader_threshold AND F's own latest value stays below trigger_ratio *
//    F_threshold (self-guard). When either trigger fires, F becomes active
//    for at least `cooldown` ticks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "common/ring_buffer.h"

namespace volley {

class CorrelationScheduler {
 public:
  struct Options {
    std::size_t history_window{512};  // ticks of retained state history
    int max_lag{16};                  // lag scan range for detection
    double min_correlation{0.8};      // edge admission threshold
    double trigger_ratio{0.7};        // wake when value > ratio * threshold
    Tick plan_period{256};            // ticks between plan rebuilds
    Tick cooldown{64};                // ticks a woken follower stays active
    std::size_t min_history{64};      // ticks required before planning
  };

  struct Edge {
    std::size_t leader{0};
    std::size_t follower{0};
    double corr{0.0};
    int lag{0};  // >= 0: leader's series leads the follower's
  };

  CorrelationScheduler() : CorrelationScheduler(Options{}) {}
  explicit CorrelationScheduler(const Options& options);

  /// Registers a task; returns its index. `cost_per_sample` is the abstract
  /// cost of one sampling operation of this task (drives edge selection:
  /// gating is only worthwhile when the follower is more expensive).
  std::size_t add_task(double threshold, double cost_per_sample);

  std::size_t task_count() const { return tasks_.size(); }

  /// Feeds the state value of `task` for the current tick. Call for every
  /// task every tick (use the latest known/sampled value when the task did
  /// not sample this tick), then call end_tick() once.
  void observe(std::size_t task, double value);

  /// Closes the current tick: advances time, refreshes gating decisions and
  /// periodically rebuilds the correlation plan.
  void end_tick();

  /// True when the task is currently gated to its rest interval.
  bool suppressed(std::size_t task) const;

  /// The follower's leader under the current plan, if any.
  std::optional<Edge> gate_of(std::size_t task) const;

  const std::vector<Edge>& plan() const { return plan_; }
  Tick now() const { return now_; }

  /// Forces a plan rebuild from the current histories (tests/benches).
  void rebuild_plan();

 private:
  struct TaskState {
    double threshold{0.0};
    double cost{1.0};
    RingBuffer<double> history;
    double last_value{0.0};
    bool has_value{false};
    bool observed_this_tick{false};
    std::optional<std::size_t> gate_edge;  // index into plan_
    Tick active_until{0};                  // cooldown horizon
  };

  void refresh_gates();

  Options options_;
  std::vector<TaskState> tasks_;
  std::vector<Edge> plan_;
  Tick now_{0};
  Tick next_plan_{0};
};

}  // namespace volley
