#include "core/correlation.h"

#include <algorithm>
#include <stdexcept>

#include "stats/correlation.h"

namespace volley {

CorrelationScheduler::CorrelationScheduler(const Options& options)
    : options_(options) {
  if (options.history_window < options.min_history)
    throw std::invalid_argument(
        "CorrelationScheduler: history_window >= min_history");
  if (options.min_correlation <= 0.0 || options.min_correlation > 1.0)
    throw std::invalid_argument(
        "CorrelationScheduler: min_correlation in (0,1]");
  if (options.trigger_ratio <= 0.0)
    throw std::invalid_argument("CorrelationScheduler: trigger_ratio > 0");
  if (options.plan_period < 1 || options.cooldown < 0)
    throw std::invalid_argument("CorrelationScheduler: bad periods");
  next_plan_ = options.plan_period;
}

std::size_t CorrelationScheduler::add_task(double threshold,
                                           double cost_per_sample) {
  if (cost_per_sample <= 0.0)
    throw std::invalid_argument("CorrelationScheduler: cost > 0");
  TaskState state{threshold, cost_per_sample,
                  RingBuffer<double>(options_.history_window),
                  0.0, false, false, std::nullopt, 0};
  tasks_.push_back(std::move(state));
  return tasks_.size() - 1;
}

void CorrelationScheduler::observe(std::size_t task, double value) {
  TaskState& s = tasks_.at(task);
  s.last_value = value;
  s.has_value = true;
  s.observed_this_tick = true;
}

void CorrelationScheduler::end_tick() {
  for (auto& s : tasks_) {
    // Tasks that did not report this tick repeat their latest known value
    // so histories stay aligned on the common tick grid.
    s.history.push(s.has_value ? s.last_value : 0.0);
    s.observed_this_tick = false;
  }
  ++now_;
  if (now_ >= next_plan_) {
    rebuild_plan();
    next_plan_ = now_ + options_.plan_period;
  }
  refresh_gates();
}

void CorrelationScheduler::rebuild_plan() {
  plan_.clear();
  const std::size_t n = tasks_.size();
  // Candidate edges: leader strictly cheaper than follower, best lag >= 0
  // (leader's history is predictive of the follower's), strong correlation.
  std::vector<Edge> candidates;
  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t f = 0; f < n; ++f) {
      if (l == f) continue;
      if (tasks_[l].cost >= tasks_[f].cost) continue;
      if (tasks_[l].history.size() < options_.min_history) continue;
      const auto hl = tasks_[l].history.to_vector();
      const auto hf = tasks_[f].history.to_vector();
      const auto best = best_lag_correlation(hl, hf, options_.max_lag);
      if (!best) continue;
      if (best->corr < options_.min_correlation) continue;  // positive only
      if (best->lag < 0) continue;  // follower would lead the leader
      candidates.push_back(Edge{l, f, best->corr, best->lag});
    }
  }
  // One gate per follower: maximize corr * (cost saved by resting follower).
  std::sort(candidates.begin(), candidates.end(),
            [this](const Edge& a, const Edge& b) {
              const double sa = a.corr * tasks_[a.follower].cost;
              const double sb = b.corr * tasks_[b.follower].cost;
              return sa > sb;
            });
  std::vector<bool> follows(n, false);
  std::vector<bool> leads(n, false);
  for (const Edge& e : candidates) {
    if (follows[e.follower]) continue;      // already gated
    if (follows[e.leader]) continue;        // a gated task can't lead
    if (leads[e.follower]) continue;        // a leader can't also rest
    plan_.push_back(e);
    follows[e.follower] = true;
    leads[e.leader] = true;
  }
  // Re-bind gate pointers.
  for (auto& s : tasks_) s.gate_edge.reset();
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    tasks_[plan_[i].follower].gate_edge = i;
  }
}

void CorrelationScheduler::refresh_gates() {
  for (auto& s : tasks_) {
    if (!s.gate_edge) continue;
    const Edge& e = plan_[*s.gate_edge];
    const TaskState& leader = tasks_[e.leader];
    const bool leader_hot =
        leader.has_value &&
        leader.last_value > options_.trigger_ratio * leader.threshold;
    const bool self_hot =
        s.has_value && s.last_value > options_.trigger_ratio * s.threshold;
    if (leader_hot || self_hot) {
      s.active_until = now_ + options_.cooldown;
    }
  }
}

bool CorrelationScheduler::suppressed(std::size_t task) const {
  const TaskState& s = tasks_.at(task);
  if (!s.gate_edge) return false;
  return now_ >= s.active_until;
}

std::optional<CorrelationScheduler::Edge> CorrelationScheduler::gate_of(
    std::size_t task) const {
  const TaskState& s = tasks_.at(task);
  if (!s.gate_edge) return std::nullopt;
  return plan_[*s.gate_edge];
}

}  // namespace volley
