#include "core/monitor.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace_events.h"

namespace volley {

namespace {

struct MonitorMetrics {
  obs::Counter* scheduled;
  obs::Counter* forced;
  obs::Counter* violations;

  static MonitorMetrics make(obs::MetricsRegistry& m) {
    return MonitorMetrics{
        &m.counter("volley_monitor_scheduled_ops_total",
                   "Sampling operations on the monitor's own schedule"),
        &m.counter("volley_monitor_forced_ops_total",
                   "Sampling operations forced by coordinator global polls"),
        &m.counter("volley_monitor_local_violations_total",
                   "Samples that exceeded the monitor's local threshold T_i"),
    };
  }

  static const MonitorMetrics& get() { return obs::scoped_handles(&make); }
};

}  // namespace

Monitor::Monitor(MonitorId id, const MetricSource& source,
                 const AdaptiveSamplerOptions& options, double local_threshold)
    : id_(id), source_(source), sampler_(options, local_threshold) {}

Monitor::Outcome Monitor::sample_at(Tick t, SampleReason reason) {
  if (last_sample_tick_ && t <= *last_sample_tick_) {
    if (t == *last_sample_tick_ && reason == SampleReason::kGlobalPoll) {
      // The datum for this tick is already in hand; serve it for free.
      Outcome cached;
      cached.sample = Sample{t, last_value_};
      cached.local_violation = last_was_violation_;
      cached.reason = reason;
      return cached;
    }
    throw std::logic_error("Monitor: sampling must move forward in time");
  }
  const double value = source_.value_at(t);
  const Tick gap = last_sample_tick_ ? t - *last_sample_tick_ : 1;
  const Tick interval = sampler_.observe(value, gap);
  return apply_sample(t, value, interval, reason);
}

void Monitor::begin_step(Tick t, BetaBatch& batch) {
  if (!due(t)) throw std::logic_error("Monitor::begin_step called when not due");
  if (last_sample_tick_ && t <= *last_sample_tick_)
    throw std::logic_error("Monitor: sampling must move forward in time");
  const double value = source_.value_at(t);
  const Tick gap = last_sample_tick_ ? t - *last_sample_tick_ : 1;
  sampler_.observe_begin(value, gap, batch);
  pending_value_ = value;
}

Monitor::Outcome Monitor::finish_step(Tick t, double beta) {
  const Tick interval = sampler_.observe_finish(beta);
  return apply_sample(t, pending_value_, interval, SampleReason::kScheduled);
}

Monitor::Outcome Monitor::apply_sample(Tick t, double value, Tick interval,
                                       SampleReason reason) {
  last_sample_tick_ = t;
  next_sample_ = t + interval;

  gain_acc_.add(sampler_.cost_reduction_gain());
  allowance_acc_.add(sampler_.allowance_to_grow());
  total_cost_ += source_.sampling_cost(t);

  Outcome out;
  out.sample = Sample{t, value};
  out.local_violation = value > sampler_.threshold();
  out.reason = reason;
  last_value_ = value;
  last_was_violation_ = out.local_violation;
  const auto& om = MonitorMetrics::get();
  if (out.local_violation) {
    ++local_violations_;
    om.violations->inc();
  }
  if (reason == SampleReason::kScheduled) {
    ++scheduled_ops_;
    om.scheduled->inc();
  } else {
    ++forced_ops_;
    om.forced->inc();
  }
  if (obs::trace_enabled()) {
    obs::trace().record(obs::TraceKind::kSampleTaken, t, id_, value,
                        reason == SampleReason::kScheduled ? 0.0 : 1.0);
    obs::trace().record(obs::TraceKind::kIntervalChosen, t, id_,
                        static_cast<double>(interval), sampler_.last_beta());
  }
  return out;
}

Monitor::Outcome Monitor::step(Tick t) {
  if (!due(t)) throw std::logic_error("Monitor::step called when not due");
  return sample_at(t, SampleReason::kScheduled);
}

Monitor::Outcome Monitor::force_sample(Tick t) {
  return sample_at(t, SampleReason::kGlobalPoll);
}

CoordStats Monitor::drain_coord_stats() {
  CoordStats stats;
  stats.observations = gain_acc_.count();
  stats.avg_gain = gain_acc_.mean();
  stats.avg_allowance = allowance_acc_.mean();
  gain_acc_.reset();
  allowance_acc_.reset();
  return stats;
}

}  // namespace volley
