#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace volley {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, std::int64_t n) {
  if (n <= 0) throw std::invalid_argument("Histogram: n must be > 0");
  std::size_t bin;
  if (x < lo_) {
    underflow_ += n;
    bin = 0;
  } else if (x >= hi_) {
    overflow_ += n;
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    bin = std::min(bin, counts_.size() - 1);  // guard x just below hi_
  }
  counts_[bin] += n;
  total_ += n;
  sum_ += x * static_cast<double>(n);
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size())
    throw std::invalid_argument("Histogram::merge: shape mismatch");
  for (std::size_t b = 0; b < counts_.size(); ++b)
    counts_[b] += other.counts_[b];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + bin_width_; }

double Histogram::mean() const {
  if (total_ == 0) throw std::logic_error("Histogram::mean: empty");
  return sum_ / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) throw std::logic_error("Histogram::quantile: empty");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("Histogram::quantile: q in [0,1]");
  const double target = q * static_cast<double>(total_);
  std::int64_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (static_cast<double>(cum + counts_[b]) >= target) {
      if (counts_[b] == 0) return bin_lo(b);
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts_[b]);
      return bin_lo(b) + frac * bin_width_;
    }
    cum += counts_[b];
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  const std::int64_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        std::llround(static_cast<double>(width) *
                                     static_cast<double>(counts_[b]) /
                                     static_cast<double>(peak)));
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ") "
       << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace volley
