// Quantile estimation.
//
// Two flavours:
//  * `exact_quantile` — sorts a snapshot; used to set task thresholds at the
//    (100-k)-th percentile of a metric's values (Section V-A "Thresholds"),
//    and by the Figure 6 box-plot statistics.
//  * `P2Quantile` — the Jain/Chlamtac P-squared streaming estimator; used
//    where traces are too long to buffer (online threshold tracking in the
//    socket runtime).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace volley {

/// Exact quantile of a sample by linear interpolation (type-7, the
/// numpy/R default). q in [0, 1]. The input span is copied, not mutated.
double exact_quantile(std::span<const double> values, double q);

/// Convenience: several quantiles with one sort.
std::vector<double> exact_quantiles(std::span<const double> values,
                                    std::span<const double> qs);

/// Five-number summary used by the Figure 6 box plots.
struct BoxStats {
  double min{0}, q1{0}, median{0}, q3{0}, max{0};
};
BoxStats box_stats(std::span<const double> values);

/// Streaming quantile estimation with O(1) memory (P² algorithm,
/// Jain & Chlamtac, CACM 1985).
class P2Quantile {
 public:
  /// q in (0, 1).
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate. Exact while fewer than 5 samples were seen.
  double value() const;

  std::size_t count() const { return count_; }

 private:
  double q_;
  std::size_t count_{0};
  std::array<double, 5> heights_{};    // marker heights
  std::array<double, 5> positions_{};  // actual marker positions
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{};
  std::vector<double> warmup_;         // first five samples
};

}  // namespace volley
