// Correlation analysis for the multi-task state-correlation layer.
//
// The paper (Section II-B) proposes sampling an expensive task only when a
// correlated cheap task suggests high violation likelihood, and asks "how to
// detect state correlation automatically?". The detection primitive we use
// is the lagged Pearson correlation between two aligned state-value series:
// corr(x[t], y[t+lag]) maximized over a small lag window, so a *leading*
// indicator (positive best-lag) can gate a follower task's sampling.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "common/ring_buffer.h"

namespace volley {

/// Pearson correlation coefficient of two equal-length series.
/// Returns nullopt when either series is constant (undefined correlation)
/// or when fewer than two points are given.
std::optional<double> pearson(std::span<const double> x,
                              std::span<const double> y);

/// Pearson correlation of x[t] against y[t + lag] (lag >= 0 means y is
/// shifted left: y leads by -lag / x leads by +lag). Overlap must keep at
/// least `min_overlap` points, else nullopt.
std::optional<double> lagged_pearson(std::span<const double> x,
                                     std::span<const double> y, int lag,
                                     std::size_t min_overlap = 8);

struct LagCorrelation {
  int lag{0};        // best lag in [-max_lag, +max_lag]
  double corr{0.0};  // correlation at the best lag
};

/// Scans lags in [-max_lag, max_lag] and returns the lag with the largest
/// |corr|. nullopt when no lag had enough overlap or variance.
std::optional<LagCorrelation> best_lag_correlation(
    std::span<const double> x, std::span<const double> y, int max_lag,
    std::size_t min_overlap = 8);

/// Streaming pairwise correlation tracker over a bounded recent window.
/// Tasks push aligned state values each tick; `current()` reports the
/// correlation over the retained window.
class RollingCorrelation {
 public:
  explicit RollingCorrelation(std::size_t window);

  void add(double x, double y);
  std::size_t size() const { return xs_.size(); }

  std::optional<double> current() const;
  std::optional<LagCorrelation> current_best_lag(int max_lag) const;

 private:
  RingBuffer<double> xs_;
  RingBuffer<double> ys_;
};

}  // namespace volley
