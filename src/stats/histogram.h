// Fixed-width binned histogram over a closed value range.
//
// Used by experiment accounting (distribution of sampling intervals chosen
// by the adaptive sampler, distribution of Dom0 CPU utilisation samples) and
// by tests that assert distributional properties of the trace generators.
// Out-of-range values are clamped into the edge bins and counted separately
// so callers can detect mis-sized ranges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace volley {

class Histogram {
 public:
  /// [lo, hi) split into `bins` equal-width bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_n(double x, std::int64_t n);

  /// Adds every observation of `other` into this histogram. Both must share
  /// the same [lo, hi) range and bin count (throws otherwise); counts,
  /// under/overflow, and the running sum combine exactly, so merging K
  /// shard histograms equals observing the concatenated stream.
  void merge(const Histogram& other);

  std::int64_t count() const { return total_; }
  std::int64_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }

  double mean() const;

  /// Value below which `q` of the mass lies, interpolated within a bin.
  double quantile(double q) const;

  /// Multi-line ASCII rendering (for example programs), widest bin = width.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_{0};
  std::int64_t underflow_{0};
  std::int64_t overflow_{0};
  double sum_{0.0};
};

}  // namespace volley
