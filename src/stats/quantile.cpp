#include "stats/quantile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace volley {

namespace {
double quantile_of_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty())
    throw std::invalid_argument("exact_quantile: empty sample");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("exact_quantile: q must be in [0,1]");
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}
}  // namespace

double exact_quantile(std::span<const double> values, double q) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_of_sorted(sorted, q);
}

std::vector<double> exact_quantiles(std::span<const double> values,
                                    std::span<const double> qs) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile_of_sorted(sorted, q));
  return out;
}

BoxStats box_stats(std::span<const double> values) {
  const double qs[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  auto v = exact_quantiles(values, qs);
  return BoxStats{v[0], v[1], v[2], v[3], v[4]};
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (q <= 0.0 || q >= 1.0)
    throw std::invalid_argument("P2Quantile: q must be in (0,1)");
  desired_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  increments_ = {0, q / 2, q, (1 + q) / 2, 1};
  warmup_.reserve(5);
}

void P2Quantile::add(double x) {
  ++count_;
  if (count_ <= 5) {
    warmup_.push_back(x);
    std::sort(warmup_.begin(), warmup_.end());
    if (count_ == 5) {
      for (int i = 0; i < 5; ++i) {
        heights_[i] = warmup_[static_cast<std::size_t>(i)];
        positions_[i] = i + 1;
      }
    }
    return;
  }

  // Find the cell k such that heights_[k] <= x < heights_[k+1].
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[static_cast<std::size_t>(k) + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[static_cast<std::size_t>(i)] += 1;
  for (int i = 0; i < 5; ++i) {
    desired_[static_cast<std::size_t>(i)] +=
        increments_[static_cast<std::size_t>(i)];
  }

  // Adjust interior markers with parabolic (fallback linear) interpolation.
  for (int i = 1; i <= 3; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const double d = desired_[ui] - positions_[ui];
    const double np = positions_[ui + 1] - positions_[ui];
    const double nm = positions_[ui - 1] - positions_[ui];
    if ((d >= 1.0 && np > 1.0) || (d <= -1.0 && nm < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      const double hp = heights_[ui + 1] - heights_[ui];
      const double hm = heights_[ui - 1] - heights_[ui];
      // Parabolic prediction.
      double candidate =
          heights_[ui] + sign / (np - nm) *
                             ((sign - nm) * hp / np + (np - sign) * hm / nm);
      if (heights_[ui - 1] < candidate && candidate < heights_[ui + 1]) {
        heights_[ui] = candidate;
      } else {
        // Linear fallback toward the neighbour in the movement direction.
        const auto nbr = static_cast<std::size_t>(i + (sign > 0 ? 1 : -1));
        heights_[ui] += sign * (heights_[nbr] - heights_[ui]) /
                        (positions_[nbr] - positions_[ui]);
      }
      positions_[ui] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) throw std::logic_error("P2Quantile: no samples");
  if (count_ < 5) {
    // Exact quantile over the warm-up buffer.
    return quantile_of_sorted(warmup_, q_);
  }
  return heights_[2];
}

}  // namespace volley
