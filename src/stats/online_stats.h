// Online mean/variance estimation (Welford / Knuth TAOCP vol. 2), as used by
// the violation-likelihood estimator of Section III-B:
//
//   mu_n    = mu_{n-1} + (delta - mu_{n-1}) / n
//   sigma^2_n = ((n-1) sigma^2_{n-1} + (delta - mu_n)(delta - mu_{n-1})) / n
//
// The paper additionally *restarts* the statistics (n = 0) whenever n exceeds
// a window (1000 samples) so the estimate tracks the recent delta
// distribution; `WindowedStats` implements that policy on top of
// `OnlineStats`. To avoid the cold-start where a freshly restarted estimator
// has seen 0-1 samples, the windowed variant keeps serving the *previous*
// window's statistics until the new window has a configurable warm-up count.
#pragma once

#include <cstdint>
#include <optional>

namespace volley {

/// Numerically stable streaming mean/variance.
class OnlineStats {
 public:
  void add(double x);

  /// Removes nothing; restart from scratch.
  void reset();

  std::int64_t count() const { return n_; }
  /// Mean of the observed samples; 0 when empty (matches the paper's
  /// convention of starting mu at 0).
  double mean() const { return mean_; }
  /// Population variance (divide by n, per the paper's update rule).
  double variance() const;
  double stddev() const;

  /// Merge another estimator's samples into this one (parallel Welford).
  void merge(const OnlineStats& other);

 private:
  std::int64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};  // sum of squared deviations from the mean
};

/// OnlineStats with the paper's periodic-restart policy.
///
/// `window` is the restart threshold (paper: 1000). `warmup` is the number
/// of samples the new window must accumulate before its statistics replace
/// the previous window's (we use 8 by default; the paper restarts abruptly,
/// which briefly leaves mu/sigma undefined — the warm-up is our documented
/// smoothing of that edge and is ablatable by setting warmup = 0).
class WindowedStats {
 public:
  explicit WindowedStats(std::int64_t window = 1000, std::int64_t warmup = 8);

  void add(double x);
  void reset();

  /// Statistics of the active window, falling back to the previous window
  /// during warm-up. Empty optional when no data has ever been seen.
  std::optional<double> mean() const;
  std::optional<double> stddev() const;

  /// Both statistics from one resolution of the active window — the
  /// hot-path form (beta_bound evaluates this once per call chain instead
  /// of resolving mean and stddev independently).
  struct Snapshot {
    double mean{0.0};
    double stddev{0.0};
  };
  std::optional<Snapshot> snapshot() const;

  std::int64_t window() const { return window_; }
  /// Samples in the currently accumulating window.
  std::int64_t current_count() const { return current_.count(); }
  /// Total samples ever observed.
  std::int64_t total_count() const { return total_; }

 private:
  const OnlineStats& active() const;

  std::int64_t window_;
  std::int64_t warmup_;
  OnlineStats current_;
  OnlineStats previous_;
  bool has_previous_{false};
  std::int64_t total_{0};
};

}  // namespace volley
