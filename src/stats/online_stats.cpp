#include "stats/online_stats.h"

#include <cmath>
#include <stdexcept>

namespace volley {

void OnlineStats::add(double x) {
  ++n_;
  const double d1 = x - mean_;
  mean_ += d1 / static_cast<double>(n_);
  const double d2 = x - mean_;
  m2_ += d1 * d2;
}

void OnlineStats::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double OnlineStats::variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
}

WindowedStats::WindowedStats(std::int64_t window, std::int64_t warmup)
    : window_(window), warmup_(warmup) {
  if (window <= 0) throw std::invalid_argument("WindowedStats: window > 0");
  if (warmup < 0) throw std::invalid_argument("WindowedStats: warmup >= 0");
}

void WindowedStats::add(double x) {
  if (current_.count() >= window_) {
    previous_ = current_;
    has_previous_ = true;
    current_.reset();
  }
  current_.add(x);
  ++total_;
}

void WindowedStats::reset() {
  current_.reset();
  previous_.reset();
  has_previous_ = false;
  total_ = 0;
}

const OnlineStats& WindowedStats::active() const {
  if (has_previous_ && current_.count() < warmup_) return previous_;
  return current_;
}

std::optional<double> WindowedStats::mean() const {
  const OnlineStats& s = active();
  if (s.count() == 0) return std::nullopt;
  return s.mean();
}

std::optional<double> WindowedStats::stddev() const {
  const OnlineStats& s = active();
  if (s.count() == 0) return std::nullopt;
  return s.stddev();
}

std::optional<WindowedStats::Snapshot> WindowedStats::snapshot() const {
  const OnlineStats& s = active();
  if (s.count() == 0) return std::nullopt;
  return Snapshot{s.mean(), s.stddev()};
}

}  // namespace volley
