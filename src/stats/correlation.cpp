#include "stats/correlation.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace volley {

std::optional<double> pearson(std::span<const double> x,
                              std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("pearson: size mismatch");
  const std::size_t n = x.size();
  if (n < 2) return std::nullopt;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return std::nullopt;
  return sxy / std::sqrt(sxx * syy);
}

std::optional<double> lagged_pearson(std::span<const double> x,
                                     std::span<const double> y, int lag,
                                     std::size_t min_overlap) {
  if (x.size() != y.size())
    throw std::invalid_argument("lagged_pearson: size mismatch");
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  const std::ptrdiff_t shift = lag;
  // Pair x[i] with y[i + shift]; valid i range keeps both in bounds.
  const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, -shift);
  const std::ptrdiff_t hi = std::min(n, n - shift);
  if (hi - lo < static_cast<std::ptrdiff_t>(min_overlap)) return std::nullopt;
  return pearson(x.subspan(static_cast<std::size_t>(lo),
                           static_cast<std::size_t>(hi - lo)),
                 y.subspan(static_cast<std::size_t>(lo + shift),
                           static_cast<std::size_t>(hi - lo)));
}

std::optional<LagCorrelation> best_lag_correlation(
    std::span<const double> x, std::span<const double> y, int max_lag,
    std::size_t min_overlap) {
  if (max_lag < 0)
    throw std::invalid_argument("best_lag_correlation: max_lag >= 0");
  std::optional<LagCorrelation> best;
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    auto c = lagged_pearson(x, y, lag, min_overlap);
    if (!c) continue;
    if (!best || std::abs(*c) > std::abs(best->corr)) {
      best = LagCorrelation{lag, *c};
    }
  }
  return best;
}

RollingCorrelation::RollingCorrelation(std::size_t window)
    : xs_(window), ys_(window) {}

void RollingCorrelation::add(double x, double y) {
  xs_.push(x);
  ys_.push(y);
}

std::optional<double> RollingCorrelation::current() const {
  const auto x = xs_.to_vector();
  const auto y = ys_.to_vector();
  return pearson(x, y);
}

std::optional<LagCorrelation> RollingCorrelation::current_best_lag(
    int max_lag) const {
  const auto x = xs_.to_vector();
  const auto y = ys_.to_vector();
  return best_lag_correlation(x, y, max_lag);
}

}  // namespace volley
