#include "tasks/system_task.h"

namespace volley {

SystemTask make_system_task(const SysMetricsGenerator& generator,
                            std::size_t node, std::size_t metric,
                            double selectivity_percent,
                            double error_allowance) {
  SystemTask task;
  task.series = generator.generate_metric(node, metric);
  task.threshold = task.series.threshold_for_selectivity(selectivity_percent);
  task.metric = metric;
  task.spec.global_threshold = task.threshold;
  task.spec.error_allowance = error_allowance;
  task.spec.id_seconds = 5.0;
  return task;
}

}  // namespace volley
