// Application-level monitoring tasks (paper Section V-A): a task alerts
// when the access rate of an object on a VM exceeds a threshold chosen by
// the alert selectivity k, computed from the recent access logs. Default
// sampling interval: 1 second.
#pragma once

#include <cstddef>

#include "core/task.h"
#include "trace/httplog.h"

namespace volley {

struct AppTask {
  TimeSeries series;  // per-tick access rate of the object
  double threshold{0};
  TaskSpec spec;  // Id = 1 s
  std::size_t object{0};
};

/// Builds one object's access-rate task from a pre-generated workload.
AppTask make_app_task(const HttpLogGenerator::ObjectTrace& trace,
                      std::size_t object, double selectivity_percent,
                      double error_allowance);

}  // namespace volley
