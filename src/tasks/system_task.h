// System-level monitoring tasks (paper Section V-A): a task alerts when the
// value of one of the 66 OS metrics on a VM exceeds a threshold chosen by
// the alert selectivity k. Default sampling interval: 5 seconds.
#pragma once

#include <cstddef>

#include "core/task.h"
#include "trace/sysmetrics.h"

namespace volley {

struct SystemTask {
  TimeSeries series;
  double threshold{0};
  TaskSpec spec;  // Id = 5 s
  std::size_t metric{0};
};

/// Builds one VM/metric task: threshold at the (100-k)-th percentile.
SystemTask make_system_task(const SysMetricsGenerator& generator,
                            std::size_t node, std::size_t metric,
                            double selectivity_percent,
                            double error_allowance);

}  // namespace volley
