#include "tasks/app_task.h"

namespace volley {

AppTask make_app_task(const HttpLogGenerator::ObjectTrace& trace,
                      std::size_t object, double selectivity_percent,
                      double error_allowance) {
  AppTask task;
  task.series = trace.rate;
  task.threshold = task.series.threshold_for_selectivity(selectivity_percent);
  task.object = object;
  task.spec.global_threshold = task.threshold;
  task.spec.error_allowance = error_allowance;
  task.spec.id_seconds = 1.0;
  return task;
}

}  // namespace volley
