#include "tasks/network_task.h"

namespace volley {

NetworkWorkload::NetworkWorkload(const NetworkWorkloadOptions& options)
    : options_(options) {
  options_.netflow.validate();
  options_.attack_prototype.validate();
}

std::vector<VmTraffic> NetworkWorkload::generate_traffic() const {
  NetflowGenerator generator(options_.netflow);
  auto traffic = generator.generate();
  Rng rng(options_.seed);
  for (auto& vm : traffic) {
    Rng vm_rng = rng.fork();
    // Attack counts vary across VMs (Poisson around the configured mean),
    // so per-VM alert tick-shares spread around k instead of clustering.
    std::size_t count = options_.attacks_per_vm;
    if (options_.poisson_attack_counts && count > 0) {
      count = static_cast<std::size_t>(
          vm_rng.poisson(static_cast<double>(options_.attacks_per_vm)));
    }
    auto episodes = place_episodes(vm.rho.ticks(),
                                   options_.attack_prototype, count, vm_rng);
    for (auto& episode : episodes) {
      // Attacks differ in strength and duration across episodes (real
      // floods do); this also varies each VM's alert tick-share, which
      // smooths the selectivity sweep of Figure 5(a).
      episode.peak_syn_rate *= vm_rng.uniform(0.3, 1.0);
      episode.plateau = 1 + static_cast<Tick>(
          static_cast<double>(episode.plateau) * vm_rng.uniform(0.5, 1.5));
      inject_ddos(vm, episode, vm_rng);
    }
  }
  return traffic;
}

NetworkTask NetworkWorkload::make_task(VmTraffic traffic,
                                       double selectivity_percent,
                                       double error_allowance) {
  NetworkTask task;
  task.threshold =
      traffic.rho.threshold_for_selectivity(selectivity_percent);
  task.traffic = std::move(traffic);
  task.spec.global_threshold = task.threshold;
  task.spec.error_allowance = error_allowance;
  task.spec.id_seconds = 15.0;  // capture continuously, report every 15 s
  return task;
}

}  // namespace volley
