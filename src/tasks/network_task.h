// Network-level monitoring tasks (paper Section V-A): DDoS detection via
// the SYN / SYN-ACK traffic difference rho on each VM, sampled by the Dom0
// monitor every 15 seconds.
//
// This module packages the full experiment recipe used by Figures 1, 5(a),
// 6 and 8: generate benign traffic, inject attack episodes, derive the
// threshold from the alert selectivity k (the (100-k)-th percentile of the
// monitored series, Section V-A "Thresholds"), and produce the TaskSpec.
#pragma once

#include <cstdint>
#include <vector>

#include "core/task.h"
#include "trace/ddos.h"
#include "trace/netflow.h"

namespace volley {

struct NetworkWorkloadOptions {
  NetflowOptions netflow{};
  DdosEpisode attack_prototype{};   // start is chosen per episode
  std::size_t attacks_per_vm{3};
  // Attack counts per VM are Poisson(attacks_per_vm) by default, which
  // spreads per-VM alert tick-shares (Figure 5a); set false for exactly
  // attacks_per_vm episodes on every VM (Figure 6 wants every VM's
  // threshold at attack scale).
  bool poisson_attack_counts{true};
  std::uint64_t seed{21};
};

/// One VM's ready-to-run monitoring experiment.
struct NetworkTask {
  VmTraffic traffic;     // rho series + inspection-cost series
  double threshold{0};   // from selectivity k
  TaskSpec spec;         // Id = 15 s, err/k applied
};

class NetworkWorkload {
 public:
  explicit NetworkWorkload(const NetworkWorkloadOptions& options);

  /// Generates traffic for all VMs with attacks injected. Deterministic.
  std::vector<VmTraffic> generate_traffic() const;

  /// Builds a single-VM task from a traffic trace: threshold at the
  /// (100-k)-th percentile of rho, error allowance err, Id = 15 s.
  static NetworkTask make_task(VmTraffic traffic, double selectivity_percent,
                               double error_allowance);

  const NetworkWorkloadOptions& options() const { return options_; }

 private:
  NetworkWorkloadOptions options_;
};

}  // namespace volley
