#include "obs/trace_events.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace volley::obs {

namespace {

constexpr std::array<const char*, 9> kKindNames = {
    "sample_taken",        "interval_chosen",    "allowance_adjusted",
    "allowance_reclaimed", "alert_raised",       "misdetect_window",
    "liveness_transition", "reconnect_attempt",  "task_registry_change",
};

std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal scanner for the fixed shape `to_json` emits. Tolerates
/// whitespace between tokens; rejects anything else.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view s) : s_(s) {}

  bool literal(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool key(std::string_view name) {
    skip_ws();
    if (!literal('"')) return false;
    if (s_.substr(pos_, name.size()) != name) return false;
    pos_ += name.size();
    return literal('"') && literal(':');
  }

  bool string_value(std::string& out) {
    skip_ws();
    if (!literal('"')) return false;
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') ++pos_;
    if (pos_ >= s_.size()) return false;
    out.assign(s_.substr(start, pos_ - start));
    ++pos_;
    return true;
  }

  bool number(double& out) {
    skip_ws();
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool at_end() {
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r' ||
            s_[pos_] == '\n')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_{0};
};

}  // namespace

const char* trace_kind_name(TraceKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kKindNames.size() ? kKindNames[i] : "unknown";
}

std::optional<TraceKind> trace_kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (name == kKindNames[i]) return static_cast<TraceKind>(i);
  }
  return std::nullopt;
}

std::string to_json(const TraceEvent& event) {
  std::ostringstream out;
  out << "{\"seq\":" << event.seq << ",\"kind\":\""
      << trace_kind_name(event.kind) << "\",\"tick\":" << event.tick
      << ",\"monitor\":" << event.monitor
      << ",\"value\":" << fmt_double(event.value)
      << ",\"detail\":" << fmt_double(event.detail) << "}";
  return out.str();
}

std::optional<TraceEvent> trace_event_from_json(std::string_view line) {
  JsonScanner scan(line);
  TraceEvent event;
  double seq = 0.0, tick = 0.0, monitor = 0.0;
  std::string kind;
  if (!scan.literal('{') || !scan.key("seq") || !scan.number(seq) ||
      !scan.literal(',') || !scan.key("kind") || !scan.string_value(kind) ||
      !scan.literal(',') || !scan.key("tick") || !scan.number(tick) ||
      !scan.literal(',') || !scan.key("monitor") || !scan.number(monitor) ||
      !scan.literal(',') || !scan.key("value") || !scan.number(event.value) ||
      !scan.literal(',') || !scan.key("detail") ||
      !scan.number(event.detail) || !scan.literal('}') || !scan.at_end()) {
    return std::nullopt;
  }
  const auto parsed_kind = trace_kind_from_name(kind);
  if (!parsed_kind) return std::nullopt;
  if (monitor < 0) return std::nullopt;
  event.kind = *parsed_kind;
  event.seq = static_cast<std::int64_t>(seq);
  event.tick = static_cast<Tick>(tick);
  event.monitor = static_cast<std::uint32_t>(monitor);
  return event;
}

TraceSink::TraceSink(std::size_t capacity)
    : ring_(capacity), capacity_(capacity) {}

void TraceSink::record(TraceKind kind, Tick tick, std::uint32_t monitor,
                       double value, double detail) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() == capacity_) ++dropped_;
  TraceEvent event;
  event.kind = kind;
  event.seq = seq_++;
  event.tick = tick;
  event.monitor = monitor;
  event.value = value;
  event.detail = detail;
  ring_.push(event);
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.to_vector();
}

std::string TraceSink::to_jsonl(std::size_t max_events) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = ring_.size();
  const std::size_t start =
      (max_events > 0 && max_events < n) ? n - max_events : 0;
  std::ostringstream out;
  for (std::size_t i = start; i < n; ++i) {
    out << to_json(ring_[i]) << '\n';
  }
  return out.str();
}

std::int64_t TraceSink::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

std::int64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceSink::clear() {
  // Drops the retained events only: sequence numbering (and with it
  // recorded()) keeps rising so exporters can order events across clears.
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

TraceSink& global_trace() {
  static TraceSink sink;
  return sink;
}

TraceSink& trace() {
  TraceSink* current = detail::tls_trace_sink;
  return current ? *current : global_trace();
}

ScopedTraceSink::ScopedTraceSink(TraceSink& sink)
    : previous_(detail::tls_trace_sink) {
  detail::tls_trace_sink = &sink;
}

ScopedTraceSink::~ScopedTraceSink() { detail::tls_trace_sink = previous_; }

}  // namespace volley::obs
