#include "obs/metrics.h"

#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace volley::obs {

namespace {

void validate_name(const std::string& name) {
  if (name.empty())
    throw std::invalid_argument("MetricsRegistry: empty metric name");
  const auto ok_head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  const auto ok_tail = [&](char c) {
    return ok_head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!ok_head(name.front()))
    throw std::invalid_argument("MetricsRegistry: bad metric name: " + name);
  for (char c : name) {
    if (!ok_tail(c))
      throw std::invalid_argument("MetricsRegistry: bad metric name: " + name);
  }
}

/// %.17g prints doubles round-trip exactly and without locale surprises.
std::string fmt_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// JSON has no Inf/NaN; emit null for them (never expected in practice).
std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  return fmt_double(v);
}

/// uid 0 is reserved as scoped_handles' "no registry seen yet" sentinel.
std::atomic<std::uint64_t> next_registry_uid{1};

}  // namespace

MetricsRegistry::MetricsRegistry()
    : uid_(next_registry_uid.fetch_add(1, std::memory_order_relaxed)) {}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  validate_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (!e.counter) {
    if (e.gauge || e.histogram)
      throw std::invalid_argument("MetricsRegistry: " + name +
                                  " already registered with another type");
    e.counter = std::make_unique<Counter>();
    e.help = help;
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  validate_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (!e.gauge) {
    if (e.counter || e.histogram)
      throw std::invalid_argument("MetricsRegistry: " + name +
                                  " already registered with another type");
    e.gauge = std::make_unique<Gauge>();
    e.help = help;
  }
  return *e.gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins,
                                            const std::string& help) {
  validate_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (!e.histogram) {
    if (e.counter || e.gauge)
      throw std::invalid_argument("MetricsRegistry: " + name +
                                  " already registered with another type");
    e.histogram = std::make_unique<HistogramMetric>(lo, hi, bins);
    e.help = help;
  }
  return *e.histogram;
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, e] : entries_) {
    const char* type =
        e.counter ? "counter" : (e.gauge ? "gauge" : "histogram");
    if (!e.help.empty()) out << "# HELP " << name << ' ' << e.help << '\n';
    out << "# TYPE " << name << ' ' << type << '\n';
    if (e.counter) {
      out << name << ' ' << e.counter->value() << '\n';
    } else if (e.gauge) {
      out << name << ' ' << fmt_double(e.gauge->value()) << '\n';
    } else {
      const Histogram h = e.histogram->snapshot();
      // Prometheus buckets are cumulative. stats::Histogram clamps
      // out-of-range values into the edge bins: underflow sits in bin 0
      // (correctly below every upper bound), but overflow clamped into the
      // last bin exceeds its `le` bound and belongs only in +Inf.
      std::int64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bins(); ++b) {
        cumulative += h.bin_count(b);
        const std::int64_t le_count =
            (b + 1 == h.bins()) ? cumulative - h.overflow() : cumulative;
        out << name << "_bucket{le=\"" << fmt_double(h.bin_hi(b)) << "\"} "
            << le_count << '\n';
      }
      out << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
      out << name << "_sum "
          << fmt_double(h.count() > 0 ? h.mean() * static_cast<double>(
                                                       h.count())
                                      : 0.0)
          << '\n';
      out << name << "_count " << h.count() << '\n';
    }
  }
  return out.str();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!e.counter) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << e.counter->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, e] : entries_) {
    if (!e.gauge) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << json_double(e.gauge->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, e] : entries_) {
    if (!e.histogram) continue;
    if (!first) out << ',';
    first = false;
    const Histogram h = e.histogram->snapshot();
    out << '"' << name << "\":{\"lo\":" << json_double(h.bin_lo(0))
        << ",\"hi\":" << json_double(h.bin_hi(h.bins() - 1))
        << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.bins(); ++b) {
      if (b) out << ',';
      out << h.bin_count(b);
    }
    out << "],\"underflow\":" << h.underflow()
        << ",\"overflow\":" << h.overflow() << ",\"count\":" << h.count()
        << ",\"mean\":" << json_double(h.count() > 0 ? h.mean() : 0.0) << '}';
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  if (&other == this) return;
  // std::scoped_lock acquires both mutexes deadlock-free regardless of the
  // order two threads merge a pair of registries in.
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, theirs] : other.entries_) {
    Entry& mine = entries_[name];
    const bool mine_empty = !mine.counter && !mine.gauge && !mine.histogram;
    if (mine.help.empty()) mine.help = theirs.help;
    if (theirs.counter) {
      if (!mine.counter) {
        if (!mine_empty)
          throw std::invalid_argument("MetricsRegistry::merge_from: " + name +
                                      " registered with another type");
        mine.counter = std::make_unique<Counter>();
      }
      mine.counter->inc(theirs.counter->value());
    } else if (theirs.gauge) {
      if (!mine.gauge) {
        if (!mine_empty)
          throw std::invalid_argument("MetricsRegistry::merge_from: " + name +
                                      " registered with another type");
        mine.gauge = std::make_unique<Gauge>();
      }
      mine.gauge->set(theirs.gauge->value());
    } else if (theirs.histogram) {
      const Histogram snap = theirs.histogram->snapshot();
      if (!mine.histogram) {
        if (!mine_empty)
          throw std::invalid_argument("MetricsRegistry::merge_from: " + name +
                                      " registered with another type");
        mine.histogram = std::make_unique<HistogramMetric>(
            snap.bin_lo(0), snap.bin_hi(snap.bins() - 1), snap.bins());
      }
      mine.histogram->merge(snap);
    }
  }
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

namespace {
/// The calling thread's current-registry binding (null = global).
thread_local MetricsRegistry* tls_current_registry = nullptr;
}  // namespace

MetricsRegistry& metrics() {
  MetricsRegistry* current = tls_current_registry;
  return current ? *current : global_metrics();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry& registry)
    : previous_(tls_current_registry) {
  tls_current_registry = &registry;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  tls_current_registry = previous_;
}

}  // namespace volley::obs
