// Thread-safe metrics registry (the Volley introspection plane, counters /
// gauges / fixed-bucket histograms).
//
// Design goals, in order:
//  1. Hot-path cheapness. A `Counter` increment is one relaxed atomic add;
//     instrumented code caches the `Counter&` once (registration takes a
//     mutex, increments never do). A `HistogramMetric` observation takes an
//     uncontended mutex — still tens of nanoseconds, far below the
//     20–100 ms sampling operations this system schedules
//     (`bench_micro_core` keeps both numbers honest).
//  2. Prometheus semantics. Counters are cumulative over the process
//     lifetime and never reset in production; a scraper differentiates.
//     Exposition formats: `to_prometheus()` (text format a human or a
//     Prometheus scrape can read) and `to_json()` (one machine-readable
//     snapshot object, embedded in RunResult and in the wire runtime's
//     StatsReply).
//  3. Stable handles. Registered metrics are never destroyed or moved;
//     references returned by the registry stay valid for the registry's
//     lifetime, so cached handles in samplers/monitors cannot dangle.
//
// `metrics()` returns the *current* registry: by default the process-global
// one, but a `ScopedMetricsRegistry` can rebind the calling thread to a
// private registry (and restores the previous binding on destruction).
// Scoping is what makes experiment runs share-nothing: each run records
// into its own registry (so `RunResult::metrics_json` is per-run and
// parallel sweep workers never contend on shared counter cache lines), and
// the run's registry is merged into the enclosing one afterwards so the
// global registry keeps its cumulative Prometheus semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stats/histogram.h"

namespace volley::obs {

/// Monotonically increasing event count. Increments are relaxed atomic adds
/// — safe from any thread, never a lock.
class Counter {
 public:
  void inc(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-written instantaneous value (e.g. a current error allowance).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram (stats/Histogram under a mutex). Out-of-range
/// observations land in the edge bins and are counted as under/overflow,
/// exactly like the underlying stats::Histogram.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins)
      : hist_(lo, hi, bins) {}

  void observe(double x) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.add(x);
  }

  /// Consistent copy of the underlying histogram.
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

  /// Folds a snapshot of another histogram in (see Histogram::merge;
  /// shapes must match).
  void merge(const Histogram& other) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.merge(other);
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    hist_ = Histogram(hist_.bin_lo(0), hist_.bin_hi(hist_.bins() - 1),
                      hist_.bins());
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

/// Named metric store. Registration (the `counter`/`gauge`/`histogram`
/// lookups) is mutex-guarded and idempotent: the first call creates, later
/// calls return the same object. Metric names follow the Prometheus
/// convention `[a-zA-Z_][a-zA-Z0-9_]*` (validated; bad names throw
/// std::invalid_argument).
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-unique, never-reused identity (a fresh registry at a recycled
  /// address gets a new uid). What `scoped_handles` keys its cache on:
  /// comparing addresses alone would let a cache built against a destroyed
  /// stack registry survive into its same-address successor.
  std::uint64_t uid() const { return uid_; }

  /// Finds or creates. `help` is attached on first registration (later
  /// calls may pass empty) and rendered as `# HELP` in the exposition.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// Histogram buckets are fixed at first registration; a later call with
  /// different bounds returns the existing instrument unchanged.
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins, const std::string& help = "");

  /// Prometheus text exposition (HELP/TYPE headers, cumulative `_bucket`
  /// lines with `le` labels plus `_sum`/`_count` for histograms).
  std::string to_prometheus() const;

  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  /// Histograms carry lo/hi/buckets/underflow/overflow/count/mean.
  std::string to_json() const;

  /// Zeroes every registered instrument *in place* — handles stay valid.
  /// For tests and run-scoped accounting only; production counters are
  /// cumulative (see file header).
  void reset();

  /// Folds `other`'s instruments into this registry (parallel-shard
  /// semantics, mirroring OnlineStats::merge): counters add, histograms
  /// combine bin-by-bin (shapes must match), gauges adopt `other`'s value
  /// when `other` has the gauge (last-writer-wins, instantaneous
  /// semantics). Instruments only present in `other` are created here.
  /// A name registered with different types on the two sides throws
  /// std::invalid_argument. Thread-safe against concurrent use of either
  /// registry; merging a registry into itself is a no-op.
  void merge_from(const MetricsRegistry& other);

  std::size_t size() const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  const std::uint64_t uid_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// The process-global registry (the default binding of `metrics()`).
MetricsRegistry& global_metrics();

/// The calling thread's current registry: the innermost active
/// ScopedMetricsRegistry on this thread, or the process-global registry
/// when none is active. All built-in instrumentation records through this.
MetricsRegistry& metrics();

/// RAII rebinding of `metrics()` for the calling thread. Scopes nest; the
/// previous binding is restored on destruction. The registry must outlive
/// the scope. Bindings are thread-local: a scope installed on one thread
/// never affects another (each sweep worker installs its own).
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry& registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Per-thread cache of resolved instrument handles for one instrumentation
/// site. `Handles` is a default-constructible struct of Counter*/Gauge*/
/// HistogramMetric* members and `make` resolves them against a registry
/// (taking the registration mutex once). The cache re-resolves whenever the
/// calling thread's current registry changes — one integer compare on the
/// hot path, so scoped registries keep the cached-handle pattern's
/// lock-free increments. Keyed on the registry uid, not its address: run
/// scopes allocate registries on the stack, and a successor at a recycled
/// address must not inherit handles into its destroyed predecessor.
template <typename Handles>
const Handles& scoped_handles(Handles (*make)(MetricsRegistry&)) {
  thread_local std::uint64_t owner_uid = 0;  // no registry has uid 0
  thread_local Handles handles{};
  MetricsRegistry& m = metrics();
  if (m.uid() != owner_uid) {
    handles = make(m);
    owner_uid = m.uid();
  }
  return handles;
}

}  // namespace volley::obs
