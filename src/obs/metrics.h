// Thread-safe metrics registry (the Volley introspection plane, counters /
// gauges / fixed-bucket histograms).
//
// Design goals, in order:
//  1. Hot-path cheapness. A `Counter` increment is one relaxed atomic add;
//     instrumented code caches the `Counter&` once (registration takes a
//     mutex, increments never do). A `HistogramMetric` observation takes an
//     uncontended mutex — still tens of nanoseconds, far below the
//     20–100 ms sampling operations this system schedules
//     (`bench_micro_core` keeps both numbers honest).
//  2. Prometheus semantics. Counters are cumulative over the process
//     lifetime and never reset in production; a scraper differentiates.
//     Exposition formats: `to_prometheus()` (text format a human or a
//     Prometheus scrape can read) and `to_json()` (one machine-readable
//     snapshot object, embedded in RunResult and in the wire runtime's
//     StatsReply).
//  3. Stable handles. Registered metrics are never destroyed or moved;
//     references returned by the registry stay valid for the registry's
//     lifetime, so cached handles in samplers/monitors cannot dangle.
//
// `metrics()` returns the process-global registry every built-in
// instrumentation point records into. Tests construct private registries.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stats/histogram.h"

namespace volley::obs {

/// Monotonically increasing event count. Increments are relaxed atomic adds
/// — safe from any thread, never a lock.
class Counter {
 public:
  void inc(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-written instantaneous value (e.g. a current error allowance).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram (stats/Histogram under a mutex). Out-of-range
/// observations land in the edge bins and are counted as under/overflow,
/// exactly like the underlying stats::Histogram.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins)
      : hist_(lo, hi, bins) {}

  void observe(double x) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.add(x);
  }

  /// Consistent copy of the underlying histogram.
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    hist_ = Histogram(hist_.bin_lo(0), hist_.bin_hi(hist_.bins() - 1),
                      hist_.bins());
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

/// Named metric store. Registration (the `counter`/`gauge`/`histogram`
/// lookups) is mutex-guarded and idempotent: the first call creates, later
/// calls return the same object. Metric names follow the Prometheus
/// convention `[a-zA-Z_][a-zA-Z0-9_]*` (validated; bad names throw
/// std::invalid_argument).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. `help` is attached on first registration (later
  /// calls may pass empty) and rendered as `# HELP` in the exposition.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// Histogram buckets are fixed at first registration; a later call with
  /// different bounds returns the existing instrument unchanged.
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins, const std::string& help = "");

  /// Prometheus text exposition (HELP/TYPE headers, cumulative `_bucket`
  /// lines with `le` labels plus `_sum`/`_count` for histograms).
  std::string to_prometheus() const;

  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  /// Histograms carry lo/hi/buckets/underflow/overflow/count/mean.
  std::string to_json() const;

  /// Zeroes every registered instrument *in place* — handles stay valid.
  /// For tests and run-scoped accounting only; production counters are
  /// cumulative (see file header).
  void reset();

  std::size_t size() const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// The process-global registry all built-in instrumentation records into.
MetricsRegistry& metrics();

}  // namespace volley::obs
