// Structured trace events: the "why" behind the metrics.
//
// Counters say *how many* samples were taken; trace events say *which*
// monitor took one at *which* tick with *what* violation likelihood. Every
// decision point of the Volley pipeline records one event:
//
//   kSampleTaken        monitor sampled          value = sampled value,
//                                                detail = 0 scheduled /
//                                                         1 global poll
//   kIntervalChosen     adaptation rule applied  value = chosen interval I
//                                                (ticks), detail = beta
//                                                bound at the decision
//   kAllowanceAdjusted  coordinator reallocated  value = new err_i,
//                                                detail = previous err_i
//   kAllowanceReclaimed dead monitor's budget    value = surviving monitor
//                       redistributed            count, detail = excluded
//                                                monitor count
//   kAlertRaised        global poll crossed T    value = aggregate,
//                                                detail = threshold T
//   kMisdetectWindow    a ground-truth alert     tick = episode start,
//                       episode went undetected  value = episode end
//                                                (exclusive), detail =
//                                                episode length in ticks
//   kLivenessTransition monitor liveness changed value = new state,
//                       (wire runtime)           detail = old state
//                                                (0 active / 1 suspect /
//                                                 2 dead)
//   kReconnectAttempt   monitor retried its      value = consecutive failed
//                       coordinator link         attempts so far, detail =
//                                                next backoff in ms
//   kTaskRegistryChange control plane mutated    monitor = task id, value =
//                       the task registry        epoch assigned, detail =
//                                                op (1 add / 2 update /
//                                                 3 remove)
//
// Events land in a bounded ring-buffer sink (common/ring_buffer.h): the
// newest `capacity` events win, the oldest are overwritten — observability
// must never grow without bound inside the system it observes. `seq` is a
// monotone per-sink sequence number, so an exporter can detect overwritten
// gaps. Export is JSONL (one JSON object per line); `trace_event_from_json`
// round-trips the format for offline tooling and tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/ring_buffer.h"

namespace volley::obs {

enum class TraceKind : std::uint8_t {
  kSampleTaken = 0,
  kIntervalChosen = 1,
  kAllowanceAdjusted = 2,
  kAllowanceReclaimed = 3,
  kAlertRaised = 4,
  kMisdetectWindow = 5,
  kLivenessTransition = 6,
  kReconnectAttempt = 7,
  kTaskRegistryChange = 8,
};

/// Stable snake_case name ("sample_taken", ...) used in the JSONL export.
const char* trace_kind_name(TraceKind kind);
std::optional<TraceKind> trace_kind_from_name(std::string_view name);

struct TraceEvent {
  TraceKind kind{TraceKind::kSampleTaken};
  std::int64_t seq{0};       // per-sink monotone sequence number
  Tick tick{0};              // logical time (0 when not applicable)
  std::uint32_t monitor{0};  // monitor id (0 when not applicable)
  double value{0.0};         // kind-specific primary datum (header table)
  double detail{0.0};        // kind-specific secondary datum
};

/// One-line JSON object:
/// {"seq":3,"kind":"sample_taken","tick":17,"monitor":2,"value":1.5,"detail":0}
std::string to_json(const TraceEvent& event);

/// Parses one `to_json` line (whitespace-tolerant, key order fixed as
/// emitted). nullopt on malformed input or unknown kind.
std::optional<TraceEvent> trace_event_from_json(std::string_view line);

/// Bounded, thread-safe trace sink. Recording takes one uncontended mutex;
/// when the ring is full the oldest event is overwritten (`dropped()`
/// counts the overwrites).
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = kDefaultCapacity);

  void record(TraceKind kind, Tick tick, std::uint32_t monitor, double value,
              double detail = 0.0);

  /// Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// JSONL export of the newest `max_events` retained events (0 = all),
  /// oldest first. Bounded output for wire transport (StatsReply).
  std::string to_jsonl(std::size_t max_events = 0) const;

  std::int64_t recorded() const;  // events ever recorded
  std::int64_t dropped() const;   // events overwritten by ring wraparound
  std::size_t capacity() const { return capacity_; }
  /// Drops the retained events; sequence numbering continues across clears.
  void clear();

  static constexpr std::size_t kDefaultCapacity = 4096;

 private:
  mutable std::mutex mu_;
  RingBuffer<TraceEvent> ring_;
  std::size_t capacity_;
  std::int64_t seq_{0};
  std::int64_t dropped_{0};
};

/// The process-global sink (the default binding of `trace()`).
TraceSink& global_trace();

namespace detail {
/// The calling thread's current-sink binding (null = global). Header-inline
/// so `trace_enabled()` compiles to a TLS load + branch at every call site.
inline thread_local TraceSink* tls_trace_sink = nullptr;
/// Whether instrumentation records into the *global* sink when no scoped
/// sink is bound. Defaults to on (the seed behavior).
inline std::atomic<bool> global_trace_enabled{true};
}  // namespace detail

/// The calling thread's current sink: the innermost active ScopedTraceSink
/// on this thread, or the process-global sink when none is active. All
/// built-in instrumentation records through this.
TraceSink& trace();

/// Hot-path gate for instrumentation sites: false only when the thread has
/// no scoped sink *and* global tracing is switched off. Per-sample sites
/// (Monitor::sample_at, Coordinator polls) wrap their `trace().record(...)`
/// in this so a disabled trace plane costs one TLS load and one relaxed
/// atomic load — a branch, not a mutex — per sample. Sites that fire rarely
/// (reallocation, liveness transitions) may skip the gate; they still
/// record into the global sink when enabled.
inline bool trace_enabled() {
  return detail::tls_trace_sink != nullptr ||
         detail::global_trace_enabled.load(std::memory_order_relaxed);
}

/// Turns recording into the *global* sink on or off (default on). Scoped
/// sinks are unaffected: a run under ScopedTraceSink is always traced —
/// sweep workers and the wire runtime rely on that. Benchmarks switch the
/// global sink off while timing so per-sample tracing doesn't mask the
/// hot-path win being measured.
inline void set_global_trace_enabled(bool enabled) {
  detail::global_trace_enabled.store(enabled, std::memory_order_relaxed);
}

/// RAII rebinding of `trace()` for the calling thread, mirroring
/// obs::ScopedMetricsRegistry: parallel sweep workers give each run a
/// private sink so hot-path trace recording never contends on the global
/// ring's mutex. Scopes nest and are thread-local.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink& sink);
  ~ScopedTraceSink();
  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* previous_;
};

}  // namespace volley::obs
