// Binary codec for task specifications and registry records.
//
// One serialization, two consumers: the wire protocol (net/messages.h
// carries TaskSpec payloads inside AddTask/UpdateTask frames) and the
// durable registry store (control/registry_store.h journals TaskRecords).
// Keeping the byte layout here means a journaled record and a wire frame
// never drift apart — a spec accepted over the wire round-trips through the
// journal bit-for-bit.
//
// Layout (little-endian, fixed-width):
//   TaskSpec:   f64 global_threshold | f64 error_allowance | f64 id_seconds |
//               i64 max_interval | f64 slack_ratio | i32 patience |
//               i64 updating_period | i64 stats_window | i64 stats_warmup |
//               i64 min_observations | u8 bound
//   TaskRecord: u32 id | u64 epoch | TaskSpec
//
// Decoding is total: truncated or out-of-range input returns false and
// leaves the cursor unspecified; nothing throws, because both consumers
// read bytes that may have crossed a network or survived a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/task.h"
#include "core/types.h"

namespace volley::control {

/// One versioned entry of the task registry: the spec plus the epoch of its
/// latest revision (epochs are globally monotone across the registry, so a
/// higher epoch always means a strictly newer revision — see
/// control/task_registry.h).
struct TaskRecord {
  TaskId id{0};
  std::uint64_t epoch{0};
  TaskSpec spec{};
};

/// Appends the serialized spec to `out`.
void encode_task_spec(std::vector<std::byte>& out, const TaskSpec& spec);

/// Decodes one spec starting at `pos`, advancing it past the consumed
/// bytes. False on truncation or an invalid estimator-bound tag.
bool decode_task_spec(std::span<const std::byte> in, std::size_t& pos,
                      TaskSpec& spec);

/// Appends the serialized record (id, epoch, spec) to `out`.
void encode_task_record(std::vector<std::byte>& out, const TaskRecord& record);

/// Decodes one record starting at `pos`, advancing it past the consumed
/// bytes. False on truncation or an invalid spec.
bool decode_task_record(std::span<const std::byte> in, std::size_t& pos,
                        TaskRecord& record);

/// Convenience: one record as a standalone byte vector.
std::vector<std::byte> encode_record(const TaskRecord& record);

/// Field-wise equality of the codec-visible spec fields (TaskSpec has no
/// operator==; tests and the registry use this to compare revisions).
bool specs_equal(const TaskSpec& a, const TaskSpec& b);

}  // namespace volley::control
