// Versioned registry of live monitoring tasks — the control plane's source
// of truth.
//
// The paper tunes cost/accuracy *per task* (Sections III-IV); a datacenter
// adds, retires, and re-thresholds tasks continuously, so the task set must
// be first-class mutable state rather than process-start configuration.
// The registry holds one TaskRecord per task id and numbers every revision
// with an *epoch* drawn from a single monotone counter (the registry
// version): add assigns the task its first epoch, update assigns a fresh
// higher one, and remove consumes an epoch too (so the registry version
// reflects removals). Epochs are therefore totally ordered across tasks
// and never reused — a receiver (monitor, replica, tool) can resolve any
// race by "highest epoch wins", and a removed-then-re-added task cannot be
// confused with its earlier incarnation.
//
// Mutations return the RegistryOp that was applied; the caller journals it
// through control/registry_store.h and fans it out to monitors. `restore`
// replays such ops verbatim (epochs included), which is exactly what the
// journal replay on coordinator restart does.
//
// Thread-safety: none — the coordinator mutates the registry from its
// single event-loop thread, like every other piece of session state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "control/task_codec.h"
#include "core/types.h"

namespace volley::control {

/// Journaled mutation kinds. Values are the on-disk encoding — append-only.
enum class RegistryOpKind : std::uint8_t {
  kAdd = 1,
  kUpdate = 2,
  kRemove = 3,
};

/// One applied mutation: what happened, to which record, at which epoch.
/// For kRemove the record carries the id and the epoch consumed by the
/// removal; its spec is the removed task's final spec (useful for audit).
struct RegistryOp {
  RegistryOpKind kind{RegistryOpKind::kAdd};
  TaskRecord record{};
};

/// Outcome codes shared with the wire protocol's ControlReply.
enum class ControlStatus : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kExists = 2,
  kInvalid = 3,
};

const char* control_status_name(ControlStatus status);

struct MutationResult {
  ControlStatus status{ControlStatus::kOk};
  std::uint64_t epoch{0};      // the revision assigned (0 on failure)
  std::string error{};         // human-readable reason on failure
  std::optional<RegistryOp> op{};  // present iff status == kOk

  bool ok() const { return status == ControlStatus::kOk; }
};

class TaskRegistry {
 public:
  /// Adds a new task. Fails with kExists on a live id and kInvalid on a
  /// spec that does not validate.
  MutationResult add(TaskId id, const TaskSpec& spec);

  /// Re-specs a live task, assigning it a fresh (higher) epoch.
  MutationResult update(TaskId id, const TaskSpec& spec);

  /// Removes a live task. The registry version still advances.
  MutationResult remove(TaskId id);

  /// Replays a previously applied op verbatim — epochs are taken from the
  /// record, not re-assigned, and the version counter is advanced to cover
  /// them. Used by journal replay; also tolerant of ops that no longer
  /// apply (e.g. remove of a missing id), which a torn journal can produce.
  void restore(const RegistryOp& op);

  /// Installs a snapshot: wholesale replacement of tasks and version.
  void restore_snapshot(std::uint64_t version,
                        std::vector<TaskRecord> records);

  const TaskRecord* find(TaskId id) const;
  /// All live records, ascending id.
  std::vector<TaskRecord> list() const;
  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }
  /// Monotone mutation counter; also the highest epoch ever assigned.
  std::uint64_t version() const { return version_; }

 private:
  std::map<TaskId, TaskRecord> tasks_;
  std::uint64_t version_{0};
};

}  // namespace volley::control
