#include "control/task_registry.h"

#include <algorithm>
#include <stdexcept>

namespace volley::control {

const char* control_status_name(ControlStatus status) {
  switch (status) {
    case ControlStatus::kOk:
      return "ok";
    case ControlStatus::kNotFound:
      return "not_found";
    case ControlStatus::kExists:
      return "exists";
    case ControlStatus::kInvalid:
      return "invalid";
  }
  return "unknown";
}

namespace {
std::optional<std::string> validation_error(const TaskSpec& spec) {
  try {
    spec.validate();
  } catch (const std::invalid_argument& e) {
    return std::string(e.what());
  }
  return std::nullopt;
}
}  // namespace

MutationResult TaskRegistry::add(TaskId id, const TaskSpec& spec) {
  if (tasks_.count(id)) {
    return {ControlStatus::kExists, 0,
            "task " + std::to_string(id) + " already exists", std::nullopt};
  }
  if (auto err = validation_error(spec)) {
    return {ControlStatus::kInvalid, 0, *err, std::nullopt};
  }
  TaskRecord record{id, ++version_, spec};
  tasks_[id] = record;
  return {ControlStatus::kOk, record.epoch, {},
          RegistryOp{RegistryOpKind::kAdd, record}};
}

MutationResult TaskRegistry::update(TaskId id, const TaskSpec& spec) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return {ControlStatus::kNotFound, 0,
            "task " + std::to_string(id) + " not found", std::nullopt};
  }
  if (auto err = validation_error(spec)) {
    return {ControlStatus::kInvalid, 0, *err, std::nullopt};
  }
  it->second.epoch = ++version_;
  it->second.spec = spec;
  return {ControlStatus::kOk, it->second.epoch, {},
          RegistryOp{RegistryOpKind::kUpdate, it->second}};
}

MutationResult TaskRegistry::remove(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return {ControlStatus::kNotFound, 0,
            "task " + std::to_string(id) + " not found", std::nullopt};
  }
  TaskRecord removed = it->second;
  tasks_.erase(it);
  removed.epoch = ++version_;  // the removal consumes a revision
  return {ControlStatus::kOk, removed.epoch, {},
          RegistryOp{RegistryOpKind::kRemove, removed}};
}

void TaskRegistry::restore(const RegistryOp& op) {
  switch (op.kind) {
    case RegistryOpKind::kAdd:
    case RegistryOpKind::kUpdate:
      tasks_[op.record.id] = op.record;
      break;
    case RegistryOpKind::kRemove:
      tasks_.erase(op.record.id);
      break;
  }
  version_ = std::max(version_, op.record.epoch);
}

void TaskRegistry::restore_snapshot(std::uint64_t version,
                                    std::vector<TaskRecord> records) {
  tasks_.clear();
  version_ = version;
  for (auto& record : records) {
    version_ = std::max(version_, record.epoch);
    tasks_[record.id] = std::move(record);
  }
}

const TaskRecord* TaskRegistry::find(TaskId id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

std::vector<TaskRecord> TaskRegistry::list() const {
  std::vector<TaskRecord> out;
  out.reserve(tasks_.size());
  for (const auto& [id, record] : tasks_) out.push_back(record);
  return out;
}

}  // namespace volley::control
