// Durable persistence for the task registry: snapshot + append-only journal.
//
// The control plane must survive a coordinator crash with the task set
// intact (a restarted coordinator that forgot its tasks would silently stop
// monitoring them). The store keeps two files derived from one base path:
//
//   <base>.snapshot   full registry image, atomically replaced (tmp+rename)
//   <base>.journal    RegistryOps appended since the snapshot
//
// Load = read the snapshot (if any), then replay journal ops in order.
// Every mutation is appended to the journal and flushed before it is
// acknowledged; once the journal grows past kCompactThreshold ops the
// registry is re-snapshotted and the journal truncated.
//
// Formats (little-endian; CRC-32 is storage/sample_log.h's IEEE 802.3):
//   snapshot: magic "VREG" | u32 format=1 | u64 registry_version |
//             u32 count | count x { u32 len | TaskRecord bytes | u32 crc }
//   journal:  magic "VRGJ" | u32 format=1 |
//             repeated    { u8 op | u32 len | TaskRecord bytes | u32 crc }
//             (crc covers the op byte followed by the record bytes)
//
// Crash tolerance mirrors the sample log: the journal reader stops at the
// first truncated or CRC-corrupt record — a crash mid-append loses at most
// the op being written, never an acknowledged one (ops are flushed before
// the acknowledgment) and never the parse of the valid prefix.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "control/task_registry.h"

namespace volley::control {

/// What load() found on disk — surfaced so callers can log/assert recovery.
struct RegistryLoadStats {
  bool had_snapshot{false};
  std::size_t snapshot_tasks{0};
  std::size_t journal_ops{0};   // valid ops replayed
  bool journal_clean{true};     // false when a torn/corrupt tail was hit
};

class RegistryStore {
 public:
  /// Binds the store to `<base_path>.snapshot` / `<base_path>.journal`.
  /// Creates nothing until load() or append() runs.
  explicit RegistryStore(std::string base_path);

  /// Replays snapshot + journal into `registry` (which is cleared first via
  /// restore_snapshot when a snapshot exists). Opens the journal for
  /// appending afterwards. Throws std::runtime_error only when a file
  /// exists but is not a registry file at all (bad magic/format); torn or
  /// corrupt records are reported through the stats, not thrown.
  RegistryLoadStats load(TaskRegistry& registry);

  /// Appends one op and flushes it to the OS before returning. Lazily
  /// writes the journal header on first use.
  void append(const RegistryOp& op);

  /// Rewrites the snapshot from `registry` (atomically: tmp + rename) and
  /// truncates the journal.
  void compact(const TaskRegistry& registry);

  /// compact() once the journal holds more than kCompactThreshold ops.
  void maybe_compact(const TaskRegistry& registry);

  std::size_t journal_ops_since_compact() const { return journal_ops_; }
  std::string snapshot_path() const { return base_path_ + ".snapshot"; }
  std::string journal_path() const { return base_path_ + ".journal"; }

  static constexpr std::size_t kCompactThreshold = 128;
  /// Upper bound on a serialized TaskRecord accepted at load time; a
  /// corrupt length field must not trigger an unbounded allocation.
  static constexpr std::uint32_t kMaxRecordBytes = 1 << 16;

 private:
  void open_journal_for_append();

  std::string base_path_;
  std::ofstream journal_;
  std::size_t journal_ops_{0};
};

}  // namespace volley::control
