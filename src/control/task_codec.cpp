#include "control/task_codec.h"

#include <cstring>

namespace volley::control {

namespace {

void put_raw(std::vector<std::byte>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  out.insert(out.end(), b, b + n);
}

void put_f64(std::vector<std::byte>& out, double v) { put_raw(out, &v, 8); }
void put_i64(std::vector<std::byte>& out, std::int64_t v) {
  put_raw(out, &v, 8);
}
void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  put_raw(out, &v, 8);
}
void put_i32(std::vector<std::byte>& out, std::int32_t v) {
  put_raw(out, &v, 4);
}
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  put_raw(out, &v, 4);
}
void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  put_raw(out, &v, 1);
}

bool get_raw(std::span<const std::byte> in, std::size_t& pos, void* p,
             std::size_t n) {
  if (in.size() - pos < n) return false;
  std::memcpy(p, in.data() + pos, n);
  pos += n;
  return true;
}

bool get_f64(std::span<const std::byte> in, std::size_t& pos, double& v) {
  return get_raw(in, pos, &v, 8);
}
bool get_i64(std::span<const std::byte> in, std::size_t& pos,
             std::int64_t& v) {
  return get_raw(in, pos, &v, 8);
}
bool get_u64(std::span<const std::byte> in, std::size_t& pos,
             std::uint64_t& v) {
  return get_raw(in, pos, &v, 8);
}
bool get_i32(std::span<const std::byte> in, std::size_t& pos,
             std::int32_t& v) {
  return get_raw(in, pos, &v, 4);
}
bool get_u32(std::span<const std::byte> in, std::size_t& pos,
             std::uint32_t& v) {
  return get_raw(in, pos, &v, 4);
}
bool get_u8(std::span<const std::byte> in, std::size_t& pos,
            std::uint8_t& v) {
  return get_raw(in, pos, &v, 1);
}

}  // namespace

void encode_task_spec(std::vector<std::byte>& out, const TaskSpec& spec) {
  put_f64(out, spec.global_threshold);
  put_f64(out, spec.error_allowance);
  put_f64(out, spec.id_seconds);
  put_i64(out, spec.max_interval);
  put_f64(out, spec.slack_ratio);
  put_i32(out, spec.patience);
  put_i64(out, spec.updating_period);
  put_i64(out, spec.estimator.stats_window);
  put_i64(out, spec.estimator.stats_warmup);
  put_i64(out, spec.estimator.min_observations);
  put_u8(out, static_cast<std::uint8_t>(spec.estimator.bound));
}

bool decode_task_spec(std::span<const std::byte> in, std::size_t& pos,
                      TaskSpec& spec) {
  std::int32_t patience = 0;
  std::uint8_t bound = 0;
  if (!get_f64(in, pos, spec.global_threshold) ||
      !get_f64(in, pos, spec.error_allowance) ||
      !get_f64(in, pos, spec.id_seconds) ||
      !get_i64(in, pos, spec.max_interval) ||
      !get_f64(in, pos, spec.slack_ratio) || !get_i32(in, pos, patience) ||
      !get_i64(in, pos, spec.updating_period) ||
      !get_i64(in, pos, spec.estimator.stats_window) ||
      !get_i64(in, pos, spec.estimator.stats_warmup) ||
      !get_i64(in, pos, spec.estimator.min_observations) ||
      !get_u8(in, pos, bound)) {
    return false;
  }
  using Bound = ViolationLikelihoodEstimator::Bound;
  if (bound > static_cast<std::uint8_t>(Bound::kGaussian)) return false;
  spec.patience = patience;
  spec.estimator.bound = static_cast<Bound>(bound);
  return true;
}

void encode_task_record(std::vector<std::byte>& out,
                        const TaskRecord& record) {
  put_u32(out, record.id);
  put_u64(out, record.epoch);
  encode_task_spec(out, record.spec);
}

bool decode_task_record(std::span<const std::byte> in, std::size_t& pos,
                        TaskRecord& record) {
  return get_u32(in, pos, record.id) && get_u64(in, pos, record.epoch) &&
         decode_task_spec(in, pos, record.spec);
}

std::vector<std::byte> encode_record(const TaskRecord& record) {
  std::vector<std::byte> out;
  encode_task_record(out, record);
  return out;
}

bool specs_equal(const TaskSpec& a, const TaskSpec& b) {
  return a.global_threshold == b.global_threshold &&
         a.error_allowance == b.error_allowance &&
         a.id_seconds == b.id_seconds && a.max_interval == b.max_interval &&
         a.slack_ratio == b.slack_ratio && a.patience == b.patience &&
         a.updating_period == b.updating_period &&
         a.estimator.stats_window == b.estimator.stats_window &&
         a.estimator.stats_warmup == b.estimator.stats_warmup &&
         a.estimator.min_observations == b.estimator.min_observations &&
         a.estimator.bound == b.estimator.bound;
}

}  // namespace volley::control
