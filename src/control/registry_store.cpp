#include "control/registry_store.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/log.h"
#include "obs/metrics.h"
#include "storage/sample_log.h"

namespace volley::control {

namespace {

constexpr char kSnapshotMagic[4] = {'V', 'R', 'E', 'G'};
constexpr char kJournalMagic[4] = {'V', 'R', 'G', 'J'};
constexpr std::uint32_t kFormatVersion = 1;

struct StoreMetrics {
  obs::Counter* journal_appends;
  obs::Counter* compactions;
  obs::Counter* torn_records;

  static StoreMetrics make(obs::MetricsRegistry& m) {
    return StoreMetrics{
        &m.counter("volley_control_journal_appends_total",
                   "Registry ops appended to the control journal"),
        &m.counter("volley_control_compactions_total",
                   "Registry snapshot compactions"),
        &m.counter("volley_control_torn_records_total",
                   "Corrupt/truncated journal records skipped at load"),
    };
  }

  static const StoreMetrics& get() { return obs::scoped_handles(&make); }
};

void write_raw(std::ofstream& out, const void* p, std::size_t n) {
  out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}

void write_u32(std::ofstream& out, std::uint32_t v) { write_raw(out, &v, 4); }
void write_u64(std::ofstream& out, std::uint64_t v) { write_raw(out, &v, 8); }

bool read_raw(std::ifstream& in, void* p, std::size_t n) {
  in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in.gcount()) == n;
}

bool read_u8(std::ifstream& in, std::uint8_t& v) { return read_raw(in, &v, 1); }
bool read_u32(std::ifstream& in, std::uint32_t& v) {
  return read_raw(in, &v, 4);
}
bool read_u64(std::ifstream& in, std::uint64_t& v) {
  return read_raw(in, &v, 8);
}

/// Reads and checks a 4-byte magic + u32 format header. Throws on a file
/// that is clearly not ours; returns false on an empty/too-short file.
bool read_header(std::ifstream& in, const char (&magic)[4],
                 const char* what) {
  char found[4];
  if (!read_raw(in, found, 4)) return false;
  if (std::memcmp(found, magic, 4) != 0) {
    throw std::runtime_error(std::string(what) + ": bad magic");
  }
  std::uint32_t format = 0;
  if (!read_u32(in, format) || format != kFormatVersion) {
    throw std::runtime_error(std::string(what) + ": unsupported format");
  }
  return true;
}

}  // namespace

RegistryStore::RegistryStore(std::string base_path)
    : base_path_(std::move(base_path)) {
  if (base_path_.empty()) {
    throw std::invalid_argument("RegistryStore: empty base path");
  }
}

RegistryLoadStats RegistryStore::load(TaskRegistry& registry) {
  RegistryLoadStats stats;

  // --- snapshot ---------------------------------------------------------
  {
    std::ifstream in(snapshot_path(), std::ios::binary);
    if (in && read_header(in, kSnapshotMagic, "registry snapshot")) {
      std::uint64_t version = 0;
      std::uint32_t count = 0;
      if (read_u64(in, version) && read_u32(in, count)) {
        std::vector<TaskRecord> records;
        records.reserve(count);
        bool intact = true;
        for (std::uint32_t i = 0; i < count && intact; ++i) {
          std::uint32_t len = 0;
          if (!read_u32(in, len) || len > kMaxRecordBytes) {
            intact = false;
            break;
          }
          std::vector<std::byte> bytes(len);
          std::uint32_t crc = 0;
          if (!read_raw(in, bytes.data(), len) || !read_u32(in, crc) ||
              crc != crc32(bytes.data(), bytes.size())) {
            intact = false;
            break;
          }
          TaskRecord record;
          std::size_t pos = 0;
          if (!decode_task_record(bytes, pos, record) || pos != len) {
            intact = false;
            break;
          }
          records.push_back(std::move(record));
        }
        // A snapshot is all-or-nothing: it is written atomically, so a
        // partial parse means external corruption — fall back to replaying
        // the journal from scratch rather than installing half a registry.
        if (intact) {
          registry.restore_snapshot(version, std::move(records));
          stats.had_snapshot = true;
          stats.snapshot_tasks = registry.size();
        } else {
          VLOG_WARN("control", "registry snapshot corrupt; ignoring it");
        }
      }
    }
  }

  // --- journal replay ---------------------------------------------------
  {
    std::ifstream in(journal_path(), std::ios::binary);
    if (in && read_header(in, kJournalMagic, "registry journal")) {
      for (;;) {
        std::uint8_t op_byte = 0;
        std::uint32_t len = 0;
        if (!read_u8(in, op_byte)) break;  // clean EOF
        if (op_byte < static_cast<std::uint8_t>(RegistryOpKind::kAdd) ||
            op_byte > static_cast<std::uint8_t>(RegistryOpKind::kRemove) ||
            !read_u32(in, len) || len > kMaxRecordBytes) {
          stats.journal_clean = false;
          break;
        }
        std::vector<std::byte> bytes(len);
        std::uint32_t crc = 0;
        if (!read_raw(in, bytes.data(), len) || !read_u32(in, crc)) {
          stats.journal_clean = false;  // torn tail: crash mid-append
          break;
        }
        // The CRC covers op byte + record bytes so a bit flip in either is
        // caught, not just in the record body.
        std::vector<std::byte> covered;
        covered.reserve(1 + bytes.size());
        covered.push_back(static_cast<std::byte>(op_byte));
        covered.insert(covered.end(), bytes.begin(), bytes.end());
        if (crc != crc32(covered.data(), covered.size())) {
          stats.journal_clean = false;
          break;
        }
        RegistryOp op;
        op.kind = static_cast<RegistryOpKind>(op_byte);
        std::size_t pos = 0;
        if (!decode_task_record(bytes, pos, op.record) || pos != len) {
          stats.journal_clean = false;
          break;
        }
        registry.restore(op);
        ++stats.journal_ops;
      }
      if (!stats.journal_clean) {
        StoreMetrics::get().torn_records->inc();
        VLOG_WARN("control", "registry journal has a torn tail after ",
                  stats.journal_ops, " valid op(s); replayed the prefix");
      }
    }
  }
  journal_ops_ = stats.journal_ops;

  // Collapse the recovered state into a fresh snapshot so the next restart
  // replays nothing and a torn tail cannot be re-read. (This also opens the
  // journal for appending.)
  compact(registry);
  return stats;
}

void RegistryStore::open_journal_for_append() {
  if (journal_.is_open()) return;
  // Append mode keeps any existing ops; write the header only for a brand
  // new (empty) journal.
  journal_.open(journal_path(), std::ios::binary | std::ios::app);
  if (!journal_) {
    throw std::runtime_error("RegistryStore: cannot open journal " +
                             journal_path());
  }
  journal_.seekp(0, std::ios::end);
  if (journal_.tellp() == std::streampos(0)) {
    write_raw(journal_, kJournalMagic, 4);
    write_u32(journal_, kFormatVersion);
    journal_.flush();
  }
}

void RegistryStore::append(const RegistryOp& op) {
  open_journal_for_append();
  const auto bytes = encode_record(op.record);
  std::vector<std::byte> covered;
  covered.reserve(1 + bytes.size());
  covered.push_back(static_cast<std::byte>(op.kind));
  covered.insert(covered.end(), bytes.begin(), bytes.end());
  const std::uint32_t crc = crc32(covered.data(), covered.size());

  const auto op_byte = static_cast<std::uint8_t>(op.kind);
  write_raw(journal_, &op_byte, 1);
  write_u32(journal_, static_cast<std::uint32_t>(bytes.size()));
  write_raw(journal_, bytes.data(), bytes.size());
  write_u32(journal_, crc);
  journal_.flush();  // the op is durable before it is acknowledged
  if (!journal_) {
    throw std::runtime_error("RegistryStore: journal append failed");
  }
  ++journal_ops_;
  StoreMetrics::get().journal_appends->inc();
}

void RegistryStore::compact(const TaskRegistry& registry) {
  const std::string tmp = snapshot_path() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("RegistryStore: cannot write " + tmp);
    }
    write_raw(out, kSnapshotMagic, 4);
    write_u32(out, kFormatVersion);
    write_u64(out, registry.version());
    const auto records = registry.list();
    write_u32(out, static_cast<std::uint32_t>(records.size()));
    for (const auto& record : records) {
      const auto bytes = encode_record(record);
      write_u32(out, static_cast<std::uint32_t>(bytes.size()));
      write_raw(out, bytes.data(), bytes.size());
      write_u32(out, crc32(bytes.data(), bytes.size()));
    }
    out.flush();
    if (!out) {
      throw std::runtime_error("RegistryStore: snapshot write failed");
    }
  }
  if (std::rename(tmp.c_str(), snapshot_path().c_str()) != 0) {
    throw std::runtime_error("RegistryStore: cannot replace snapshot");
  }

  // Truncate the journal: everything it held is folded into the snapshot.
  journal_.close();
  {
    std::ofstream fresh(journal_path(), std::ios::binary | std::ios::trunc);
    write_raw(fresh, kJournalMagic, 4);
    write_u32(fresh, kFormatVersion);
  }
  journal_ops_ = 0;
  open_journal_for_append();
  StoreMetrics::get().compactions->inc();
}

void RegistryStore::maybe_compact(const TaskRegistry& registry) {
  if (journal_ops_ > kCompactThreshold) compact(registry);
}

}  // namespace volley::control
