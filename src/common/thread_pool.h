// Fixed-size worker thread pool for embarrassingly parallel experiment
// work (sim/sweep.h, and any future batch/sharded pipeline stage).
//
// Design goals, in order:
//  1. Determinism support. The pool schedules *tasks*, not results: a
//     caller that writes task i's output to slot i of a pre-sized vector
//     gets input-ordered, scheduling-independent results no matter which
//     worker ran what (this is exactly what sim::sweep does).
//  2. Simple lifetime. Workers are joined in the destructor; `submit` after
//     destruction begins is impossible by construction (the pool outlives
//     every future it handed out only if the caller keeps it alive — the
//     usual rule for executors).
//  3. No speculation. A fixed FIFO queue under one mutex is enough: sweep
//     tasks are full simulation runs (milliseconds to seconds), so queue
//     overhead is noise (bench_micro_core's dispatch bench keeps this
//     honest).
//
// Exceptions: a task that throws inside `submit` surfaces through its
// future; `parallel_for` rethrows the first body exception after all
// workers finish the loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace volley {

class ThreadPool {
 public:
  /// Spawns `threads` workers (minimum 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a callable; the future carries its result or exception.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

  /// Runs body(0) .. body(n-1) across the pool and blocks until all have
  /// finished. Indices are dealt to workers in order but may *complete* in
  /// any order — the body must write only to index-owned state. The calling
  /// thread participates as a worker, so a 1-thread pool degenerates to a
  /// plain serial loop. If any body throws, the first exception (in index
  /// order) is rethrown after the loop drains.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Worker count to use when the caller does not specify one: the
  /// VOLLEY_THREADS environment variable if set to a positive integer,
  /// otherwise std::thread::hardware_concurrency() (minimum 1).
  static std::size_t default_threads();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_{false};
  std::vector<std::thread> workers_;
};

}  // namespace volley
