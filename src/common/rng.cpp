#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace volley {

ZipfDistribution::ZipfDistribution(std::size_t n, double skew) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  if (skew < 0.0) throw std::invalid_argument("ZipfDistribution: skew >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r), skew);
    cdf_[r - 1] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::size_t rank) const {
  if (rank < 1 || rank > cdf_.size())
    throw std::out_of_range("ZipfDistribution::pmf: rank out of range");
  const double hi = cdf_[rank - 1];
  const double lo = rank == 1 ? 0.0 : cdf_[rank - 2];
  return hi - lo;
}

}  // namespace volley
