// Tiny key=value configuration parser.
//
// Used by the socket runtime daemons and examples to accept settings as
// "key=value" tokens (command-line or file lines). Keys are untyped strings;
// typed getters convert on access and fall back to a caller default when the
// key is absent. Malformed numeric values are an error (std::invalid_argument)
// rather than a silent default — configuration typos should be loud.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace volley {

class Config {
 public:
  Config() = default;

  /// Parses tokens of the form "key=value"; ignores empty tokens and
  /// comment tokens starting with '#'. Later duplicates win.
  static Config from_args(const std::vector<std::string>& tokens);

  /// Parses newline-separated "key=value" text (e.g. a small config file).
  static Config from_text(std::string_view text);

  void set(std::string key, std::string value);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;

  std::string get_string(const std::string& key, std::string def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::map<std::string, std::string>& entries() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace volley
