#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>

namespace volley {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(threads, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_)
      throw std::logic_error("ThreadPool: submit after destruction began");
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task: exceptions land in the future
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Work-stealing-free dealing: every participant (pool workers plus the
  // calling thread) pulls the next unclaimed index. Body exceptions are
  // collected and the one with the smallest index is rethrown, so failures
  // are as deterministic as the bodies themselves.
  struct State {
    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::size_t err_index{std::numeric_limits<std::size_t>::max()};
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<State>();
  const auto drain = [state, &body, n]() {
    for (;;) {
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->err_mu);
        if (i < state->err_index) {
          state->err_index = i;
          state->first_error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::future<void>> helpers;
  const std::size_t helper_count = std::min(workers_.size(), n);
  helpers.reserve(helper_count);
  for (std::size_t w = 0; w < helper_count; ++w)
    helpers.push_back(submit(drain));
  drain();
  for (auto& h : helpers) h.get();
  if (state->first_error) std::rethrow_exception(state->first_error);
}

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("VOLLEY_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0)
      return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

}  // namespace volley
