// Seeded random number generation for deterministic experiments.
//
// Every stochastic component of the library takes an explicit seed (or an
// Rng&) so that traces, simulations and benches are exactly reproducible.
// Besides the std distributions we provide the Zipf sampler used by the
// netflow/http generators and by the Figure 8 skew sweep (the paper cites
// Zipf [21] for skewed local-violation-rate distributions).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace volley {

/// Thin wrapper over a 64-bit Mersenne Twister with convenience samplers.
/// Not thread-safe; use one Rng per thread/component.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }
  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }
  /// Poisson with the given mean.
  std::int64_t poisson(double mean) {
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }
  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) {
    double u = uniform();
    if (u >= 1.0) u = std::nextafter(1.0, 0.0);
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

  std::mt19937_64& engine() { return engine_; }

  /// Derive an independent child generator (for per-component seeding).
  Rng fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Samples ranks 1..n with P(rank = r) proportional to 1/r^skew.
/// skew = 0 degenerates to the uniform distribution; larger skew
/// concentrates mass on low ranks. Used for address popularity in the
/// netflow generator, object popularity in the HTTP generator, and the
/// local-violation-rate skew sweep of Figure 8.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double skew);

  /// Returns a rank in [1, n].
  std::size_t sample(Rng& rng) const;

  /// Probability mass of a given rank in [1, n].
  double pmf(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative masses, cdf_.back() == 1
};

}  // namespace volley
