// Time types shared across the Volley library.
//
// The monitoring algorithms (src/core) operate in units of the task's
// *default sampling interval* Id — the paper measures every interval I as an
// integer count of Id (Section III-A). We make that unit a strong type,
// `Tick`, so interval arithmetic cannot be accidentally mixed with seconds.
//
// The discrete-event simulator (src/sim) and socket runtime (src/net) work
// in seconds (`SimTime`); conversion happens only at the task layer, where
// each task knows its Id in seconds.
#pragma once

#include <cstdint>

namespace volley {

/// A count of default sampling intervals (Id). Tick 0 is the task start.
using Tick = std::int64_t;

/// Simulated (or wall-clock) time in seconds.
using SimTime = double;

/// Task specification carries its default interval in seconds so layers can
/// convert: seconds = ticks * id_seconds.
struct TickScale {
  double id_seconds{1.0};

  [[nodiscard]] constexpr SimTime to_seconds(Tick t) const {
    return static_cast<SimTime>(t) * id_seconds;
  }
  [[nodiscard]] constexpr Tick to_ticks(SimTime s) const {
    return static_cast<Tick>(s / id_seconds);
  }
};

}  // namespace volley
