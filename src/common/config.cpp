#include "common/config.h"

#include <cstdlib>
#include <stdexcept>

namespace volley {

namespace {
void parse_token(Config& cfg, std::string_view token) {
  if (token.empty() || token.front() == '#') return;
  const auto eq = token.find('=');
  if (eq == std::string_view::npos) {
    throw std::invalid_argument("Config: token missing '=': " +
                                std::string(token));
  }
  cfg.set(std::string(token.substr(0, eq)), std::string(token.substr(eq + 1)));
}
}  // namespace

Config Config::from_args(const std::vector<std::string>& tokens) {
  Config cfg;
  for (const auto& t : tokens) parse_token(cfg, t);
  return cfg;
}

Config Config::from_text(std::string_view text) {
  Config cfg;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    auto line = text.substr(start, end - start);
    // Trim trailing carriage return and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (!line.empty()) parse_token(cfg, line);
    if (end == text.size()) break;
    start = end + 1;
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  kv_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const { return kv_.count(key) > 0; }

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, std::string def) const {
  auto v = get(key);
  return v ? *v : std::move(def);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  auto v = get(key);
  if (!v) return def;
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(*v, &pos);
  if (pos != v->size())
    throw std::invalid_argument("Config: bad integer for " + key + ": " + *v);
  return out;
}

double Config::get_double(const std::string& key, double def) const {
  auto v = get(key);
  if (!v) return def;
  std::size_t pos = 0;
  const double out = std::stod(*v, &pos);
  if (pos != v->size())
    throw std::invalid_argument("Config: bad double for " + key + ": " + *v);
  return out;
}

bool Config::get_bool(const std::string& key, bool def) const {
  auto v = get(key);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("Config: bad bool for " + key + ": " + *v);
}

}  // namespace volley
