// Fixed-capacity circular buffer.
//
// Used by the correlation detector (recent aligned state histories) and by
// the distributed coordination layer (recent r_i / e_i observations within
// an updating period). Overwrites the oldest element when full.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace volley {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : buf_(capacity), capacity_(capacity) {
    if (capacity == 0)
      throw std::invalid_argument("RingBuffer: capacity must be > 0");
  }

  void push(T value) {
    buf_[(head_ + size_) % capacity_] = std::move(value);
    if (size_ == capacity_) {
      head_ = (head_ + 1) % capacity_;
    } else {
      ++size_;
    }
  }

  /// Element i, 0 = oldest, size()-1 = newest.
  const T& operator[](std::size_t i) const { return buf_[(head_ + i) % capacity_]; }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Copies contents oldest-first into a vector (for analysis code).
  std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::vector<T> buf_;
  std::size_t capacity_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace volley
