#include "common/log.h"

#include <cstdio>

namespace volley {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace volley
