// Minimal leveled logger.
//
// The library itself is silent by default (benches print their own tables);
// the socket runtime and examples use this for diagnostics. The logger is a
// process-wide singleton guarded by a mutex — log volume in this project is
// low (protocol events, not per-sample traffic), so contention is a non-issue.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace volley {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Writes one line: "[LEVEL] component: message\n" to stderr.
  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  LogLevel level_{LogLevel::kWarn};
  std::mutex mu_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

#define VOLLEY_LOG(lvl_, component_, ...)                               \
  do {                                                                  \
    if (static_cast<int>(lvl_) >=                                       \
        static_cast<int>(::volley::Logger::instance().level())) {       \
      ::volley::Logger::instance().log(                                 \
          lvl_, component_, ::volley::detail::concat(__VA_ARGS__));     \
    }                                                                   \
  } while (0)

#define VLOG_DEBUG(component, ...) \
  VOLLEY_LOG(::volley::LogLevel::kDebug, component, __VA_ARGS__)
#define VLOG_INFO(component, ...) \
  VOLLEY_LOG(::volley::LogLevel::kInfo, component, __VA_ARGS__)
#define VLOG_WARN(component, ...) \
  VOLLEY_LOG(::volley::LogLevel::kWarn, component, __VA_ARGS__)
#define VLOG_ERROR(component, ...) \
  VOLLEY_LOG(::volley::LogLevel::kError, component, __VA_ARGS__)

}  // namespace volley
