#include "trace/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace volley {

DiurnalCurve::DiurnalCurve(Tick period, double depth, Tick phase)
    : period_(period), depth_(depth), phase_(phase) {
  if (period < 1) throw std::invalid_argument("DiurnalCurve: period >= 1");
  if (depth < 0.0 || depth >= 1.0)
    throw std::invalid_argument("DiurnalCurve: depth in [0,1)");
}

double DiurnalCurve::multiplier(Tick t) const {
  const double angle = 2.0 * std::numbers::pi *
                       static_cast<double>(t - phase_) /
                       static_cast<double>(period_);
  return 1.0 - depth_ * (0.5 - 0.5 * std::cos(angle));
}

OuProcess::OuProcess(const Options& options)
    : options_(options), x_(options.start) {
  if (options.theta <= 0.0 || options.theta > 1.0)
    throw std::invalid_argument("OuProcess: theta in (0,1]");
  if (options.sigma < 0.0) throw std::invalid_argument("OuProcess: sigma >= 0");
  if (!(options.lo < options.hi))
    throw std::invalid_argument("OuProcess: lo < hi");
  x_ = std::clamp(x_, options_.lo, options_.hi);
}

double OuProcess::next(Rng& rng) {
  x_ += options_.theta * (options_.mean - x_) +
        rng.normal(0.0, options_.sigma);
  x_ = std::clamp(x_, options_.lo, options_.hi);
  return x_;
}

void OuProcess::jump_to(double x) {
  x_ = std::clamp(x, options_.lo, options_.hi);
}

BurstProcess::BurstProcess(const Options& options, Rng& rng)
    : options_(options) {
  if (options.mean_gap <= 0.0)
    throw std::invalid_argument("BurstProcess: mean_gap > 0");
  if (options.ramp < 0 || options.plateau < 0 || options.decay < 0)
    throw std::invalid_argument("BurstProcess: non-negative phases");
  if (options.ramp + options.plateau + options.decay < 1)
    throw std::invalid_argument("BurstProcess: episode length >= 1");
  if (options.peak_lo < 0.0 || options.peak_hi < options.peak_lo)
    throw std::invalid_argument("BurstProcess: 0 <= peak_lo <= peak_hi");
  schedule_next(rng);
}

void BurstProcess::schedule_next(Rng& rng) {
  until_start_ =
      1 + static_cast<Tick>(rng.exponential(1.0 / options_.mean_gap));
}

double BurstProcess::next(Rng& rng) {
  if (remaining_ > 0) {
    const Tick elapsed = episode_len_ - remaining_;
    double intensity;
    if (elapsed < options_.ramp) {
      intensity = peak_ * static_cast<double>(elapsed + 1) /
                  static_cast<double>(options_.ramp);
    } else if (elapsed < options_.ramp + options_.plateau) {
      intensity = peak_;
    } else {
      const Tick into_decay = elapsed - options_.ramp - options_.plateau;
      intensity = peak_ * static_cast<double>(options_.decay - into_decay) /
                  static_cast<double>(std::max<Tick>(options_.decay, 1));
    }
    --remaining_;
    if (remaining_ == 0) schedule_next(rng);
    return std::max(intensity, 0.0);
  }
  if (--until_start_ <= 0) {
    episode_len_ = options_.ramp + options_.plateau + options_.decay;
    remaining_ = episode_len_;
    peak_ = rng.uniform(options_.peak_lo, options_.peak_hi);
  }
  return 0.0;
}

}  // namespace volley
