// SYN-flood injection (the attack model of paper Section II-A, after [9]):
// a DDoS episode sends a growing stream of SYN packets to the victim while
// the victim's capacity to answer with SYN-ACKs collapses, so the monitored
// asymmetry rho = Pi - Po ramps up, plateaus, and decays.
//
// Episodes are injected *into* a benign VmTraffic trace produced by the
// netflow generator: attack SYNs add to Pi (all attack packets carry SYN)
// and to the inspection cost; the victim answers only a shrinking fraction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "trace/netflow.h"

namespace volley {

struct DdosEpisode {
  Tick start{0};
  Tick ramp{8};          // ticks from 0 to peak intensity
  Tick plateau{16};      // ticks at peak
  Tick decay{8};         // ticks back to 0
  double peak_syn_rate{500.0};  // attack SYN packets per tick at peak
  double response_collapse{0.9};  // fraction of attack SYNs left unanswered

  Tick length() const { return ramp + plateau + decay; }
  void validate() const;
};

/// Adds the episode's effect to `traffic` in place. Attack SYN counts get
/// Poisson dispersion from `rng`. Episodes past the end of the trace are
/// truncated.
void inject_ddos(VmTraffic& traffic, const DdosEpisode& episode, Rng& rng);

/// Draws `count` non-overlapping episodes uniformly over the trace with the
/// given template (start fields are ignored in `prototype`). Gives up on
/// placement after a bounded number of rejections, so the returned vector
/// may be shorter than `count` for crowded traces.
std::vector<DdosEpisode> place_episodes(Tick trace_ticks,
                                        const DdosEpisode& prototype,
                                        std::size_t count, Rng& rng);

}  // namespace volley
