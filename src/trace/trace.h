// Time-series containers shared by the trace generators and the experiment
// drivers.
//
// A TimeSeries holds one monitored value per tick (one tick = one default
// sampling interval of the task that will consume it). SeriesSource adapts a
// TimeSeries to the core MetricSource interface, optionally with a parallel
// per-tick cost series (packets to inspect, log lines to parse, ...).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/clock.h"
#include "core/metric_source.h"

namespace volley {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> values)
      : values_(std::move(values)) {}
  explicit TimeSeries(std::size_t n, double fill = 0.0) : values_(n, fill) {}

  double& operator[](std::size_t i) { return values_[i]; }
  double operator[](std::size_t i) const { return values_[i]; }
  double at(std::size_t i) const { return values_.at(i); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  Tick ticks() const { return static_cast<Tick>(values_.size()); }

  std::span<const double> values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  void push_back(double v) { values_.push_back(v); }

  /// Element-wise sum of several series (the aggregate/global state of a
  /// distributed task). All series must share a length.
  static TimeSeries sum(std::span<const TimeSeries> series);

  /// Threshold for an alert-selectivity of k percent: the (100-k)-th
  /// percentile of the series values (paper Section V-A "Thresholds").
  double threshold_for_selectivity(double k_percent) const;

  double min() const;
  double max() const;
  double mean() const;

 private:
  std::vector<double> values_;
};

/// MetricSource over a TimeSeries (values owned by the source).
class SeriesSource final : public MetricSource {
 public:
  explicit SeriesSource(TimeSeries series) : series_(std::move(series)) {}
  SeriesSource(TimeSeries series, TimeSeries cost)
      : series_(std::move(series)), cost_(std::move(cost)) {
    if (!cost_.empty() && cost_.size() != series_.size())
      throw std::invalid_argument("SeriesSource: cost length mismatch");
  }

  double value_at(Tick t) const override {
    return series_.at(static_cast<std::size_t>(t));
  }
  Tick length() const override { return series_.ticks(); }
  double sampling_cost(Tick t) const override {
    if (cost_.empty()) return 1.0;
    return cost_.at(static_cast<std::size_t>(t));
  }

  const TimeSeries& series() const { return series_; }

 private:
  TimeSeries series_;
  TimeSeries cost_;
};

}  // namespace volley
