// Synthetic web-workload substrate — the stand-in for the WorldCup'98 HTTP
// trace (>1 billion requests over 30 servers) the paper replays for its
// application-level tasks (Section V-A).
//
// The monitored state of an application-level task is the *access rate of an
// object* (video, page) on a VM over the last default interval (1 s). The
// WorldCup workload's signature features, both of which Figure 5(c)'s large
// savings depend on, are reproduced:
//  * a strong diurnal cycle with long, nearly idle off-peak valleys, and
//  * bursty request arrival — flash crowds that multiply an object's rate
//    for minutes (match kickoffs in the original trace).
//
// Per object o and tick t:
//   rate_o(t) ~ Poisson( base * zipf_pmf(o) * diurnal(t) * (1 + flash_o(t)) )
// where flash_o is a BurstProcess envelope scaled by `flash_boost`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "trace/generators.h"
#include "trace/trace.h"

namespace volley {

/// One access-log line (record-level API for tests and the socket demo).
struct AccessLogRecord {
  Tick tick{0};
  std::uint32_t object{0};
  std::uint32_t client{0};
  std::int64_t bytes{0};
  int status{200};
};

struct HttpLogOptions {
  std::size_t objects{30};
  Tick ticks{86400};          // 1 day at 1 s
  Tick ticks_per_day{86400};
  double diurnal_depth{0.9};  // deep off-peak valley
  Tick diurnal_phase{43200};
  double mean_rps{40.0};      // fleet-average requests/object/tick at peak
  double zipf_skew{1.1};      // object popularity
  double flash_boost{6.0};    // flash crowd multiplies rate by up to 1+boost
  BurstProcess::Options flash{8000.0, 30, 120, 90, 0.5, 1.0};
  double mean_bytes{12000.0};
  double error_rate{0.01};    // fraction of non-200 responses
  std::uint64_t seed{11};

  void validate() const;
};

class HttpLogGenerator {
 public:
  explicit HttpLogGenerator(const HttpLogOptions& options);

  /// Per-object access-rate series (requests per tick). Deterministic in
  /// the seed. Also reports the per-tick total request volume per object as
  /// the sampling-cost driver (log lines a sampling operation must parse).
  struct ObjectTrace {
    TimeSeries rate;       // monitored state: accesses in the last tick
  };

  std::vector<ObjectTrace> generate() const;

  /// Record-level synthesis of one object's requests in one tick given the
  /// rate already drawn for that tick.
  std::vector<AccessLogRecord> synthesize_tick(Tick t, std::uint32_t object,
                                               std::int64_t count,
                                               Rng& rng) const;

  const HttpLogOptions& options() const { return options_; }

 private:
  HttpLogOptions options_;
  ZipfDistribution popularity_;
  DiurnalCurve diurnal_;
};

}  // namespace volley
