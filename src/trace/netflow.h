// Synthetic netflow-like traffic substrate — the stand-in for the Internet2
// netflow v5 archive the paper replays (Section V-A). See DESIGN.md
// "Substitutions" for the fidelity argument.
//
// Model, per VM v and 15-second tick t:
//  * incoming flow arrivals ~ Poisson(lambda_v(t)) with
//    lambda_v(t) = vms * mean_flows_per_tick * zipf_pmf(v) * diurnal(t):
//    VM popularity is Zipf (the paper maps Internet2 addresses uniformly
//    onto VMs; address popularity in the backbone is itself heavy-tailed)
//    and volume follows a deep day/night cycle.
//  * packets per flow ~ 1 + lognormal(mu, sigma) (heavy-tailed flow sizes).
//  * the VM answers flows with reply traffic of `reply_ratio` (~0.97) times
//    the incoming packet volume (benign loss/timeouts keep it just under 1).
//  * per the paper, every packet carries a SYN flag with probability
//    p = 0.1 (incoming) resp. SYN+ACK with p = 0.1 (outgoing), so
//    rho_v(t) = Pi - Po = Binomial(in_pkts, p) - Binomial(out_pkts, p):
//    a near-zero-mean series whose variance scales with traffic volume —
//    stable at night, noisier at peak, exactly the behaviour Figure 5(a)
//    exploits.
//
// The record-level API (`synthesize_window`) materializes individual flow
// records with the same distributions; the bulk API aggregates counts
// directly so that 800-VM, multi-day traces stay cheap to produce.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "trace/generators.h"
#include "trace/trace.h"

namespace volley {

/// One observed flow within a sampling window (netflow v5-like fields).
struct FlowRecord {
  Tick window{0};
  std::uint32_t src_vm{0};
  std::uint32_t dst_vm{0};
  std::int64_t packets{0};
  std::int64_t bytes{0};
  std::int64_t syn_packets{0};  // packets with the SYN flag set
};

struct NetflowOptions {
  std::size_t vms{40};
  Tick ticks{5760};           // trace length; 5760 x 15s = 1 day
  Tick ticks_per_day{5760};   // diurnal period
  double diurnal_depth{0.85}; // night volume = (1 - depth) * peak
  Tick diurnal_phase{2880};   // peak at mid-trace by default
  double mean_flows_per_tick{60.0};  // fleet-average incoming flows/VM/tick
  double zipf_skew{1.0};      // VM popularity skew
  double packets_mu{2.0};     // lognormal packets-per-flow parameters
  double packets_sigma{1.0};
  double bytes_per_packet{800.0};
  double reply_ratio{0.97};   // outgoing/incoming benign packet volume
  double reply_jitter{0.02};  // lognormal-ish jitter on the reply ratio
  double syn_prob{0.1};       // p from the paper; rho is insensitive to it
  // Per-VM session (on/off) gating: traffic to a single address arrives in
  // sessions, leaving many near-silent windows at any time of day. Markov
  // gate: P(on->off) = off_rate, P(off->on) = on_rate per tick; while off,
  // volume is scaled by off_floor. off_rate = 0 disables gating (default).
  double off_rate{0.0};
  double on_rate{1.0 / 180.0};
  double off_floor{0.03};
  std::uint64_t seed{1};

  void validate() const;
};

/// Per-VM traffic trace: the monitored state series rho and the
/// per-tick incoming packet volume (deep-packet-inspection cost driver).
struct VmTraffic {
  TimeSeries rho;         // Pi - Po (SYN in minus SYN-ACK out)
  TimeSeries in_packets;  // packets a sampling operation must inspect
};

class NetflowGenerator {
 public:
  explicit NetflowGenerator(const NetflowOptions& options);

  /// Bulk generation of all VM traces (aggregated counts).
  std::vector<VmTraffic> generate() const;

  /// Record-level synthesis of one VM's incoming flows in one window,
  /// sharing the bulk path's distributions. For tests, examples and the
  /// socket runtime demo.
  std::vector<FlowRecord> synthesize_window(Tick t, std::uint32_t dst_vm,
                                            Rng& rng) const;

  /// Expected incoming flow arrivals for a VM at a tick.
  double flow_rate(Tick t, std::uint32_t dst_vm) const;

  const NetflowOptions& options() const { return options_; }

 private:
  NetflowOptions options_;
  ZipfDistribution popularity_;
  DiurnalCurve diurnal_;
};

}  // namespace volley
