#include "trace/netflow.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace volley {

void NetflowOptions::validate() const {
  if (vms == 0) throw std::invalid_argument("NetflowOptions: vms > 0");
  if (ticks < 1) throw std::invalid_argument("NetflowOptions: ticks >= 1");
  if (ticks_per_day < 1)
    throw std::invalid_argument("NetflowOptions: ticks_per_day >= 1");
  if (mean_flows_per_tick <= 0.0)
    throw std::invalid_argument("NetflowOptions: mean_flows_per_tick > 0");
  if (reply_ratio < 0.0 || reply_ratio > 1.0)
    throw std::invalid_argument("NetflowOptions: reply_ratio in [0,1]");
  if (syn_prob <= 0.0 || syn_prob > 1.0)
    throw std::invalid_argument("NetflowOptions: syn_prob in (0,1]");
  if (off_rate < 0.0 || off_rate > 1.0 || on_rate <= 0.0 || on_rate > 1.0)
    throw std::invalid_argument("NetflowOptions: gate rates in [0,1]");
  if (off_floor < 0.0 || off_floor > 1.0)
    throw std::invalid_argument("NetflowOptions: off_floor in [0,1]");
}

NetflowGenerator::NetflowGenerator(const NetflowOptions& options)
    : options_(options),
      popularity_(options.vms == 0 ? 1 : options.vms, options.zipf_skew),
      diurnal_(options.ticks_per_day, options.diurnal_depth,
               options.diurnal_phase) {
  options_.validate();
}

double NetflowGenerator::flow_rate(Tick t, std::uint32_t dst_vm) const {
  if (dst_vm >= options_.vms)
    throw std::out_of_range("NetflowGenerator: dst_vm out of range");
  // pmf is over ranks 1..vms; VM id v gets rank v+1.
  return static_cast<double>(options_.vms) * options_.mean_flows_per_tick *
         popularity_.pmf(dst_vm + 1) * diurnal_.multiplier(t);
}

namespace {
/// Expected packets per flow for the 1 + lognormal(mu, sigma) model.
double mean_packets_per_flow(const NetflowOptions& o) {
  return 1.0 + std::exp(o.packets_mu + 0.5 * o.packets_sigma * o.packets_sigma);
}

/// Binomial(n, p) sampled exactly for small n and via a normal
/// approximation for large n (traffic windows reach 10^5 packets; exact
/// sampling would dominate generation time).
std::int64_t sample_binomial(std::int64_t n, double p, Rng& rng) {
  if (n <= 0) return 0;
  if (n < 64) {
    std::int64_t k = 0;
    for (std::int64_t i = 0; i < n; ++i) k += rng.bernoulli(p) ? 1 : 0;
    return k;
  }
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  const double draw = std::round(rng.normal(mean, sd));
  return std::clamp<std::int64_t>(static_cast<std::int64_t>(draw), 0, n);
}
}  // namespace

std::vector<VmTraffic> NetflowGenerator::generate() const {
  Rng master(options_.seed);
  std::vector<VmTraffic> out(options_.vms);
  const double ppf = mean_packets_per_flow(options_);

  for (std::uint32_t v = 0; v < options_.vms; ++v) {
    Rng rng = master.fork();
    auto& traffic = out[v];
    traffic.rho = TimeSeries(static_cast<std::size_t>(options_.ticks));
    traffic.in_packets =
        TimeSeries(static_cast<std::size_t>(options_.ticks));

    bool session_on = true;
    for (Tick t = 0; t < options_.ticks; ++t) {
      if (options_.off_rate > 0.0) {
        if (session_on && rng.bernoulli(options_.off_rate)) {
          session_on = false;
        } else if (!session_on && rng.bernoulli(options_.on_rate)) {
          session_on = true;
        }
      }
      const double gate = session_on ? 1.0 : options_.off_floor;
      const double lambda = flow_rate(t, v) * gate;
      const std::int64_t flows = rng.poisson(lambda);
      // Aggregate incoming packets: flows * E[packets/flow] with
      // Poisson-scale dispersion (sum of heavy-tailed flow sizes).
      double pkts = 0.0;
      if (flows > 0) {
        const double mean_pkts = static_cast<double>(flows) * ppf;
        const double sd = std::sqrt(mean_pkts) * (1.0 + options_.packets_sigma);
        pkts = std::max(static_cast<double>(flows),
                        std::round(rng.normal(mean_pkts, sd)));
      }
      const auto in_pkts = static_cast<std::int64_t>(pkts);
      // Benign reply volume: just under the incoming volume.
      const double ratio = std::clamp(
          options_.reply_ratio + rng.normal(0.0, options_.reply_jitter), 0.0,
          1.0);
      const auto out_pkts = static_cast<std::int64_t>(
          std::round(static_cast<double>(in_pkts) * ratio));

      const std::int64_t pi = sample_binomial(in_pkts, options_.syn_prob, rng);
      const std::int64_t po = sample_binomial(out_pkts, options_.syn_prob, rng);
      traffic.rho[static_cast<std::size_t>(t)] =
          static_cast<double>(pi - po);
      traffic.in_packets[static_cast<std::size_t>(t)] =
          static_cast<double>(in_pkts);
    }
  }
  return out;
}

std::vector<FlowRecord> NetflowGenerator::synthesize_window(
    Tick t, std::uint32_t dst_vm, Rng& rng) const {
  const double lambda = flow_rate(t, dst_vm);
  const std::int64_t flows = rng.poisson(lambda);
  std::vector<FlowRecord> records;
  records.reserve(static_cast<std::size_t>(flows));
  for (std::int64_t f = 0; f < flows; ++f) {
    FlowRecord rec;
    rec.window = t;
    rec.dst_vm = dst_vm;
    rec.src_vm = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(options_.vms) - 1));
    rec.packets = 1 + static_cast<std::int64_t>(std::llround(
                          rng.lognormal(options_.packets_mu,
                                        options_.packets_sigma)));
    rec.bytes = static_cast<std::int64_t>(
        std::llround(static_cast<double>(rec.packets) *
                     options_.bytes_per_packet));
    rec.syn_packets = sample_binomial(rec.packets, options_.syn_prob, rng);
    records.push_back(rec);
  }
  return records;
}

}  // namespace volley
