#include "trace/ddos.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace volley {

void DdosEpisode::validate() const {
  if (start < 0) throw std::invalid_argument("DdosEpisode: start >= 0");
  if (ramp < 0 || plateau < 0 || decay < 0)
    throw std::invalid_argument("DdosEpisode: non-negative phases");
  if (length() < 1) throw std::invalid_argument("DdosEpisode: length >= 1");
  if (peak_syn_rate <= 0.0)
    throw std::invalid_argument("DdosEpisode: peak_syn_rate > 0");
  if (response_collapse < 0.0 || response_collapse > 1.0)
    throw std::invalid_argument("DdosEpisode: response_collapse in [0,1]");
}

void inject_ddos(VmTraffic& traffic, const DdosEpisode& episode, Rng& rng) {
  episode.validate();
  const Tick n = traffic.rho.ticks();
  if (traffic.in_packets.ticks() != n)
    throw std::invalid_argument("inject_ddos: malformed VmTraffic");

  for (Tick off = 0; off < episode.length(); ++off) {
    const Tick t = episode.start + off;
    if (t < 0 || t >= n) continue;
    double intensity;
    if (off < episode.ramp) {
      intensity = static_cast<double>(off + 1) /
                  static_cast<double>(std::max<Tick>(episode.ramp, 1));
    } else if (off < episode.ramp + episode.plateau) {
      intensity = 1.0;
    } else {
      const Tick into_decay = off - episode.ramp - episode.plateau;
      intensity = static_cast<double>(episode.decay - into_decay) /
                  static_cast<double>(std::max<Tick>(episode.decay, 1));
    }
    const double mean_syns = episode.peak_syn_rate * intensity;
    if (mean_syns <= 0.0) continue;
    const auto attack_syns = static_cast<double>(rng.poisson(mean_syns));
    // The victim answers only the fraction that survives the collapse.
    const double answered = attack_syns * (1.0 - episode.response_collapse);
    const auto i = static_cast<std::size_t>(t);
    traffic.rho[i] += attack_syns - answered;
    traffic.in_packets[i] += attack_syns;
  }
}

std::vector<DdosEpisode> place_episodes(Tick trace_ticks,
                                        const DdosEpisode& prototype,
                                        std::size_t count, Rng& rng) {
  prototype.validate();
  if (trace_ticks < prototype.length())
    throw std::invalid_argument("place_episodes: trace shorter than episode");
  std::vector<DdosEpisode> placed;
  int rejections = 0;
  const int max_rejections = 1000;
  while (placed.size() < count && rejections < max_rejections) {
    DdosEpisode e = prototype;
    e.start = rng.uniform_int(0, trace_ticks - e.length());
    const bool overlaps = std::any_of(
        placed.begin(), placed.end(), [&](const DdosEpisode& other) {
          return e.start < other.start + other.length() &&
                 other.start < e.start + e.length();
        });
    if (overlaps) {
      ++rejections;
      continue;
    }
    placed.push_back(e);
  }
  std::sort(placed.begin(), placed.end(),
            [](const DdosEpisode& a, const DdosEpisode& b) {
              return a.start < b.start;
            });
  return placed;
}

}  // namespace volley
