#include "trace/sysmetrics.h"

#include <algorithm>
#include <stdexcept>

namespace volley {

void SysMetricsOptions::validate() const {
  if (nodes == 0) throw std::invalid_argument("SysMetricsOptions: nodes > 0");
  if (ticks < 1) throw std::invalid_argument("SysMetricsOptions: ticks >= 1");
  if (ticks_per_day < 1)
    throw std::invalid_argument("SysMetricsOptions: ticks_per_day >= 1");
  if (regime_shift_rate < 0.0 || regime_shift_rate > 1.0)
    throw std::invalid_argument(
        "SysMetricsOptions: regime_shift_rate in [0,1]");
  if (regime_shift_hold < 1)
    throw std::invalid_argument("SysMetricsOptions: regime_shift_hold >= 1");
  if (sigma_load_floor <= 0.0 || sigma_load_floor > 1.0)
    throw std::invalid_argument("SysMetricsOptions: sigma_load_floor in (0,1]");
}

namespace {
std::vector<MetricSpec> build_catalog() {
  std::vector<MetricSpec> c;
  auto add = [&c](std::string name, double lo, double hi, double mean,
                  double theta, double sigma, double diurnal_gain,
                  double spike_rate = 0.0, double spike_scale = 0.0) {
    c.push_back(MetricSpec{std::move(name), lo, hi, mean, theta, sigma,
                           diurnal_gain, spike_rate, spike_scale});
  };

  // CPU (8): percentages; user/system track load, idle mirrors it.
  add("cpu.user", 0, 100, 35, 0.10, 4.0, 25);
  add("cpu.system", 0, 100, 10, 0.10, 2.0, 8);
  add("cpu.idle", 0, 100, 50, 0.10, 5.0, -30);
  add("cpu.iowait", 0, 100, 4, 0.15, 1.5, 3, 1.0 / 900, 40);
  add("cpu.steal", 0, 100, 1, 0.20, 0.5, 1);
  add("cpu.nice", 0, 100, 1, 0.20, 0.4, 0);
  add("cpu.irq", 0, 100, 1, 0.20, 0.3, 1);
  add("cpu.softirq", 0, 100, 2, 0.20, 0.6, 2);

  // Memory (10): MB on a 4 GB guest (the paper's VMs have 256 MB; ranges
  // only set the scale of the process, not the algorithm's behaviour).
  add("mem.free", 0, 4096, 1500, 0.05, 60, -400);
  add("mem.cached", 0, 4096, 1200, 0.03, 40, 200);
  add("mem.buffers", 0, 1024, 250, 0.05, 15, 40);
  add("mem.active", 0, 4096, 1600, 0.05, 50, 300);
  add("mem.inactive", 0, 4096, 900, 0.05, 40, 100);
  add("mem.dirty", 0, 512, 40, 0.20, 12, 20);
  add("mem.swap_used", 0, 2048, 100, 0.02, 10, 30);
  add("mem.slab", 0, 512, 120, 0.05, 8, 10);
  add("mem.pagetables", 0, 256, 30, 0.05, 3, 5);
  add("mem.committed", 0, 8192, 2600, 0.04, 80, 400);

  // vmstat (12): rates per second.
  add("vmstat.procs_running", 0, 64, 3, 0.25, 1.2, 3);
  add("vmstat.procs_blocked", 0, 64, 1, 0.30, 0.8, 1, 1.0 / 800, 12);
  add("vmstat.swap_in", 0, 5000, 50, 0.25, 40, 30, 1.0 / 600, 1500);
  add("vmstat.swap_out", 0, 5000, 40, 0.25, 35, 30, 1.0 / 600, 1400);
  add("vmstat.blocks_in", 0, 50000, 3000, 0.15, 700, 2000);
  add("vmstat.blocks_out", 0, 50000, 2500, 0.15, 650, 1800);
  add("vmstat.interrupts", 0, 20000, 2400, 0.15, 350, 1500);
  add("vmstat.ctx_switches", 0, 50000, 6000, 0.15, 900, 4000);
  add("vmstat.pgfault", 0, 100000, 9000, 0.15, 1800, 5000);
  add("vmstat.pgmajfault", 0, 1000, 15, 0.25, 8, 10, 1.0 / 500, 300);
  add("vmstat.pgscan", 0, 20000, 400, 0.20, 150, 200, 1.0 / 700, 6000);
  add("vmstat.pgsteal", 0, 20000, 300, 0.20, 120, 150, 1.0 / 700, 5000);

  // Disk (16): four devices x usage/read/write/await.
  for (int d = 0; d < 4; ++d) {
    const std::string dev = "disk" + std::to_string(d);
    add(dev + ".usage", 0, 100, 45 + 8 * d, 0.01, 0.4, 2);
    add(dev + ".read_ops", 0, 5000, 250, 0.15, 60, 150);
    add(dev + ".write_ops", 0, 5000, 350, 0.15, 80, 220);
    add(dev + ".await_ms", 0, 500, 8, 0.20, 4, 6, 1.0 / 900, 150);
  }

  // Network (12): two interfaces x rx/tx bytes/packets/errors.
  for (int i = 0; i < 2; ++i) {
    const std::string ifc = "net" + std::to_string(i);
    add(ifc + ".rx_mbps", 0, 1000, 90, 0.12, 18, 120);
    add(ifc + ".tx_mbps", 0, 1000, 70, 0.12, 15, 100);
    add(ifc + ".rx_pps", 0, 200000, 14000, 0.12, 2500, 16000);
    add(ifc + ".tx_pps", 0, 200000, 11000, 0.12, 2200, 13000);
    add(ifc + ".rx_errs", 0, 100, 1, 0.30, 0.6, 1, 1.0 / 1000, 30);
    add(ifc + ".tx_drops", 0, 100, 1, 0.30, 0.6, 1, 1.0 / 1000, 30);
  }

  // Misc (8): load averages, files, sockets, uptime-ish counters.
  add("load.1m", 0, 32, 1.5, 0.15, 0.5, 2.0);
  add("load.5m", 0, 32, 1.4, 0.08, 0.3, 1.8);
  add("load.15m", 0, 32, 1.3, 0.04, 0.2, 1.6);
  add("fd.open", 0, 65536, 2200, 0.05, 150, 800);
  add("sockets.tcp_established", 0, 20000, 900, 0.10, 130, 700);
  add("sockets.tcp_timewait", 0, 20000, 400, 0.15, 90, 350);
  add("procs.total", 0, 1024, 160, 0.05, 8, 25);
  add("threads.total", 0, 8192, 900, 0.05, 40, 120);

  return c;
}
}  // namespace

const std::vector<MetricSpec>& SysMetricsGenerator::catalog() {
  static const std::vector<MetricSpec> kCatalog = build_catalog();
  return kCatalog;
}

SysMetricsGenerator::SysMetricsGenerator(const SysMetricsOptions& options)
    : options_(options),
      diurnal_(options.ticks_per_day, options.diurnal_depth,
               options.diurnal_phase) {
  options_.validate();
}

TimeSeries SysMetricsGenerator::generate_metric(std::size_t node,
                                                std::size_t metric) const {
  if (node >= options_.nodes)
    throw std::out_of_range("SysMetricsGenerator: node out of range");
  const auto& specs = catalog();
  if (metric >= specs.size())
    throw std::out_of_range("SysMetricsGenerator: metric out of range");
  const MetricSpec& spec = specs[metric];

  // Deterministic per (seed, node, metric) stream.
  Rng rng(options_.seed * 0x9E3779B97F4A7C15ull + node * 1000003ull +
          metric * 7919ull + 1);

  TimeSeries out(static_cast<std::size_t>(options_.ticks));
  double x = std::clamp(spec.mean + rng.normal(0.0, spec.sigma), spec.lo,
                        spec.hi);
  double shift = 0.0;
  Tick shift_left = 0;
  for (Tick t = 0; t < options_.ticks; ++t) {
    // Diurnal coupling: the load multiplier in [1-depth, 1] is recentered
    // to [-0.5, 0.5] and scales the metric's diurnal gain; its [0, 1]
    // normalization scales the noise (calm off-peak, jittery at peak).
    const double load = diurnal_.multiplier(t);
    double centered = 0.0;
    double load_norm = 1.0;
    if (options_.diurnal_depth > 0.0) {
      load_norm = (load - (1.0 - options_.diurnal_depth)) /
                  options_.diurnal_depth;  // in [0, 1]
      centered = load_norm - 0.5;
    }

    if (shift_left > 0) {
      --shift_left;
      if (shift_left == 0) shift = 0.0;
    } else if (rng.bernoulli(options_.regime_shift_rate)) {
      shift = rng.normal(0.0, 3.0 * spec.sigma / spec.theta * 0.2);
      shift_left = options_.regime_shift_hold;
    }

    const double target = std::clamp(
        spec.mean + spec.diurnal_gain * centered + shift, spec.lo, spec.hi);
    const double sigma_t =
        spec.sigma * (options_.sigma_load_floor +
                      (1.0 - options_.sigma_load_floor) * load_norm);
    x += spec.theta * (target - x) + rng.normal(0.0, sigma_t);
    x = std::clamp(x, spec.lo, spec.hi);
    double observed = x;
    if (spec.spike_rate > 0.0 && rng.bernoulli(spec.spike_rate)) {
      observed = std::clamp(x + spec.spike_scale * rng.exponential(1.0),
                            spec.lo, spec.hi);
    }
    out[static_cast<std::size_t>(t)] = observed;
  }
  return out;
}

std::vector<TimeSeries> SysMetricsGenerator::generate_node(
    std::size_t node) const {
  std::vector<TimeSeries> out;
  out.reserve(metric_count());
  for (std::size_t m = 0; m < metric_count(); ++m) {
    out.push_back(generate_metric(node, m));
  }
  return out;
}

}  // namespace volley
