// Synthetic system-performance substrate — the stand-in for the production
// 66-metric dataset [19] the paper replays into its VMs (Section V-A).
//
// The catalog enumerates exactly 66 metrics grouped into the families the
// paper lists (available CPU, free memory, vmstat, disk usage, network
// usage, ...). Each metric evolves as a mean-reverting OU process inside its
// natural range, optionally coupled to the datacenter's diurnal load curve,
// with occasional regime shifts (a deploy, a noisy neighbour) that move the
// process mean for a while. Relative to their usable range these series are
// *noisier* than the netflow rho series — which is exactly why Figure 5(b)
// shows smaller savings for system-level monitoring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "trace/generators.h"
#include "trace/trace.h"

namespace volley {

struct MetricSpec {
  std::string name;      // e.g. "cpu.user", "disk2.usage"
  double lo{0.0};        // natural range
  double hi{100.0};
  double mean{50.0};     // long-run mean inside the range
  double theta{0.1};     // mean-reversion speed
  double sigma{2.0};     // per-tick noise
  double diurnal_gain{0.0};  // how much the diurnal load moves the mean
  // Transient single-tick spikes (major faults, swap storms, error bursts):
  // with probability spike_rate per tick the value is lifted by an
  // Exp(1)-distributed multiple of spike_scale. Zero for smooth metrics.
  double spike_rate{0.0};
  double spike_scale{0.0};
};

struct SysMetricsOptions {
  std::size_t nodes{10};
  Tick ticks{17280};          // 1 day at 5 s
  Tick ticks_per_day{17280};
  double diurnal_depth{0.5};
  Tick diurnal_phase{8640};
  double regime_shift_rate{1.0 / 4000.0};  // shifts per tick per metric
  Tick regime_shift_hold{600};             // ticks a shifted mean persists
  // Noise heteroscedasticity: per-tick sigma scales with the diurnal load,
  // sigma_t = sigma * (floor + (1-floor) * load_norm). Production metrics
  // are much calmer off-peak than at peak; this is the property that gives
  // Figure 5(b) its (moderate) savings.
  double sigma_load_floor{0.2};
  std::uint64_t seed{7};

  void validate() const;
};

class SysMetricsGenerator {
 public:
  explicit SysMetricsGenerator(const SysMetricsOptions& options);

  /// The fixed 66-metric catalog (index is the metric id).
  static const std::vector<MetricSpec>& catalog();

  std::size_t metric_count() const { return catalog().size(); }

  /// One metric's series on one node. Deterministic in (seed, node, metric).
  TimeSeries generate_metric(std::size_t node, std::size_t metric) const;

  /// All 66 series of a node.
  std::vector<TimeSeries> generate_node(std::size_t node) const;

  const SysMetricsOptions& options() const { return options_; }

 private:
  SysMetricsOptions options_;
  DiurnalCurve diurnal_;
};

}  // namespace volley
