// Random (packet-level) sampling composition — paper Section VI: "Volley is
// complementary to random sampling as it can be used together with random
// sampling to offer additional cost savings by scheduling sampling
// operations."
//
// Random sampling inspects only a fraction f of packets and scales counts
// by 1/f; it cuts the per-operation DPI cost linearly but adds estimation
// noise to the monitored value (binomial thinning). Volley then schedules
// *when* those cheapened operations run. `thin_traffic` produces the
// rho / cost series a fraction-f sampler would observe, so the two
// techniques can be composed and their cost-accuracy frontier measured
// (bench_random_sampling).
#pragma once

#include "common/rng.h"
#include "trace/netflow.h"

namespace volley {

struct ThinningOptions {
  double fraction{0.1};  // f: fraction of packets inspected, in (0, 1]
  double syn_prob{0.1};  // the SYN tagging probability of the base traffic

  void validate() const;
};

/// The traffic a fraction-f packet sampler observes: rho is re-estimated
/// from thinned SYN counts (Binomial(count, f) scaled by 1/f), and the
/// inspected-packet cost series shrinks by f. The thinning noise model
/// treats the original SYN counts as Pi ~ rho_+ and Po deduced from the
/// reported rho and volume — exact per-packet replay is not retained by
/// VmTraffic, so the variance is synthesized from the same binomial law.
VmTraffic thin_traffic(const VmTraffic& traffic, const ThinningOptions& options,
                       Rng& rng);

}  // namespace volley
