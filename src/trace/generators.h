// Stochastic-process building blocks shared by the three workload
// generators (netflow, sysmetrics, httplog).
//
//  * DiurnalCurve  — smooth day/night multiplier: datacenter traffic and web
//    request volume follow a 24h cycle with a deep night-time valley (the
//    paper attributes the network/application savings partly to stable
//    night-time traffic and off-peak periods).
//  * OuProcess     — mean-reverting Ornstein-Uhlenbeck / AR(1) sampler used
//    for jittery system metrics (CPU, memory, vmstat...).
//  * BurstProcess  — Poisson-arriving episodes with ramp-up/plateau/decay,
//    used for flash crowds and DDoS attack intensity envelopes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace volley {

/// Smooth daily cycle: multiplier(t) in [1-depth, 1], peaking at
/// t == phase (mod period) and bottoming half a period later:
/// multiplier = 1 - depth * (0.5 - 0.5*cos(2*pi*(t - phase)/period)).
class DiurnalCurve {
 public:
  /// `period` ticks per day; `depth` in [0,1) is the relative depth of the
  /// night-time valley; `phase` shifts the peak.
  DiurnalCurve(Tick period, double depth, Tick phase = 0);

  double multiplier(Tick t) const;

 private:
  Tick period_;
  double depth_;
  Tick phase_;
};

/// Mean-reverting process: x' = x + theta*(mean - x) + sigma*N(0,1),
/// clamped to [lo, hi]. theta in (0,1] controls reversion speed.
class OuProcess {
 public:
  struct Options {
    double mean{0.5};
    double theta{0.05};
    double sigma{0.02};
    double lo{0.0};
    double hi{1.0};
    double start{0.5};
  };

  explicit OuProcess(const Options& options);

  double next(Rng& rng);
  double current() const { return x_; }
  void jump_to(double x);

 private:
  Options options_;
  double x_;
};

/// Episode envelope: 0 outside episodes; within an episode the intensity
/// ramps linearly to peak, holds, then decays linearly. Episode arrivals
/// are Poisson with the given mean inter-arrival gap (in ticks).
class BurstProcess {
 public:
  struct Options {
    double mean_gap{2000};     // mean ticks between episode starts
    Tick ramp{10};             // ticks from 0 to peak
    Tick plateau{20};          // ticks at peak
    Tick decay{20};            // ticks from peak back to 0
    double peak_lo{0.5};       // per-episode peak drawn uniformly
    double peak_hi{1.0};
  };

  BurstProcess(const Options& options, Rng& rng);

  /// Intensity in [0, peak_hi] at the next tick. Must be called once per
  /// tick, in order.
  double next(Rng& rng);

  bool in_episode() const { return remaining_ > 0; }

 private:
  void schedule_next(Rng& rng);

  Options options_;
  Tick until_start_{0};   // ticks until the next episode begins
  Tick remaining_{0};     // ticks left in the current episode
  Tick episode_len_{0};
  double peak_{0.0};
};

/// Convenience: render a full series of a callable generator.
template <typename Fn>
std::vector<double> render_series(Tick ticks, Fn&& fn) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(ticks));
  for (Tick t = 0; t < ticks; ++t) out.push_back(fn(t));
  return out;
}

}  // namespace volley
