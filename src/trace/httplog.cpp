#include "trace/httplog.h"

#include <cmath>
#include <stdexcept>

namespace volley {

void HttpLogOptions::validate() const {
  if (objects == 0) throw std::invalid_argument("HttpLogOptions: objects > 0");
  if (ticks < 1) throw std::invalid_argument("HttpLogOptions: ticks >= 1");
  if (ticks_per_day < 1)
    throw std::invalid_argument("HttpLogOptions: ticks_per_day >= 1");
  if (mean_rps <= 0.0)
    throw std::invalid_argument("HttpLogOptions: mean_rps > 0");
  if (flash_boost < 0.0)
    throw std::invalid_argument("HttpLogOptions: flash_boost >= 0");
  if (error_rate < 0.0 || error_rate > 1.0)
    throw std::invalid_argument("HttpLogOptions: error_rate in [0,1]");
}

HttpLogGenerator::HttpLogGenerator(const HttpLogOptions& options)
    : options_(options),
      popularity_(options.objects == 0 ? 1 : options.objects,
                  options.zipf_skew),
      diurnal_(options.ticks_per_day, options.diurnal_depth,
               options.diurnal_phase) {
  options_.validate();
}

std::vector<HttpLogGenerator::ObjectTrace> HttpLogGenerator::generate() const {
  Rng master(options_.seed);
  std::vector<ObjectTrace> out(options_.objects);
  for (std::uint32_t o = 0; o < options_.objects; ++o) {
    Rng rng = master.fork();
    BurstProcess flash(options_.flash, rng);
    auto& trace = out[o];
    trace.rate = TimeSeries(static_cast<std::size_t>(options_.ticks));
    const double base = static_cast<double>(options_.objects) *
                        options_.mean_rps * popularity_.pmf(o + 1);
    for (Tick t = 0; t < options_.ticks; ++t) {
      const double crowd = 1.0 + options_.flash_boost * flash.next(rng);
      const double lambda = base * diurnal_.multiplier(t) * crowd;
      trace.rate[static_cast<std::size_t>(t)] =
          static_cast<double>(rng.poisson(lambda));
    }
  }
  return out;
}

std::vector<AccessLogRecord> HttpLogGenerator::synthesize_tick(
    Tick t, std::uint32_t object, std::int64_t count, Rng& rng) const {
  std::vector<AccessLogRecord> records;
  if (count < 0) throw std::invalid_argument("synthesize_tick: count >= 0");
  records.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    AccessLogRecord rec;
    rec.tick = t;
    rec.object = object;
    rec.client = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
    rec.bytes = static_cast<std::int64_t>(
        std::llround(rng.lognormal(std::log(options_.mean_bytes), 0.8)));
    rec.status = rng.bernoulli(options_.error_rate) ? 503 : 200;
    records.push_back(rec);
  }
  return records;
}

}  // namespace volley
