#include "trace/trace.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "stats/quantile.h"

namespace volley {

TimeSeries TimeSeries::sum(std::span<const TimeSeries> series) {
  if (series.empty()) throw std::invalid_argument("TimeSeries::sum: empty");
  const std::size_t n = series.front().size();
  for (const auto& s : series) {
    if (s.size() != n)
      throw std::invalid_argument("TimeSeries::sum: length mismatch");
  }
  TimeSeries out(n, 0.0);
  for (const auto& s : series) {
    for (std::size_t i = 0; i < n; ++i) out[i] += s[i];
  }
  return out;
}

double TimeSeries::threshold_for_selectivity(double k_percent) const {
  if (k_percent < 0.0 || k_percent > 100.0)
    throw std::invalid_argument("threshold_for_selectivity: k in [0,100]");
  return exact_quantile(values_, (100.0 - k_percent) / 100.0);
}

double TimeSeries::min() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::min: empty");
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::max() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::max: empty");
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::mean() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::mean: empty");
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

}  // namespace volley
