#include "trace/sampling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace volley {

void ThinningOptions::validate() const {
  if (fraction <= 0.0 || fraction > 1.0)
    throw std::invalid_argument("ThinningOptions: fraction in (0,1]");
  if (syn_prob <= 0.0 || syn_prob > 1.0)
    throw std::invalid_argument("ThinningOptions: syn_prob in (0,1]");
}

namespace {
std::int64_t binomial(std::int64_t n, double p, Rng& rng) {
  if (n <= 0) return 0;
  if (n < 64) {
    std::int64_t k = 0;
    for (std::int64_t i = 0; i < n; ++i) k += rng.bernoulli(p) ? 1 : 0;
    return k;
  }
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  return std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::llround(rng.normal(mean, sd))), 0, n);
}
}  // namespace

VmTraffic thin_traffic(const VmTraffic& traffic,
                       const ThinningOptions& options, Rng& rng) {
  options.validate();
  const std::size_t n = traffic.rho.size();
  if (traffic.in_packets.size() != n)
    throw std::invalid_argument("thin_traffic: malformed VmTraffic");

  VmTraffic out;
  out.rho = TimeSeries(n);
  out.in_packets = TimeSeries(n);
  const double f = options.fraction;
  for (std::size_t t = 0; t < n; ++t) {
    const double pkts = traffic.in_packets[t];
    const double rho = traffic.rho[t];
    // Reconstruct approximate SYN counts: benign SYN volume is
    // syn_prob * packets on each direction; the asymmetry rho sits on the
    // incoming side (attack SYNs) or outgoing side (negative rho).
    const double base = options.syn_prob * pkts;
    const auto pi = static_cast<std::int64_t>(
        std::llround(std::max(base + std::max(rho, 0.0), 0.0)));
    const auto po = static_cast<std::int64_t>(
        std::llround(std::max(base + std::max(-rho, 0.0), 0.0)));
    // What a fraction-f sampler reports: thinned counts scaled back by 1/f.
    const double pi_hat = static_cast<double>(binomial(pi, f, rng)) / f;
    const double po_hat = static_cast<double>(binomial(po, f, rng)) / f;
    out.rho[t] = pi_hat - po_hat;
    out.in_packets[t] = pkts * f;  // only f of the packets are inspected
  }
  return out;
}

}  // namespace volley
