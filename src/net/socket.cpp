#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include "net/io_counters.h"

namespace volley {

namespace {
[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// Completes a nonblocking connect already in flight (EINPROGRESS) within
/// `timeout_ms`: waits for writability, retrying the wait on EINTR with
/// the timeout shrunk by the time already spent (a delivered signal is not
/// a connect failure — test_net's ConnectRetriesAcrossEintr pins this),
/// then surfaces the socket's SO_ERROR. Throws on timeout or error.
void connect_with_timeout(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLOUT, 0};
  timespec start{};
  clock_gettime(CLOCK_MONOTONIC, &start);
  int remaining_ms = timeout_ms;
  int ready = 0;
  for (;;) {
    ready = ::poll(&pfd, 1, remaining_ms);
    if (ready >= 0) break;
    if (errno != EINTR) throw_errno("poll(connect)");
    if (timeout_ms >= 0) {
      timespec now{};
      clock_gettime(CLOCK_MONOTONIC, &now);
      const auto waited_ms =
          static_cast<int>((now.tv_sec - start.tv_sec) * 1000 +
                           (now.tv_nsec - start.tv_nsec) / 1000000);
      remaining_ms = timeout_ms - waited_ms;
      if (remaining_ms <= 0) {
        ready = 0;  // deadline passed while handling signals
        break;
      }
    }
  }
  if (ready == 0) {
    errno = ETIMEDOUT;
    throw_errno("connect");
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0)
    throw_errno("getsockopt(SO_ERROR)");
  if (err != 0) {
    errno = err;
    throw_errno("connect");
  }
}
}  // namespace

FileDescriptor::~FileDescriptor() { reset(); }

FileDescriptor::FileDescriptor(FileDescriptor&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

FileDescriptor& FileDescriptor::operator=(FileDescriptor&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

int FileDescriptor::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void FileDescriptor::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

TcpConnection TcpConnection::connect(const std::string& host,
                                     std::uint16_t port, int timeout_ms) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    throw_errno("inet_pton");
  }
  // TCP_NODELAY before connect, not after: every exit of this function —
  // immediate success, the EINPROGRESS wait, and any caller that later
  // hands the fd to the legacy poll(2) loop or the reactor — carries it,
  // so a small frame (heartbeat, ack) never sits behind Nagle.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Non-blocking connect so a dead host fails at our deadline, not the
  // kernel's (which defaults to minutes of SYN retries).
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(F_SETFL)");
  net::count_io_syscalls();
  const int rc =
      ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) throw_errno("connect");
    connect_with_timeout(fd.get(), timeout_ms);
  }
  if (::fcntl(fd.get(), F_SETFL, flags) < 0) throw_errno("fcntl(F_SETFL)");
  return TcpConnection(std::move(fd));
}

std::optional<TcpConnection> TcpConnection::try_connect(
    const std::string& host, std::uint16_t port, int timeout_ms) {
  try {
    return connect(host, port, timeout_ms);
  } catch (const std::system_error&) {
    return std::nullopt;
  }
}

bool TcpConnection::send_all(std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    net::count_io_syscalls();
    const ssize_t n = ::send(fd_.get(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // retry
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::size_t> TcpConnection::recv_some(std::span<std::byte> buf) {
  while (true) {
    net::count_io_syscalls();
    const ssize_t n = ::recv(fd_.get(), buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
      return 0;  // treat hard errors as a closed peer
    }
    return static_cast<std::size_t>(n);
  }
}

void TcpConnection::set_nonblocking(bool enabled) {
  const int flags = ::fcntl(fd_.get(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_.get(), F_SETFL, next) < 0) throw_errno("fcntl(F_SETFL)");
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind");
  }
  if (::listen(fd_.get(), 64) != 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

void TcpListener::set_nonblocking(bool enabled) {
  const int flags = ::fcntl(fd_.get(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_.get(), F_SETFL, next) < 0) throw_errno("fcntl(F_SETFL)");
}

std::optional<TcpConnection> TcpListener::accept() {
  net::count_io_syscalls();
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(FileDescriptor(fd));
}

}  // namespace volley
