// Volley wire protocol messages (Figure 3's arrows, serialized).
//
//   monitor -> coordinator:  Hello, LocalViolation, PollResponse, StatsReport,
//                            Heartbeat, Bye
//   coordinator -> monitor:  PollRequest, AllowanceUpdate, HeartbeatAck,
//                            Shutdown
//   any client <-> coordinator:  StatsRequest / StatsReply (introspection:
//                            a client — e.g. tools/volley_stats — connects,
//                            sends StatsRequest *instead of* Hello, gets one
//                            StatsReply carrying the coordinator's metrics
//                            snapshot and optional trace export, and is
//                            disconnected; it never counts as a monitor)
//   control client <-> coordinator:  AddTask / RemoveTask / UpdateTask /
//                            ListTasks, answered by ControlReply (mutations)
//                            or TaskListReply (list). Served like stats
//                            requests: sent on a fresh connection in place
//                            of Hello, one reply, then disconnect. The
//                            control path (tools/volleyctl) mutates the
//                            coordinator's durable task registry
//                            (src/control) at runtime.
//   coordinator -> monitor:  TaskAttach / TaskDetach — pushes the live task
//                            set (id, epoch, local threshold, allowance,
//                            sampler knobs) so monitors create and retire
//                            samplers without restarting. Epochs are the
//                            registry's monotone revision numbers: a
//                            monitor applies an attach only when its epoch
//                            is not older than what it already runs.
//
// Multi-task scoping: LocalViolation, PollRequest, PollResponse,
// StatsReport and AllowanceUpdate carry the TaskId they belong to (0 is the
// boot task a daemon seeds from its command line), so one session
// multiplexes any number of concurrent monitoring tasks.
//
// Liveness: monitors heartbeat on a wall-clock interval; the coordinator
// acks each one. A silent monitor is declared *suspect* after
// heartbeat_timeout_ms and *dead* after staleness_bound_ms (see
// coordinator_node.h). Hello carries a `resume` flag so a reconnecting
// monitor can reattach to its session and resync its error allowance.
//
// Encoding: 1 type byte followed by fixed-width little-endian fields
// (u32/i64/f64); strings are a u32 byte length followed by the raw bytes
// (UTF-8 by convention, not enforced). Decoding is total: a malformed
// buffer returns nullopt rather than throwing, because it arrives from the
// network. DESIGN.md's wire-format appendix documents every message layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "control/task_registry.h"
#include "core/task.h"
#include "core/types.h"

namespace volley::net {

struct Hello {
  MonitorId monitor{0};
  /// True when this connection resumes an interrupted session: the
  /// coordinator reattaches the monitor's state and replies with an
  /// AllowanceUpdate carrying the current allowance (the resync handshake).
  bool resume{false};
};

struct LocalViolation {
  MonitorId monitor{0};
  Tick tick{0};
  double value{0.0};
  TaskId task{0};
};

struct PollRequest {
  Tick tick{0};
  std::uint64_t poll_id{0};
  TaskId task{0};
};

struct PollResponse {
  MonitorId monitor{0};
  std::uint64_t poll_id{0};
  Tick tick{0};
  double value{0.0};
  TaskId task{0};
};

struct StatsReport {
  MonitorId monitor{0};
  double avg_gain{0.0};
  double avg_allowance{0.0};
  std::int64_t observations{0};
  TaskId task{0};
};

struct AllowanceUpdate {
  double error_allowance{0.0};
  TaskId task{0};
};

struct Bye {
  MonitorId monitor{0};
  std::int64_t scheduled_ops{0};
  std::int64_t forced_ops{0};
};

struct Shutdown {};

/// Monitor-side liveness beacon, sent every heartbeat_interval_ms.
struct Heartbeat {
  MonitorId monitor{0};
  std::uint64_t seq{0};
};

/// Coordinator's echo of a Heartbeat; lets the monitor detect a half-open
/// (silently dead) coordinator connection.
struct HeartbeatAck {
  std::uint64_t seq{0};
};

/// Introspection request (any client -> coordinator). Sent on a fresh
/// connection in place of Hello; the coordinator answers with one
/// StatsReply and closes the connection.
struct StatsRequest {
  static constexpr std::uint32_t kIncludeTrace = 1u << 0;  // fill trace_jsonl
  static constexpr std::uint32_t kMetricsJson = 1u << 1;   // JSON, not Prom
  static constexpr std::uint32_t kIncludeShards = 1u << 2;  // fill shards
  std::uint32_t flags{0};
};

/// One shard session row of a StatsReply (kIncludeShards): the aggregator's
/// id, how many monitors it owns (its weight in the root's threshold and
/// allowance splits), its current boot-task budget, and how long ago its
/// last ShardSummary arrived (-1: never).
struct ShardStatsRow {
  std::uint32_t shard{0};
  std::uint32_t monitors{0};
  double allowance{0.0};
  std::int64_t last_summary_age_ms{-1};
};

/// Introspection reply (coordinator -> client): session counters plus the
/// process-global metrics registry snapshot. `metrics` holds the Prometheus
/// text exposition, or the JSON snapshot when kMetricsJson was requested.
/// `trace_jsonl` holds the newest trace events (JSONL, bounded so the frame
/// stays under kMaxFrameBytes) when kIncludeTrace was requested; empty
/// otherwise.
struct StatsReply {
  std::int64_t global_polls{0};
  std::int64_t reallocations{0};
  std::int64_t alerts{0};
  std::string metrics;
  std::string trace_jsonl;
  /// Shard sessions (kIncludeShards); empty otherwise and on flat fleets.
  std::vector<ShardStatsRow> shards{};

  /// Decode-time sanity cap on the shard row count (cf. kMaxTasks).
  static constexpr std::uint32_t kMaxShards = 4096;
};

// --- control plane --------------------------------------------------------

/// Control client -> coordinator: register a new task. The coordinator
/// validates the spec, journals the registry op, seeds the task's error
/// allowance (even split), and pushes TaskAttach to every live monitor.
struct AddTask {
  TaskId task{0};
  TaskSpec spec{};
};

/// Control client -> coordinator: retire a task. Pushes TaskDetach.
struct RemoveTask {
  TaskId task{0};
};

/// Control client -> coordinator: re-spec a live task (new threshold /
/// allowance / sampler knobs). Assigns a fresh epoch and re-runs the
/// allowance allocation for the task before pushing TaskAttach updates.
struct UpdateTask {
  TaskId task{0};
  TaskSpec spec{};
};

/// Control client -> coordinator: enumerate the live task set.
struct ListTasks {};

/// Coordinator -> control client: outcome of Add/Remove/UpdateTask.
/// `status` is control::ControlStatus on the wire (u8); `epoch` is the
/// revision assigned on success; `registry_version` the registry's version
/// after the mutation (also on failure, for observability).
struct ControlReply {
  control::ControlStatus status{control::ControlStatus::kOk};
  std::uint64_t epoch{0};
  std::uint64_t registry_version{0};
  std::string message{};
};

/// One task row of a TaskListReply: the registry record plus the
/// coordinator's current per-monitor error-allowance split for the task.
struct TaskEntry {
  TaskId task{0};
  std::uint64_t epoch{0};
  double global_threshold{0.0};
  double error_allowance{0.0};
  Tick updating_period{0};
  std::vector<std::pair<MonitorId, double>> allowance_split{};
};

/// Coordinator -> control client: the live task set, ascending task id.
struct TaskListReply {
  std::uint64_t registry_version{0};
  std::vector<TaskEntry> tasks{};

  /// Decode-time sanity cap on the task count: a corrupt frame must not
  /// drive a near-unbounded parse loop. Generous versus kMaxFrameBytes.
  static constexpr std::uint32_t kMaxTasks = 4096;
};

/// Coordinator -> monitor: run this task (create the sampler if unknown,
/// apply the new revision if the epoch is newer, resync the allowance if it
/// is the same revision). Carries everything a monitor needs to instantiate
/// the task locally.
struct TaskAttach {
  TaskId task{0};
  std::uint64_t epoch{0};
  double local_threshold{0.0};
  double error_allowance{0.0};
  double slack_ratio{0.2};
  std::int32_t patience{20};
  Tick max_interval{40};
  Tick updating_period{1000};
};

/// Coordinator -> monitor: retire this task (drop its sampler). The epoch
/// is the removal revision; an attach with a lower epoch must not resurrect
/// the task.
struct TaskDetach {
  TaskId task{0};
  std::uint64_t epoch{0};
};

// --- shard tier (DESIGN.md §13) -------------------------------------------

/// Aggregator -> root coordinator, in place of Hello: this connection is a
/// shard session. `shard` is the aggregator's id in the root's monitor-id
/// space, `monitors` the number of downstream monitors it owns — its weight
/// in the root's threshold slice T_s = T · w/W and allowance slice
/// err_s = err · w/W. `resume` works like Hello's (reattach + resync).
struct ShardHello {
  std::uint32_t shard{0};
  std::uint32_t monitors{1};
  bool resume{false};
};

/// Aggregator -> root coordinator, once per summary interval per live task:
/// the compressed (r, e, yield, allowance_used) coordination summary of the
/// shard's subset since the previous frame. r and e are the *sums* of the
/// per-monitor averaged gains/allowances drained by the shard's own
/// reallocation rounds (Coordinator::last_period_stats); yield = r/e is
/// carried redundantly for observability; allowance_used is the shard's
/// current budget err_s. The root feeds (r, e) into the identical
/// allocation algorithm it runs over raw monitors in a flat fleet.
struct ShardSummary {
  std::uint32_t shard{0};
  TaskId task{0};
  double r{0.0};
  double e{0.0};
  double yield{0.0};
  double allowance_used{0.0};
  std::int64_t observations{0};
};

/// Root coordinator -> aggregator: the task's new error budget for this
/// shard (pushed after each root reallocation round and on resume resync).
/// Also accepted pre-Hello as a control request: the aggregator loops it
/// back to its own embedded coordinator over the control path to apply the
/// budget without restarting samplers (unlike UpdateTask).
struct ShardAllowance {
  TaskId task{0};
  double error_allowance{0.0};
};

using Message =
    std::variant<Hello, LocalViolation, PollRequest, PollResponse, StatsReport,
                 AllowanceUpdate, Bye, Shutdown, Heartbeat, HeartbeatAck,
                 StatsRequest, StatsReply, AddTask, RemoveTask, UpdateTask,
                 ListTasks, ControlReply, TaskListReply, TaskAttach,
                 TaskDetach, ShardHello, ShardSummary, ShardAllowance>;

/// True for the frames a control client opens a connection with (served
/// pre-Hello, one reply, then disconnect — like StatsRequest).
bool is_control_request(const Message& message);

/// Serializes a message (payload only; add framing separately).
std::vector<std::byte> encode(const Message& message);

/// Parses one payload. nullopt on unknown type or truncated fields.
std::optional<Message> decode(std::span<const std::byte> payload);

}  // namespace volley::net
