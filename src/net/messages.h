// Volley wire protocol messages (Figure 3's arrows, serialized).
//
//   monitor -> coordinator:  Hello, LocalViolation, PollResponse, StatsReport,
//                            Heartbeat, Bye
//   coordinator -> monitor:  PollRequest, AllowanceUpdate, HeartbeatAck,
//                            Shutdown
//   any client <-> coordinator:  StatsRequest / StatsReply (introspection:
//                            a client — e.g. tools/volley_stats — connects,
//                            sends StatsRequest *instead of* Hello, gets one
//                            StatsReply carrying the coordinator's metrics
//                            snapshot and optional trace export, and is
//                            disconnected; it never counts as a monitor)
//
// Liveness: monitors heartbeat on a wall-clock interval; the coordinator
// acks each one. A silent monitor is declared *suspect* after
// heartbeat_timeout_ms and *dead* after staleness_bound_ms (see
// coordinator_node.h). Hello carries a `resume` flag so a reconnecting
// monitor can reattach to its session and resync its error allowance.
//
// Encoding: 1 type byte followed by fixed-width little-endian fields
// (u32/i64/f64); strings are a u32 byte length followed by the raw bytes
// (UTF-8 by convention, not enforced). Decoding is total: a malformed
// buffer returns nullopt rather than throwing, because it arrives from the
// network. DESIGN.md's wire-format appendix documents every message layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "core/types.h"

namespace volley::net {

struct Hello {
  MonitorId monitor{0};
  /// True when this connection resumes an interrupted session: the
  /// coordinator reattaches the monitor's state and replies with an
  /// AllowanceUpdate carrying the current allowance (the resync handshake).
  bool resume{false};
};

struct LocalViolation {
  MonitorId monitor{0};
  Tick tick{0};
  double value{0.0};
};

struct PollRequest {
  Tick tick{0};
  std::uint64_t poll_id{0};
};

struct PollResponse {
  MonitorId monitor{0};
  std::uint64_t poll_id{0};
  Tick tick{0};
  double value{0.0};
};

struct StatsReport {
  MonitorId monitor{0};
  double avg_gain{0.0};
  double avg_allowance{0.0};
  std::int64_t observations{0};
};

struct AllowanceUpdate {
  double error_allowance{0.0};
};

struct Bye {
  MonitorId monitor{0};
  std::int64_t scheduled_ops{0};
  std::int64_t forced_ops{0};
};

struct Shutdown {};

/// Monitor-side liveness beacon, sent every heartbeat_interval_ms.
struct Heartbeat {
  MonitorId monitor{0};
  std::uint64_t seq{0};
};

/// Coordinator's echo of a Heartbeat; lets the monitor detect a half-open
/// (silently dead) coordinator connection.
struct HeartbeatAck {
  std::uint64_t seq{0};
};

/// Introspection request (any client -> coordinator). Sent on a fresh
/// connection in place of Hello; the coordinator answers with one
/// StatsReply and closes the connection.
struct StatsRequest {
  static constexpr std::uint32_t kIncludeTrace = 1u << 0;  // fill trace_jsonl
  static constexpr std::uint32_t kMetricsJson = 1u << 1;   // JSON, not Prom
  std::uint32_t flags{0};
};

/// Introspection reply (coordinator -> client): session counters plus the
/// process-global metrics registry snapshot. `metrics` holds the Prometheus
/// text exposition, or the JSON snapshot when kMetricsJson was requested.
/// `trace_jsonl` holds the newest trace events (JSONL, bounded so the frame
/// stays under kMaxFrameBytes) when kIncludeTrace was requested; empty
/// otherwise.
struct StatsReply {
  std::int64_t global_polls{0};
  std::int64_t reallocations{0};
  std::int64_t alerts{0};
  std::string metrics;
  std::string trace_jsonl;
};

using Message =
    std::variant<Hello, LocalViolation, PollRequest, PollResponse, StatsReport,
                 AllowanceUpdate, Bye, Shutdown, Heartbeat, HeartbeatAck,
                 StatsRequest, StatsReply>;

/// Serializes a message (payload only; add framing separately).
std::vector<std::byte> encode(const Message& message);

/// Parses one payload. nullopt on unknown type or truncated fields.
std::optional<Message> decode(std::span<const std::byte> payload);

}  // namespace volley::net
