// Volley wire protocol messages (Figure 3's arrows, serialized).
//
//   monitor -> coordinator:  Hello, LocalViolation, PollResponse, StatsReport,
//                            Heartbeat, Bye
//   coordinator -> monitor:  PollRequest, AllowanceUpdate, HeartbeatAck,
//                            Shutdown
//
// Liveness: monitors heartbeat on a wall-clock interval; the coordinator
// acks each one. A silent monitor is declared *suspect* after
// heartbeat_timeout_ms and *dead* after staleness_bound_ms (see
// coordinator_node.h). Hello carries a `resume` flag so a reconnecting
// monitor can reattach to its session and resync its error allowance.
//
// Encoding: 1 type byte followed by fixed-width little-endian fields
// (u32/i64/f64). Decoding is total: a malformed buffer returns nullopt
// rather than throwing, because it arrives from the network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "core/types.h"

namespace volley::net {

struct Hello {
  MonitorId monitor{0};
  /// True when this connection resumes an interrupted session: the
  /// coordinator reattaches the monitor's state and replies with an
  /// AllowanceUpdate carrying the current allowance (the resync handshake).
  bool resume{false};
};

struct LocalViolation {
  MonitorId monitor{0};
  Tick tick{0};
  double value{0.0};
};

struct PollRequest {
  Tick tick{0};
  std::uint64_t poll_id{0};
};

struct PollResponse {
  MonitorId monitor{0};
  std::uint64_t poll_id{0};
  Tick tick{0};
  double value{0.0};
};

struct StatsReport {
  MonitorId monitor{0};
  double avg_gain{0.0};
  double avg_allowance{0.0};
  std::int64_t observations{0};
};

struct AllowanceUpdate {
  double error_allowance{0.0};
};

struct Bye {
  MonitorId monitor{0};
  std::int64_t scheduled_ops{0};
  std::int64_t forced_ops{0};
};

struct Shutdown {};

/// Monitor-side liveness beacon, sent every heartbeat_interval_ms.
struct Heartbeat {
  MonitorId monitor{0};
  std::uint64_t seq{0};
};

/// Coordinator's echo of a Heartbeat; lets the monitor detect a half-open
/// (silently dead) coordinator connection.
struct HeartbeatAck {
  std::uint64_t seq{0};
};

using Message =
    std::variant<Hello, LocalViolation, PollRequest, PollResponse, StatsReport,
                 AllowanceUpdate, Bye, Shutdown, Heartbeat, HeartbeatAck>;

/// Serializes a message (payload only; add framing separately).
std::vector<std::byte> encode(const Message& message);

/// Parses one payload. nullopt on unknown type or truncated fields.
std::optional<Message> decode(std::span<const std::byte> payload);

}  // namespace volley::net
