// A runnable Volley monitor speaking the wire protocol (src/net/messages.h)
// to a coordinator over TCP. One MonitorNode corresponds to one monitor
// process in the paper's testbed (Figure 4: a monitor per VM inside Dom0).
//
// The node wraps a core::Monitor — the exact same adaptation logic the
// simulation runs — and drives it on a compressed wall-clock timescale
// (`tick_micros` of real time per default sampling interval), so an
// end-to-end distributed run finishes in seconds on one machine.
//
// Lifecycle: connect() -> Hello -> per-tick loop {service coordinator
// messages; scheduled sampling; LocalViolation reports; StatsReport once
// per updating period; Heartbeat every heartbeat_interval_ms} -> Bye ->
// service polls until Shutdown.
//
// Resilience: a dead coordinator link (send failure, orderly close, or
// coordinator_timeout_ms without any inbound traffic — heartbeat acks
// guarantee traffic on a healthy link) moves the node into DEGRADED mode:
// it samples locally at the default interval every tick, so no violation
// window goes unobserved, while reconnecting with capped exponential
// backoff + jitter. A successful reconnect replays Hello{resume = true};
// the coordinator reattaches the session and pushes an AllowanceUpdate
// that resyncs the sampler's error allowance.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "core/monitor.h"
#include "core/task.h"
#include "net/framing.h"
#include "net/messages.h"
#include "net/socket.h"
#include "storage/sample_log.h"

namespace volley::net {

struct MonitorNodeOptions {
  MonitorId id{0};
  std::string coordinator_host{"127.0.0.1"};
  std::uint16_t coordinator_port{0};
  double local_threshold{0.0};
  AdaptiveSamplerOptions sampler{};
  Tick ticks{0};             // run length in default intervals
  Tick updating_period{1000};
  int tick_micros{200};      // compressed wall time per tick
  int shutdown_grace_ms{2000};
  // --- resilience knobs -------------------------------------------------
  int heartbeat_interval_ms{500};    // liveness beacon cadence
  int coordinator_timeout_ms{2500};  // inbound silence -> assume dead link
  int connect_timeout_ms{1000};      // per connect() attempt deadline
  int reconnect_backoff_ms{50};      // initial backoff between attempts
  int reconnect_backoff_max_ms{1000};  // backoff cap (doubling, jittered)
  int max_reconnect_attempts{60};    // consecutive failures before giving up
  /// When non-empty, every sampling observation is appended to this
  /// sample log (storage/sample_log.h) for offline event analysis — the
  /// "sampling data persistence" cost component of Section III-B.
  std::string sample_log_path{};
};

class MonitorNode {
 public:
  /// The source must outlive the node.
  MonitorNode(const MonitorNodeOptions& options, const MetricSource& source);

  /// Blocking; returns when the coordinator shuts the session down (or the
  /// grace period after Bye expires). Safe to call from its own thread.
  void run();

  /// Asks a running node to stop at the next tick boundary.
  void request_stop() { stop_.store(true); }

  // Results, valid after run() returns.
  std::int64_t scheduled_ops() const { return monitor_.scheduled_ops(); }
  std::int64_t forced_ops() const { return monitor_.forced_ops(); }
  std::int64_t local_violations() const { return monitor_.local_violations(); }
  double final_allowance() const { return monitor_.error_allowance(); }
  /// Successful session resumes after a lost coordinator link.
  std::int64_t reconnects() const { return reconnects_; }
  /// Ticks spent sampling locally (default interval) with no coordinator.
  std::int64_t degraded_ticks() const { return degraded_ticks_; }
  /// True when reconnection was abandoned (max_reconnect_attempts); the
  /// node then ran degraded to the end of its ticks.
  bool coordinator_lost() const { return coordinator_lost_; }

 private:
  enum class ServiceResult { kOk, kDisconnected, kShutdown };

  /// Handles every buffered coordinator message.
  ServiceResult service_messages(Tick t);
  bool send(const Message& m);
  /// Connects (with deadline) and sends Hello. True on success.
  bool try_attach(bool resume);
  void drop_connection();
  /// Runs one reconnect attempt when the backoff schedule allows it.
  void maybe_reconnect(std::int64_t now);
  void heartbeat_if_due(std::int64_t now);

  void log_sample(const Monitor::Outcome& outcome);

  MonitorNodeOptions options_;
  Monitor monitor_;
  std::unique_ptr<SampleLogWriter> sample_log_;
  std::atomic<bool> stop_{false};

  // Connection state (only touched from run()'s thread).
  TcpConnection conn_;
  FrameReader reader_;
  bool connected_{false};
  bool ever_connected_{false};
  bool coordinator_lost_{false};
  std::int64_t last_rx_ms_{0};
  std::int64_t last_heartbeat_ms_{0};
  std::uint64_t heartbeat_seq_{0};
  int backoff_ms_{0};
  std::int64_t next_attempt_ms_{0};
  int failed_attempts_{0};
  std::int64_t reconnects_{0};
  std::int64_t degraded_ticks_{0};
  Rng jitter_rng_;
};

}  // namespace volley::net
