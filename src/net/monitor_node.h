// A runnable Volley monitor speaking the wire protocol (src/net/messages.h)
// to a coordinator over TCP. One MonitorNode corresponds to one monitor
// process in the paper's testbed (Figure 4: a monitor per VM inside Dom0).
//
// The node runs one core::Monitor — the exact same adaptation logic the
// simulation runs — *per live task*, and drives them on a compressed
// wall-clock timescale (`tick_micros` of real time per default sampling
// interval), so an end-to-end distributed run finishes in seconds on one
// machine.
//
// Task set: the node seeds a *boot task* (id 0, epoch 1) from its own
// options. Every other task arrives over the wire: the coordinator pushes
// TaskAttach (create or re-spec a sampler) and TaskDetach (retire one)
// frames as its registry changes. Epochs order the revisions: an attach or
// detach is applied only when its epoch is strictly newer than what the
// node already knows for that task id, so replayed or reordered pushes are
// no-ops and a removed task cannot be resurrected by a stale attach.
//
// Lifecycle: connect() -> Hello -> per-tick loop {service coordinator
// messages; scheduled sampling per task; LocalViolation reports; StatsReport
// once per task updating period; Heartbeat every heartbeat_interval_ms} ->
// Bye -> service polls until Shutdown.
//
// Resilience: a dead coordinator link (send failure, orderly close, or
// coordinator_timeout_ms without any inbound traffic — heartbeat acks
// guarantee traffic on a healthy link) moves the node into DEGRADED mode:
// it samples every task locally at the default interval every tick, so no
// violation window goes unobserved, while reconnecting with capped
// exponential backoff + jitter. A successful reconnect replays
// Hello{resume = true}; the coordinator reattaches the session and pushes
// the full task set (TaskAttach) plus per-task AllowanceUpdates that resync
// every sampler's error allowance.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "core/monitor.h"
#include "core/task.h"
#include "net/framing.h"
#include "net/messages.h"
#include "net/reactor.h"
#include "net/socket.h"
#include "storage/sample_log.h"

namespace volley::net {

struct MonitorNodeOptions {
  MonitorId id{0};
  std::string coordinator_host{"127.0.0.1"};
  std::uint16_t coordinator_port{0};
  double local_threshold{0.0};
  AdaptiveSamplerOptions sampler{};
  Tick ticks{0};             // run length in default intervals
  Tick updating_period{1000};
  int tick_micros{200};      // compressed wall time per tick
  int shutdown_grace_ms{2000};
  // --- resilience knobs -------------------------------------------------
  int heartbeat_interval_ms{500};    // liveness beacon cadence
  int coordinator_timeout_ms{2500};  // inbound silence -> assume dead link
  int connect_timeout_ms{1000};      // per connect() attempt deadline
  int reconnect_backoff_ms{50};      // initial backoff between attempts
  int reconnect_backoff_max_ms{1000};  // backoff cap (doubling, jittered)
  int max_reconnect_attempts{60};    // consecutive failures before giving up
  /// When non-empty, every sampling observation is appended to this
  /// sample log (storage/sample_log.h) for offline event analysis — the
  /// "sampling data persistence" cost component of Section III-B.
  std::string sample_log_path{};
  /// Event-loop selection: -1 follows VOLLEY_POLL_LOOP, 0 forces the epoll
  /// reactor tick wait, 1 forces the legacy sleep_for tick wait.
  int poll_loop{-1};
};

class MonitorNode {
 public:
  /// The source must outlive the node. All tasks sample the same source
  /// (one node monitors one local metric stream; tasks differ in
  /// thresholds and allowances, the paper's per-task tuning).
  MonitorNode(const MonitorNodeOptions& options, const MetricSource& source);

  /// Blocking; returns when the coordinator shuts the session down (or the
  /// grace period after Bye expires). Safe to call from its own thread.
  void run();

  /// Asks a running node to stop at the next tick boundary.
  void request_stop() { stop_.store(true); }

  // Results, valid after run() returns. Op counts sum over every task the
  // node ever ran (detached tasks included).
  std::int64_t scheduled_ops() const;
  std::int64_t forced_ops() const;
  std::int64_t local_violations() const;
  /// The boot task's final error allowance (its last value when detached).
  double final_allowance() const;
  /// Task id -> epoch for every task the node knows about, detached tasks
  /// included (their tombstone epoch).
  std::map<TaskId, std::uint64_t> task_epochs() const;
  /// Live (attached) task count.
  std::size_t live_tasks() const { return tasks_.size(); }
  /// Local violations reported by one task (0 for unknown/detached ids).
  std::int64_t task_local_violations(TaskId task) const;
  /// Successful session resumes after a lost coordinator link.
  std::int64_t reconnects() const { return reconnects_; }
  /// Ticks spent sampling locally (default interval) with no coordinator.
  std::int64_t degraded_ticks() const { return degraded_ticks_; }
  /// True when reconnection was abandoned (max_reconnect_attempts); the
  /// node then ran degraded to the end of its ticks.
  bool coordinator_lost() const { return coordinator_lost_; }

 private:
  enum class ServiceResult { kOk, kDisconnected, kShutdown };

  /// One attached task: its sampler (a full core::Monitor) plus the
  /// revision it runs and its reporting schedule.
  struct TaskState {
    std::uint64_t epoch{0};
    Tick updating_period{1000};
    Tick next_report{0};
    std::unique_ptr<Monitor> monitor;
  };

  /// Handles every buffered coordinator message.
  ServiceResult service_messages(Tick t);
  /// Sleeps out the rest of tick `t`. Reactor mode parks in epoll and
  /// services coordinator frames the moment they arrive (a PollRequest is
  /// answered mid-tick instead of at the next boundary); legacy mode is the
  /// original unconditional sleep_for.
  ServiceResult wait_tick(Tick t, std::int64_t wait_ns);
  void apply_attach(const TaskAttach& attach, Tick t);
  void apply_detach(const TaskDetach& detach);
  /// Folds a retiring sampler's counters into the retired_* totals.
  void retire_monitor(TaskId task, const Monitor& monitor);
  bool send(const Message& m);
  /// Connects (with deadline) and sends Hello. True on success.
  bool try_attach_session(bool resume);
  void drop_connection();
  /// Runs one reconnect attempt when the backoff schedule allows it.
  void maybe_reconnect(std::int64_t now);
  void heartbeat_if_due(std::int64_t now);

  void log_sample(const Monitor::Outcome& outcome);

  MonitorNodeOptions options_;
  const MetricSource* source_;
  std::map<TaskId, TaskState> tasks_;
  /// Highest epoch seen per task id — kept across detach (tombstones), so
  /// a stale attach cannot resurrect a removed task.
  std::map<TaskId, std::uint64_t> known_epochs_;
  // Counters of detached samplers, folded in so totals survive removal.
  std::int64_t retired_scheduled_{0};
  std::int64_t retired_forced_{0};
  std::int64_t retired_violations_{0};
  std::map<TaskId, std::int64_t> retired_task_violations_;
  double boot_allowance_{0.0};  // boot task's allowance, kept past detach
  std::unique_ptr<SampleLogWriter> sample_log_;
  std::atomic<bool> stop_{false};

  // Connection state (only touched from run()'s thread).
  Reactor reactor_;
  bool reactor_mode_{false};
  TcpConnection conn_;
  FrameReader reader_;
  bool connected_{false};
  bool ever_connected_{false};
  bool coordinator_lost_{false};
  std::int64_t last_rx_ms_{0};
  std::int64_t last_heartbeat_ms_{0};
  std::uint64_t heartbeat_seq_{0};
  int backoff_ms_{0};
  std::int64_t next_attempt_ms_{0};
  int failed_attempts_{0};
  std::int64_t reconnects_{0};
  std::int64_t degraded_ticks_{0};
  Rng jitter_rng_;
};

}  // namespace volley::net
