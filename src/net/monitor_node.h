// A runnable Volley monitor speaking the wire protocol (src/net/messages.h)
// to a coordinator over TCP. One MonitorNode corresponds to one monitor
// process in the paper's testbed (Figure 4: a monitor per VM inside Dom0).
//
// The node wraps a core::Monitor — the exact same adaptation logic the
// simulation runs — and drives it on a compressed wall-clock timescale
// (`tick_micros` of real time per default sampling interval), so an
// end-to-end distributed run finishes in seconds on one machine.
//
// Lifecycle: connect() -> Hello -> per-tick loop {service coordinator
// messages; scheduled sampling; LocalViolation reports; StatsReport once
// per updating period} -> Bye -> service polls until Shutdown.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/monitor.h"
#include "core/task.h"
#include "net/framing.h"
#include "net/messages.h"
#include "net/socket.h"
#include "storage/sample_log.h"

namespace volley::net {

struct MonitorNodeOptions {
  MonitorId id{0};
  std::string coordinator_host{"127.0.0.1"};
  std::uint16_t coordinator_port{0};
  double local_threshold{0.0};
  AdaptiveSamplerOptions sampler{};
  Tick ticks{0};             // run length in default intervals
  Tick updating_period{1000};
  int tick_micros{200};      // compressed wall time per tick
  int shutdown_grace_ms{2000};
  /// When non-empty, every sampling observation is appended to this
  /// sample log (storage/sample_log.h) for offline event analysis — the
  /// "sampling data persistence" cost component of Section III-B.
  std::string sample_log_path{};
};

class MonitorNode {
 public:
  /// The source must outlive the node.
  MonitorNode(const MonitorNodeOptions& options, const MetricSource& source);

  /// Blocking; returns when the coordinator shuts the session down (or the
  /// grace period after Bye expires). Safe to call from its own thread.
  void run();

  /// Asks a running node to stop at the next tick boundary.
  void request_stop() { stop_.store(true); }

  // Results, valid after run() returns.
  std::int64_t scheduled_ops() const { return monitor_.scheduled_ops(); }
  std::int64_t forced_ops() const { return monitor_.forced_ops(); }
  std::int64_t local_violations() const { return monitor_.local_violations(); }
  double final_allowance() const { return monitor_.error_allowance(); }

 private:
  /// Handles every buffered coordinator message; returns false on Shutdown
  /// or lost connection.
  bool service_messages(TcpConnection& conn, FrameReader& reader, Tick t);
  bool send(TcpConnection& conn, const Message& m);

  void log_sample(const Monitor::Outcome& outcome);

  MonitorNodeOptions options_;
  Monitor monitor_;
  std::unique_ptr<SampleLogWriter> sample_log_;
  std::atomic<bool> stop_{false};
};

}  // namespace volley::net
