// A runnable Volley coordinator speaking the wire protocol over TCP.
//
// The coordinator accepts the expected number of monitors, then runs an
// event loop — the epoll reactor (net/reactor.h: readiness dispatch, batched
// writev egress, timer-wheel deadlines) by default, or the legacy 20 ms
// poll(2) loop under VOLLEY_POLL_LOOP — handling:
//  * LocalViolation  -> start a global poll for the violated task (coincident
//    violations while that task's poll is in flight are absorbed by it, as in
//    the paper: one global poll answers "is the global condition violated
//    right now");
//  * PollResponse    -> when every reachable monitor answered, aggregate and
//    compare against the task's global threshold T; record a state alert if
//    exceeded;
//  * StatsReport     -> once all reachable monitors reported for a task,
//    reallocate that task's error allowance (even or adaptive scheme) and
//    push AllowanceUpdates;
//  * Heartbeat       -> refresh the monitor's liveness deadline, echo an ack;
//  * StatsRequest    -> (from any pre-Hello client, e.g. tools/volley_stats)
//    answer with one StatsReply — session counters plus the obs/ metrics
//    snapshot and optional trace export — then drop the connection; stats
//    clients never count toward the expected monitors;
//  * AddTask / RemoveTask / UpdateTask / ListTasks -> (pre-Hello control
//    clients, e.g. tools/volleyctl) mutate the task registry: validate,
//    journal through the durable store, re-run the task's allowance
//    allocation, and push TaskAttach / TaskDetach to every live monitor;
//    answer with ControlReply / TaskListReply, then drop the connection;
//  * Bye             -> when all monitors said goodbye, broadcast Shutdown
//    and return.
//
// Task registry (src/control): the coordinator seeds a *boot task* (id 0,
// epoch 1) from its own options, so the legacy single-task deployment is
// just the registry's initial state. When `registry_path` is set, the
// registry is durable — restored from snapshot + journal on construction
// (a restarted coordinator resumes the full task set at its exact epochs)
// and journaled on every mutation. Monitors learn the task set through
// TaskAttach frames pushed on bind and on every registry change; epochs
// make the pushes idempotent (a monitor ignores revisions it already runs).
//
// Failure model (the companion paper [22]'s concern, mirrored from
// sim/faults.h): a monitor silent past heartbeat_timeout_ms — or whose
// connection drops without a Bye — becomes SUSPECT. An in-flight global
// poll no longer waits on suspects: it completes with the suspect's last
// known value for that task (the same stale-value fallback the simulator
// applies on poll_response_loss), and the poll is accounted as stale. A
// suspect that stays silent past staleness_bound_ms becomes DEAD: it is
// excluded from aggregation and its error allowance is reclaimed and
// redistributed to the survivors — per task
// (core/error_allocation's redistribute_allowance). A reconnecting monitor
// reattaches with Hello{resume}; the coordinator responds with TaskAttach
// and AllowanceUpdate frames so the monitor resyncs every task.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "control/registry_store.h"
#include "control/task_registry.h"
#include "core/error_allocation.h"
#include "net/framing.h"
#include "net/messages.h"
#include "net/reactor.h"
#include "net/reactor_pool.h"
#include "net/socket.h"

namespace volley::net {

struct CoordinatorNodeOptions {
  std::uint16_t port{0};  // 0 = pick a free port; read back via port()
  std::size_t monitors{1};
  double global_threshold{0.0};
  double error_allowance{0.01};
  bool adaptive_allocation{true};
  int poll_timeout_ms{1000};       // settle a poll with whatever arrived
  int idle_timeout_ms{30000};      // abort a fully silent session
  int heartbeat_timeout_ms{2000};  // silence before a monitor is SUSPECT
  int staleness_bound_ms{6000};    // SUSPECT duration before DEAD (reclaim)
  /// When non-empty, the task registry persists to `<path>.snapshot` /
  /// `<path>.journal` and is restored from them on construction.
  std::string registry_path{};
  /// Event-loop selection: -1 follows VOLLEY_POLL_LOOP, 0 forces the epoll
  /// reactor, 1 forces the legacy poll(2) loop (benches run both in-process).
  int poll_loop{-1};
  /// Reactor loop count (DESIGN.md §14): -1 follows VOLLEY_NET_THREADS,
  /// otherwise the count itself (>= 1). 1 = the single-loop runtime,
  /// behavior-identical to before the pool existed. With N > 1 the run()
  /// thread keeps loop 0 (listener, protocol state, timers) and session
  /// I/O shards round-robin across loops 1..N-1, one loop per session for
  /// its whole life. Only the reactor path shards; the legacy poll(2) loop
  /// ignores this.
  int net_threads{-1};
  /// Readiness backend: -1 follows VOLLEY_URING, 0 forces epoll, 1 forces
  /// io_uring (falls back to epoll when unsupported; benches force both
  /// in one process).
  int uring{-1};
  // --- shard tier (DESIGN.md §13) -----------------------------------------
  /// Total downstream weight behind this coordinator's sessions. A *root*
  /// coordinator over S aggregators sets monitors = S and total_weight = the
  /// fleet-wide monitor count, so threshold/allowance slices are
  /// T·w/W and err·w/W per shard (ShardHello carries each w). 0 means
  /// `monitors` — every session weighs 1, the flat fleet unchanged.
  std::size_t total_weight{0};
  /// Invoked from run()'s thread whenever a settled global poll exceeds the
  /// task's threshold (alongside the GlobalAlert record). An aggregator's
  /// embedded coordinator uses this to escalate a local violation upstream.
  std::function<void(TaskId task, Tick tick, double value)> on_alert{};
};

struct GlobalAlert {
  Tick tick{0};
  double value{0.0};
  TaskId task{0};
};

/// Liveness state of one monitor as the coordinator sees it.
enum class MonitorLiveness { kActive, kSuspect, kDead };

/// Fault accounting for a session, in the spirit of sim::FaultyRunResult.
struct NetFaultStats {
  std::int64_t heartbeats{0};          // heartbeats received (and acked)
  std::int64_t stale_polls{0};         // polls settled with >= 1 stale value
  std::int64_t stale_values{0};        // individual last-known fill-ins
  std::int64_t suspected{0};           // Active -> Suspect transitions
  std::int64_t recovered{0};           // Suspect/Dead -> Active transitions
  std::int64_t declared_dead{0};       // Suspect -> Dead transitions
  std::int64_t reconnects{0};          // resumed sessions (Hello{resume})
  std::int64_t allowance_reclaims{0};  // redistributions due to death/rejoin
};

class CoordinatorNode {
 public:
  explicit CoordinatorNode(const CoordinatorNodeOptions& options);

  /// The bound port (call after construction; useful with port = 0).
  std::uint16_t port() const { return listener_.port(); }

  /// Blocking: accepts monitors, runs the session, shuts monitors down.
  /// Returns when every monitor is done (Bye) or dead, on the idle guard,
  /// or on request_stop().
  void run();

  /// Asks a running coordinator to stop at the next loop turn *without*
  /// broadcasting Shutdown — connections are simply dropped, exactly like a
  /// coordinator crash. Monitors are expected to reconnect to a successor.
  void request_stop() {
    stop_.store(true);
    pool_.wakeup_all();  // every sleeping loop re-checks stop_ now
  }

  // Live counters, readable from other threads while run() is in flight
  // (bench_net_scale samples them across its idle/load windows).
  std::int64_t loop_wakeups() const {
    return loop_wakeups_.load(std::memory_order_relaxed);
  }
  std::int64_t messages_received() const {
    return messages_received_.load(std::memory_order_relaxed);
  }
  /// Violation-report -> poll-settle latencies (ms), one entry per finished
  /// global poll.
  std::vector<double> poll_settle_ms() const {
    std::lock_guard<std::mutex> lock(poll_settle_mu_);
    return poll_settle_ms_;
  }

  // Results, valid after run() returns.
  std::int64_t global_polls() const { return global_polls_; }
  const std::vector<GlobalAlert>& alerts() const { return alerts_; }
  std::int64_t reallocations() const { return reallocations_; }
  const NetFaultStats& fault_stats() const { return fault_stats_; }
  /// Per-monitor op totals from Bye messages (monitor id -> ops).
  const std::map<MonitorId, std::int64_t>& reported_ops() const {
    return reported_ops_;
  }
  /// The live task registry (boot task included). Const access only; the
  /// run() thread owns mutations.
  const control::TaskRegistry& registry() const { return registry_; }
  /// What construction found on disk (all-false/zero without registry_path).
  const control::RegistryLoadStats& registry_load_stats() const {
    return registry_load_stats_;
  }

  /// Loop count actually running (1 = single-loop) and the readiness
  /// backend behind every loop.
  std::size_t net_threads() const { return pool_.size(); }
  ReactorBackend reactor_backend() const { return pool_.backend(); }
  /// Which loop each session's I/O lived on (sticky for the session's whole
  /// life, reconnects included — the no-migration invariant tests assert).
  /// Read after run() returns.
  const std::map<MonitorId, std::size_t>& session_loops() const {
    return session_loop_;
  }

  // --- shard export (thread-safe; read by an embedding AggregatorNode) ----
  /// The latest settled poll aggregate for a task (0.0 before the first
  /// poll). An aggregator answers upstream PollRequests with this cached
  /// value — the net tier's stale-value semantics one level up: the root's
  /// poll settles with each quiet shard's last known subset aggregate.
  double shard_aggregate(TaskId task) const;
  /// Drains the accumulated (r, e, observations) coordination stats per
  /// live task into upstream ShardSummary frames tagged `shard_id`. r/e/obs
  /// reset on drain; budget and aggregate persist.
  std::vector<ShardSummary> drain_shard_summaries(std::uint32_t shard_id);

 private:
  /// A session's I/O half when it lives on a worker loop (multi-loop mode,
  /// DESIGN.md §14). Exclusively owned by that loop's thread from the
  /// install task onward: the fd, reader, writer, and backpressure flag are
  /// touched there and nowhere else. The home thread only constructs it,
  /// captures the shared_ptr into posted tasks, and reads the immutable
  /// id/loop/epoch fields. Ingress flows home as decoded Message batches;
  /// egress arrives as encoded frame batches. `epoch` is the session's
  /// connection generation — home drops ingress posted by a connection it
  /// has since torn down (reconnect races).
  struct RemoteIo {
    TcpConnection conn;
    FrameReader reader;
    FrameWriter out;
    bool write_blocked{false};
    bool gone{false};  // closed and deregistered (worker-thread flag)
    MonitorId id{0};
    std::uint64_t epoch{0};
    std::size_t loop{0};
  };

  struct Session {
    TcpConnection conn;
    FrameReader reader;
    FrameWriter out;  // reactor path: batched egress queue
    /// Multi-loop mode: the session's I/O, owned by loop `remote->loop`.
    /// While set, conn/reader/out above are moved-out husks.
    std::shared_ptr<RemoteIo> remote;
    std::uint64_t conn_epoch{0};  // bumps per (re)connect and teardown
    /// Encoded frames awaiting the end-of-turn batch post to the owner loop.
    std::vector<std::vector<std::byte>> pending_egress;
    MonitorLiveness state{MonitorLiveness::kActive};
    bool done{false};
    bool connected{true};
    bool write_blocked{false};  // EPOLLOUT armed, waiting for drain
    bool dirty{false};          // queued frames awaiting post-dispatch flush
    std::int64_t last_seen_ms{0};
    std::int64_t suspect_since_ms{0};
    /// Freshest PollResponse per task (stale fallback).
    std::map<TaskId, double> last_values;
    // Shard sessions (bound via ShardHello): the aggregator's downstream
    // monitor count is its weight in threshold/allowance splits.
    bool shard{false};
    std::uint32_t weight{1};
    std::int64_t last_summary_ms{-1};  // -1: no ShardSummary yet
  };

  struct PendingConn {  // accepted, Hello not yet seen
    TcpConnection conn;
    FrameReader reader;
    std::int64_t since_ms{0};
  };

  /// Everything the coordinator tracks about one live task beyond the
  /// registry record: the per-monitor allowance split, its allocator, and
  /// the task's in-flight poll / stats-report state.
  struct TaskRuntime {
    control::TaskRecord record{};
    std::unique_ptr<AllowanceAllocator> allocator;
    std::map<MonitorId, double> allowance;

    // Global-poll state (one in-flight poll per task).
    std::optional<std::uint64_t> active_poll;
    Tick active_poll_tick{0};
    std::map<MonitorId, double> poll_values;
    std::int64_t poll_started_ms{0};
    Reactor::TimerId poll_timer{0};         // reactor path: timeout timer
    std::optional<Tick> pending_poll_tick;  // violation before full house

    // Stats-report state.
    std::map<MonitorId, CoordStats> pending_stats;
  };

  void handle_message(MonitorId id, Session& session, const Message& message);
  /// Binds a pending connection to a session. `shard`/`weight` come from a
  /// ShardHello (an aggregator announcing its downstream monitor count);
  /// plain Hello binds a weight-1 monitor session.
  void bind_session(PendingConn&& pending, const Hello& hello,
                    bool shard = false, std::uint32_t weight = 1);
  /// Answers a StatsRequest on a (pre-Hello) connection with one StatsReply;
  /// the caller then drops the connection — stats clients are not monitors.
  void serve_stats(TcpConnection& conn, const StatsRequest& request);
  /// Answers AddTask/RemoveTask/UpdateTask/ListTasks on a (pre-Hello)
  /// connection; like serve_stats the caller drops the connection after.
  void serve_control(TcpConnection& conn, const Message& request);
  ControlReply apply_add(const AddTask& request);
  ControlReply apply_update(const UpdateTask& request);
  ControlReply apply_remove(const RemoveTask& request);
  /// Applies a task's new error budget *in place*: rescales the live
  /// allowance split proportionally and pushes allowance frames, without a
  /// registry epoch bump or TaskAttach churn (UpdateTask would restart every
  /// downstream sampler). Budgets are volatile — the root re-pushes them
  /// after every reallocation round — so the durable registry keeps the
  /// boot-time budget.
  ControlReply apply_shard_allowance(const ShardAllowance& request);
  TaskListReply build_task_list() const;
  /// Journals the op (durable mode) and records the trace event.
  void persist_and_trace(const control::RegistryOp& op);
  /// Installs runtime state for a (new or restored) registry record: even
  /// allowance split over the expected fleet, fresh allocator.
  TaskRuntime& install_task_runtime(const control::TaskRecord& record);
  TaskAttach make_attach(const TaskRuntime& rt, MonitorId id) const;
  void push_attach_all(const TaskRuntime& rt);

  // Event loops: run() picks per options_.poll_loop / VOLLEY_POLL_LOOP.
  void run_poll_loop();  // the legacy poll(2) loop, preserved verbatim
  void run_reactor();

  // Reactor-path plumbing.
  void reactor_on_accept();
  void reactor_on_pending(int fd, std::uint32_t events);
  void reactor_on_session(MonitorId id, std::uint32_t events);
  void flush_session(MonitorId id, Session& session);
  void flush_dirty();

  // Multi-loop plumbing (DESIGN.md §14). Home-thread side:
  /// Moves a freshly bound session's conn/reader onto its (sticky) owner
  /// loop and posts the fd registration there.
  void install_remote(MonitorId id, Session& session);
  /// Posts teardown of the session's RemoteIo to its owner loop and bumps
  /// conn_epoch so in-flight ingress from the old connection is dropped.
  void detach_remote(Session& session);
  /// Applies a worker's decoded ingress batch (liveness refresh + protocol
  /// handlers); drops the batch when `epoch` is stale.
  void home_ingress(MonitorId id, std::uint64_t epoch,
                    std::vector<Message>& batch);
  /// A worker saw the peer vanish (fd already closed worker-side).
  void home_peer_gone(MonitorId id, std::uint64_t epoch);
  // Worker-thread side (owner loop only):
  void remote_on_event(const std::shared_ptr<RemoteIo>& io,
                       std::uint32_t events);
  void remote_flush(const std::shared_ptr<RemoteIo>& io);
  void remote_close(const std::shared_ptr<RemoteIo>& io);
  void liveness_sweep();
  /// (Re)arms the single coalesced liveness timer at the earliest
  /// suspect/dead deadline across all sessions.
  void schedule_liveness_timer();
  void schedule_pending_timer();
  void schedule_idle_timer();

  void start_poll(TaskId task, TaskRuntime& rt, Tick tick);
  void check_poll_completion(TaskId task, TaskRuntime& rt);
  void check_all_poll_completions();
  void finish_poll(TaskId task, TaskRuntime& rt);
  void maybe_reallocate(TaskId task, TaskRuntime& rt);
  void maybe_reallocate_all();
  void mark_suspect(MonitorId id, Session& session);
  void declare_dead(MonitorId id, Session& session);
  void redistribute_and_push();
  void disconnect_session(MonitorId id, Session& session);
  void broadcast(const Message& message);
  bool send_to(MonitorId id, Session& session, const Message& message);
  bool all_joined() const { return sessions_.size() >= options_.monitors; }
  std::size_t finished_sessions() const;
  /// Fleet weight: total_weight when configured (root over shards), else
  /// the expected monitor count (flat fleet, every session weighs 1).
  std::size_t total_weight() const {
    return options_.total_weight != 0 ? options_.total_weight
                                      : options_.monitors;
  }
  std::uint32_t session_weight(MonitorId id) const;
  /// The task's allowance slice for one session: err · w/W (w = 1 flat).
  double weighted_share(const TaskRuntime& rt, MonitorId id) const;

  CoordinatorNodeOptions options_;
  TcpListener listener_;
  std::map<MonitorId, Session> sessions_;
  std::vector<PendingConn> pending_;  // legacy loop's pre-Hello connections

  ReactorPool pool_;
  Reactor& reactor_{pool_.loop(0)};  // the home loop, run()'s thread
  bool reactor_mode_{false};  // set for run()'s lifetime on the reactor path
  bool multi_loop_{false};    // reactor path with pool_.size() > 1
  /// Sticky session -> owner-loop map; entries are never overwritten (the
  /// no-migration invariant) and survive reconnects.
  std::map<MonitorId, std::size_t> session_loop_;
  std::map<int, PendingConn> reactor_pending_;  // keyed by fd (stable refs)
  std::vector<MonitorId> dirty_sessions_;
  std::int64_t last_activity_ms_{0};
  bool idle_abort_{false};
  Reactor::TimerId liveness_timer_{0};
  bool liveness_timer_armed_{false};
  std::int64_t liveness_timer_due_{0};
  Reactor::TimerId pending_timer_{0};
  bool pending_timer_armed_{false};

  control::TaskRegistry registry_;
  std::unique_ptr<control::RegistryStore> store_;
  control::RegistryLoadStats registry_load_stats_;
  std::map<TaskId, TaskRuntime> tasks_;

  std::uint64_t next_poll_id_{1};  // unique across tasks

  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> loop_wakeups_{0};
  std::atomic<std::int64_t> messages_received_{0};
  mutable std::mutex poll_settle_mu_;
  std::vector<double> poll_settle_ms_;
  std::int64_t global_polls_{0};
  std::int64_t reallocations_{0};
  std::vector<GlobalAlert> alerts_;
  NetFaultStats fault_stats_;
  std::map<MonitorId, std::int64_t> reported_ops_;

  /// Per-task upstream export, fed from run()'s thread (finish_poll,
  /// maybe_reallocate) and drained by an embedding AggregatorNode's
  /// upstream leg — the only cross-thread state beyond the atomics above.
  struct ShardExport {
    double r_sum{0.0};
    double e_sum{0.0};
    std::int64_t observations{0};
    double budget{0.0};
    double last_aggregate{0.0};
  };
  mutable std::mutex shard_export_mu_;
  std::map<TaskId, ShardExport> shard_export_;
};

}  // namespace volley::net
