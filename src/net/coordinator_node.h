// A runnable Volley coordinator speaking the wire protocol over TCP.
//
// The coordinator accepts the expected number of monitors, then runs a
// poll(2)-based event loop:
//  * LocalViolation  -> start a global poll (coincident violations while a
//    poll is in flight are absorbed by that poll, as in the paper: one
//    global poll answers "is the global condition violated right now");
//  * PollResponse    -> when every monitor answered, aggregate and compare
//    against the global threshold T; record a state alert if exceeded;
//  * StatsReport     -> once all monitors reported, reallocate the error
//    allowance (even or adaptive scheme) and push AllowanceUpdates;
//  * Bye             -> when all monitors said goodbye, broadcast Shutdown
//    and return.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "core/error_allocation.h"
#include "net/framing.h"
#include "net/messages.h"
#include "net/socket.h"

namespace volley::net {

struct CoordinatorNodeOptions {
  std::uint16_t port{0};  // 0 = pick a free port; read back via port()
  std::size_t monitors{1};
  double global_threshold{0.0};
  double error_allowance{0.01};
  bool adaptive_allocation{true};
  int poll_timeout_ms{1000};   // give up on unreachable monitors
  int idle_timeout_ms{30000};  // abort a silent session (deadlock guard)
};

struct GlobalAlert {
  Tick tick{0};
  double value{0.0};
};

class CoordinatorNode {
 public:
  explicit CoordinatorNode(const CoordinatorNodeOptions& options);

  /// The bound port (call after construction; useful with port = 0).
  std::uint16_t port() const { return listener_.port(); }

  /// Blocking: accepts monitors, runs the session, shuts monitors down.
  void run();

  // Results, valid after run() returns.
  std::int64_t global_polls() const { return global_polls_; }
  const std::vector<GlobalAlert>& alerts() const { return alerts_; }
  std::int64_t reallocations() const { return reallocations_; }
  /// Per-monitor op totals from Bye messages (monitor id -> ops).
  const std::map<MonitorId, std::int64_t>& reported_ops() const {
    return reported_ops_;
  }

 private:
  struct Session {
    TcpConnection conn;
    FrameReader reader;
    std::optional<MonitorId> id;
    bool done{false};
  };

  void handle_message(Session& session, const Message& message);
  void start_poll(Tick tick);
  void finish_poll();
  void maybe_reallocate();
  void broadcast(const Message& message);
  bool send_to(Session& session, const Message& message);

  CoordinatorNodeOptions options_;
  TcpListener listener_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::unique_ptr<AllowanceAllocator> allocator_;
  std::vector<double> allocation_;

  // Global-poll state.
  std::uint64_t next_poll_id_{1};
  std::optional<std::uint64_t> active_poll_;
  Tick active_poll_tick_{0};
  std::map<MonitorId, double> poll_values_;
  std::int64_t poll_started_ms_{0};

  // Stats-report state.
  std::map<MonitorId, CoordStats> pending_stats_;

  std::int64_t global_polls_{0};
  std::int64_t reallocations_{0};
  std::vector<GlobalAlert> alerts_;
  std::map<MonitorId, std::int64_t> reported_ops_;
  std::size_t done_count_{0};
};

}  // namespace volley::net
