// ReactorPool — N event loops in one process, with cross-loop task passing.
//
// Loop 0 is the *home* loop: it belongs to the thread that owns the pool
// (the node's run() thread) and is never driven by the pool itself — the
// owner keeps calling loop(0).run_once() exactly as it did with a lone
// Reactor, interleaved with drain_tasks(0). Loops 1..N-1 are *worker*
// loops, each pinned to one thread spawned by start(); a worker's turn is
// drain-tasks → run_once, forever, plus one final drain after the stop
// flag so no posted task is ever dropped.
//
// Sharding model (DESIGN.md §14): a session's fds and timers live on
// exactly one loop for its whole life — the loop touches them, nobody
// else does. Cross-loop work travels through post(): an MPSC deque per
// loop, mutex-guarded, whose enqueue kicks the target loop's eventfd only
// when the queue was empty (a non-empty queue already has a wakeup in
// flight or a drain underway that will take the new task too — no lost
// wakeups). The mutex serializes enqueues, so tasks from one producer run
// in the order it posted them (FIFO per producer; pinned by
// test_reactor's PoolContention).
//
// size()==1 degenerates to exactly the single-Reactor world: no threads,
// next_loop() always 0, post(0,·) is just a deferred call on the home
// turn. VOLLEY_NET_THREADS (default 1) picks the size at node
// construction, same escape-hatch discipline as VOLLEY_POLL_LOOP.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/reactor.h"

namespace volley::net {

/// VOLLEY_NET_THREADS (>=1; unset/invalid -> 1): total loop count for
/// nodes that shard sessions across loops.
std::size_t net_threads_from_env();

/// Tri-state per-node override, same shape as resolve_poll_loop:
/// negative = follow VOLLEY_NET_THREADS, otherwise the value itself
/// (clamped to >= 1).
std::size_t resolve_net_threads(int override_count);

class ReactorPool {
 public:
  using Task = std::function<void()>;

  /// `n_loops` reactors (>=1), all on the same backend; `uring_override`
  /// is forwarded to resolve_backend (benches force both backends in one
  /// process).
  explicit ReactorPool(std::size_t n_loops, int uring_override = -1);
  ~ReactorPool();
  ReactorPool(const ReactorPool&) = delete;
  ReactorPool& operator=(const ReactorPool&) = delete;

  std::size_t size() const { return loops_.size(); }
  Reactor& loop(std::size_t i) { return *loops_[i]; }
  ReactorBackend backend() const { return loops_[0]->backend(); }

  /// Worker loops (1..N-1) start running on their own threads. No-op when
  /// size()==1. The home loop stays the caller's to drive.
  void start();

  /// Stops the workers: each drains its queue once more after observing
  /// the flag, then joins. Idempotent.
  void stop();

  bool running() const { return !threads_.empty(); }

  /// Enqueues `task` for `loop_index`'s thread; runs between that loop's
  /// reactor turns, in FIFO order per producer. Safe from any thread.
  /// Tasks for the home loop run when the owner calls drain_tasks(0).
  void post(std::size_t loop_index, Task task);

  /// Runs every task currently queued for `loop_index`. Call only from
  /// the thread that owns that loop (the pool owner for 0; workers call
  /// it themselves). Returns the number of tasks run.
  std::size_t drain_tasks(std::size_t loop_index);

  /// Next worker loop, round-robin (1..N-1); 0 when there are no workers.
  /// Sessions land here at accept time and stay for life.
  std::size_t next_loop();

  /// eventfd-kicks every loop (stop paths; home included so the owner's
  /// run_once returns promptly).
  void wakeup_all();

  /// Registers per-loop gauges (volley_reactor_loop<i>_*) for all loops
  /// in the caller's current metrics registry. Call before start().
  void enable_loop_stats();

 private:
  struct TaskQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void run_worker(std::size_t loop_index);

  std::vector<std::unique_ptr<Reactor>> loops_;
  std::vector<std::unique_ptr<TaskQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::size_t rr_next_{1};
};

}  // namespace volley::net
