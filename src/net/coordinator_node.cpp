#include "net/coordinator_node.h"

#include <poll.h>

#include <array>
#include <chrono>
#include <stdexcept>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"

namespace volley::net {

namespace {
std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct NetCoordinatorMetrics {
  obs::Counter* heartbeats;
  obs::Counter* suspects;
  obs::Counter* deaths;
  obs::Counter* recoveries;
  obs::Counter* stale_polls;
  obs::Counter* alerts;
  obs::Counter* stats_requests;

  static NetCoordinatorMetrics make(obs::MetricsRegistry& m) {
    return NetCoordinatorMetrics{
        &m.counter("volley_net_heartbeats_total",
                   "Monitor heartbeats received and acked"),
        &m.counter("volley_net_suspects_total",
                   "Active -> Suspect liveness transitions"),
        &m.counter("volley_net_deaths_total",
                   "Suspect -> Dead liveness transitions"),
        &m.counter("volley_net_recoveries_total",
                   "Suspect/Dead -> Active liveness transitions"),
        &m.counter("volley_net_stale_polls_total",
                   "Global polls settled with at least one stale value"),
        &m.counter("volley_net_alerts_total",
                   "State alerts raised by the wire coordinator"),
        &m.counter("volley_net_stats_requests_total",
                   "StatsRequest introspection queries served"),
    };
  }

  static const NetCoordinatorMetrics& get() {
    return obs::scoped_handles(&make);
  }
};

/// Liveness states as recorded in kLivenessTransition trace events.
double liveness_code(MonitorLiveness s) {
  switch (s) {
    case MonitorLiveness::kActive:
      return 0.0;
    case MonitorLiveness::kSuspect:
      return 1.0;
    case MonitorLiveness::kDead:
      return 2.0;
  }
  return -1.0;
}
}  // namespace

CoordinatorNode::CoordinatorNode(const CoordinatorNodeOptions& options)
    : options_(options), listener_(options.port) {
  if (options.monitors == 0)
    throw std::invalid_argument("CoordinatorNode: monitors > 0");
  if (options.heartbeat_timeout_ms <= 0)
    throw std::invalid_argument("CoordinatorNode: heartbeat_timeout_ms > 0");
  if (options.staleness_bound_ms <= 0)
    throw std::invalid_argument("CoordinatorNode: staleness_bound_ms > 0");
  if (options.adaptive_allocation) {
    allocator_ = std::make_unique<AdaptiveAllocation>();
  } else {
    allocator_ = std::make_unique<EvenAllocation>();
  }
  listener_.set_nonblocking(true);
}

bool CoordinatorNode::send_to(MonitorId id, Session& session,
                              const Message& message) {
  if (!session.connected) return false;
  const auto payload = encode(message);
  if (session.conn.send_all(frame_payload(payload))) return true;
  disconnect_session(id, session);
  return false;
}

void CoordinatorNode::broadcast(const Message& message) {
  for (auto& [id, session] : sessions_) {
    if (session.connected) send_to(id, session, message);
  }
}

std::size_t CoordinatorNode::finished_sessions() const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (session.done || session.state == MonitorLiveness::kDead) ++n;
  }
  return n;
}

void CoordinatorNode::start_poll(Tick tick) {
  active_poll_ = next_poll_id_++;
  active_poll_tick_ = tick;
  poll_values_.clear();
  poll_started_ms_ = now_ms();
  ++global_polls_;
  broadcast(PollRequest{tick, *active_poll_});
  check_poll_completion();  // every reachable monitor may already be gone
}

void CoordinatorNode::check_poll_completion() {
  if (!active_poll_) return;
  for (const auto& [id, session] : sessions_) {
    if (!session.connected || session.state != MonitorLiveness::kActive)
      continue;
    if (!poll_values_.count(id)) return;  // still waiting on a live monitor
  }
  finish_poll();
}

void CoordinatorNode::finish_poll() {
  double sum = 0.0;
  bool stale = false;
  for (const auto& [id, value] : poll_values_) sum += value;
  for (const auto& [id, session] : sessions_) {
    if (poll_values_.count(id)) continue;
    if (session.state == MonitorLiveness::kDead) continue;  // excluded
    if (session.has_value) {
      // Suspect or unreachable: settle with the last known value, exactly
      // the simulator's poll_response_loss fallback.
      sum += session.last_value;
      stale = true;
      ++fault_stats_.stale_values;
    }
  }
  if (stale) {
    ++fault_stats_.stale_polls;
    NetCoordinatorMetrics::get().stale_polls->inc();
  }
  if (sum > options_.global_threshold) {
    alerts_.push_back(GlobalAlert{active_poll_tick_, sum});
    NetCoordinatorMetrics::get().alerts->inc();
    obs::trace().record(obs::TraceKind::kAlertRaised, active_poll_tick_, 0,
                        sum, options_.global_threshold);
  }
  active_poll_.reset();
  poll_values_.clear();
}

void CoordinatorNode::maybe_reallocate() {
  // Reallocation needs a StatsReport from every *reachable* monitor: dead
  // monitors are excluded (their allowance was reclaimed) and done monitors
  // no longer report.
  std::vector<MonitorId> eligible;
  for (const auto& [id, session] : sessions_) {
    if (session.done || session.state == MonitorLiveness::kDead) continue;
    eligible.push_back(id);
  }
  if (eligible.empty() || !all_joined()) return;
  for (MonitorId id : eligible) {
    if (!pending_stats_.count(id)) return;
  }
  std::vector<double> current;
  std::vector<CoordStats> stats;
  current.reserve(eligible.size());
  stats.reserve(eligible.size());
  for (MonitorId id : eligible) {
    current.push_back(allowance_[id]);
    stats.push_back(pending_stats_[id]);
  }
  const double budget = options_.error_allowance;
  const auto next = allocator_->allocate(budget, current, stats);
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    allowance_[eligible[i]] = next[i];
    auto& session = sessions_.at(eligible[i]);
    if (session.connected) {
      send_to(eligible[i], session, AllowanceUpdate{next[i]});
    }
  }
  pending_stats_.clear();
  ++reallocations_;
}

void CoordinatorNode::mark_suspect(MonitorId id, Session& session) {
  if (session.state != MonitorLiveness::kActive || session.done) return;
  session.state = MonitorLiveness::kSuspect;
  session.suspect_since_ms = now_ms();
  ++fault_stats_.suspected;
  NetCoordinatorMetrics::get().suspects->inc();
  obs::trace().record(obs::TraceKind::kLivenessTransition, 0, id,
                      liveness_code(MonitorLiveness::kSuspect),
                      liveness_code(MonitorLiveness::kActive));
  VLOG_WARN("coordinator", "monitor ", id, " is suspect");
  check_poll_completion();
}

void CoordinatorNode::declare_dead(MonitorId id, Session& session) {
  session.state = MonitorLiveness::kDead;
  ++fault_stats_.declared_dead;
  NetCoordinatorMetrics::get().deaths->inc();
  obs::trace().record(obs::TraceKind::kLivenessTransition, 0, id,
                      liveness_code(MonitorLiveness::kDead),
                      liveness_code(MonitorLiveness::kSuspect));
  VLOG_WARN("coordinator", "monitor ", id,
            " declared dead; reclaiming its allowance");
  pending_stats_.erase(id);
  redistribute_and_push();
  check_poll_completion();
  maybe_reallocate();
}

void CoordinatorNode::redistribute_and_push() {
  // Zero the dead monitors' shares and rescale the survivors to the full
  // task allowance (core/error_allocation semantics).
  std::vector<MonitorId> ids;
  std::vector<double> current;
  std::vector<std::size_t> excluded;
  for (const auto& [id, session] : sessions_) {
    if (session.state == MonitorLiveness::kDead) excluded.push_back(ids.size());
    ids.push_back(id);
    current.push_back(allowance_[id]);
  }
  if (ids.empty() || excluded.size() == ids.size()) return;
  const auto next =
      redistribute_allowance(options_.error_allowance, current, excluded);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    allowance_[ids[i]] = next[i];
    auto& session = sessions_.at(ids[i]);
    if (session.connected && session.state == MonitorLiveness::kActive &&
        !session.done) {
      send_to(ids[i], session, AllowanceUpdate{next[i]});
    }
  }
  ++fault_stats_.allowance_reclaims;
}

void CoordinatorNode::serve_stats(TcpConnection& conn,
                                  const StatsRequest& request) {
  NetCoordinatorMetrics::get().stats_requests->inc();
  StatsReply reply;
  reply.global_polls = global_polls_;
  reply.reallocations = reallocations_;
  reply.alerts = static_cast<std::int64_t>(alerts_.size());
  reply.metrics = (request.flags & StatsRequest::kMetricsJson)
                      ? obs::metrics().to_json()
                      : obs::metrics().to_prometheus();
  if (request.flags & StatsRequest::kIncludeTrace) {
    // Newest events only: ~120 bytes/line keeps 2048 lines well under the
    // 1 MiB frame cap even with pathological payloads.
    reply.trace_jsonl = obs::trace().to_jsonl(2048);
  }
  conn.send_all(frame_payload(encode(Message{reply})));
}

void CoordinatorNode::disconnect_session(MonitorId id, Session& session) {
  session.conn.close();
  session.connected = false;
  if (!session.done) mark_suspect(id, session);
}

void CoordinatorNode::bind_session(PendingConn&& pending, const Hello& hello) {
  const MonitorId id = hello.monitor;
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    if (sessions_.size() >= options_.monitors) {
      VLOG_WARN("coordinator", "unexpected extra monitor ", id,
                "; dropping connection");
      return;
    }
    Session session;
    session.conn = std::move(pending.conn);
    session.reader = std::move(pending.reader);
    session.last_seen_ms = now_ms();
    it = sessions_.emplace(id, std::move(session)).first;
    allowance_.emplace(id, options_.error_allowance /
                               static_cast<double>(options_.monitors));
    if (hello.resume) {
      // A monitor resuming against a restarted coordinator: resync it.
      ++fault_stats_.reconnects;
      send_to(id, it->second, AllowanceUpdate{allowance_[id]});
    }
    if (all_joined() && pending_poll_tick_ && !active_poll_) {
      const Tick tick = *pending_poll_tick_;
      pending_poll_tick_.reset();
      start_poll(tick);
    }
  } else {
    Session& session = it->second;
    const bool was_dead = session.state == MonitorLiveness::kDead;
    const bool was_down = session.state != MonitorLiveness::kActive;
    session.conn.close();
    session.conn = std::move(pending.conn);
    session.reader = std::move(pending.reader);
    session.connected = true;
    session.state = MonitorLiveness::kActive;
    session.last_seen_ms = now_ms();
    ++fault_stats_.reconnects;
    if (was_down) {
      ++fault_stats_.recovered;
      NetCoordinatorMetrics::get().recoveries->inc();
      obs::trace().record(
          obs::TraceKind::kLivenessTransition, 0, id,
          liveness_code(MonitorLiveness::kActive),
          liveness_code(was_dead ? MonitorLiveness::kDead
                                 : MonitorLiveness::kSuspect));
    }
    if (was_dead) {
      // Re-admit: the monitor re-enters at the allowance floor and earns
      // its share back through StatsReports.
      VLOG_INFO("coordinator", "dead monitor ", id, " rejoined");
      redistribute_and_push();
    }
    send_to(id, session, AllowanceUpdate{allowance_[id]});  // resync handshake
  }
  // Frames that followed Hello in the same burst are already buffered.
  Session& session = it->second;
  while (auto payload = session.reader.next()) {
    const auto message = decode(*payload);
    if (!message) continue;
    handle_message(id, session, *message);
  }
}

void CoordinatorNode::handle_message(MonitorId id, Session& session,
                                     const Message& message) {
  if (session.state == MonitorLiveness::kSuspect) {
    // Any traffic from a suspect proves it alive again.
    session.state = MonitorLiveness::kActive;
    ++fault_stats_.recovered;
    NetCoordinatorMetrics::get().recoveries->inc();
    obs::trace().record(obs::TraceKind::kLivenessTransition, 0, id,
                        liveness_code(MonitorLiveness::kActive),
                        liveness_code(MonitorLiveness::kSuspect));
  }
  if (const auto* heartbeat = std::get_if<Heartbeat>(&message)) {
    ++fault_stats_.heartbeats;
    NetCoordinatorMetrics::get().heartbeats->inc();
    send_to(id, session, HeartbeatAck{heartbeat->seq});
    return;
  }
  if (std::get_if<Hello>(&message)) {
    return;  // duplicate Hello on an already-bound session
  }
  if (const auto* violation = std::get_if<LocalViolation>(&message)) {
    // One poll at a time: coincident local violations are answered by the
    // in-flight poll's aggregate. Before the full house joined, remember
    // the violation and poll once everyone is in.
    if (!all_joined()) {
      pending_poll_tick_ = violation->tick;
    } else if (!active_poll_) {
      start_poll(violation->tick);
    }
    return;
  }
  if (const auto* response = std::get_if<PollResponse>(&message)) {
    session.last_value = response->value;
    session.has_value = true;
    if (active_poll_ && response->poll_id == *active_poll_) {
      poll_values_[response->monitor] = response->value;
      check_poll_completion();
    }
    return;
  }
  if (const auto* stats = std::get_if<StatsReport>(&message)) {
    CoordStats s;
    s.avg_gain = stats->avg_gain;
    s.avg_allowance = stats->avg_allowance;
    s.observations = stats->observations;
    pending_stats_[stats->monitor] = s;
    maybe_reallocate();
    return;
  }
  if (const auto* bye = std::get_if<Bye>(&message)) {
    if (!session.done) {
      session.done = true;
      reported_ops_[bye->monitor] = bye->scheduled_ops + bye->forced_ops;
    }
    return;
  }
  (void)id;
}

void CoordinatorNode::run() {
  std::array<std::byte, 8192> buf;
  std::int64_t last_activity_ms = now_ms();

  while (!stop_.load()) {
    if (all_joined() && finished_sessions() >= options_.monitors) break;

    // fds: [0] listener, then pending connections, then live sessions.
    std::vector<pollfd> fds;
    std::vector<MonitorId> session_order;
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    const std::size_t pending_count = pending_.size();
    for (const auto& pending : pending_) {
      fds.push_back(pollfd{pending.conn.fd(), POLLIN, 0});
    }
    for (const auto& [id, session] : sessions_) {
      if (!session.connected) continue;
      fds.push_back(pollfd{session.conn.fd(), POLLIN, 0});
      session_order.push_back(id);
    }
    const int ready = ::poll(fds.data(), fds.size(), 20);
    if (ready < 0 && errno != EINTR) break;
    const std::int64_t now = now_ms();

    // Pending connections: wait for Hello, then bind to a session.
    std::vector<PendingConn> still_pending;
    for (std::size_t i = 0; i < pending_count; ++i) {
      PendingConn& pending = pending_[i];
      bool drop = false;
      bool bound = false;
      if (fds[1 + i].revents & (POLLIN | POLLHUP | POLLERR)) {
        const auto n = pending.conn.recv_some(buf);
        if (n && *n == 0) drop = true;
        if (n && *n > 0) {
          last_activity_ms = now;
          pending.reader.feed(std::span<const std::byte>(buf.data(), *n));
          while (auto payload = pending.reader.next()) {
            const auto message = decode(*payload);
            if (!message) continue;
            if (const auto* hello = std::get_if<Hello>(&*message)) {
              bind_session(std::move(pending), *hello);
              bound = true;
              break;
            }
            if (const auto* stats = std::get_if<StatsRequest>(&*message)) {
              // Introspection client (e.g. tools/volley_stats): answer and
              // drop; never a monitor.
              serve_stats(pending.conn, *stats);
              drop = true;
              break;
            }
            VLOG_WARN("coordinator", "dropping pre-Hello frame");
          }
        }
      }
      // A connection silent for a whole heartbeat timeout never said Hello.
      if (!bound && !drop &&
          now - pending.since_ms > options_.heartbeat_timeout_ms) {
        drop = true;
      }
      if (!bound && !drop) still_pending.push_back(std::move(pending));
    }
    pending_ = std::move(still_pending);

    // New connections (initial joins and reconnects alike); they are polled
    // for their Hello from the next loop turn on.
    if (fds[0].revents & POLLIN) {
      while (auto conn = listener_.accept()) {
        conn->set_nonblocking(true);
        PendingConn pending;
        pending.conn = std::move(*conn);
        pending.since_ms = now;
        pending_.push_back(std::move(pending));
        last_activity_ms = now;
      }
    }

    // Live sessions.
    for (std::size_t i = 0; i < session_order.size(); ++i) {
      const auto revents = fds[1 + pending_count + i].revents;
      if (!(revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const MonitorId id = session_order[i];
      Session& session = sessions_.at(id);
      if (!session.connected) continue;
      const auto n = session.conn.recv_some(buf);
      if (!n) continue;
      if (*n == 0) {
        // Peer vanished. After Bye this is the normal end of a monitor;
        // mid-session it makes the monitor suspect (it may reconnect).
        disconnect_session(id, session);
        continue;
      }
      last_activity_ms = now;
      session.last_seen_ms = now;
      session.reader.feed(std::span<const std::byte>(buf.data(), *n));
      while (auto payload = session.reader.next()) {
        const auto message = decode(*payload);
        if (!message) {
          VLOG_WARN("coordinator", "dropping malformed frame");
          continue;
        }
        handle_message(id, session, *message);
      }
    }

    // Liveness deadlines: silent -> suspect -> dead.
    for (auto& [id, session] : sessions_) {
      if (session.done) continue;
      if (session.state == MonitorLiveness::kActive &&
          now - session.last_seen_ms > options_.heartbeat_timeout_ms) {
        mark_suspect(id, session);
      } else if (session.state == MonitorLiveness::kSuspect &&
                 now - session.suspect_since_ms >
                     options_.staleness_bound_ms) {
        declare_dead(id, session);
      }
    }

    // Poll timeout: settle with whatever arrived.
    if (active_poll_ &&
        now - poll_started_ms_ > options_.poll_timeout_ms) {
      VLOG_WARN("coordinator", "global poll timed out with ",
                poll_values_.size(), "/", options_.monitors, " responses");
      finish_poll();
    }
    // Idle guard: a fully silent session means lost monitors; bail out.
    if (now - last_activity_ms > options_.idle_timeout_ms) {
      VLOG_ERROR("coordinator", "session idle too long; aborting");
      break;
    }
  }

  // request_stop() simulates a crash: vanish without a Shutdown so monitors
  // exercise their reconnect path against a successor.
  if (!stop_.load()) broadcast(Shutdown{});
}

}  // namespace volley::net
