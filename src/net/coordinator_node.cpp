#include "net/coordinator_node.h"

#include <poll.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"

namespace volley::net {

namespace {
std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct NetCoordinatorMetrics {
  obs::Counter* heartbeats;
  obs::Counter* suspects;
  obs::Counter* deaths;
  obs::Counter* recoveries;
  obs::Counter* stale_polls;
  obs::Counter* alerts;
  obs::Counter* stats_requests;
  obs::Counter* control_requests;
  obs::Counter* registry_mutations;

  static NetCoordinatorMetrics make(obs::MetricsRegistry& m) {
    return NetCoordinatorMetrics{
        &m.counter("volley_net_heartbeats_total",
                   "Monitor heartbeats received and acked"),
        &m.counter("volley_net_suspects_total",
                   "Active -> Suspect liveness transitions"),
        &m.counter("volley_net_deaths_total",
                   "Suspect -> Dead liveness transitions"),
        &m.counter("volley_net_recoveries_total",
                   "Suspect/Dead -> Active liveness transitions"),
        &m.counter("volley_net_stale_polls_total",
                   "Global polls settled with at least one stale value"),
        &m.counter("volley_net_alerts_total",
                   "State alerts raised by the wire coordinator"),
        &m.counter("volley_net_stats_requests_total",
                   "StatsRequest introspection queries served"),
        &m.counter("volley_net_control_requests_total",
                   "Control-plane requests served (add/remove/update/list)"),
        &m.counter("volley_net_registry_mutations_total",
                   "Task registry mutations applied (add/update/remove)"),
    };
  }

  static const NetCoordinatorMetrics& get() {
    return obs::scoped_handles(&make);
  }
};

/// The allowance push for one session: monitors get AllowanceUpdate (their
/// sampler applies it directly); shard sessions get ShardAllowance (the
/// aggregator loops it back to its embedded coordinator's budget).
Message allowance_frame(bool shard, TaskId task, double value) {
  if (shard) return ShardAllowance{task, value};
  return AllowanceUpdate{value, task};
}

/// Liveness states as recorded in kLivenessTransition trace events.
double liveness_code(MonitorLiveness s) {
  switch (s) {
    case MonitorLiveness::kActive:
      return 0.0;
    case MonitorLiveness::kSuspect:
      return 1.0;
    case MonitorLiveness::kDead:
      return 2.0;
  }
  return -1.0;
}
}  // namespace

CoordinatorNode::CoordinatorNode(const CoordinatorNodeOptions& options)
    : options_(options),
      listener_(options.port),
      pool_(resolve_net_threads(options.net_threads), options.uring) {
  if (options.monitors == 0)
    throw std::invalid_argument("CoordinatorNode: monitors > 0");
  if (options.heartbeat_timeout_ms <= 0)
    throw std::invalid_argument("CoordinatorNode: heartbeat_timeout_ms > 0");
  if (options.staleness_bound_ms <= 0)
    throw std::invalid_argument("CoordinatorNode: staleness_bound_ms > 0");
  if (!options.registry_path.empty()) {
    store_ = std::make_unique<control::RegistryStore>(options.registry_path);
    registry_load_stats_ = store_->load(registry_);
    if (registry_load_stats_.had_snapshot || registry_load_stats_.journal_ops)
      VLOG_INFO("coordinator", "registry restored: ", registry_.size(),
                " task(s) at version ", registry_.version());
  }
  if (registry_.version() == 0) {
    // Fresh registry (no durable state): seed the boot task from the
    // command-line options. Monitors seed the same task 0 at epoch 1 from
    // their own options, so the attach push is a no-op for them.
    TaskSpec boot;
    boot.global_threshold = options.global_threshold;
    boot.error_allowance = options.error_allowance;
    const auto result = registry_.add(kBootTaskId, boot);
    if (!result.ok())
      throw std::invalid_argument("CoordinatorNode: invalid boot task: " +
                                  result.error);
    if (store_) store_->append(*result.op);
  }
  for (const auto& record : registry_.list()) install_task_runtime(record);
  listener_.set_nonblocking(true);
}

std::uint32_t CoordinatorNode::session_weight(MonitorId id) const {
  const auto it = sessions_.find(id);
  return it != sessions_.end() ? it->second.weight : 1;
}

double CoordinatorNode::weighted_share(const TaskRuntime& rt,
                                       MonitorId id) const {
  return rt.record.spec.error_allowance *
         static_cast<double>(session_weight(id)) /
         static_cast<double>(total_weight());
}

CoordinatorNode::TaskRuntime& CoordinatorNode::install_task_runtime(
    const control::TaskRecord& record) {
  TaskRuntime& rt = tasks_[record.id];
  rt.record = record;
  if (options_.adaptive_allocation) {
    rt.allocator = std::make_unique<AdaptiveAllocation>();
  } else {
    rt.allocator = std::make_unique<EvenAllocation>();
  }
  rt.allowance.clear();
  for (const auto& [id, session] : sessions_) {
    (void)session;
    rt.allowance.emplace(id, weighted_share(rt, id));
  }
  {
    std::lock_guard<std::mutex> lock(shard_export_mu_);
    shard_export_[record.id].budget = record.spec.error_allowance;
  }
  return rt;
}

TaskAttach CoordinatorNode::make_attach(const TaskRuntime& rt,
                                        MonitorId id) const {
  const TaskSpec& spec = rt.record.spec;
  TaskAttach attach;
  attach.task = rt.record.id;
  attach.epoch = rt.record.epoch;
  // The session's threshold slice T·w/W: a weight-1 monitor gets the flat
  // even split; a shard session gets the slice its subset sums to.
  attach.local_threshold = spec.global_threshold *
                           static_cast<double>(session_weight(id)) /
                           static_cast<double>(total_weight());
  const auto it = rt.allowance.find(id);
  attach.error_allowance = it != rt.allowance.end() ? it->second
                                                    : weighted_share(rt, id);
  attach.slack_ratio = spec.slack_ratio;
  attach.patience = spec.patience;
  attach.max_interval = spec.max_interval;
  attach.updating_period = spec.updating_period;
  return attach;
}

void CoordinatorNode::push_attach_all(const TaskRuntime& rt) {
  for (auto& [id, session] : sessions_) {
    if (session.connected && !session.done) {
      send_to(id, session, make_attach(rt, id));
    }
  }
}

bool CoordinatorNode::send_to(MonitorId id, Session& session,
                              const Message& message) {
  if (!session.connected) return false;
  const auto payload = encode(message);
  if (reactor_mode_) {
    if (multi_loop_) {
      // The session's FrameWriter lives on its owner loop; buffer the
      // encoded frame home-side and batch-post it at the end of this turn
      // (flush_dirty), so one turn's fan-out costs one task per loop.
      session.pending_egress.push_back(frame_payload(payload));
    } else {
      // Queue; frames coalesce into one writev at the next flush_dirty()
      // (or the EPOLLOUT drain if the kernel buffer is full). Peer loss
      // surfaces there or on the read side — never a blocking write here.
      session.out.enqueue(frame_payload(payload));
    }
    if (!session.dirty) {
      session.dirty = true;
      dirty_sessions_.push_back(id);
    }
    return true;
  }
  if (session.conn.send_all(frame_payload(payload))) return true;
  disconnect_session(id, session);
  return false;
}

void CoordinatorNode::broadcast(const Message& message) {
  for (auto& [id, session] : sessions_) {
    if (session.connected) send_to(id, session, message);
  }
}

std::size_t CoordinatorNode::finished_sessions() const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (session.done || session.state == MonitorLiveness::kDead) ++n;
  }
  return n;
}

void CoordinatorNode::start_poll(TaskId task, TaskRuntime& rt, Tick tick) {
  rt.active_poll = next_poll_id_++;
  rt.active_poll_tick = tick;
  rt.poll_values.clear();
  rt.poll_started_ms = now_ms();
  ++global_polls_;
  if (reactor_mode_) {
    // Timer-wheel deadline instead of the legacy per-turn scan. The
    // captured poll id guards against firing on a later poll of the same
    // task: finish_poll cancels, but a timer mid-dispatch can still run.
    const std::uint64_t poll_id = *rt.active_poll;
    rt.poll_timer =
        reactor_.add_timer(options_.poll_timeout_ms, [this, task, poll_id] {
          auto it = tasks_.find(task);
          if (it == tasks_.end()) return;
          TaskRuntime& rt2 = it->second;
          if (!rt2.active_poll || *rt2.active_poll != poll_id) return;
          VLOG_WARN("coordinator", "global poll for task ", task,
                    " timed out with ", rt2.poll_values.size(), "/",
                    options_.monitors, " responses");
          finish_poll(task, rt2);
        });
  }
  broadcast(PollRequest{tick, *rt.active_poll, task});
  check_poll_completion(task, rt);  // every reachable monitor may be gone
}

void CoordinatorNode::check_poll_completion(TaskId task, TaskRuntime& rt) {
  if (!rt.active_poll) return;
  for (const auto& [id, session] : sessions_) {
    if (!session.connected || session.state != MonitorLiveness::kActive)
      continue;
    if (!rt.poll_values.count(id)) return;  // waiting on a live monitor
  }
  finish_poll(task, rt);
}

void CoordinatorNode::check_all_poll_completions() {
  for (auto& [task, rt] : tasks_) check_poll_completion(task, rt);
}

void CoordinatorNode::finish_poll(TaskId task, TaskRuntime& rt) {
  double sum = 0.0;
  bool stale = false;
  for (const auto& [id, value] : rt.poll_values) sum += value;
  for (const auto& [id, session] : sessions_) {
    if (rt.poll_values.count(id)) continue;
    if (session.state == MonitorLiveness::kDead) continue;  // excluded
    const auto last = session.last_values.find(task);
    if (last != session.last_values.end()) {
      // Suspect or unreachable: settle with the last known value, exactly
      // the simulator's poll_response_loss fallback.
      sum += last->second;
      stale = true;
      ++fault_stats_.stale_values;
    }
  }
  if (stale) {
    ++fault_stats_.stale_polls;
    NetCoordinatorMetrics::get().stale_polls->inc();
  }
  const double threshold = rt.record.spec.global_threshold;
  if (sum > threshold) {
    alerts_.push_back(GlobalAlert{rt.active_poll_tick, sum, task});
    NetCoordinatorMetrics::get().alerts->inc();
    obs::trace().record(obs::TraceKind::kAlertRaised, rt.active_poll_tick,
                        task, sum, threshold);
    if (options_.on_alert) options_.on_alert(task, rt.active_poll_tick, sum);
  }
  {
    // Export the settled aggregate for an embedding aggregator's upstream
    // PollResponses (the root polls shards for their subset sums).
    std::lock_guard<std::mutex> lock(shard_export_mu_);
    shard_export_[task].last_aggregate = sum;
  }
  {
    std::lock_guard<std::mutex> lock(poll_settle_mu_);
    poll_settle_ms_.push_back(
        static_cast<double>(now_ms() - rt.poll_started_ms));
  }
  if (rt.poll_timer != 0) {
    reactor_.cancel_timer(rt.poll_timer);
    rt.poll_timer = 0;
  }
  rt.active_poll.reset();
  rt.poll_values.clear();
}

void CoordinatorNode::maybe_reallocate(TaskId task, TaskRuntime& rt) {
  // Reallocation needs a StatsReport from every *reachable* monitor: dead
  // monitors are excluded (their allowance was reclaimed) and done monitors
  // no longer report.
  std::vector<MonitorId> eligible;
  for (const auto& [id, session] : sessions_) {
    if (session.done || session.state == MonitorLiveness::kDead) continue;
    eligible.push_back(id);
  }
  if (eligible.empty() || !all_joined()) return;
  for (MonitorId id : eligible) {
    if (!rt.pending_stats.count(id)) return;
  }
  std::vector<double> current;
  std::vector<CoordStats> stats;
  current.reserve(eligible.size());
  stats.reserve(eligible.size());
  for (MonitorId id : eligible) {
    current.push_back(rt.allowance[id]);
    stats.push_back(rt.pending_stats[id]);
  }
  const double budget = rt.record.spec.error_allowance;
  const auto next = rt.allocator->allocate(budget, current, stats);
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    rt.allowance[eligible[i]] = next[i];
    auto& session = sessions_.at(eligible[i]);
    if (session.connected) {
      send_to(eligible[i], session,
              allowance_frame(session.shard, task, next[i]));
    }
  }
  {
    // Accumulate this round's (r, e) sums for the upstream ShardSummary:
    // the root runs the identical allocator over these per-shard sums.
    std::lock_guard<std::mutex> lock(shard_export_mu_);
    ShardExport& ex = shard_export_[task];
    for (const CoordStats& s : stats) {
      ex.r_sum += s.avg_gain;
      ex.e_sum += s.avg_allowance;
      ex.observations += s.observations;
    }
    ex.budget = budget;
  }
  rt.pending_stats.clear();
  ++reallocations_;
}

void CoordinatorNode::maybe_reallocate_all() {
  for (auto& [task, rt] : tasks_) maybe_reallocate(task, rt);
}

void CoordinatorNode::mark_suspect(MonitorId id, Session& session) {
  if (session.state != MonitorLiveness::kActive || session.done) return;
  session.state = MonitorLiveness::kSuspect;
  session.suspect_since_ms = now_ms();
  ++fault_stats_.suspected;
  NetCoordinatorMetrics::get().suspects->inc();
  obs::trace().record(obs::TraceKind::kLivenessTransition, 0, id,
                      liveness_code(MonitorLiveness::kSuspect),
                      liveness_code(MonitorLiveness::kActive));
  VLOG_WARN("coordinator", "monitor ", id, " is suspect");
  check_all_poll_completions();
  // The new suspect's dead-deadline may now be the earliest liveness event.
  if (reactor_mode_) schedule_liveness_timer();
}

void CoordinatorNode::declare_dead(MonitorId id, Session& session) {
  session.state = MonitorLiveness::kDead;
  ++fault_stats_.declared_dead;
  NetCoordinatorMetrics::get().deaths->inc();
  obs::trace().record(obs::TraceKind::kLivenessTransition, 0, id,
                      liveness_code(MonitorLiveness::kDead),
                      liveness_code(MonitorLiveness::kSuspect));
  VLOG_WARN("coordinator", "monitor ", id,
            " declared dead; reclaiming its allowance");
  for (auto& [task, rt] : tasks_) rt.pending_stats.erase(id);
  redistribute_and_push();
  check_all_poll_completions();
  maybe_reallocate_all();
}

void CoordinatorNode::redistribute_and_push() {
  // Zero the dead monitors' shares and rescale the survivors to each task's
  // full allowance (core/error_allocation semantics).
  bool redistributed = false;
  for (auto& [task, rt] : tasks_) {
    std::vector<MonitorId> ids;
    std::vector<double> current;
    std::vector<std::size_t> excluded;
    for (const auto& [id, session] : sessions_) {
      if (session.state == MonitorLiveness::kDead)
        excluded.push_back(ids.size());
      ids.push_back(id);
      current.push_back(rt.allowance[id]);
    }
    if (ids.empty() || excluded.size() == ids.size()) continue;
    const auto next = redistribute_allowance(rt.record.spec.error_allowance,
                                             current, excluded);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      rt.allowance[ids[i]] = next[i];
      auto& session = sessions_.at(ids[i]);
      if (session.connected && session.state == MonitorLiveness::kActive &&
          !session.done) {
        send_to(ids[i], session,
                allowance_frame(session.shard, task, next[i]));
      }
    }
    redistributed = true;
  }
  if (redistributed) ++fault_stats_.allowance_reclaims;
}

void CoordinatorNode::serve_stats(TcpConnection& conn,
                                  const StatsRequest& request) {
  NetCoordinatorMetrics::get().stats_requests->inc();
  StatsReply reply;
  reply.global_polls = global_polls_;
  reply.reallocations = reallocations_;
  reply.alerts = static_cast<std::int64_t>(alerts_.size());
  reply.metrics = (request.flags & StatsRequest::kMetricsJson)
                      ? obs::metrics().to_json()
                      : obs::metrics().to_prometheus();
  if (request.flags & StatsRequest::kIncludeTrace) {
    // Newest events only: ~120 bytes/line keeps 2048 lines well under the
    // 1 MiB frame cap even with pathological payloads.
    reply.trace_jsonl = obs::trace().to_jsonl(2048);
  }
  if (request.flags & StatsRequest::kIncludeShards) {
    const std::int64_t now = now_ms();
    const auto boot = tasks_.find(kBootTaskId);
    for (const auto& [id, session] : sessions_) {
      if (!session.shard) continue;
      ShardStatsRow row;
      row.shard = id;
      row.monitors = session.weight;
      if (boot != tasks_.end()) {
        const auto a = boot->second.allowance.find(id);
        if (a != boot->second.allowance.end()) row.allowance = a->second;
      }
      row.last_summary_age_ms =
          session.last_summary_ms < 0 ? -1 : now - session.last_summary_ms;
      reply.shards.push_back(row);
    }
  }
  conn.send_all(frame_payload(encode(Message{reply})));
}

void CoordinatorNode::persist_and_trace(const control::RegistryOp& op) {
  if (store_) {
    store_->append(op);
    store_->maybe_compact(registry_);
  }
  NetCoordinatorMetrics::get().registry_mutations->inc();
  obs::trace().record(obs::TraceKind::kTaskRegistryChange, 0, op.record.id,
                      static_cast<double>(op.record.epoch),
                      static_cast<double>(op.kind));
}

ControlReply CoordinatorNode::apply_add(const AddTask& request) {
  const auto result = registry_.add(request.task, request.spec);
  if (result.ok()) {
    persist_and_trace(*result.op);
    TaskRuntime& rt = install_task_runtime(result.op->record);
    push_attach_all(rt);
    VLOG_INFO("coordinator", "task ", request.task, " added at epoch ",
              result.epoch);
  }
  return ControlReply{result.status, result.epoch, registry_.version(),
                      result.error};
}

ControlReply CoordinatorNode::apply_update(const UpdateTask& request) {
  const auto result = registry_.update(request.task, request.spec);
  if (result.ok()) {
    persist_and_trace(*result.op);
    // Re-run the allowance allocation for the task: the new spec may carry
    // a different budget, so the split restarts even and re-adapts from
    // the monitors' next StatsReports.
    TaskRuntime& rt = install_task_runtime(result.op->record);
    rt.pending_stats.clear();
    push_attach_all(rt);
    VLOG_INFO("coordinator", "task ", request.task, " updated to epoch ",
              result.epoch);
  }
  return ControlReply{result.status, result.epoch, registry_.version(),
                      result.error};
}

ControlReply CoordinatorNode::apply_remove(const RemoveTask& request) {
  const auto result = registry_.remove(request.task);
  if (result.ok()) {
    persist_and_trace(*result.op);
    tasks_.erase(request.task);
    {
      std::lock_guard<std::mutex> lock(shard_export_mu_);
      shard_export_.erase(request.task);
    }
    broadcast(TaskDetach{request.task, result.epoch});
    VLOG_INFO("coordinator", "task ", request.task, " removed at epoch ",
              result.epoch);
  }
  return ControlReply{result.status, result.epoch, registry_.version(),
                      result.error};
}

ControlReply CoordinatorNode::apply_shard_allowance(
    const ShardAllowance& request) {
  const auto it = tasks_.find(request.task);
  if (it == tasks_.end()) {
    return ControlReply{control::ControlStatus::kNotFound, 0,
                        registry_.version(), "unknown task"};
  }
  if (!(request.error_allowance >= 0.0 && request.error_allowance <= 1.0)) {
    return ControlReply{control::ControlStatus::kInvalid, 0,
                        registry_.version(), "error allowance in [0, 1]"};
  }
  TaskRuntime& rt = it->second;
  const double err = request.error_allowance;
  // Rescale the live split proportionally: relative shares (the adaptive
  // allocator's learned state) survive the budget change.
  double sum = 0.0;
  for (const auto& [id, a] : rt.allowance) {
    (void)id;
    sum += a;
  }
  for (auto& [id, a] : rt.allowance) {
    a = sum > 0.0 ? a * err / sum : weighted_share(rt, id);
  }
  rt.record.spec.error_allowance = err;
  for (auto& [id, session] : sessions_) {
    if (!session.connected || session.done ||
        session.state == MonitorLiveness::kDead) {
      continue;
    }
    send_to(id, session,
            allowance_frame(session.shard, request.task, rt.allowance[id]));
  }
  {
    std::lock_guard<std::mutex> lock(shard_export_mu_);
    shard_export_[request.task].budget = err;
  }
  VLOG_INFO("coordinator", "task ", request.task, " budget set to ", err);
  return ControlReply{control::ControlStatus::kOk, rt.record.epoch,
                      registry_.version(), {}};
}

double CoordinatorNode::shard_aggregate(TaskId task) const {
  std::lock_guard<std::mutex> lock(shard_export_mu_);
  const auto it = shard_export_.find(task);
  return it != shard_export_.end() ? it->second.last_aggregate : 0.0;
}

std::vector<ShardSummary> CoordinatorNode::drain_shard_summaries(
    std::uint32_t shard_id) {
  std::vector<ShardSummary> out;
  std::lock_guard<std::mutex> lock(shard_export_mu_);
  out.reserve(shard_export_.size());
  for (auto& [task, ex] : shard_export_) {
    ShardSummary summary;
    summary.shard = shard_id;
    summary.task = task;
    summary.r = ex.r_sum;
    summary.e = ex.e_sum;
    summary.yield = ex.e_sum > 0.0 ? ex.r_sum / ex.e_sum : 0.0;
    summary.allowance_used = ex.budget;
    summary.observations = ex.observations;
    out.push_back(summary);
    ex.r_sum = 0.0;
    ex.e_sum = 0.0;
    ex.observations = 0;
  }
  return out;
}

TaskListReply CoordinatorNode::build_task_list() const {
  TaskListReply reply;
  reply.registry_version = registry_.version();
  for (const auto& [task, rt] : tasks_) {
    TaskEntry entry;
    entry.task = task;
    entry.epoch = rt.record.epoch;
    entry.global_threshold = rt.record.spec.global_threshold;
    entry.error_allowance = rt.record.spec.error_allowance;
    entry.updating_period = rt.record.spec.updating_period;
    entry.allowance_split.assign(rt.allowance.begin(), rt.allowance.end());
    reply.tasks.push_back(std::move(entry));
  }
  return reply;
}

void CoordinatorNode::serve_control(TcpConnection& conn,
                                    const Message& request) {
  NetCoordinatorMetrics::get().control_requests->inc();
  Message reply;
  if (const auto* add = std::get_if<AddTask>(&request)) {
    reply = apply_add(*add);
  } else if (const auto* update = std::get_if<UpdateTask>(&request)) {
    reply = apply_update(*update);
  } else if (const auto* remove = std::get_if<RemoveTask>(&request)) {
    reply = apply_remove(*remove);
  } else if (const auto* budget = std::get_if<ShardAllowance>(&request)) {
    reply = apply_shard_allowance(*budget);
  } else {
    reply = build_task_list();
  }
  conn.send_all(frame_payload(encode(reply)));
}

void CoordinatorNode::disconnect_session(MonitorId id, Session& session) {
  if (multi_loop_ && session.remote) {
    detach_remote(session);
  } else {
    if (reactor_mode_ && session.conn.valid()) {
      reactor_.remove_fd(session.conn.fd());
    }
    session.conn.close();
    session.out.clear();  // undeliverable now; a reconnect resyncs instead
  }
  session.write_blocked = false;
  session.connected = false;
  if (!session.done) mark_suspect(id, session);
}

void CoordinatorNode::bind_session(PendingConn&& pending, const Hello& hello,
                                   bool shard, std::uint32_t weight) {
  const MonitorId id = hello.monitor;
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    if (sessions_.size() >= options_.monitors) {
      VLOG_WARN("coordinator", "unexpected extra monitor ", id,
                "; dropping connection");
      return;
    }
    Session session;
    session.conn = std::move(pending.conn);
    session.reader = std::move(pending.reader);
    session.last_seen_ms = now_ms();
    session.shard = shard;
    session.weight = weight;
    it = sessions_.emplace(id, std::move(session)).first;
    for (auto& [task, rt] : tasks_) {
      rt.allowance.emplace(id, weighted_share(rt, id));
    }
    // Teach the newcomer the full task set. Monitors dedupe by epoch, so
    // the boot task's attach (epoch 1, which they seeded themselves) is a
    // no-op while dynamically added tasks take effect.
    for (auto& [task, rt] : tasks_) {
      send_to(id, it->second, make_attach(rt, id));
    }
    if (hello.resume) {
      // A monitor resuming against a restarted coordinator: resync every
      // task's allowance.
      ++fault_stats_.reconnects;
      for (auto& [task, rt] : tasks_) {
        send_to(id, it->second,
                allowance_frame(shard, task, rt.allowance[id]));
      }
    }
    if (all_joined()) {
      for (auto& [task, rt] : tasks_) {
        if (rt.pending_poll_tick && !rt.active_poll) {
          const Tick tick = *rt.pending_poll_tick;
          rt.pending_poll_tick.reset();
          start_poll(task, rt, tick);
        }
      }
    }
  } else {
    Session& session = it->second;
    const bool was_dead = session.state == MonitorLiveness::kDead;
    const bool was_down = session.state != MonitorLiveness::kActive;
    if (multi_loop_ && session.remote) {
      detach_remote(session);  // the old connection's loop closes it
    } else if (reactor_mode_ && session.conn.valid()) {
      reactor_.remove_fd(session.conn.fd());
    }
    session.out.clear();  // frames addressed to the old connection
    session.write_blocked = false;
    session.conn.close();
    session.conn = std::move(pending.conn);
    session.reader = std::move(pending.reader);
    session.connected = true;
    session.state = MonitorLiveness::kActive;
    session.last_seen_ms = now_ms();
    session.shard = shard;
    session.weight = weight;
    ++fault_stats_.reconnects;
    if (was_down) {
      ++fault_stats_.recovered;
      NetCoordinatorMetrics::get().recoveries->inc();
      obs::trace().record(
          obs::TraceKind::kLivenessTransition, 0, id,
          liveness_code(MonitorLiveness::kActive),
          liveness_code(was_dead ? MonitorLiveness::kDead
                                 : MonitorLiveness::kSuspect));
    }
    if (was_dead) {
      // Re-admit: the monitor re-enters at the allowance floor and earns
      // its share back through StatsReports.
      VLOG_INFO("coordinator", "dead monitor ", id, " rejoined");
      redistribute_and_push();
    }
    // Resync handshake: full task set, then per-task allowance.
    for (auto& [task, rt] : tasks_) {
      send_to(id, session, make_attach(rt, id));
    }
    for (auto& [task, rt] : tasks_) {
      send_to(id, session, allowance_frame(shard, task, rt.allowance[id]));
    }
  }
  // Frames that followed Hello in the same burst are already buffered.
  Session& session = it->second;
  while (auto payload = session.reader.next()) {
    const auto message = decode(*payload);
    if (!message) continue;
    handle_message(id, session, *message);
  }
}

void CoordinatorNode::handle_message(MonitorId id, Session& session,
                                     const Message& message) {
  messages_received_.fetch_add(1, std::memory_order_relaxed);
  if (session.state == MonitorLiveness::kSuspect) {
    // Any traffic from a suspect proves it alive again.
    session.state = MonitorLiveness::kActive;
    ++fault_stats_.recovered;
    NetCoordinatorMetrics::get().recoveries->inc();
    obs::trace().record(obs::TraceKind::kLivenessTransition, 0, id,
                        liveness_code(MonitorLiveness::kActive),
                        liveness_code(MonitorLiveness::kSuspect));
  }
  if (const auto* heartbeat = std::get_if<Heartbeat>(&message)) {
    ++fault_stats_.heartbeats;
    NetCoordinatorMetrics::get().heartbeats->inc();
    send_to(id, session, HeartbeatAck{heartbeat->seq});
    return;
  }
  if (std::get_if<Hello>(&message) || std::get_if<ShardHello>(&message)) {
    return;  // duplicate Hello/ShardHello on an already-bound session
  }
  if (const auto* violation = std::get_if<LocalViolation>(&message)) {
    // One poll at a time per task: coincident local violations are answered
    // by the task's in-flight poll aggregate. Before the full house joined,
    // remember the violation and poll once everyone is in.
    const auto task_it = tasks_.find(violation->task);
    if (task_it == tasks_.end()) return;  // removed task's straggler
    TaskRuntime& rt = task_it->second;
    if (!all_joined()) {
      rt.pending_poll_tick = violation->tick;
    } else if (!rt.active_poll) {
      start_poll(violation->task, rt, violation->tick);
    }
    return;
  }
  if (const auto* response = std::get_if<PollResponse>(&message)) {
    session.last_values[response->task] = response->value;
    const auto task_it = tasks_.find(response->task);
    if (task_it == tasks_.end()) return;
    TaskRuntime& rt = task_it->second;
    if (rt.active_poll && response->poll_id == *rt.active_poll) {
      rt.poll_values[response->monitor] = response->value;
      check_poll_completion(response->task, rt);
    }
    return;
  }
  if (const auto* stats = std::get_if<StatsReport>(&message)) {
    const auto task_it = tasks_.find(stats->task);
    if (task_it == tasks_.end()) return;
    CoordStats s;
    s.avg_gain = stats->avg_gain;
    s.avg_allowance = stats->avg_allowance;
    s.observations = stats->observations;
    task_it->second.pending_stats[stats->monitor] = s;
    maybe_reallocate(stats->task, task_it->second);
    return;
  }
  if (const auto* summary = std::get_if<ShardSummary>(&message)) {
    // A shard's compressed coordination stats: feed (r, e) into the same
    // reallocation machinery a StatsReport drives — the root runs the
    // identical allocator over shard sums instead of monitor averages.
    session.last_summary_ms = now_ms();
    const auto task_it = tasks_.find(summary->task);
    if (task_it == tasks_.end()) return;
    CoordStats s;
    s.avg_gain = summary->r;
    s.avg_allowance = summary->e;
    s.observations = summary->observations;
    task_it->second.pending_stats[summary->shard] = s;
    maybe_reallocate(summary->task, task_it->second);
    return;
  }
  if (const auto* bye = std::get_if<Bye>(&message)) {
    if (!session.done) {
      session.done = true;
      reported_ops_[bye->monitor] = bye->scheduled_ops + bye->forced_ops;
    }
    return;
  }
  (void)id;
}

void CoordinatorNode::run() {
  if (resolve_poll_loop(options_.poll_loop)) {
    run_poll_loop();
  } else {
    run_reactor();
  }
}

// The pre-reactor event loop, preserved as the behavioral baseline behind
// VOLLEY_POLL_LOOP (plus the loop_wakeups_ count the bench compares).
void CoordinatorNode::run_poll_loop() {
  std::array<std::byte, 8192> buf;
  std::int64_t last_activity_ms = now_ms();

  while (!stop_.load()) {
    loop_wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (all_joined() && finished_sessions() >= options_.monitors) break;

    // fds: [0] listener, then pending connections, then live sessions.
    std::vector<pollfd> fds;
    std::vector<MonitorId> session_order;
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    const std::size_t pending_count = pending_.size();
    for (const auto& pending : pending_) {
      fds.push_back(pollfd{pending.conn.fd(), POLLIN, 0});
    }
    for (const auto& [id, session] : sessions_) {
      if (!session.connected) continue;
      fds.push_back(pollfd{session.conn.fd(), POLLIN, 0});
      session_order.push_back(id);
    }
    const int ready = ::poll(fds.data(), fds.size(), 20);
    if (ready < 0 && errno != EINTR) break;
    const std::int64_t now = now_ms();

    // Pending connections: wait for Hello, then bind to a session.
    std::vector<PendingConn> still_pending;
    for (std::size_t i = 0; i < pending_count; ++i) {
      PendingConn& pending = pending_[i];
      bool drop = false;
      bool bound = false;
      if (fds[1 + i].revents & (POLLIN | POLLHUP | POLLERR)) {
        const auto n = pending.conn.recv_some(buf);
        if (n && *n == 0) drop = true;
        if (n && *n > 0) {
          last_activity_ms = now;
          pending.reader.feed(std::span<const std::byte>(buf.data(), *n));
          while (auto payload = pending.reader.next()) {
            const auto message = decode(*payload);
            if (!message) continue;
            if (const auto* hello = std::get_if<Hello>(&*message)) {
              bind_session(std::move(pending), *hello);
              bound = true;
              break;
            }
            if (const auto* sh = std::get_if<ShardHello>(&*message)) {
              // An aggregator joining as a shard session.
              bind_session(std::move(pending), Hello{sh->shard, sh->resume},
                           /*shard=*/true, sh->monitors);
              bound = true;
              break;
            }
            if (const auto* stats = std::get_if<StatsRequest>(&*message)) {
              // Introspection client (e.g. tools/volley_stats): answer and
              // drop; never a monitor.
              serve_stats(pending.conn, *stats);
              drop = true;
              break;
            }
            if (is_control_request(*message)) {
              // Control client (e.g. tools/volleyctl): mutate or list the
              // task registry, answer, drop; never a monitor.
              serve_control(pending.conn, *message);
              drop = true;
              break;
            }
            VLOG_WARN("coordinator", "dropping pre-Hello frame");
          }
        }
      }
      // A connection silent for a whole heartbeat timeout never said Hello.
      if (!bound && !drop &&
          now - pending.since_ms > options_.heartbeat_timeout_ms) {
        drop = true;
      }
      if (!bound && !drop) still_pending.push_back(std::move(pending));
    }
    pending_ = std::move(still_pending);

    // New connections (initial joins and reconnects alike); they are polled
    // for their Hello from the next loop turn on.
    if (fds[0].revents & POLLIN) {
      while (auto conn = listener_.accept()) {
        conn->set_nonblocking(true);
        PendingConn pending;
        pending.conn = std::move(*conn);
        pending.since_ms = now;
        pending_.push_back(std::move(pending));
        last_activity_ms = now;
      }
    }

    // Live sessions.
    for (std::size_t i = 0; i < session_order.size(); ++i) {
      const auto revents = fds[1 + pending_count + i].revents;
      if (!(revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const MonitorId id = session_order[i];
      Session& session = sessions_.at(id);
      if (!session.connected) continue;
      const auto n = session.conn.recv_some(buf);
      if (!n) continue;
      if (*n == 0) {
        // Peer vanished. After Bye this is the normal end of a monitor;
        // mid-session it makes the monitor suspect (it may reconnect).
        disconnect_session(id, session);
        continue;
      }
      last_activity_ms = now;
      session.last_seen_ms = now;
      session.reader.feed(std::span<const std::byte>(buf.data(), *n));
      while (auto payload = session.reader.next()) {
        const auto message = decode(*payload);
        if (!message) {
          VLOG_WARN("coordinator", "dropping malformed frame");
          continue;
        }
        handle_message(id, session, *message);
      }
    }

    // Liveness deadlines: silent -> suspect -> dead.
    for (auto& [id, session] : sessions_) {
      if (session.done) continue;
      if (session.state == MonitorLiveness::kActive &&
          now - session.last_seen_ms > options_.heartbeat_timeout_ms) {
        mark_suspect(id, session);
      } else if (session.state == MonitorLiveness::kSuspect &&
                 now - session.suspect_since_ms >
                     options_.staleness_bound_ms) {
        declare_dead(id, session);
      }
    }

    // Poll timeouts: settle each task with whatever arrived.
    for (auto& [task, rt] : tasks_) {
      if (rt.active_poll &&
          now - rt.poll_started_ms > options_.poll_timeout_ms) {
        VLOG_WARN("coordinator", "global poll for task ", task,
                  " timed out with ", rt.poll_values.size(), "/",
                  options_.monitors, " responses");
        finish_poll(task, rt);
      }
    }
    // Idle guard: a fully silent session means lost monitors; bail out.
    if (now - last_activity_ms > options_.idle_timeout_ms) {
      VLOG_ERROR("coordinator", "session idle too long; aborting");
      break;
    }
  }

  // request_stop() simulates a crash: vanish without a Shutdown so monitors
  // exercise their reconnect path against a successor.
  if (!stop_.load()) broadcast(Shutdown{});
}

// ---------------------------------------------------------------------------
// Reactor path: same protocol handlers, event-driven dispatch. A quiet
// coordinator sleeps in epoll until the next frame or the next due deadline
// (liveness sweep, poll timeout, pending-Hello drop, idle guard) instead of
// scanning every session 50x/s.

void CoordinatorNode::run_reactor() {
  reactor_mode_ = true;
  multi_loop_ = pool_.size() > 1;
  idle_abort_ = false;
  last_activity_ms_ = now_ms();
  pool_.enable_loop_stats();
  pool_.start();  // no-op when size() == 1
  reactor_.add_fd(listener_.fd(),
                  [this](std::uint32_t) { reactor_on_accept(); });
  schedule_idle_timer();

  while (!stop_.load()) {
    if (all_joined() && finished_sessions() >= options_.monitors) break;
    if (idle_abort_) break;
    reactor_.run_once(-1);
    loop_wakeups_.fetch_add(1, std::memory_order_relaxed);
    // Cross-loop inbox: decoded ingress batches and peer-gone notices
    // posted by the worker loops run here, on the protocol state's thread.
    if (multi_loop_) pool_.drain_tasks(0);
    // Deferred egress: every frame queued during this turn's dispatch
    // (acks, attaches, poll fan-out) coalesces into one writev per session
    // (single-loop) or one task per owner loop (multi-loop).
    flush_dirty();
  }
  reactor_.remove_fd(listener_.fd());
  for (const auto& [fd, pending] : reactor_pending_) {
    (void)pending;
    reactor_.remove_fd(fd);
  }
  reactor_pending_.clear();

  if (!stop_.load()) {
    broadcast(Shutdown{});
    flush_dirty();  // multi-loop: posts the farewell to the owner loops
    // The loop is exiting, so drain the farewell synchronously.
    for (auto& [id, session] : sessions_) {
      (void)id;
      if (session.remote) {
        // Posted after the egress batch (same producer, FIFO): the worker
        // enqueues the Shutdown frame first, then this drain runs.
        const auto io = session.remote;
        const int timeout_ms = options_.heartbeat_timeout_ms;
        pool_.post(io->loop, [io, timeout_ms] {
          if (!io->gone && !io->out.empty()) {
            io->out.flush_blocking(io->conn.fd(), timeout_ms);
          }
        });
      } else if (session.connected && !session.out.empty()) {
        session.out.flush_blocking(session.conn.fd(),
                                   options_.heartbeat_timeout_ms);
      }
    }
  }
  // Workers drain their queues once more after the stop flag, then join;
  // past this point the worker loops' state is safe to touch from here.
  pool_.stop();
  for (auto& [id, session] : sessions_) {
    (void)id;
    if (session.remote) {
      if (!session.remote->gone) {
        pool_.loop(session.remote->loop).remove_fd(session.remote->conn.fd());
        session.remote->conn.close();
        session.remote->gone = true;
      }
      session.remote.reset();
      session.connected = false;
    }
    if (session.conn.valid()) reactor_.remove_fd(session.conn.fd());
    session.pending_egress.clear();
  }
  dirty_sessions_.clear();
  reactor_mode_ = false;
  multi_loop_ = false;
}

void CoordinatorNode::reactor_on_accept() {
  while (auto conn = listener_.accept()) {
    conn->set_nonblocking(true);
    const int fd = conn->fd();
    PendingConn pending;
    pending.conn = std::move(*conn);
    pending.since_ms = now_ms();
    reactor_pending_.emplace(fd, std::move(pending));
    reactor_.add_fd(fd, [this, fd](std::uint32_t events) {
      reactor_on_pending(fd, events);
    });
    last_activity_ms_ = now_ms();
  }
  schedule_pending_timer();
}

void CoordinatorNode::reactor_on_pending(int fd, std::uint32_t events) {
  if (!Reactor::readable(events)) return;
  auto it = reactor_pending_.find(fd);
  if (it == reactor_pending_.end()) return;
  PendingConn& pending = it->second;
  std::array<std::byte, 8192> buf;
  bool drop = false;
  bool bound = false;
  Hello hello{};
  bool shard_hello = false;
  std::uint32_t shard_weight = 1;
  while (!bound && !drop) {
    const auto n = pending.conn.recv_some(buf);
    if (!n) break;  // drained
    if (*n == 0) {
      drop = true;
      break;
    }
    last_activity_ms_ = now_ms();
    pending.reader.feed(std::span<const std::byte>(buf.data(), *n));
    while (auto payload = pending.reader.next()) {
      const auto message = decode(*payload);
      if (!message) continue;
      if (const auto* h = std::get_if<Hello>(&*message)) {
        hello = *h;
        bound = true;
        break;
      }
      if (const auto* sh = std::get_if<ShardHello>(&*message)) {
        hello = Hello{sh->shard, sh->resume};
        shard_hello = true;
        shard_weight = sh->monitors;
        bound = true;
        break;
      }
      if (const auto* stats = std::get_if<StatsRequest>(&*message)) {
        serve_stats(pending.conn, *stats);
        drop = true;
        break;
      }
      if (is_control_request(*message)) {
        serve_control(pending.conn, *message);
        drop = true;
        break;
      }
      VLOG_WARN("coordinator", "dropping pre-Hello frame");
    }
  }
  if (bound) {
    PendingConn taken = std::move(it->second);
    reactor_pending_.erase(it);
    bind_session(std::move(taken), hello, shard_hello, shard_weight);
    const auto sit = sessions_.find(hello.monitor);
    if (sit != sessions_.end() && sit->second.connected &&
        sit->second.conn.fd() == fd) {
      const MonitorId id = hello.monitor;
      if (multi_loop_) {
        // Hand the session's I/O to its owner loop: the fd leaves the home
        // reactor for good, and this turn's flush_dirty posts the frames
        // bind_session queued (attaches, allowance resync) right behind
        // the install task — same producer, FIFO, so the registration is
        // in place first.
        reactor_.remove_fd(fd);
        install_remote(id, sit->second);
      } else {
        reactor_.update_handler(fd, [this, id](std::uint32_t ev) {
          reactor_on_session(id, ev);
        });
      }
      schedule_liveness_timer();
    } else if (reactor_.watching(fd)) {
      // bind_session refused (extra monitor) or tore the session down while
      // draining its buffered frames; the fd is gone either way.
      reactor_.remove_fd(fd);
    }
  } else if (drop) {
    reactor_.remove_fd(fd);
    reactor_pending_.erase(it);
  }
}

void CoordinatorNode::reactor_on_session(MonitorId id, std::uint32_t events) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  if (!session.connected) return;
  if (Reactor::writable(events) && !session.out.empty()) {
    flush_session(id, session);
    if (!session.connected) return;
  }
  if (!Reactor::readable(events)) return;
  // Batched ingress: drain the socket and decode every complete frame in
  // one dispatch, so a burst costs one wakeup instead of one per frame.
  std::array<std::byte, 8192> buf;
  while (session.connected) {
    const auto n = session.conn.recv_some(buf);
    if (!n) break;  // drained to EAGAIN
    if (*n == 0) {
      disconnect_session(id, session);
      return;
    }
    const std::int64_t now = now_ms();
    last_activity_ms_ = now;
    session.last_seen_ms = now;
    session.reader.feed(std::span<const std::byte>(buf.data(), *n));
    while (auto payload = session.reader.next()) {
      const auto message = decode(*payload);
      if (!message) {
        VLOG_WARN("coordinator", "dropping malformed frame");
        continue;
      }
      handle_message(id, session, *message);
      if (!session.connected) return;
    }
  }
}

void CoordinatorNode::flush_session(MonitorId id, Session& session) {
  const int fd = session.conn.fd();
  switch (session.out.flush(fd)) {
    case FrameWriter::FlushResult::kDrained:
      if (session.write_blocked) {
        reactor_.set_want_write(fd, false);
        session.write_blocked = false;
      }
      break;
    case FrameWriter::FlushResult::kBlocked:
      if (!session.write_blocked) {
        reactor_.set_want_write(fd, true);  // EAGAIN backpressure
        session.write_blocked = true;
      }
      break;
    case FrameWriter::FlushResult::kPeerGone:
      disconnect_session(id, session);
      break;
  }
}

void CoordinatorNode::flush_dirty() {
  if (multi_loop_) {
    // Group this turn's egress by owner loop: a poll fan-out to 4k
    // sessions costs one posted task per loop, not one per session. Each
    // loop then enqueues and flushes its own sessions' frames.
    std::map<std::size_t,
             std::vector<std::pair<std::shared_ptr<RemoteIo>,
                                   std::vector<std::vector<std::byte>>>>>
        per_loop;
    for (std::size_t i = 0; i < dirty_sessions_.size(); ++i) {
      const MonitorId id = dirty_sessions_[i];
      const auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      Session& session = it->second;
      session.dirty = false;
      if (session.pending_egress.empty()) continue;
      if (!session.connected || !session.remote) {
        session.pending_egress.clear();  // torn down before the flush
        continue;
      }
      per_loop[session.remote->loop].emplace_back(
          session.remote, std::move(session.pending_egress));
      session.pending_egress.clear();
    }
    dirty_sessions_.clear();
    for (auto& [loop, batches] : per_loop) {
      pool_.post(loop, [this, work = std::move(batches)]() mutable {
        for (auto& [io, frames] : work) {
          if (io->gone) continue;
          for (auto& frame : frames) io->out.enqueue(std::move(frame));
          remote_flush(io);
        }
      });
    }
    return;
  }
  // send_to may mark more sessions dirty while flushing (disconnect ->
  // suspect -> reallocation pushes); index iteration covers appends.
  for (std::size_t i = 0; i < dirty_sessions_.size(); ++i) {
    const MonitorId id = dirty_sessions_[i];
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;
    Session& session = it->second;
    session.dirty = false;
    if (!session.connected || session.out.empty()) continue;
    flush_session(id, session);
  }
  dirty_sessions_.clear();
}

// ---------------------------------------------------------------------------
// Multi-loop plumbing (DESIGN.md §14). The protocol state machine stays on
// the home thread; a bound session's socket moves to a sticky owner loop
// that does all its recv/decode/writev work. The two sides talk only
// through ReactorPool::post — decoded Message batches inbound, encoded
// frame batches outbound — with conn_epoch guarding reconnect races.

void CoordinatorNode::install_remote(MonitorId id, Session& session) {
  auto io = std::make_shared<RemoteIo>();
  io->conn = std::move(session.conn);
  io->reader = std::move(session.reader);
  io->id = id;
  // Sticky owner loop: assigned round-robin at first bind, reused on every
  // reconnect — a session never migrates loops mid-life.
  io->loop = session_loop_.try_emplace(id, pool_.next_loop()).first->second;
  io->epoch = ++session.conn_epoch;
  session.remote = io;
  pool_.post(io->loop, [this, io] {
    if (io->gone) return;
    pool_.loop(io->loop).add_fd(io->conn.fd(), [this, io](std::uint32_t ev) {
      remote_on_event(io, ev);
    });
  });
}

void CoordinatorNode::detach_remote(Session& session) {
  const auto io = session.remote;
  pool_.post(io->loop, [this, io] { remote_close(io); });
  session.remote.reset();
  ++session.conn_epoch;  // in-flight ingress from the old conn is now stale
  session.pending_egress.clear();
}

void CoordinatorNode::home_ingress(MonitorId id, std::uint64_t epoch,
                                   std::vector<Message>& batch) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  if (!session.connected || session.conn_epoch != epoch) return;
  const std::int64_t now = now_ms();
  last_activity_ms_ = now;
  session.last_seen_ms = now;
  for (Message& message : batch) {
    if (!session.connected) break;  // a handler tore the session down
    handle_message(id, session, message);
  }
}

void CoordinatorNode::home_peer_gone(MonitorId id, std::uint64_t epoch) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  if (session.conn_epoch != epoch) return;  // already superseded
  // The owner loop closed the fd before posting; only the bookkeeping half
  // of disconnect_session remains.
  session.remote.reset();
  ++session.conn_epoch;
  session.pending_egress.clear();
  session.write_blocked = false;
  session.connected = false;
  if (!session.done) mark_suspect(id, session);
}

void CoordinatorNode::remote_on_event(const std::shared_ptr<RemoteIo>& io,
                                      std::uint32_t events) {
  if (io->gone) return;
  if (Reactor::writable(events) && !io->out.empty()) {
    remote_flush(io);
    if (io->gone) return;
  }
  if (!Reactor::readable(events)) return;
  // Batched ingress, decoded here: the home thread pays one task per
  // socket drain, not one syscall + parse per frame.
  std::array<std::byte, 8192> buf;
  std::vector<Message> batch;
  bool peer_gone = false;
  while (true) {
    const auto n = io->conn.recv_some(buf);
    if (!n) break;  // drained to EAGAIN
    if (*n == 0) {
      peer_gone = true;
      break;
    }
    io->reader.feed(std::span<const std::byte>(buf.data(), *n));
    while (auto payload = io->reader.next()) {
      auto message = decode(*payload);
      if (!message) {
        VLOG_WARN("coordinator", "dropping malformed frame");
        continue;
      }
      batch.push_back(std::move(*message));
    }
  }
  if (!batch.empty()) {
    pool_.post(0, [this, id = io->id, epoch = io->epoch,
                   work = std::move(batch)]() mutable {
      home_ingress(id, epoch, work);
    });
  }
  if (peer_gone) {
    remote_close(io);
    pool_.post(0, [this, id = io->id, epoch = io->epoch] {
      home_peer_gone(id, epoch);
    });
  }
}

void CoordinatorNode::remote_flush(const std::shared_ptr<RemoteIo>& io) {
  Reactor& r = pool_.loop(io->loop);
  const int fd = io->conn.fd();
  switch (io->out.flush(fd)) {
    case FrameWriter::FlushResult::kDrained:
      if (io->write_blocked) {
        r.set_want_write(fd, false);
        io->write_blocked = false;
      }
      break;
    case FrameWriter::FlushResult::kBlocked:
      if (!io->write_blocked) {
        r.set_want_write(fd, true);  // EAGAIN backpressure, owner-loop local
        io->write_blocked = true;
      }
      break;
    case FrameWriter::FlushResult::kPeerGone: {
      const MonitorId id = io->id;
      const std::uint64_t epoch = io->epoch;
      remote_close(io);
      pool_.post(0, [this, id, epoch] { home_peer_gone(id, epoch); });
      break;
    }
  }
}

void CoordinatorNode::remote_close(const std::shared_ptr<RemoteIo>& io) {
  if (io->gone) return;
  pool_.loop(io->loop).remove_fd(io->conn.fd());
  io->conn.close();
  io->out.clear();
  io->gone = true;
}

void CoordinatorNode::liveness_sweep() {
  const std::int64_t now = now_ms();
  for (auto& [id, session] : sessions_) {
    if (session.done) continue;
    if (session.state == MonitorLiveness::kActive &&
        now - session.last_seen_ms > options_.heartbeat_timeout_ms) {
      mark_suspect(id, session);
    } else if (session.state == MonitorLiveness::kSuspect &&
               now - session.suspect_since_ms > options_.staleness_bound_ms) {
      declare_dead(id, session);
    }
  }
  schedule_liveness_timer();
}

void CoordinatorNode::schedule_liveness_timer() {
  // ONE coalesced timer for the whole fleet, armed at the earliest
  // suspect/dead deadline — per-session timers would mean O(sessions)
  // wakeups per timeout window, which is exactly the idle-CPU cost the
  // reactor exists to kill. A heartbeat that arrives after arming merely
  // makes the sweep a no-op that re-arms later.
  std::optional<std::int64_t> min_due;
  for (const auto& [id, session] : sessions_) {
    (void)id;
    if (session.done || session.state == MonitorLiveness::kDead) continue;
    const std::int64_t due =
        session.state == MonitorLiveness::kActive
            ? session.last_seen_ms + options_.heartbeat_timeout_ms
            : session.suspect_since_ms + options_.staleness_bound_ms;
    if (!min_due || due < *min_due) min_due = due;
  }
  if (!min_due) {
    if (liveness_timer_armed_) {
      reactor_.cancel_timer(liveness_timer_);
      liveness_timer_armed_ = false;
    }
    return;
  }
  // An already-armed earlier (or equal) deadline only fires early — fine.
  if (liveness_timer_armed_ && liveness_timer_due_ <= *min_due) return;
  if (liveness_timer_armed_) reactor_.cancel_timer(liveness_timer_);
  const std::int64_t delay = std::max<std::int64_t>(*min_due - now_ms(), 0) + 1;
  liveness_timer_ = reactor_.add_timer(delay, [this] {
    liveness_timer_armed_ = false;
    liveness_sweep();
  });
  liveness_timer_armed_ = true;
  liveness_timer_due_ = *min_due;
}

void CoordinatorNode::schedule_pending_timer() {
  if (pending_timer_armed_ || reactor_pending_.empty()) return;
  std::int64_t min_since = reactor_pending_.begin()->second.since_ms;
  for (const auto& [fd, pending] : reactor_pending_) {
    (void)fd;
    min_since = std::min(min_since, pending.since_ms);
  }
  const std::int64_t due = min_since + options_.heartbeat_timeout_ms;
  const std::int64_t delay = std::max<std::int64_t>(due - now_ms(), 0) + 1;
  pending_timer_ = reactor_.add_timer(delay, [this] {
    pending_timer_armed_ = false;
    const std::int64_t now = now_ms();
    for (auto it = reactor_pending_.begin(); it != reactor_pending_.end();) {
      // A connection silent for a whole heartbeat timeout never said Hello.
      if (now - it->second.since_ms > options_.heartbeat_timeout_ms) {
        reactor_.remove_fd(it->first);
        it = reactor_pending_.erase(it);
      } else {
        ++it;
      }
    }
    schedule_pending_timer();
  });
  pending_timer_armed_ = true;
}

void CoordinatorNode::schedule_idle_timer() {
  const std::int64_t due = last_activity_ms_ + options_.idle_timeout_ms;
  const std::int64_t delay = std::max<std::int64_t>(due - now_ms(), 0) + 1;
  reactor_.add_timer(delay, [this] {
    if (now_ms() - last_activity_ms_ > options_.idle_timeout_ms) {
      VLOG_ERROR("coordinator", "session idle too long; aborting");
      idle_abort_ = true;
    } else {
      schedule_idle_timer();  // activity moved the deadline; chase it
    }
  });
}

}  // namespace volley::net
