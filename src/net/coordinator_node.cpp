#include "net/coordinator_node.h"

#include <poll.h>

#include <array>
#include <chrono>
#include <stdexcept>

#include "common/log.h"

namespace volley::net {

namespace {
std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

CoordinatorNode::CoordinatorNode(const CoordinatorNodeOptions& options)
    : options_(options), listener_(options.port) {
  if (options.monitors == 0)
    throw std::invalid_argument("CoordinatorNode: monitors > 0");
  if (options.adaptive_allocation) {
    allocator_ = std::make_unique<AdaptiveAllocation>();
  } else {
    allocator_ = std::make_unique<EvenAllocation>();
  }
  allocation_.assign(options.monitors,
                     options.error_allowance /
                         static_cast<double>(options.monitors));
}

bool CoordinatorNode::send_to(Session& session, const Message& message) {
  const auto payload = encode(message);
  return session.conn.send_all(frame_payload(payload));
}

void CoordinatorNode::broadcast(const Message& message) {
  for (auto& session : sessions_) {
    if (session->conn.valid()) send_to(*session, message);
  }
}

void CoordinatorNode::start_poll(Tick tick) {
  active_poll_ = next_poll_id_++;
  active_poll_tick_ = tick;
  poll_values_.clear();
  poll_started_ms_ = now_ms();
  ++global_polls_;
  broadcast(PollRequest{tick, *active_poll_});
}

void CoordinatorNode::finish_poll() {
  double sum = 0.0;
  for (const auto& [id, value] : poll_values_) sum += value;
  if (sum > options_.global_threshold) {
    alerts_.push_back(GlobalAlert{active_poll_tick_, sum});
  }
  active_poll_.reset();
  poll_values_.clear();
}

void CoordinatorNode::maybe_reallocate() {
  if (pending_stats_.size() < options_.monitors) return;
  std::vector<CoordStats> stats;
  stats.reserve(options_.monitors);
  for (const auto& [id, s] : pending_stats_) stats.push_back(s);
  allocation_ =
      allocator_->allocate(options_.error_allowance, allocation_, stats);
  // pending_stats_ is ordered by monitor id; allocation_ follows that order.
  std::size_t index = 0;
  for (const auto& [id, s] : pending_stats_) {
    for (auto& session : sessions_) {
      if (session->id == id) {
        send_to(*session, AllowanceUpdate{allocation_[index]});
        break;
      }
    }
    ++index;
  }
  pending_stats_.clear();
  ++reallocations_;
}

void CoordinatorNode::handle_message(Session& session,
                                     const Message& message) {
  if (const auto* hello = std::get_if<Hello>(&message)) {
    session.id = hello->monitor;
    return;
  }
  if (const auto* violation = std::get_if<LocalViolation>(&message)) {
    // One poll at a time: coincident local violations are answered by the
    // in-flight poll's aggregate.
    if (!active_poll_) start_poll(violation->tick);
    return;
  }
  if (const auto* response = std::get_if<PollResponse>(&message)) {
    if (active_poll_ && response->poll_id == *active_poll_) {
      poll_values_[response->monitor] = response->value;
      if (poll_values_.size() >= options_.monitors) finish_poll();
    }
    return;
  }
  if (const auto* stats = std::get_if<StatsReport>(&message)) {
    CoordStats s;
    s.avg_gain = stats->avg_gain;
    s.avg_allowance = stats->avg_allowance;
    s.observations = stats->observations;
    pending_stats_[stats->monitor] = s;
    maybe_reallocate();
    return;
  }
  if (const auto* bye = std::get_if<Bye>(&message)) {
    if (!session.done) {
      session.done = true;
      ++done_count_;
      reported_ops_[bye->monitor] = bye->scheduled_ops + bye->forced_ops;
    }
    return;
  }
}

void CoordinatorNode::run() {
  // Phase 1: accept the expected number of monitors.
  while (sessions_.size() < options_.monitors) {
    auto conn = listener_.accept();
    if (!conn) continue;
    conn->set_nonblocking(true);
    auto session = std::make_unique<Session>();
    session->conn = std::move(*conn);
    sessions_.push_back(std::move(session));
  }

  // Phase 2: event loop until every monitor said Bye.
  std::array<std::byte, 8192> buf;
  std::int64_t last_activity_ms = now_ms();
  while (done_count_ < options_.monitors) {
    std::vector<pollfd> fds;
    fds.reserve(sessions_.size());
    for (const auto& session : sessions_) {
      fds.push_back(pollfd{session->conn.fd(), POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 20);
    if (ready < 0 && errno != EINTR) break;

    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Session& session = *sessions_[i];
      if (!session.conn.valid()) continue;
      const auto n = session.conn.recv_some(buf);
      if (!n) continue;
      if (*n == 0) {
        // Peer vanished: treat as done so the session can still terminate.
        session.conn.close();
        if (!session.done) {
          session.done = true;
          ++done_count_;
        }
        continue;
      }
      last_activity_ms = now_ms();
      session.reader.feed(std::span<const std::byte>(buf.data(), *n));
      while (auto payload = session.reader.next()) {
        const auto message = decode(*payload);
        if (!message) {
          VLOG_WARN("coordinator", "dropping malformed frame");
          continue;
        }
        handle_message(session, *message);
      }
    }

    // Poll timeout: settle with whatever arrived.
    if (active_poll_ &&
        now_ms() - poll_started_ms_ > options_.poll_timeout_ms) {
      VLOG_WARN("coordinator", "global poll timed out with ",
                poll_values_.size(), "/", options_.monitors, " responses");
      finish_poll();
    }
    // Idle guard: a silent session means lost monitors; bail out.
    if (now_ms() - last_activity_ms > options_.idle_timeout_ms) {
      VLOG_ERROR("coordinator", "session idle too long; aborting");
      break;
    }
  }

  broadcast(Shutdown{});
}

}  // namespace volley::net
