#include "net/coordinator_node.h"

#include <poll.h>

#include <array>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"

namespace volley::net {

namespace {
std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct NetCoordinatorMetrics {
  obs::Counter* heartbeats;
  obs::Counter* suspects;
  obs::Counter* deaths;
  obs::Counter* recoveries;
  obs::Counter* stale_polls;
  obs::Counter* alerts;
  obs::Counter* stats_requests;
  obs::Counter* control_requests;
  obs::Counter* registry_mutations;

  static NetCoordinatorMetrics make(obs::MetricsRegistry& m) {
    return NetCoordinatorMetrics{
        &m.counter("volley_net_heartbeats_total",
                   "Monitor heartbeats received and acked"),
        &m.counter("volley_net_suspects_total",
                   "Active -> Suspect liveness transitions"),
        &m.counter("volley_net_deaths_total",
                   "Suspect -> Dead liveness transitions"),
        &m.counter("volley_net_recoveries_total",
                   "Suspect/Dead -> Active liveness transitions"),
        &m.counter("volley_net_stale_polls_total",
                   "Global polls settled with at least one stale value"),
        &m.counter("volley_net_alerts_total",
                   "State alerts raised by the wire coordinator"),
        &m.counter("volley_net_stats_requests_total",
                   "StatsRequest introspection queries served"),
        &m.counter("volley_net_control_requests_total",
                   "Control-plane requests served (add/remove/update/list)"),
        &m.counter("volley_net_registry_mutations_total",
                   "Task registry mutations applied (add/update/remove)"),
    };
  }

  static const NetCoordinatorMetrics& get() {
    return obs::scoped_handles(&make);
  }
};

/// Liveness states as recorded in kLivenessTransition trace events.
double liveness_code(MonitorLiveness s) {
  switch (s) {
    case MonitorLiveness::kActive:
      return 0.0;
    case MonitorLiveness::kSuspect:
      return 1.0;
    case MonitorLiveness::kDead:
      return 2.0;
  }
  return -1.0;
}
}  // namespace

CoordinatorNode::CoordinatorNode(const CoordinatorNodeOptions& options)
    : options_(options), listener_(options.port) {
  if (options.monitors == 0)
    throw std::invalid_argument("CoordinatorNode: monitors > 0");
  if (options.heartbeat_timeout_ms <= 0)
    throw std::invalid_argument("CoordinatorNode: heartbeat_timeout_ms > 0");
  if (options.staleness_bound_ms <= 0)
    throw std::invalid_argument("CoordinatorNode: staleness_bound_ms > 0");
  if (!options.registry_path.empty()) {
    store_ = std::make_unique<control::RegistryStore>(options.registry_path);
    registry_load_stats_ = store_->load(registry_);
    if (registry_load_stats_.had_snapshot || registry_load_stats_.journal_ops)
      VLOG_INFO("coordinator", "registry restored: ", registry_.size(),
                " task(s) at version ", registry_.version());
  }
  if (registry_.version() == 0) {
    // Fresh registry (no durable state): seed the boot task from the
    // command-line options. Monitors seed the same task 0 at epoch 1 from
    // their own options, so the attach push is a no-op for them.
    TaskSpec boot;
    boot.global_threshold = options.global_threshold;
    boot.error_allowance = options.error_allowance;
    const auto result = registry_.add(kBootTaskId, boot);
    if (!result.ok())
      throw std::invalid_argument("CoordinatorNode: invalid boot task: " +
                                  result.error);
    if (store_) store_->append(*result.op);
  }
  for (const auto& record : registry_.list()) install_task_runtime(record);
  listener_.set_nonblocking(true);
}

double CoordinatorNode::even_share(const TaskRuntime& rt) const {
  return rt.record.spec.error_allowance /
         static_cast<double>(options_.monitors);
}

CoordinatorNode::TaskRuntime& CoordinatorNode::install_task_runtime(
    const control::TaskRecord& record) {
  TaskRuntime& rt = tasks_[record.id];
  rt.record = record;
  if (options_.adaptive_allocation) {
    rt.allocator = std::make_unique<AdaptiveAllocation>();
  } else {
    rt.allocator = std::make_unique<EvenAllocation>();
  }
  rt.allowance.clear();
  for (const auto& [id, session] : sessions_) {
    (void)session;
    rt.allowance.emplace(id, even_share(rt));
  }
  return rt;
}

TaskAttach CoordinatorNode::make_attach(const TaskRuntime& rt,
                                        MonitorId id) const {
  const TaskSpec& spec = rt.record.spec;
  TaskAttach attach;
  attach.task = rt.record.id;
  attach.epoch = rt.record.epoch;
  attach.local_threshold =
      spec.global_threshold / static_cast<double>(options_.monitors);
  const auto it = rt.allowance.find(id);
  attach.error_allowance = it != rt.allowance.end() ? it->second
                                                    : even_share(rt);
  attach.slack_ratio = spec.slack_ratio;
  attach.patience = spec.patience;
  attach.max_interval = spec.max_interval;
  attach.updating_period = spec.updating_period;
  return attach;
}

void CoordinatorNode::push_attach_all(const TaskRuntime& rt) {
  for (auto& [id, session] : sessions_) {
    if (session.connected && !session.done) {
      send_to(id, session, make_attach(rt, id));
    }
  }
}

bool CoordinatorNode::send_to(MonitorId id, Session& session,
                              const Message& message) {
  if (!session.connected) return false;
  const auto payload = encode(message);
  if (session.conn.send_all(frame_payload(payload))) return true;
  disconnect_session(id, session);
  return false;
}

void CoordinatorNode::broadcast(const Message& message) {
  for (auto& [id, session] : sessions_) {
    if (session.connected) send_to(id, session, message);
  }
}

std::size_t CoordinatorNode::finished_sessions() const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (session.done || session.state == MonitorLiveness::kDead) ++n;
  }
  return n;
}

void CoordinatorNode::start_poll(TaskId task, TaskRuntime& rt, Tick tick) {
  rt.active_poll = next_poll_id_++;
  rt.active_poll_tick = tick;
  rt.poll_values.clear();
  rt.poll_started_ms = now_ms();
  ++global_polls_;
  broadcast(PollRequest{tick, *rt.active_poll, task});
  check_poll_completion(task, rt);  // every reachable monitor may be gone
}

void CoordinatorNode::check_poll_completion(TaskId task, TaskRuntime& rt) {
  if (!rt.active_poll) return;
  for (const auto& [id, session] : sessions_) {
    if (!session.connected || session.state != MonitorLiveness::kActive)
      continue;
    if (!rt.poll_values.count(id)) return;  // waiting on a live monitor
  }
  finish_poll(task, rt);
}

void CoordinatorNode::check_all_poll_completions() {
  for (auto& [task, rt] : tasks_) check_poll_completion(task, rt);
}

void CoordinatorNode::finish_poll(TaskId task, TaskRuntime& rt) {
  double sum = 0.0;
  bool stale = false;
  for (const auto& [id, value] : rt.poll_values) sum += value;
  for (const auto& [id, session] : sessions_) {
    if (rt.poll_values.count(id)) continue;
    if (session.state == MonitorLiveness::kDead) continue;  // excluded
    const auto last = session.last_values.find(task);
    if (last != session.last_values.end()) {
      // Suspect or unreachable: settle with the last known value, exactly
      // the simulator's poll_response_loss fallback.
      sum += last->second;
      stale = true;
      ++fault_stats_.stale_values;
    }
  }
  if (stale) {
    ++fault_stats_.stale_polls;
    NetCoordinatorMetrics::get().stale_polls->inc();
  }
  const double threshold = rt.record.spec.global_threshold;
  if (sum > threshold) {
    alerts_.push_back(GlobalAlert{rt.active_poll_tick, sum, task});
    NetCoordinatorMetrics::get().alerts->inc();
    obs::trace().record(obs::TraceKind::kAlertRaised, rt.active_poll_tick,
                        task, sum, threshold);
  }
  rt.active_poll.reset();
  rt.poll_values.clear();
}

void CoordinatorNode::maybe_reallocate(TaskId task, TaskRuntime& rt) {
  // Reallocation needs a StatsReport from every *reachable* monitor: dead
  // monitors are excluded (their allowance was reclaimed) and done monitors
  // no longer report.
  std::vector<MonitorId> eligible;
  for (const auto& [id, session] : sessions_) {
    if (session.done || session.state == MonitorLiveness::kDead) continue;
    eligible.push_back(id);
  }
  if (eligible.empty() || !all_joined()) return;
  for (MonitorId id : eligible) {
    if (!rt.pending_stats.count(id)) return;
  }
  std::vector<double> current;
  std::vector<CoordStats> stats;
  current.reserve(eligible.size());
  stats.reserve(eligible.size());
  for (MonitorId id : eligible) {
    current.push_back(rt.allowance[id]);
    stats.push_back(rt.pending_stats[id]);
  }
  const double budget = rt.record.spec.error_allowance;
  const auto next = rt.allocator->allocate(budget, current, stats);
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    rt.allowance[eligible[i]] = next[i];
    auto& session = sessions_.at(eligible[i]);
    if (session.connected) {
      send_to(eligible[i], session, AllowanceUpdate{next[i], task});
    }
  }
  rt.pending_stats.clear();
  ++reallocations_;
}

void CoordinatorNode::maybe_reallocate_all() {
  for (auto& [task, rt] : tasks_) maybe_reallocate(task, rt);
}

void CoordinatorNode::mark_suspect(MonitorId id, Session& session) {
  if (session.state != MonitorLiveness::kActive || session.done) return;
  session.state = MonitorLiveness::kSuspect;
  session.suspect_since_ms = now_ms();
  ++fault_stats_.suspected;
  NetCoordinatorMetrics::get().suspects->inc();
  obs::trace().record(obs::TraceKind::kLivenessTransition, 0, id,
                      liveness_code(MonitorLiveness::kSuspect),
                      liveness_code(MonitorLiveness::kActive));
  VLOG_WARN("coordinator", "monitor ", id, " is suspect");
  check_all_poll_completions();
}

void CoordinatorNode::declare_dead(MonitorId id, Session& session) {
  session.state = MonitorLiveness::kDead;
  ++fault_stats_.declared_dead;
  NetCoordinatorMetrics::get().deaths->inc();
  obs::trace().record(obs::TraceKind::kLivenessTransition, 0, id,
                      liveness_code(MonitorLiveness::kDead),
                      liveness_code(MonitorLiveness::kSuspect));
  VLOG_WARN("coordinator", "monitor ", id,
            " declared dead; reclaiming its allowance");
  for (auto& [task, rt] : tasks_) rt.pending_stats.erase(id);
  redistribute_and_push();
  check_all_poll_completions();
  maybe_reallocate_all();
}

void CoordinatorNode::redistribute_and_push() {
  // Zero the dead monitors' shares and rescale the survivors to each task's
  // full allowance (core/error_allocation semantics).
  bool redistributed = false;
  for (auto& [task, rt] : tasks_) {
    std::vector<MonitorId> ids;
    std::vector<double> current;
    std::vector<std::size_t> excluded;
    for (const auto& [id, session] : sessions_) {
      if (session.state == MonitorLiveness::kDead)
        excluded.push_back(ids.size());
      ids.push_back(id);
      current.push_back(rt.allowance[id]);
    }
    if (ids.empty() || excluded.size() == ids.size()) continue;
    const auto next = redistribute_allowance(rt.record.spec.error_allowance,
                                             current, excluded);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      rt.allowance[ids[i]] = next[i];
      auto& session = sessions_.at(ids[i]);
      if (session.connected && session.state == MonitorLiveness::kActive &&
          !session.done) {
        send_to(ids[i], session, AllowanceUpdate{next[i], task});
      }
    }
    redistributed = true;
  }
  if (redistributed) ++fault_stats_.allowance_reclaims;
}

void CoordinatorNode::serve_stats(TcpConnection& conn,
                                  const StatsRequest& request) {
  NetCoordinatorMetrics::get().stats_requests->inc();
  StatsReply reply;
  reply.global_polls = global_polls_;
  reply.reallocations = reallocations_;
  reply.alerts = static_cast<std::int64_t>(alerts_.size());
  reply.metrics = (request.flags & StatsRequest::kMetricsJson)
                      ? obs::metrics().to_json()
                      : obs::metrics().to_prometheus();
  if (request.flags & StatsRequest::kIncludeTrace) {
    // Newest events only: ~120 bytes/line keeps 2048 lines well under the
    // 1 MiB frame cap even with pathological payloads.
    reply.trace_jsonl = obs::trace().to_jsonl(2048);
  }
  conn.send_all(frame_payload(encode(Message{reply})));
}

void CoordinatorNode::persist_and_trace(const control::RegistryOp& op) {
  if (store_) {
    store_->append(op);
    store_->maybe_compact(registry_);
  }
  NetCoordinatorMetrics::get().registry_mutations->inc();
  obs::trace().record(obs::TraceKind::kTaskRegistryChange, 0, op.record.id,
                      static_cast<double>(op.record.epoch),
                      static_cast<double>(op.kind));
}

ControlReply CoordinatorNode::apply_add(const AddTask& request) {
  const auto result = registry_.add(request.task, request.spec);
  if (result.ok()) {
    persist_and_trace(*result.op);
    TaskRuntime& rt = install_task_runtime(result.op->record);
    push_attach_all(rt);
    VLOG_INFO("coordinator", "task ", request.task, " added at epoch ",
              result.epoch);
  }
  return ControlReply{result.status, result.epoch, registry_.version(),
                      result.error};
}

ControlReply CoordinatorNode::apply_update(const UpdateTask& request) {
  const auto result = registry_.update(request.task, request.spec);
  if (result.ok()) {
    persist_and_trace(*result.op);
    // Re-run the allowance allocation for the task: the new spec may carry
    // a different budget, so the split restarts even and re-adapts from
    // the monitors' next StatsReports.
    TaskRuntime& rt = install_task_runtime(result.op->record);
    rt.pending_stats.clear();
    push_attach_all(rt);
    VLOG_INFO("coordinator", "task ", request.task, " updated to epoch ",
              result.epoch);
  }
  return ControlReply{result.status, result.epoch, registry_.version(),
                      result.error};
}

ControlReply CoordinatorNode::apply_remove(const RemoveTask& request) {
  const auto result = registry_.remove(request.task);
  if (result.ok()) {
    persist_and_trace(*result.op);
    tasks_.erase(request.task);
    broadcast(TaskDetach{request.task, result.epoch});
    VLOG_INFO("coordinator", "task ", request.task, " removed at epoch ",
              result.epoch);
  }
  return ControlReply{result.status, result.epoch, registry_.version(),
                      result.error};
}

TaskListReply CoordinatorNode::build_task_list() const {
  TaskListReply reply;
  reply.registry_version = registry_.version();
  for (const auto& [task, rt] : tasks_) {
    TaskEntry entry;
    entry.task = task;
    entry.epoch = rt.record.epoch;
    entry.global_threshold = rt.record.spec.global_threshold;
    entry.error_allowance = rt.record.spec.error_allowance;
    entry.updating_period = rt.record.spec.updating_period;
    entry.allowance_split.assign(rt.allowance.begin(), rt.allowance.end());
    reply.tasks.push_back(std::move(entry));
  }
  return reply;
}

void CoordinatorNode::serve_control(TcpConnection& conn,
                                    const Message& request) {
  NetCoordinatorMetrics::get().control_requests->inc();
  Message reply;
  if (const auto* add = std::get_if<AddTask>(&request)) {
    reply = apply_add(*add);
  } else if (const auto* update = std::get_if<UpdateTask>(&request)) {
    reply = apply_update(*update);
  } else if (const auto* remove = std::get_if<RemoveTask>(&request)) {
    reply = apply_remove(*remove);
  } else {
    reply = build_task_list();
  }
  conn.send_all(frame_payload(encode(reply)));
}

void CoordinatorNode::disconnect_session(MonitorId id, Session& session) {
  session.conn.close();
  session.connected = false;
  if (!session.done) mark_suspect(id, session);
}

void CoordinatorNode::bind_session(PendingConn&& pending, const Hello& hello) {
  const MonitorId id = hello.monitor;
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    if (sessions_.size() >= options_.monitors) {
      VLOG_WARN("coordinator", "unexpected extra monitor ", id,
                "; dropping connection");
      return;
    }
    Session session;
    session.conn = std::move(pending.conn);
    session.reader = std::move(pending.reader);
    session.last_seen_ms = now_ms();
    it = sessions_.emplace(id, std::move(session)).first;
    for (auto& [task, rt] : tasks_) {
      rt.allowance.emplace(id, even_share(rt));
    }
    // Teach the newcomer the full task set. Monitors dedupe by epoch, so
    // the boot task's attach (epoch 1, which they seeded themselves) is a
    // no-op while dynamically added tasks take effect.
    for (auto& [task, rt] : tasks_) {
      send_to(id, it->second, make_attach(rt, id));
    }
    if (hello.resume) {
      // A monitor resuming against a restarted coordinator: resync every
      // task's allowance.
      ++fault_stats_.reconnects;
      for (auto& [task, rt] : tasks_) {
        send_to(id, it->second, AllowanceUpdate{rt.allowance[id], task});
      }
    }
    if (all_joined()) {
      for (auto& [task, rt] : tasks_) {
        if (rt.pending_poll_tick && !rt.active_poll) {
          const Tick tick = *rt.pending_poll_tick;
          rt.pending_poll_tick.reset();
          start_poll(task, rt, tick);
        }
      }
    }
  } else {
    Session& session = it->second;
    const bool was_dead = session.state == MonitorLiveness::kDead;
    const bool was_down = session.state != MonitorLiveness::kActive;
    session.conn.close();
    session.conn = std::move(pending.conn);
    session.reader = std::move(pending.reader);
    session.connected = true;
    session.state = MonitorLiveness::kActive;
    session.last_seen_ms = now_ms();
    ++fault_stats_.reconnects;
    if (was_down) {
      ++fault_stats_.recovered;
      NetCoordinatorMetrics::get().recoveries->inc();
      obs::trace().record(
          obs::TraceKind::kLivenessTransition, 0, id,
          liveness_code(MonitorLiveness::kActive),
          liveness_code(was_dead ? MonitorLiveness::kDead
                                 : MonitorLiveness::kSuspect));
    }
    if (was_dead) {
      // Re-admit: the monitor re-enters at the allowance floor and earns
      // its share back through StatsReports.
      VLOG_INFO("coordinator", "dead monitor ", id, " rejoined");
      redistribute_and_push();
    }
    // Resync handshake: full task set, then per-task allowance.
    for (auto& [task, rt] : tasks_) {
      send_to(id, session, make_attach(rt, id));
    }
    for (auto& [task, rt] : tasks_) {
      send_to(id, session, AllowanceUpdate{rt.allowance[id], task});
    }
  }
  // Frames that followed Hello in the same burst are already buffered.
  Session& session = it->second;
  while (auto payload = session.reader.next()) {
    const auto message = decode(*payload);
    if (!message) continue;
    handle_message(id, session, *message);
  }
}

void CoordinatorNode::handle_message(MonitorId id, Session& session,
                                     const Message& message) {
  if (session.state == MonitorLiveness::kSuspect) {
    // Any traffic from a suspect proves it alive again.
    session.state = MonitorLiveness::kActive;
    ++fault_stats_.recovered;
    NetCoordinatorMetrics::get().recoveries->inc();
    obs::trace().record(obs::TraceKind::kLivenessTransition, 0, id,
                        liveness_code(MonitorLiveness::kActive),
                        liveness_code(MonitorLiveness::kSuspect));
  }
  if (const auto* heartbeat = std::get_if<Heartbeat>(&message)) {
    ++fault_stats_.heartbeats;
    NetCoordinatorMetrics::get().heartbeats->inc();
    send_to(id, session, HeartbeatAck{heartbeat->seq});
    return;
  }
  if (std::get_if<Hello>(&message)) {
    return;  // duplicate Hello on an already-bound session
  }
  if (const auto* violation = std::get_if<LocalViolation>(&message)) {
    // One poll at a time per task: coincident local violations are answered
    // by the task's in-flight poll aggregate. Before the full house joined,
    // remember the violation and poll once everyone is in.
    const auto task_it = tasks_.find(violation->task);
    if (task_it == tasks_.end()) return;  // removed task's straggler
    TaskRuntime& rt = task_it->second;
    if (!all_joined()) {
      rt.pending_poll_tick = violation->tick;
    } else if (!rt.active_poll) {
      start_poll(violation->task, rt, violation->tick);
    }
    return;
  }
  if (const auto* response = std::get_if<PollResponse>(&message)) {
    session.last_values[response->task] = response->value;
    const auto task_it = tasks_.find(response->task);
    if (task_it == tasks_.end()) return;
    TaskRuntime& rt = task_it->second;
    if (rt.active_poll && response->poll_id == *rt.active_poll) {
      rt.poll_values[response->monitor] = response->value;
      check_poll_completion(response->task, rt);
    }
    return;
  }
  if (const auto* stats = std::get_if<StatsReport>(&message)) {
    const auto task_it = tasks_.find(stats->task);
    if (task_it == tasks_.end()) return;
    CoordStats s;
    s.avg_gain = stats->avg_gain;
    s.avg_allowance = stats->avg_allowance;
    s.observations = stats->observations;
    task_it->second.pending_stats[stats->monitor] = s;
    maybe_reallocate(stats->task, task_it->second);
    return;
  }
  if (const auto* bye = std::get_if<Bye>(&message)) {
    if (!session.done) {
      session.done = true;
      reported_ops_[bye->monitor] = bye->scheduled_ops + bye->forced_ops;
    }
    return;
  }
  (void)id;
}

void CoordinatorNode::run() {
  std::array<std::byte, 8192> buf;
  std::int64_t last_activity_ms = now_ms();

  while (!stop_.load()) {
    if (all_joined() && finished_sessions() >= options_.monitors) break;

    // fds: [0] listener, then pending connections, then live sessions.
    std::vector<pollfd> fds;
    std::vector<MonitorId> session_order;
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    const std::size_t pending_count = pending_.size();
    for (const auto& pending : pending_) {
      fds.push_back(pollfd{pending.conn.fd(), POLLIN, 0});
    }
    for (const auto& [id, session] : sessions_) {
      if (!session.connected) continue;
      fds.push_back(pollfd{session.conn.fd(), POLLIN, 0});
      session_order.push_back(id);
    }
    const int ready = ::poll(fds.data(), fds.size(), 20);
    if (ready < 0 && errno != EINTR) break;
    const std::int64_t now = now_ms();

    // Pending connections: wait for Hello, then bind to a session.
    std::vector<PendingConn> still_pending;
    for (std::size_t i = 0; i < pending_count; ++i) {
      PendingConn& pending = pending_[i];
      bool drop = false;
      bool bound = false;
      if (fds[1 + i].revents & (POLLIN | POLLHUP | POLLERR)) {
        const auto n = pending.conn.recv_some(buf);
        if (n && *n == 0) drop = true;
        if (n && *n > 0) {
          last_activity_ms = now;
          pending.reader.feed(std::span<const std::byte>(buf.data(), *n));
          while (auto payload = pending.reader.next()) {
            const auto message = decode(*payload);
            if (!message) continue;
            if (const auto* hello = std::get_if<Hello>(&*message)) {
              bind_session(std::move(pending), *hello);
              bound = true;
              break;
            }
            if (const auto* stats = std::get_if<StatsRequest>(&*message)) {
              // Introspection client (e.g. tools/volley_stats): answer and
              // drop; never a monitor.
              serve_stats(pending.conn, *stats);
              drop = true;
              break;
            }
            if (is_control_request(*message)) {
              // Control client (e.g. tools/volleyctl): mutate or list the
              // task registry, answer, drop; never a monitor.
              serve_control(pending.conn, *message);
              drop = true;
              break;
            }
            VLOG_WARN("coordinator", "dropping pre-Hello frame");
          }
        }
      }
      // A connection silent for a whole heartbeat timeout never said Hello.
      if (!bound && !drop &&
          now - pending.since_ms > options_.heartbeat_timeout_ms) {
        drop = true;
      }
      if (!bound && !drop) still_pending.push_back(std::move(pending));
    }
    pending_ = std::move(still_pending);

    // New connections (initial joins and reconnects alike); they are polled
    // for their Hello from the next loop turn on.
    if (fds[0].revents & POLLIN) {
      while (auto conn = listener_.accept()) {
        conn->set_nonblocking(true);
        PendingConn pending;
        pending.conn = std::move(*conn);
        pending.since_ms = now;
        pending_.push_back(std::move(pending));
        last_activity_ms = now;
      }
    }

    // Live sessions.
    for (std::size_t i = 0; i < session_order.size(); ++i) {
      const auto revents = fds[1 + pending_count + i].revents;
      if (!(revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const MonitorId id = session_order[i];
      Session& session = sessions_.at(id);
      if (!session.connected) continue;
      const auto n = session.conn.recv_some(buf);
      if (!n) continue;
      if (*n == 0) {
        // Peer vanished. After Bye this is the normal end of a monitor;
        // mid-session it makes the monitor suspect (it may reconnect).
        disconnect_session(id, session);
        continue;
      }
      last_activity_ms = now;
      session.last_seen_ms = now;
      session.reader.feed(std::span<const std::byte>(buf.data(), *n));
      while (auto payload = session.reader.next()) {
        const auto message = decode(*payload);
        if (!message) {
          VLOG_WARN("coordinator", "dropping malformed frame");
          continue;
        }
        handle_message(id, session, *message);
      }
    }

    // Liveness deadlines: silent -> suspect -> dead.
    for (auto& [id, session] : sessions_) {
      if (session.done) continue;
      if (session.state == MonitorLiveness::kActive &&
          now - session.last_seen_ms > options_.heartbeat_timeout_ms) {
        mark_suspect(id, session);
      } else if (session.state == MonitorLiveness::kSuspect &&
                 now - session.suspect_since_ms >
                     options_.staleness_bound_ms) {
        declare_dead(id, session);
      }
    }

    // Poll timeouts: settle each task with whatever arrived.
    for (auto& [task, rt] : tasks_) {
      if (rt.active_poll &&
          now - rt.poll_started_ms > options_.poll_timeout_ms) {
        VLOG_WARN("coordinator", "global poll for task ", task,
                  " timed out with ", rt.poll_values.size(), "/",
                  options_.monitors, " responses");
        finish_poll(task, rt);
      }
    }
    // Idle guard: a fully silent session means lost monitors; bail out.
    if (now - last_activity_ms > options_.idle_timeout_ms) {
      VLOG_ERROR("coordinator", "session idle too long; aborting");
      break;
    }
  }

  // request_stop() simulates a crash: vanish without a Shutdown so monitors
  // exercise their reconnect path against a successor.
  if (!stop_.load()) broadcast(Shutdown{});
}

}  // namespace volley::net
