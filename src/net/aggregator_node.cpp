#include "net/aggregator_node.h"

#include <poll.h>

#include <array>
#include <chrono>
#include <span>
#include <thread>
#include <utility>
#include <variant>

#include "common/log.h"
#include "core/task.h"
#include "obs/metrics.h"

namespace volley::net {

namespace {
std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct AggregatorMetrics {
  obs::Counter* escalations;
  obs::Counter* summaries;

  static AggregatorMetrics make(obs::MetricsRegistry& m) {
    return AggregatorMetrics{
        &m.counter("volley_net_shard_escalations_total",
                   "Downstream subset alerts escalated upstream"),
        &m.counter("volley_net_shard_summaries_total",
                   "ShardSummary frames pushed to the root"),
    };
  }

  static const AggregatorMetrics& get() { return obs::scoped_handles(&make); }
};
}  // namespace

AggregatorNode::AggregatorNode(const AggregatorNodeOptions& options)
    : options_(options),
      jitter_rng_(static_cast<std::uint64_t>(options.shard_id) * 7919 + 31) {
  CoordinatorNodeOptions down;
  down.port = options.listen_port;
  down.monitors = options.monitors;
  down.global_threshold = options.global_threshold;
  down.error_allowance = options.error_allowance;
  down.adaptive_allocation = options.adaptive_allocation;
  down.poll_timeout_ms = options.poll_timeout_ms;
  down.idle_timeout_ms = options.idle_timeout_ms;
  down.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
  down.staleness_bound_ms = options.staleness_bound_ms;
  down.registry_path = options.registry_path;
  down.poll_loop = options.poll_loop;
  down.net_threads = options.net_threads;
  down.uring = options.uring;
  // A settled subset poll above T_s is the shard's local violation one
  // level up; queue it for the upstream leg (this fires on the embedded
  // coordinator's thread).
  down.on_alert = [this](TaskId task, Tick tick, double value) {
    std::lock_guard<std::mutex> lock(alerts_mu_);
    pending_alerts_.push_back(PendingAlert{task, tick, value});
  };
  downstream_ = std::make_unique<CoordinatorNode>(down);
  // Both ends seed the boot task (id 0) at epoch 1 from consistent configs,
  // exactly as monitors do: the root's first attach push is a no-op here.
  downstream_tasks_.insert(kBootTaskId);
  upstream_epochs_[kBootTaskId] = 1;
}

void AggregatorNode::request_stop() {
  stop_.store(true);
  downstream_->request_stop();
}

bool AggregatorNode::send(const Message& message) {
  if (!connected_) return false;
  const auto payload = encode(message);
  if (conn_.send_all(frame_payload(payload))) return true;
  drop_connection();
  return false;
}

void AggregatorNode::drop_connection() {
  if (connected_) {
    VLOG_WARN("aggregator", "lost root coordinator link; shard ",
              options_.shard_id, " runs standalone while reconnecting");
  }
  conn_.close();
  connected_ = false;
  reader_ = FrameReader{};
  backoff_ms_ = options_.reconnect_backoff_ms;
  next_attempt_ms_ = now_ms();  // first retry is immediate
}

bool AggregatorNode::try_attach_session(bool resume) {
  auto conn = TcpConnection::try_connect(options_.coordinator_host,
                                         options_.coordinator_port,
                                         options_.connect_timeout_ms);
  if (!conn) return false;
  conn->set_nonblocking(true);
  conn_ = std::move(*conn);
  reader_ = FrameReader{};
  connected_ = true;
  last_rx_ms_ = now_ms();
  last_heartbeat_ms_ = 0;  // heartbeat on the next loop turn
  return send(ShardHello{options_.shard_id,
                         static_cast<std::uint32_t>(options_.monitors),
                         resume});
}

void AggregatorNode::maybe_reconnect(std::int64_t now) {
  if (connected_ || coordinator_lost_ || shutdown_received_) return;
  if (now < next_attempt_ms_) return;
  if (try_attach_session(/*resume=*/ever_connected_)) {
    failed_attempts_ = 0;
    if (ever_connected_) {
      ++reconnects_;
      VLOG_INFO("aggregator", "shard ", options_.shard_id,
                " reconnected to root (resume)");
    }
    ever_connected_ = true;
    return;
  }
  ++failed_attempts_;
  if (failed_attempts_ >= options_.max_reconnect_attempts) {
    VLOG_ERROR("aggregator", "giving up on root after ", failed_attempts_,
               " attempts; shard ", options_.shard_id,
               " runs standalone to the end");
    coordinator_lost_ = true;
    return;
  }
  const double jitter = jitter_rng_.uniform(0.75, 1.25);
  next_attempt_ms_ =
      now + static_cast<std::int64_t>(backoff_ms_ * jitter);
  backoff_ms_ = std::min(backoff_ms_ * 2, options_.reconnect_backoff_max_ms);
}

void AggregatorNode::heartbeat_if_due(std::int64_t now) {
  if (!connected_) return;
  if (now - last_heartbeat_ms_ < options_.heartbeat_interval_ms) return;
  if (send(Heartbeat{options_.shard_id, ++heartbeat_seq_})) {
    last_heartbeat_ms_ = now;
  }
}

void AggregatorNode::summaries_if_due(std::int64_t now) {
  // Drain only over a live link: the export accumulators keep aggregating
  // while disconnected, so a resumed session reports the full gap.
  if (!connected_) return;
  if (now - last_summary_ms_ < options_.summary_interval_ms) return;
  last_summary_ms_ = now;
  for (const ShardSummary& summary :
       downstream_->drain_shard_summaries(options_.shard_id)) {
    if (!send(summary)) break;
    ++summaries_sent_;
    AggregatorMetrics::get().summaries->inc();
  }
}

void AggregatorNode::drain_alerts() {
  std::vector<PendingAlert> alerts;
  {
    std::lock_guard<std::mutex> lock(alerts_mu_);
    alerts.swap(pending_alerts_);
  }
  for (const PendingAlert& alert : alerts) {
    // Without a root there is no one to escalate to; the subset alert is
    // already recorded downstream, which is the guarantee that matters.
    if (!connected_) break;
    if (send(LocalViolation{options_.shard_id, alert.tick, alert.value,
                            alert.task})) {
      ++escalations_;
      AggregatorMetrics::get().escalations->inc();
    }
  }
}

std::optional<Message> AggregatorNode::control_roundtrip(
    const Message& request) {
  auto conn = TcpConnection::try_connect("127.0.0.1", downstream_->port(),
                                         options_.connect_timeout_ms);
  if (!conn) return std::nullopt;
  if (!conn->send_all(frame_payload(encode(request)))) return std::nullopt;
  FrameReader reader;
  std::array<std::byte, 8192> buf;
  const std::int64_t deadline = now_ms() + options_.heartbeat_timeout_ms;
  while (now_ms() < deadline) {
    pollfd pfd{conn->fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const auto n = conn->recv_some(buf);
    if (!n || *n == 0) break;
    reader.feed(std::span<const std::byte>(buf.data(), *n));
    if (auto payload = reader.next()) return decode(*payload);
  }
  VLOG_WARN("aggregator", "loopback control round-trip failed");
  return std::nullopt;
}

void AggregatorNode::apply_attach(const TaskAttach& attach) {
  auto& known = upstream_epochs_[attach.task];
  if (attach.epoch <= known) return;  // replayed / stale revision: no-op
  known = attach.epoch;
  // The root's per-shard slice becomes the shard's own global task: its
  // local_threshold is this subset's T_s, its error_allowance the budget
  // err_s. The embedded coordinator re-slices both across the monitors.
  TaskSpec spec;
  spec.global_threshold = attach.local_threshold;
  spec.error_allowance = attach.error_allowance;
  spec.slack_ratio = attach.slack_ratio;
  spec.patience = attach.patience;
  spec.max_interval = attach.max_interval;
  spec.updating_period = attach.updating_period;
  const bool exists = downstream_tasks_.count(attach.task) != 0;
  Message request = exists ? Message{UpdateTask{attach.task, spec}}
                           : Message{AddTask{attach.task, spec}};
  auto reply = control_roundtrip(request);
  if (!exists && reply) {
    // A durable downstream registry may already hold the task (restart
    // restore): re-spec it instead.
    if (const auto* control = std::get_if<ControlReply>(&*reply);
        control != nullptr &&
        control->status == control::ControlStatus::kExists) {
      reply = control_roundtrip(Message{UpdateTask{attach.task, spec}});
    }
  }
  if (reply) {
    if (const auto* control = std::get_if<ControlReply>(&*reply);
        control != nullptr &&
        control->status == control::ControlStatus::kOk) {
      downstream_tasks_.insert(attach.task);
      VLOG_INFO("aggregator", "shard ", options_.shard_id, " fanned task ",
                attach.task, " through at root epoch ", attach.epoch);
    }
  }
}

void AggregatorNode::apply_detach(const TaskDetach& detach) {
  auto& known = upstream_epochs_[detach.task];
  if (detach.epoch <= known) return;
  known = detach.epoch;
  if (downstream_tasks_.count(detach.task) == 0) return;
  (void)control_roundtrip(Message{RemoveTask{detach.task}});
  downstream_tasks_.erase(detach.task);
}

void AggregatorNode::handle_upstream(const Message& message) {
  if (const auto* poll = std::get_if<PollRequest>(&message)) {
    // Cached-value semantics: answer with the latest settled subset
    // aggregate (see the header). 0.0 before the shard's first poll.
    send(PollResponse{options_.shard_id, poll->poll_id, poll->tick,
                      downstream_->shard_aggregate(poll->task), poll->task});
    return;
  }
  if (const auto* attach = std::get_if<TaskAttach>(&message)) {
    apply_attach(*attach);
    return;
  }
  if (const auto* detach = std::get_if<TaskDetach>(&message)) {
    apply_detach(*detach);
    return;
  }
  if (const auto* budget = std::get_if<ShardAllowance>(&message)) {
    // The root's budget push loops back into the embedded coordinator's
    // control path: live split rescale, no sampler restarts.
    (void)control_roundtrip(Message{*budget});
    return;
  }
  if (std::get_if<Shutdown>(&message) != nullptr) {
    shutdown_received_ = true;
    return;
  }
  // HeartbeatAck and anything unexpected: the read already refreshed
  // last_rx_ms_, which is all an ack is for.
}

void AggregatorNode::service_upstream(int timeout_ms) {
  if (!connected_) {
    std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
    return;
  }
  pollfd pfd{conn_.fd(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return;
  std::array<std::byte, 8192> buf;
  while (connected_) {
    const auto n = conn_.recv_some(buf);
    if (!n) break;  // drained to EAGAIN
    if (*n == 0) {
      drop_connection();
      return;
    }
    last_rx_ms_ = now_ms();
    reader_.feed(std::span<const std::byte>(buf.data(), *n));
    while (auto payload = reader_.next()) {
      const auto message = decode(*payload);
      if (!message) {
        VLOG_WARN("aggregator", "dropping malformed frame");
        continue;
      }
      handle_upstream(*message);
      if (!connected_) return;
    }
  }
}

void AggregatorNode::run() {
  std::thread downstream_thread([this] {
    downstream_->run();
    downstream_done_.store(true);
  });

  if (try_attach_session(/*resume=*/false)) {
    ever_connected_ = true;
  } else {
    backoff_ms_ = options_.reconnect_backoff_ms;
    next_attempt_ms_ = now_ms();
  }

  std::int64_t done_since_ms = 0;
  while (!stop_.load()) {
    std::int64_t now = now_ms();
    maybe_reconnect(now);
    if (connected_ && now - last_rx_ms_ > options_.coordinator_timeout_ms) {
      drop_connection();
    }
    service_upstream(10);
    drain_alerts();
    now = now_ms();
    heartbeat_if_due(now);
    summaries_if_due(now);

    if (downstream_done_.load()) {
      if (done_since_ms == 0) done_since_ms = now;
      if (connected_ && !bye_sent_) {
        // The shard is finished: report the subset's total op count (each
        // monitor's Bye, summed) and await the root's Shutdown.
        std::int64_t ops = 0;
        for (const auto& [id, n] : downstream_->reported_ops()) {
          (void)id;
          ops += n;
        }
        if (send(Bye{options_.shard_id, ops, 0})) {
          bye_sent_ = true;
          bye_sent_ms_ = now;
        }
      }
      if (shutdown_received_ || coordinator_lost_) break;
      if (bye_sent_ && now - bye_sent_ms_ > options_.shutdown_grace_ms) break;
      if (!connected_ && now - done_since_ms > options_.shutdown_grace_ms)
        break;
    }
  }

  downstream_->request_stop();  // no-op when the run already returned
  downstream_thread.join();
}

}  // namespace volley::net
