#include "net/chaos_proxy.h"

#include <poll.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "common/log.h"
#include "net/messages.h"

namespace volley::net {

namespace {
std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kPartialWriteGapMs = 3;
}  // namespace

ChaosProxy::ChaosProxy(const ChaosProxyOptions& options)
    : options_(options),
      listener_(options.listen_port),
      rng_(options.plan.message_loss.seed) {
  options_.plan.validate();
  if (options_.upstream_port == 0)
    throw std::invalid_argument("ChaosProxy: upstream_port required");
  listener_.set_nonblocking(true);
}

void ChaosProxy::cut(Link& link) {
  if (link.closed) return;
  if (reactor_mode_) {
    if (link.client.valid()) reactor_.remove_fd(link.client.fd());
    if (link.upstream.valid()) reactor_.remove_fd(link.upstream.fd());
    if (link.timer_armed) {
      reactor_.cancel_timer(link.timer);
      link.timer_armed = false;
    }
  }
  link.client.close();
  link.upstream.close();
  link.closed = true;
}

void ChaosProxy::admit_frame(Link& link, bool from_client,
                             std::vector<std::byte> payload,
                             std::int64_t now) {
  const NetFaultPlan& plan = options_.plan;
  // Frame-type-targeted drops: the simulator's message-loss semantics
  // applied on the wire.
  const auto message = decode(payload);
  if (message) {
    if (std::holds_alternative<LocalViolation>(*message) &&
        rng_.bernoulli(plan.message_loss.violation_report_loss)) {
      ++stats_.dropped_violations;
      return;
    }
    if (std::holds_alternative<PollResponse>(*message) &&
        rng_.bernoulli(plan.message_loss.poll_response_loss)) {
      ++stats_.dropped_responses;
      return;
    }
    if ((std::holds_alternative<Heartbeat>(*message) ||
         std::holds_alternative<HeartbeatAck>(*message)) &&
        rng_.bernoulli(plan.heartbeat_loss)) {
      ++stats_.dropped_heartbeats;
      return;
    }
  }

  QueuedFrame frame;
  frame.bytes = frame_payload(payload);
  frame.due_ms = now;
  if (plan.delay_prob > 0.0 && rng_.bernoulli(plan.delay_prob)) {
    frame.due_ms = now + plan.delay_ms;
    ++stats_.delayed_frames;
  }
  if (plan.partial_write_prob > 0.0 &&
      rng_.bernoulli(plan.partial_write_prob) && frame.bytes.size() > 1) {
    frame.partial = true;
    ++stats_.partial_writes;
  }
  (from_client ? link.to_upstream : link.to_client)
      .push_back(std::move(frame));

  ++link.frames;
  ++stats_.forwarded_frames;
  if (options_.plan.disconnect_after_frames > 0 &&
      link.frames >= options_.plan.disconnect_after_frames &&
      stats_.disconnects < options_.plan.max_disconnects) {
    ++stats_.disconnects;
    VLOG_WARN("chaos", "cutting proxied connection after ", link.frames,
              " frames");
    cut(link);
  }
}

void ChaosProxy::ingest(Link& link, bool from_client,
                        std::span<const std::byte> data, std::int64_t now) {
  FrameReader& reader =
      from_client ? link.client_reader : link.upstream_reader;
  reader.feed(data);
  while (auto payload = reader.next()) {
    admit_frame(link, from_client, std::move(*payload), now);
    if (link.closed) return;
  }
}

void ChaosProxy::flush(Link& link, std::int64_t now) {
  const auto flush_direction = [&](std::deque<QueuedFrame>& queue,
                                   TcpConnection& out) {
    while (!queue.empty() && !link.closed) {
      QueuedFrame& frame = queue.front();
      if (frame.due_ms > now) break;  // FIFO: later frames wait behind it
      if (frame.partial && frame.offset == 0) {
        // First half now, the rest a few milliseconds later.
        const std::size_t half = frame.bytes.size() / 2;
        if (!out.send_all(std::span<const std::byte>(frame.bytes.data(),
                                                     half))) {
          cut(link);
          return;
        }
        frame.offset = half;
        frame.partial = false;
        frame.due_ms = now + kPartialWriteGapMs;
        break;
      }
      if (!out.send_all(std::span<const std::byte>(
              frame.bytes.data() + frame.offset,
              frame.bytes.size() - frame.offset))) {
        cut(link);
        return;
      }
      queue.pop_front();
    }
  };
  flush_direction(link.to_upstream, link.upstream);
  flush_direction(link.to_client, link.client);
}

void ChaosProxy::run() {
  if (resolve_poll_loop(options_.poll_loop)) {
    run_poll_loop();
  } else {
    run_reactor();
  }
}

// The pre-reactor 5 ms busy-poll, preserved as the behavioral baseline
// behind VOLLEY_POLL_LOOP (plus the loop_wakeups_ count the tests compare).
void ChaosProxy::run_poll_loop() {
  std::array<std::byte, 8192> buf;
  while (!stop_.load()) {
    loop_wakeups_.fetch_add(1, std::memory_order_relaxed);
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    const std::size_t link_count = links_.size();
    for (const auto& link : links_) {
      // Closed links keep placeholder entries so indices line up.
      const int cfd = link->closed ? -1 : link->client.fd();
      const int ufd = link->closed ? -1 : link->upstream.fd();
      fds.push_back(pollfd{cfd, POLLIN, 0});
      fds.push_back(pollfd{ufd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 5);
    if (ready < 0 && errno != EINTR) break;
    const std::int64_t now = now_ms();

    for (std::size_t i = 0; i < link_count; ++i) {
      Link& link = *links_[i];
      if (link.closed) continue;
      for (int side = 0; side < 2; ++side) {
        const bool from_client = side == 0;
        if (!(fds[1 + 2 * i + side].revents & (POLLIN | POLLHUP | POLLERR)))
          continue;
        TcpConnection& in = from_client ? link.client : link.upstream;
        const auto n = in.recv_some(buf);
        if (!n) continue;
        if (*n == 0) {
          // One side hung up: flush what is queued, then mirror the close.
          flush(link, now + (1 << 20));
          cut(link);
          break;
        }
        ingest(link, from_client,
               std::span<const std::byte>(buf.data(), *n), now);
        if (link.closed) break;
      }
    }

    for (auto& link : links_) {
      if (!link->closed) flush(*link, now);
    }

    if (fds[0].revents & POLLIN) {
      while (auto client = listener_.accept()) {
        auto upstream = TcpConnection::try_connect(
            options_.upstream_host, options_.upstream_port,
            options_.upstream_connect_timeout_ms);
        if (!upstream) {
          VLOG_WARN("chaos", "upstream refused; dropping client");
          continue;
        }
        client->set_nonblocking(true);
        upstream->set_nonblocking(true);
        auto link = std::make_unique<Link>();
        link->client = std::move(*client);
        link->upstream = std::move(*upstream);
        links_.push_back(std::move(link));
        ++stats_.connections;
      }
    }

    // Garbage-collect fully closed links.
    std::erase_if(links_,
                  [](const std::unique_ptr<Link>& l) { return l->closed; });
  }
  for (auto& link : links_) cut(*link);
}

// ---------------------------------------------------------------------------
// Reactor path: byte flow and fault injection are identical; only the
// waiting changes. An idle proxy (no queued frames) sleeps in epoll with no
// timers armed — zero wakeups until a byte arrives — and a held (delayed or
// split) frame arms one timer at exactly its due time.

// The proxy stays single-loop on purpose even when VOLLEY_NET_THREADS > 1:
// every link shares one fault-injection RNG, and sharding links across
// threads would make drop/delay/split decisions order-dependent — the
// determinism the fault suites replay against. The readiness backend
// (epoll / io_uring via VOLLEY_URING) still applies.
void ChaosProxy::run_reactor() {
  reactor_mode_ = true;
  VLOG_INFO("chaos_proxy", "reactor backend: ",
            backend_name(reactor_.backend()));
  reactor_.add_fd(listener_.fd(),
                  [this](std::uint32_t) { reactor_on_accept(); });
  while (!stop_.load()) {
    reactor_.run_once(-1);
    loop_wakeups_.fetch_add(1, std::memory_order_relaxed);
    // Closed links had their fds and timer deregistered in cut(); their
    // storage is only reclaimed here, between dispatch batches.
    std::erase_if(links_,
                  [](const std::unique_ptr<Link>& l) { return l->closed; });
  }
  reactor_.remove_fd(listener_.fd());
  for (auto& link : links_) cut(*link);
  reactor_mode_ = false;
}

void ChaosProxy::reactor_on_accept() {
  while (auto client = listener_.accept()) {
    auto upstream = TcpConnection::try_connect(
        options_.upstream_host, options_.upstream_port,
        options_.upstream_connect_timeout_ms);
    if (!upstream) {
      VLOG_WARN("chaos", "upstream refused; dropping client");
      continue;
    }
    client->set_nonblocking(true);
    upstream->set_nonblocking(true);
    auto link = std::make_unique<Link>();
    link->client = std::move(*client);
    link->upstream = std::move(*upstream);
    Link* raw = link.get();
    // Raw captures are safe: cut() deregisters both fds and the timer
    // before the link can be garbage-collected.
    reactor_.add_fd(raw->client.fd(), [this, raw](std::uint32_t ev) {
      reactor_on_link(*raw, /*from_client=*/true, ev);
    });
    reactor_.add_fd(raw->upstream.fd(), [this, raw](std::uint32_t ev) {
      reactor_on_link(*raw, /*from_client=*/false, ev);
    });
    links_.push_back(std::move(link));
    ++stats_.connections;
  }
}

void ChaosProxy::reactor_on_link(Link& link, bool from_client,
                                 std::uint32_t events) {
  if (link.closed || !Reactor::readable(events)) return;
  std::array<std::byte, 8192> buf;
  TcpConnection& in = from_client ? link.client : link.upstream;
  while (!link.closed) {
    const auto n = in.recv_some(buf);
    if (!n) break;  // drained to EAGAIN
    const std::int64_t now = now_ms();
    if (*n == 0) {
      // One side hung up: flush what is queued, then mirror the close.
      flush(link, now + (1 << 20));
      cut(link);
      return;
    }
    ingest(link, from_client, std::span<const std::byte>(buf.data(), *n),
           now);
  }
  if (!link.closed) {
    flush(link, now_ms());
    schedule_link_timer(link);
  }
}

void ChaosProxy::schedule_link_timer(Link& link) {
  std::optional<std::int64_t> due;
  if (!link.to_upstream.empty()) due = link.to_upstream.front().due_ms;
  if (!link.to_client.empty()) {
    const std::int64_t d = link.to_client.front().due_ms;
    if (!due || d < *due) due = d;
  }
  if (!due || link.closed) {
    if (link.timer_armed) {
      reactor_.cancel_timer(link.timer);
      link.timer_armed = false;
    }
    return;
  }
  // An armed earlier-or-equal deadline only fires early; the callback
  // re-evaluates and re-arms, so keep it.
  if (link.timer_armed && link.timer_due <= *due) return;
  if (link.timer_armed) reactor_.cancel_timer(link.timer);
  Link* raw = &link;
  const std::int64_t delay = std::max<std::int64_t>(*due - now_ms(), 0) + 1;
  link.timer = reactor_.add_timer(delay, [this, raw] {
    raw->timer_armed = false;
    if (raw->closed) return;
    flush(*raw, now_ms());
    schedule_link_timer(*raw);
  });
  link.timer_armed = true;
  link.timer_due = *due;
}

}  // namespace volley::net
