// The middle tier of a two-level Volley fleet (DESIGN.md §13): one
// AggregatorNode owns a shard of the monitor fleet and speaks both sides of
// the wire protocol.
//
//   monitors  --Hello-->  [embedded CoordinatorNode]   (downstream leg)
//   aggregator --ShardHello--> root coordinator        (upstream leg)
//
// Downstream, the node embeds a full CoordinatorNode on its own thread: the
// shard's monitors connect to it and it runs the complete single-tier
// protocol over the subset — adaptive sampling, local violations, subset
// polls against the shard's threshold slice T_s, and AIMD allowance
// reallocation within the shard's budget err_s. Nothing about a monitor
// changes when it reports to an aggregator instead of a root coordinator
// (the topology is invisible one level down).
//
// Upstream, the node is a super-monitor of weight n_s:
//  * ShardHello{shard, monitors} announces the shard and its weight; the
//    root slices threshold and budget by weight (T·w/W, err·w/W).
//  * A downstream alert (subset aggregate > T_s) escalates as
//    LocalViolation{monitor = shard}; the root then polls every shard.
//  * PollRequest is answered from the downstream coordinator's latest
//    settled subset aggregate — cached-value semantics, the net tier's
//    analogue of the stale-value fallback (a quiet shard's last sum stands
//    in; the sim tier force-samples instead, see shard/sharded_coordinator).
//  * Once per summary interval, every live task's accumulated coordination
//    stats compress into a ShardSummary{r, e, yield, allowance_used} frame —
//    the root feeds (r, e) to the identical allocation algorithm it would
//    run over raw monitors.
//  * ShardAllowance (the root's budget push) loops back into the embedded
//    coordinator over its own control port, rescaling the shard's live
//    allowance split in place — no sampler restarts.
//  * Task control fans through: TaskAttach/TaskDetach from the root replay
//    as AddTask/UpdateTask/RemoveTask against the embedded registry, gated
//    by the root's epochs so replays and stale pushes are no-ops.
//
// Resilience mirrors MonitorNode: heartbeats upstream, capped-backoff
// reconnect with ShardHello{resume}, and a root loss leaves the shard
// running standalone (monitors keep their subset guarantees) to completion.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "net/coordinator_node.h"
#include "net/framing.h"
#include "net/messages.h"
#include "net/socket.h"

namespace volley::net {

struct AggregatorNodeOptions {
  /// The shard's id in the root's monitor-id space.
  std::uint32_t shard_id{0};
  std::string coordinator_host{"127.0.0.1"};
  std::uint16_t coordinator_port{0};  // upstream root
  /// Downstream listener for the shard's monitors (0 = pick a free port;
  /// read back via port()).
  std::uint16_t listen_port{0};
  /// Downstream monitor count — the shard's weight upstream.
  std::size_t monitors{1};
  /// Boot task slices: T_s (the shard's threshold slice, what the subset's
  /// local thresholds sum to) and err_s (the shard's error budget).
  double global_threshold{0.0};
  double error_allowance{0.01};
  bool adaptive_allocation{true};
  // Downstream coordinator knobs (see CoordinatorNodeOptions).
  int poll_timeout_ms{1000};
  int idle_timeout_ms{30000};
  int heartbeat_timeout_ms{2000};
  int staleness_bound_ms{6000};
  std::string registry_path{};
  int poll_loop{-1};
  /// Embedded coordinator's reactor loop count / backend (DESIGN.md §14):
  /// -1 follows VOLLEY_NET_THREADS / VOLLEY_URING.
  int net_threads{-1};
  int uring{-1};
  // Upstream client knobs (see MonitorNodeOptions).
  int heartbeat_interval_ms{500};
  int summary_interval_ms{500};
  int coordinator_timeout_ms{2500};
  int connect_timeout_ms{1000};
  int reconnect_backoff_ms{50};
  int reconnect_backoff_max_ms{1000};
  int max_reconnect_attempts{60};
  int shutdown_grace_ms{2000};
};

class AggregatorNode {
 public:
  explicit AggregatorNode(const AggregatorNodeOptions& options);

  /// The downstream listener port monitors connect to.
  std::uint16_t port() const { return downstream_->port(); }

  /// Blocking: runs the embedded coordinator (own thread) and the upstream
  /// leg until the shard's monitors finish and the root acknowledges (or the
  /// shutdown grace expires / the root is lost).
  void run();

  /// Asks a running node to stop: the embedded coordinator drops its
  /// sessions (a crash, as CoordinatorNode::request_stop) and the upstream
  /// leg exits without a Bye.
  void request_stop();

  // Results, valid after run() returns.
  const CoordinatorNode& downstream() const { return *downstream_; }
  std::int64_t escalations() const { return escalations_; }
  std::int64_t summaries_sent() const { return summaries_sent_; }
  std::int64_t reconnects() const { return reconnects_; }
  bool coordinator_lost() const { return coordinator_lost_; }

 private:
  struct PendingAlert {
    TaskId task{0};
    Tick tick{0};
    double value{0.0};
  };

  bool send(const Message& message);
  bool try_attach_session(bool resume);
  void drop_connection();
  void maybe_reconnect(std::int64_t now);
  void heartbeat_if_due(std::int64_t now);
  void summaries_if_due(std::int64_t now);
  void drain_alerts();
  /// Waits up to `timeout_ms` for upstream readability, then drains and
  /// handles every buffered frame. False when the link dropped.
  void service_upstream(int timeout_ms);
  void handle_upstream(const Message& message);
  void apply_attach(const TaskAttach& attach);
  void apply_detach(const TaskDetach& detach);
  /// One control round-trip against the embedded coordinator's own port
  /// (the loopback path ShardAllowance and task fan-through ride).
  std::optional<Message> control_roundtrip(const Message& request);

  AggregatorNodeOptions options_;
  std::unique_ptr<CoordinatorNode> downstream_;
  std::atomic<bool> downstream_done_{false};
  std::atomic<bool> stop_{false};

  std::mutex alerts_mu_;
  std::vector<PendingAlert> pending_alerts_;

  /// The root's epoch per task id (tombstones included), gating the
  /// attach/detach fan-through exactly like MonitorNode::known_epochs_.
  std::map<TaskId, std::uint64_t> upstream_epochs_;
  std::set<TaskId> downstream_tasks_;  // live in the embedded registry

  // Upstream connection state (only touched from run()'s thread).
  TcpConnection conn_;
  FrameReader reader_;
  bool connected_{false};
  bool ever_connected_{false};
  bool coordinator_lost_{false};
  bool bye_sent_{false};
  bool shutdown_received_{false};
  std::int64_t bye_sent_ms_{0};
  std::int64_t last_rx_ms_{0};
  std::int64_t last_heartbeat_ms_{0};
  std::int64_t last_summary_ms_{0};
  std::uint64_t heartbeat_seq_{0};
  int backoff_ms_{0};
  std::int64_t next_attempt_ms_{0};
  int failed_attempts_{0};
  std::int64_t escalations_{0};
  std::int64_t summaries_sent_{0};
  std::int64_t reconnects_{0};
  Rng jitter_rng_;
};

}  // namespace volley::net
