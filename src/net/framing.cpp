#include "net/framing.h"

#include <cstring>
#include <stdexcept>

namespace volley {

std::vector<std::byte> frame_payload(std::span<const std::byte> payload) {
  if (payload.size() > kMaxFrameBytes)
    throw std::runtime_error("frame_payload: payload too large");
  std::vector<std::byte> out(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(out.data(), &len, 4);  // little-endian on all supported targets
  std::memcpy(out.data() + 4, payload.data(), payload.size());
  return out;
}

void FrameReader::feed(std::span<const std::byte> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::optional<std::vector<std::byte>> FrameReader::next() {
  if (buffer_.size() < 4) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, buffer_.data(), 4);
  if (len > kMaxFrameBytes)
    throw std::runtime_error("FrameReader: oversized frame");
  if (buffer_.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  std::vector<std::byte> payload(buffer_.begin() + 4,
                                 buffer_.begin() + 4 + len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + len);
  return payload;
}

}  // namespace volley
