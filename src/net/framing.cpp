#include "net/framing.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <time.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net/io_counters.h"
#include "obs/metrics.h"

namespace volley {

std::vector<std::byte> frame_payload(std::span<const std::byte> payload) {
  if (payload.size() > kMaxFrameBytes)
    throw std::runtime_error("frame_payload: payload too large");
  std::vector<std::byte> out(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(out.data(), &len, 4);  // little-endian on all supported targets
  std::memcpy(out.data() + 4, payload.data(), payload.size());
  return out;
}

void FrameReader::feed(std::span<const std::byte> data) {
  if (offset_ == buffer_.size()) {
    buffer_.clear();
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::optional<std::vector<std::byte>> FrameReader::next() {
  const std::size_t avail = buffer_.size() - offset_;
  if (avail < 4) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, buffer_.data() + offset_, 4);
  if (len > kMaxFrameBytes)
    throw std::runtime_error("FrameReader: oversized frame");
  if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  const auto begin = buffer_.begin() + static_cast<std::ptrdiff_t>(offset_);
  std::vector<std::byte> payload(begin + 4, begin + 4 + len);
  offset_ += 4 + static_cast<std::size_t>(len);
  if (offset_ == buffer_.size()) {
    buffer_.clear();
    offset_ = 0;
  } else if (offset_ >= kCompactBytes) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  return payload;
}

namespace {

struct WriterMetrics {
  obs::Counter* writev_calls{nullptr};
  obs::Counter* frames_written{nullptr};
  obs::HistogramMetric* frames_per_write{nullptr};
};

const WriterMetrics& writer_metrics() {
  static auto make = [](obs::MetricsRegistry& m) {
    WriterMetrics h;
    h.writev_calls = &m.counter("volley_net_writev_calls_total",
                                "Vectored frame writes issued");
    h.frames_written = &m.counter("volley_net_frames_written_total",
                                  "Frames fully drained to the kernel");
    h.frames_per_write = &m.histogram(
        "volley_net_frames_per_writev", 0.0, 64.0, 32,
        "Frames gathered into one vectored write (batching factor)");
    return h;
  };
  return obs::scoped_handles<WriterMetrics>(make);
}

}  // namespace

void FrameWriter::enqueue(std::vector<std::byte> frame) {
  queued_bytes_ += frame.size();
  queue_.push_back(std::move(frame));
}

FrameWriter::FlushResult FrameWriter::flush(int fd) {
  const auto& met = writer_metrics();
  while (!queue_.empty()) {
    iovec iov[kMaxIov];
    std::size_t n = 0;
    for (auto it = queue_.begin(); it != queue_.end() && n < kMaxIov; ++it) {
      const std::size_t skip = (n == 0) ? front_offset_ : 0;
      iov[n].iov_base =
          const_cast<std::byte*>(it->data() + skip);  // NOLINT: kernel ABI
      iov[n].iov_len = it->size() - skip;
      ++n;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n;
    ssize_t w = 0;
    do {
      net::count_io_syscalls();
      w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    } while (w < 0 && errno == EINTR);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return FlushResult::kBlocked;
      return FlushResult::kPeerGone;
    }
    stats_.writev_calls += 1;
    stats_.bytes_written += w;
    met.writev_calls->inc();
    // Consume w bytes across the queue front.
    std::size_t remaining = static_cast<std::size_t>(w);
    queued_bytes_ -= remaining;
    int frames_done = 0;
    while (remaining > 0) {
      const std::size_t left = queue_.front().size() - front_offset_;
      if (remaining >= left) {
        remaining -= left;
        front_offset_ = 0;
        queue_.pop_front();
        ++frames_done;
      } else {
        front_offset_ += remaining;
        remaining = 0;
      }
    }
    if (frames_done != 0) {
      stats_.frames_written += frames_done;
      met.frames_written->inc(frames_done);
      met.frames_per_write->observe(static_cast<double>(frames_done));
    }
  }
  return FlushResult::kDrained;
}

FrameWriter::FlushResult FrameWriter::flush_blocking(int fd, int timeout_ms) {
  timespec start{};
  clock_gettime(CLOCK_MONOTONIC, &start);
  for (;;) {
    const FlushResult r = flush(fd);
    if (r != FlushResult::kBlocked) return r;
    timespec now{};
    clock_gettime(CLOCK_MONOTONIC, &now);
    const auto waited_ms =
        static_cast<int>((now.tv_sec - start.tv_sec) * 1000 +
                         (now.tv_nsec - start.tv_nsec) / 1000000);
    const int remaining = timeout_ms - waited_ms;
    if (remaining <= 0) return FlushResult::kBlocked;
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, remaining);
    if (ready < 0 && errno != EINTR) return FlushResult::kPeerGone;
  }
}

}  // namespace volley
