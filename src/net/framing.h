// Length-prefixed message framing over a TCP stream.
//
// Wire format: a 4-byte little-endian payload length followed by the
// payload. The FrameReader is an incremental decoder: feed it whatever
// recv() returned and pop complete frames — partial frames simply wait for
// more bytes, and oversized lengths are rejected so a corrupt peer cannot
// make us allocate unbounded memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace volley {

constexpr std::size_t kMaxFrameBytes = 1 << 20;  // 1 MiB protocol limit

/// Prepends the length header to a payload.
std::vector<std::byte> frame_payload(std::span<const std::byte> payload);

class FrameReader {
 public:
  /// Appends raw stream bytes. Throws std::runtime_error on a frame whose
  /// declared length exceeds kMaxFrameBytes (protocol violation).
  void feed(std::span<const std::byte> data);

  /// Pops the next complete frame's payload, if any.
  std::optional<std::vector<std::byte>> next();

  std::size_t buffered_bytes() const { return buffer_.size() - offset_; }

 private:
  // Consumed frames advance a cursor instead of erasing the vector front
  // (an O(buffered) memmove per frame — measurable on batched ingress,
  // where one readable event can carry hundreds of frames). The prefix is
  // reclaimed when the buffer empties or the cursor passes kCompactBytes.
  static constexpr std::size_t kCompactBytes = 64 * 1024;

  std::vector<std::byte> buffer_;
  std::size_t offset_{0};  // bytes of buffer_ already consumed
};

/// Batched frame egress for the reactor path: queued frames coalesce into a
/// single vectored write (`sendmsg` scatter-gather, MSG_NOSIGNAL) per flush,
/// and a partially-written front frame resumes at its offset on the next
/// flush — the socket stays non-blocking and EAGAIN surfaces as kBlocked so
/// the caller can arm EPOLLOUT instead of spinning.
class FrameWriter {
 public:
  enum class FlushResult {
    kDrained,   // queue empty, disarm EPOLLOUT
    kBlocked,   // kernel buffer full mid-queue, arm EPOLLOUT
    kPeerGone,  // hard send error, tear the session down
  };

  /// Queues one already-framed buffer (a frame_payload() result).
  void enqueue(std::vector<std::byte> frame);

  /// Drops everything queued (session reconnect: frames addressed to the
  /// old connection must not leak onto the new one mid-frame).
  void clear() {
    queue_.clear();
    front_offset_ = 0;
    queued_bytes_ = 0;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t queued_frames() const { return queue_.size(); }
  std::size_t queued_bytes() const { return queued_bytes_; }

  /// Writes as much as the kernel accepts, gathering up to kMaxIov queued
  /// frames per vectored write. EINTR is retried internally.
  FlushResult flush(int fd);

  /// Drains the whole queue, waiting on POLLOUT between bursts — the
  /// shutdown-broadcast path, where losing the final frame matters more
  /// than stalling a dying loop. kBlocked here means the deadline passed.
  FlushResult flush_blocking(int fd, int timeout_ms);

  struct Stats {
    std::int64_t writev_calls{0};    // vectored writes issued
    std::int64_t frames_written{0};  // frames fully drained to the kernel
    std::int64_t bytes_written{0};
  };
  const Stats& stats() const { return stats_; }

  static constexpr std::size_t kMaxIov = 64;

 private:
  std::deque<std::vector<std::byte>> queue_;
  std::size_t front_offset_{0};  // bytes of queue_.front() already sent
  std::size_t queued_bytes_{0};
  Stats stats_;
};

}  // namespace volley
