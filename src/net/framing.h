// Length-prefixed message framing over a TCP stream.
//
// Wire format: a 4-byte little-endian payload length followed by the
// payload. The FrameReader is an incremental decoder: feed it whatever
// recv() returned and pop complete frames — partial frames simply wait for
// more bytes, and oversized lengths are rejected so a corrupt peer cannot
// make us allocate unbounded memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace volley {

constexpr std::size_t kMaxFrameBytes = 1 << 20;  // 1 MiB protocol limit

/// Prepends the length header to a payload.
std::vector<std::byte> frame_payload(std::span<const std::byte> payload);

class FrameReader {
 public:
  /// Appends raw stream bytes. Throws std::runtime_error on a frame whose
  /// declared length exceeds kMaxFrameBytes (protocol violation).
  void feed(std::span<const std::byte> data);

  /// Pops the next complete frame's payload, if any.
  std::optional<std::vector<std::byte>> next();

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

}  // namespace volley
