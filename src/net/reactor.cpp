#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <system_error>

#include "net/io_counters.h"
#include "obs/metrics.h"

// Compile-time probe: the io_uring backend needs the uapi header and the
// syscall numbers. When either is missing the backend is compiled out and
// uring_supported() is constant false — the epoll path is always present.
#if defined(__has_include)
#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define VOLLEY_HAVE_URING 1
#endif
#endif
#endif

namespace volley::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

struct ReactorMetrics {
  obs::Counter* wakeups{nullptr};
  obs::Counter* io_events{nullptr};
  obs::Counter* timers_fired{nullptr};
  obs::HistogramMetric* dispatch_ms{nullptr};
};

const ReactorMetrics& reactor_metrics() {
  static auto make = [](obs::MetricsRegistry& m) {
    ReactorMetrics h;
    h.wakeups = &m.counter("volley_reactor_wakeups_total",
                           "Reactor loop turns (wait returns)");
    h.io_events = &m.counter("volley_reactor_io_events_total",
                             "File-descriptor events dispatched");
    h.timers_fired = &m.counter("volley_reactor_timers_fired_total",
                                "Timer-wheel callbacks fired");
    h.dispatch_ms = &m.histogram(
        "volley_reactor_dispatch_ms", 0.0, 50.0, 50,
        "Per-turn dispatch latency (I/O handlers + due timers), ms");
    return h;
  };
  return obs::scoped_handles<ReactorMetrics>(make);
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  return v != nullptr && std::strcmp(v, "0") != 0;
}

}  // namespace

bool poll_loop_from_env() { return env_flag("VOLLEY_POLL_LOOP"); }

bool uring_from_env() { return env_flag("VOLLEY_URING"); }

const char* backend_name(ReactorBackend backend) {
  return backend == ReactorBackend::kUring ? "io_uring" : "epoll";
}

bool Reactor::readable(std::uint32_t events) {
  return (events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
}

bool Reactor::writable(std::uint32_t events) {
  return (events & EPOLLOUT) != 0;
}

bool Reactor::hangup(std::uint32_t events) {
  return (events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
}

std::int64_t Reactor::now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

// ---------------------------------------------------------------------------
// io_uring backend: a minimal liburing-free ring. All SQEs (POLL_ADD /
// POLL_REMOVE) queue locally and ride the turn's single io_uring_enter;
// completions come back tagged with (gen << 32) | fd so a superseded
// registration can never dispatch into a newer handler.

#ifdef VOLLEY_HAVE_URING

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags, const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

// user_data layout. kIgnoreKey tags housekeeping SQEs (POLL_REMOVE) whose
// completions carry no event.
constexpr std::uint64_t kIgnoreKey = ~std::uint64_t{0};

std::uint64_t make_key(int fd, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         static_cast<std::uint32_t>(fd);
}
int key_fd(std::uint64_t key) { return static_cast<int>(key & 0xffffffffU); }
std::uint32_t key_gen(std::uint64_t key) {
  return static_cast<std::uint32_t>(key >> 32);
}

}  // namespace

struct Reactor::Uring {
  int fd{-1};
  io_uring_params params{};
  std::uint8_t* sq_ptr{nullptr};
  std::size_t sq_len{0};
  std::uint8_t* cq_ptr{nullptr};  // == sq_ptr under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_len{0};
  io_uring_sqe* sqes{nullptr};
  std::size_t sqes_len{0};

  unsigned* sq_head{nullptr};
  unsigned* sq_tail{nullptr};
  unsigned sq_mask{0};
  unsigned* sq_array{nullptr};
  unsigned* cq_head{nullptr};
  unsigned* cq_tail{nullptr};
  unsigned cq_mask{0};
  io_uring_cqe* cqes{nullptr};

  unsigned to_submit{0};  // SQEs queued locally, not yet submitted
  bool ext_arg{false};    // IORING_FEAT_EXT_ARG: timeout via enter arg

  ~Uring() {
    if (sqes != nullptr) ::munmap(sqes, sqes_len);
    if (cq_ptr != nullptr && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_len);
    if (sq_ptr != nullptr) ::munmap(sq_ptr, sq_len);
    if (fd >= 0) ::close(fd);
  }

  /// Submits everything queued without waiting (SQ-full relief valve).
  void flush_submissions() {
    while (to_submit > 0) {
      const int n = sys_io_uring_enter(fd, to_submit, 0, 0, nullptr, 0);
      count_io_syscalls();
      if (n >= 0) {
        to_submit -= static_cast<unsigned>(n);
        continue;
      }
      if (errno == EINTR) continue;
      throw_errno("io_uring_enter(submit)");
    }
  }

  /// Next free SQE, zeroed; flushes to the kernel when the ring is full.
  io_uring_sqe* get_sqe() {
    unsigned head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
    unsigned tail = *sq_tail;  // single-producer: plain read of own tail
    if (tail - head >= params.sq_entries) {
      flush_submissions();
      head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
      tail = *sq_tail;
    }
    const unsigned idx = tail & sq_mask;
    io_uring_sqe* sqe = &sqes[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array[idx] = idx;
    __atomic_store_n(sq_tail, tail + 1, __ATOMIC_RELEASE);
    ++to_submit;
    return sqe;
  }

  void queue_poll_add(int fd_to_watch, std::uint32_t mask,
                      std::uint64_t key) {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = fd_to_watch;
    // Native-endian 32-bit poll mask (poll bits == epoll bits for
    // IN/OUT/ERR/HUP/RDHUP, so the interest set passes through unchanged).
    sqe->poll32_events = mask;
    sqe->user_data = key;
  }

  void queue_poll_remove(std::uint64_t key_to_cancel) {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_REMOVE;
    sqe->addr = key_to_cancel;
    sqe->user_data = kIgnoreKey;
  }
};

bool uring_supported() {
  static const bool supported = [] {
    io_uring_params p{};
    const int fd = sys_io_uring_setup(4, &p);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
}

#else  // !VOLLEY_HAVE_URING

struct Reactor::Uring {};

bool uring_supported() { return false; }

#endif  // VOLLEY_HAVE_URING

ReactorBackend resolve_backend(int override_flag) {
  const bool want_uring =
      override_flag < 0 ? uring_from_env() : override_flag > 0;
  if (want_uring && uring_supported()) return ReactorBackend::kUring;
  return ReactorBackend::kEpoll;
}

// ---------------------------------------------------------------------------

Reactor::Reactor() : Reactor(resolve_backend(-1)) {}

Reactor::Reactor(ReactorBackend requested) {
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw_errno("eventfd");

#ifdef VOLLEY_HAVE_URING
  if (requested == ReactorBackend::kUring && uring_supported()) {
    auto ring = std::make_unique<Uring>();
    io_uring_params p{};
    // CQ sized well above SQ: every registered fd can hold one in-flight
    // poll, and a burst where they all complete between reaps must not
    // overflow (IORING_FEAT_NODROP buffers the excess anyway).
    p.flags = IORING_SETUP_CQSIZE;
    p.cq_entries = 4096;
    ring->fd = sys_io_uring_setup(256, &p);
    if (ring->fd >= 0) {
      ring->params = p;
      ring->ext_arg = (p.features & IORING_FEAT_EXT_ARG) != 0;
      const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
      ring->sq_len = p.sq_off.array + p.sq_entries * sizeof(unsigned);
      ring->cq_len = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
      if (single_mmap) {
        ring->sq_len = ring->cq_len = std::max(ring->sq_len, ring->cq_len);
      }
      ring->sq_ptr = static_cast<std::uint8_t*>(
          ::mmap(nullptr, ring->sq_len, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_SQ_RING));
      if (ring->sq_ptr == MAP_FAILED) ring->sq_ptr = nullptr;
      if (ring->sq_ptr != nullptr) {
        if (single_mmap) {
          ring->cq_ptr = ring->sq_ptr;
        } else {
          ring->cq_ptr = static_cast<std::uint8_t*>(
              ::mmap(nullptr, ring->cq_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_CQ_RING));
          if (ring->cq_ptr == MAP_FAILED) ring->cq_ptr = nullptr;
        }
      }
      if (ring->cq_ptr != nullptr) {
        ring->sqes_len = p.sq_entries * sizeof(io_uring_sqe);
        ring->sqes = static_cast<io_uring_sqe*>(
            ::mmap(nullptr, ring->sqes_len, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_SQES));
        if (ring->sqes == MAP_FAILED) ring->sqes = nullptr;
      }
      if (ring->sqes != nullptr) {
        auto* sq = ring->sq_ptr;
        ring->sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
        ring->sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
        ring->sq_mask =
            *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
        ring->sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
        auto* cq = ring->cq_ptr;
        ring->cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
        ring->cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
        ring->cq_mask =
            *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
        ring->cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
        uring_ = std::move(ring);
        backend_ = ReactorBackend::kUring;
        // The wakeup eventfd is a permanent registration with gen 0.
        uring_->queue_poll_add(wake_fd_, EPOLLIN, make_key(wake_fd_, 0));
      }
    }
  }
#else
  (void)requested;
#endif

  if (uring_ == nullptr) {
    backend_ = ReactorBackend::kEpoll;
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      ::close(wake_fd_);
      throw_errno("epoll_create1");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      ::close(wake_fd_);
      ::close(epoll_fd_);
      throw_errno("epoll_ctl(wakeup)");
    }
  }
  wheel_cursor_ms_ = now_ms();
}

Reactor::~Reactor() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::uring_arm(int fd, FdEntry& entry) {
#ifdef VOLLEY_HAVE_URING
  uring_->queue_poll_add(fd, entry.mask, make_key(fd, entry.gen));
  entry.armed = true;
#else
  (void)fd;
  (void)entry;
#endif
}

void Reactor::uring_cancel(int fd, std::uint32_t gen) {
#ifdef VOLLEY_HAVE_URING
  uring_->queue_poll_remove(make_key(fd, gen));
#else
  (void)fd;
  (void)gen;
#endif
}

void Reactor::add_fd(int fd, IoHandler handler, bool want_write) {
  const std::uint32_t mask =
      EPOLLIN | EPOLLRDHUP | (want_write ? EPOLLOUT : 0U);
  auto it = handlers_.find(fd);
  if (backend_ == ReactorBackend::kUring) {
    if (it != handlers_.end()) {
      // Re-add: retire the in-flight poll of the old registration.
      if (it->second.armed) uring_cancel(fd, it->second.gen);
      it->second.handler = std::make_shared<IoHandler>(std::move(handler));
      it->second.mask = mask;
      ++it->second.gen;
      it->second.armed = false;
      uring_arm(fd, it->second);
    } else {
      FdEntry entry;
      entry.handler = std::make_shared<IoHandler>(std::move(handler));
      entry.mask = mask;
      auto& stored = handlers_.emplace(fd, std::move(entry)).first->second;
      uring_arm(fd, stored);
    }
    return;
  }
  epoll_event ev{};
  ev.events = mask;
  ev.data.fd = fd;
  const int op = it != handlers_.end() ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  count_io_syscalls();
  ++stats_.syscalls;
  if (::epoll_ctl(epoll_fd_, op, fd, &ev) != 0) throw_errno("epoll_ctl(add)");
  FdEntry& entry = handlers_[fd];
  entry.handler = std::make_shared<IoHandler>(std::move(handler));
  entry.mask = mask;
}

void Reactor::set_want_write(int fd, bool want_write) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  const std::uint32_t mask =
      EPOLLIN | EPOLLRDHUP | (want_write ? EPOLLOUT : 0U);
  if (backend_ == ReactorBackend::kUring) {
    if (it->second.mask == mask) return;
    if (it->second.armed) uring_cancel(fd, it->second.gen);
    it->second.mask = mask;
    ++it->second.gen;
    it->second.armed = false;
    uring_arm(fd, it->second);
    return;
  }
  epoll_event ev{};
  ev.events = mask;
  ev.data.fd = fd;
  count_io_syscalls();
  ++stats_.syscalls;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(mod)");
  }
  it->second.mask = mask;
}

void Reactor::update_handler(int fd, IoHandler handler) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  // Fresh shared_ptr, not in-place mutation: a dispatch in progress keeps
  // running the handler object it pinned, and only later events see the new
  // one.
  it->second.handler = std::make_shared<IoHandler>(std::move(handler));
}

void Reactor::remove_fd(int fd) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  if (backend_ == ReactorBackend::kUring) {
    // Cancel by user_data, which works whether or not the fd is already
    // closed; a completion racing the cancel is dropped by its stale gen.
    if (it->second.armed) uring_cancel(fd, it->second.gen);
    handlers_.erase(it);
    return;
  }
  handlers_.erase(it);
  // The fd may already be closed (kernel auto-deregisters); EBADF/ENOENT
  // are expected then.
  count_io_syscalls();
  ++stats_.syscalls;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

Reactor::TimerId Reactor::add_timer(std::int64_t delay_ms, TimerCallback cb) {
  if (delay_ms < 0) delay_ms = 0;
  const TimerId id = next_timer_id_++;
  // Ceil the arming instant to the next whole millisecond: now_ms()
  // truncates, and a floor-based deadline would let the timer fire up to
  // 1 ms before `delay_ms` has really elapsed — the API promises never
  // early, late only by dispatch time.
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  const std::int64_t now_ceil =
      static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000 +
      (ts.tv_nsec % 1000000 != 0 ? 1 : 0);
  const std::int64_t due = now_ceil + delay_ms;
  timers_.emplace(id, std::move(cb));
  wheel_[slot_of(due)].push_back(WheelEntry{id, due});
  return id;
}

void Reactor::cancel_timer(TimerId id) {
  // Membership in timers_ is the liveness bit; the wheel entry becomes a
  // tombstone swept when its slot is next visited.
  timers_.erase(id);
}

std::optional<std::int64_t> Reactor::next_deadline_ms() const {
  if (timers_.empty()) return std::nullopt;
  const std::int64_t cursor = wheel_cursor_ms_;
  // Ring order == time order for deadlines within one wheel span of the
  // cursor, so the first slot holding a near entry yields the minimum.
  for (std::size_t k = 0; k < kWheelSlots; ++k) {
    const auto& slot = wheel_[(slot_of(cursor) + k) & (kWheelSlots - 1)];
    std::optional<std::int64_t> best;
    for (const auto& e : slot) {
      if (timers_.count(e.id) == 0) continue;        // cancelled tombstone
      if (e.due_ms >= cursor + kWheelSpanMs) continue;  // a later lap
      if (!best || e.due_ms < *best) best = e.due_ms;
    }
    if (best) return best;
  }
  // Every live timer is a lap or more out: sleep one span, then re-scan.
  return cursor + kWheelSpanMs;
}

int Reactor::advance_wheel(std::int64_t now) {
  if (timers_.empty()) {
    wheel_cursor_ms_ = now;
    return 0;
  }
  // Visit every slot the cursor passes over (capped at one full lap — past
  // that the ring repeats), collecting entries due by `now`. Entries for
  // future laps stay in their slot and are re-examined next pass.
  const std::int64_t elapsed = now - wheel_cursor_ms_;
  const std::int64_t steps =
      std::min<std::int64_t>(elapsed / kWheelResMs + 1, kWheelSlots);
  due_scratch_.clear();
  for (std::int64_t k = 0; k < steps; ++k) {
    auto& slot = wheel_[(slot_of(wheel_cursor_ms_) + static_cast<std::size_t>(k)) &
                        (kWheelSlots - 1)];
    for (std::size_t i = 0; i < slot.size();) {
      const WheelEntry e = slot[i];
      if (timers_.count(e.id) == 0 || e.due_ms <= now) {
        slot[i] = slot.back();
        slot.pop_back();
        if (timers_.count(e.id) != 0) due_scratch_.push_back(e);
      } else {
        ++i;
      }
    }
  }
  wheel_cursor_ms_ = now;
  // Fire in deadline order so interdependent timers observe a consistent
  // sequence (e.g. poll timeout before the liveness sweep armed later).
  std::sort(due_scratch_.begin(), due_scratch_.end(),
            [](const WheelEntry& a, const WheelEntry& b) {
              return a.due_ms < b.due_ms || (a.due_ms == b.due_ms && a.id < b.id);
            });
  int fired = 0;
  for (const auto& e : due_scratch_) {
    auto it = timers_.find(e.id);
    if (it == timers_.end()) continue;  // cancelled by an earlier callback
    TimerCallback cb = std::move(it->second);
    timers_.erase(it);
    cb();
    ++fired;
  }
  return fired;
}

int Reactor::dispatch_events(int n) {
  int handled = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = ready_[static_cast<std::size_t>(i)].fd;
    const std::uint32_t events = ready_[static_cast<std::size_t>(i)].events;
    if (fd == wake_fd_) {
      std::uint64_t drain = 0;
      while (::read(wake_fd_, &drain, sizeof drain) > 0) {
      }
      continue;
    }
    // Lookup at dispatch time: an earlier handler in this batch may have
    // removed this fd (session teardown) — skip its stale event.
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    auto handler = it->second.handler;  // pin across the call
    (*handler)(events);
    ++handled;
  }
  // One-shot re-arm (io_uring): every fd whose poll completed this batch —
  // and is still registered — gets a fresh POLL_ADD queued for the next
  // enter. Arming re-checks current readiness, so an un-drained fd fires
  // again immediately: level-triggered epoll semantics, batched syscalls.
  if (backend_ == ReactorBackend::kUring) {
    for (int i = 0; i < n; ++i) {
      const int fd = ready_[static_cast<std::size_t>(i)].fd;
      if (fd == wake_fd_) continue;
      auto it = handlers_.find(fd);
      if (it != handlers_.end() && !it->second.armed) {
        uring_arm(fd, it->second);
      }
    }
  }
  return handled;
}

int Reactor::epoll_wait_collect(std::int64_t wait_ns) {
  constexpr int kMaxEvents = 128;
  epoll_event evs[kMaxEvents];
  int n = 0;
  count_io_syscalls();
  ++stats_.syscalls;
  if (wait_ns < 0) {
    n = ::epoll_wait(epoll_fd_, evs, kMaxEvents, -1);
  } else {
#ifdef SYS_epoll_pwait2
    timespec ts{};
    ts.tv_sec = wait_ns / 1000000000;
    ts.tv_nsec = wait_ns % 1000000000;
    n = static_cast<int>(::syscall(SYS_epoll_pwait2, epoll_fd_, evs,
                                   kMaxEvents, &ts, nullptr, 0));
    if (n < 0 && errno == ENOSYS) {
      n = ::epoll_wait(epoll_fd_, evs, kMaxEvents,
                       static_cast<int>((wait_ns + 999999) / 1000000));
    }
#else
    n = ::epoll_wait(epoll_fd_, evs, kMaxEvents,
                     static_cast<int>((wait_ns + 999999) / 1000000));
#endif
  }
  if (n < 0) {
    if (errno == EINTR) return -1;  // interrupted: skip this turn entirely
    throw_errno("epoll_wait");
  }
  ready_.clear();
  for (int i = 0; i < n; ++i) {
    ready_.push_back(ReadyEvent{evs[i].data.fd, evs[i].events});
  }
  return n;
}

int Reactor::uring_wait_collect(std::int64_t wait_ns) {
#ifdef VOLLEY_HAVE_URING
  Uring& ring = *uring_;
  // Skip the sleep entirely when completions are already buffered (a burst
  // larger than one reap batch, or CQEs posted by arm-time level checks).
  const bool cq_empty =
      __atomic_load_n(ring.cq_head, __ATOMIC_ACQUIRE) ==
      __atomic_load_n(ring.cq_tail, __ATOMIC_ACQUIRE);

  if (cq_empty || ring.to_submit > 0) {
    unsigned flags = IORING_ENTER_GETEVENTS;
    io_uring_getevents_arg arg{};
    timespec ts{};
    const void* argp = nullptr;
    std::size_t argsz = 0;
    unsigned min_complete = cq_empty ? 1 : 0;
    if (wait_ns == 0) {
      min_complete = 0;  // pure poll: submit + reap, never sleep
    } else if (wait_ns > 0 && cq_empty) {
      if (ring.ext_arg) {
        ts.tv_sec = wait_ns / 1000000000;
        ts.tv_nsec = wait_ns % 1000000000;
        arg.ts = reinterpret_cast<std::uint64_t>(&ts);
        argp = &arg;
        argsz = sizeof(arg);
        flags |= IORING_ENTER_EXT_ARG;
      } else {
        // No EXT_ARG on this kernel: bound the wait with a TIMEOUT SQE.
        io_uring_sqe* sqe = ring.get_sqe();
        sqe->opcode = IORING_OP_TIMEOUT;
        ts.tv_sec = wait_ns / 1000000000;
        ts.tv_nsec = wait_ns % 1000000000;
        sqe->addr = reinterpret_cast<std::uint64_t>(&ts);
        sqe->len = 1;
        sqe->user_data = kIgnoreKey;
      }
    }
    const int n = sys_io_uring_enter(ring.fd, ring.to_submit, min_complete,
                                     flags, argp, argsz);
    count_io_syscalls();
    ++stats_.syscalls;
    if (n >= 0) {
      ring.to_submit -= static_cast<unsigned>(n);
    } else if (errno != EINTR && errno != ETIME && errno != EBUSY) {
      throw_errno("io_uring_enter");
    }
    // EINTR with pending submissions: the kernel consumed none; they stay
    // queued and ride the next turn's enter.
  }

  // Reap every buffered completion into the ready batch.
  ready_.clear();
  unsigned head = __atomic_load_n(ring.cq_head, __ATOMIC_ACQUIRE);
  const unsigned tail = __atomic_load_n(ring.cq_tail, __ATOMIC_ACQUIRE);
  while (head != tail) {
    const io_uring_cqe& cqe = ring.cqes[head & ring.cq_mask];
    ++head;
    const std::uint64_t key = cqe.user_data;
    if (key == kIgnoreKey) continue;  // POLL_REMOVE / TIMEOUT bookkeeping
    const int fd = key_fd(key);
    if (fd == wake_fd_) {
      // Permanent registration: consume and immediately re-arm.
      ready_.push_back(ReadyEvent{fd, EPOLLIN});
      ring.queue_poll_add(wake_fd_, EPOLLIN, make_key(wake_fd_, 0));
      continue;
    }
    auto it = handlers_.find(fd);
    if (it == handlers_.end() || it->second.gen != key_gen(key)) {
      continue;  // stale: registration superseded or removed
    }
    it->second.armed = false;
    if (cqe.res < 0) {
      // -ECANCELED from a mask change crossing its own cancel; the
      // replacement arm is already queued. Anything else: surface as a
      // hangup so the handler tears the session down through its normal
      // read path.
      if (cqe.res != -ECANCELED) ready_.push_back(ReadyEvent{fd, EPOLLERR});
      continue;
    }
    ready_.push_back(ReadyEvent{fd, static_cast<std::uint32_t>(cqe.res)});
  }
  __atomic_store_n(ring.cq_head, head, __ATOMIC_RELEASE);
  return static_cast<int>(ready_.size());
#else
  (void)wait_ns;
  return 0;
#endif
}

int Reactor::wait_and_dispatch(std::int64_t wait_ns) {
  const int n = backend_ == ReactorBackend::kUring
                    ? uring_wait_collect(wait_ns)
                    : epoll_wait_collect(wait_ns);
  if (n < 0) return 0;  // EINTR: same as the pre-backend reactor, skip turn
  const auto& met = reactor_metrics();
  ++stats_.wakeups;
  met.wakeups->inc();
  const std::int64_t t0 = now_ms();
  const int handled = dispatch_events(n);
  const int fired = advance_wheel(now_ms());
  stats_.io_events += handled;
  stats_.timers_fired += fired;
  if (handled != 0) met.io_events->inc(handled);
  if (fired != 0) met.timers_fired->inc(fired);
  if (handled + fired != 0) {
    met.dispatch_ms->observe(static_cast<double>(now_ms() - t0));
  }
  refresh_loop_stats();
  return handled + fired;
}

int Reactor::run_once(int max_wait_ms) {
  std::int64_t wait_ns = -1;
  if (max_wait_ms >= 0) wait_ns = static_cast<std::int64_t>(max_wait_ms) * 1000000;
  if (auto due = next_deadline_ms()) {
    const std::int64_t until_ns = std::max<std::int64_t>(*due - now_ms(), 0) * 1000000;
    wait_ns = (wait_ns < 0) ? until_ns : std::min(wait_ns, until_ns);
  }
  return wait_and_dispatch(wait_ns);
}

int Reactor::run_once_for(std::chrono::nanoseconds max_wait) {
  std::int64_t wait_ns = std::max<std::int64_t>(max_wait.count(), 0);
  if (auto due = next_deadline_ms()) {
    const std::int64_t until_ns = std::max<std::int64_t>(*due - now_ms(), 0) * 1000000;
    wait_ns = std::min(wait_ns, until_ns);
  }
  return wait_and_dispatch(wait_ns);
}

void Reactor::wakeup() {
  const std::uint64_t one = 1;
  // Best-effort: EAGAIN means a wakeup is already pending, which is enough.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

// ---------------------------------------------------------------------------
// Per-loop stats exposition (ReactorPool loops show up individually in
// volley_stats; DESIGN.md §14).

struct Reactor::LoopStatsGauges {
  obs::Gauge* wakeups{nullptr};
  obs::Gauge* io_events{nullptr};
  obs::Gauge* timers_fired{nullptr};
  obs::Gauge* syscalls{nullptr};
};

void Reactor::enable_loop_stats(std::size_t loop_index) {
  const std::string prefix =
      "volley_reactor_loop" + std::to_string(loop_index) + "_";
  auto gauges = std::make_unique<LoopStatsGauges>();
  auto& m = obs::metrics();
  gauges->wakeups =
      &m.gauge(prefix + "wakeups", "Loop turns (wait returns) on this loop");
  gauges->io_events =
      &m.gauge(prefix + "io_events", "Fd events dispatched on this loop");
  gauges->timers_fired =
      &m.gauge(prefix + "timers_fired", "Timer callbacks fired on this loop");
  gauges->syscalls = &m.gauge(
      prefix + "syscalls", "Wait + interest-change syscalls on this loop");
  loop_stats_ = std::move(gauges);
  refresh_loop_stats();
}

void Reactor::refresh_loop_stats() {
  if (loop_stats_ == nullptr) return;
  loop_stats_->wakeups->set(static_cast<double>(stats_.wakeups));
  loop_stats_->io_events->set(static_cast<double>(stats_.io_events));
  loop_stats_->timers_fired->set(static_cast<double>(stats_.timers_fired));
  loop_stats_->syscalls->set(static_cast<double>(stats_.syscalls));
}

}  // namespace volley::net
