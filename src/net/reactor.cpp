#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "obs/metrics.h"

namespace volley::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

struct ReactorMetrics {
  obs::Counter* wakeups{nullptr};
  obs::Counter* io_events{nullptr};
  obs::Counter* timers_fired{nullptr};
  obs::HistogramMetric* dispatch_ms{nullptr};
};

const ReactorMetrics& reactor_metrics() {
  static auto make = [](obs::MetricsRegistry& m) {
    ReactorMetrics h;
    h.wakeups = &m.counter("volley_reactor_wakeups_total",
                           "Reactor loop turns (epoll_wait returns)");
    h.io_events = &m.counter("volley_reactor_io_events_total",
                             "File-descriptor events dispatched");
    h.timers_fired = &m.counter("volley_reactor_timers_fired_total",
                                "Timer-wheel callbacks fired");
    h.dispatch_ms = &m.histogram(
        "volley_reactor_dispatch_ms", 0.0, 50.0, 50,
        "Per-turn dispatch latency (I/O handlers + due timers), ms");
    return h;
  };
  return obs::scoped_handles<ReactorMetrics>(make);
}

}  // namespace

bool poll_loop_from_env() {
  const char* v = std::getenv("VOLLEY_POLL_LOOP");  // NOLINT(concurrency-mt-unsafe)
  return v != nullptr && std::strcmp(v, "0") != 0;
}

bool Reactor::readable(std::uint32_t events) {
  return (events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
}

bool Reactor::writable(std::uint32_t events) {
  return (events & EPOLLOUT) != 0;
}

bool Reactor::hangup(std::uint32_t events) {
  return (events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
}

std::int64_t Reactor::now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("epoll_ctl(wakeup)");
  }
  wheel_cursor_ms_ = now_ms();
}

Reactor::~Reactor() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::add_fd(int fd, IoHandler handler, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | (want_write ? EPOLLOUT : 0U);
  ev.data.fd = fd;
  const bool known = handlers_.count(fd) != 0;
  const int op = known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(epoll_fd_, op, fd, &ev) != 0) throw_errno("epoll_ctl(add)");
  handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
}

void Reactor::set_want_write(int fd, bool want_write) {
  if (handlers_.count(fd) == 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | (want_write ? EPOLLOUT : 0U);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(mod)");
  }
}

void Reactor::update_handler(int fd, IoHandler handler) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  // Fresh shared_ptr, not in-place mutation: a dispatch in progress keeps
  // running the handler object it pinned, and only later events see the new
  // one.
  it->second = std::make_shared<IoHandler>(std::move(handler));
}

void Reactor::remove_fd(int fd) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  handlers_.erase(it);
  // The fd may already be closed (kernel auto-deregisters); EBADF/ENOENT
  // are expected then.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

Reactor::TimerId Reactor::add_timer(std::int64_t delay_ms, TimerCallback cb) {
  if (delay_ms < 0) delay_ms = 0;
  const TimerId id = next_timer_id_++;
  // Ceil the arming instant to the next whole millisecond: now_ms()
  // truncates, and a floor-based deadline would let the timer fire up to
  // 1 ms before `delay_ms` has really elapsed — the API promises never
  // early, late only by dispatch time.
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  const std::int64_t now_ceil =
      static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000 +
      (ts.tv_nsec % 1000000 != 0 ? 1 : 0);
  const std::int64_t due = now_ceil + delay_ms;
  timers_.emplace(id, std::move(cb));
  wheel_[slot_of(due)].push_back(WheelEntry{id, due});
  return id;
}

void Reactor::cancel_timer(TimerId id) {
  // Membership in timers_ is the liveness bit; the wheel entry becomes a
  // tombstone swept when its slot is next visited.
  timers_.erase(id);
}

std::optional<std::int64_t> Reactor::next_deadline_ms() const {
  if (timers_.empty()) return std::nullopt;
  const std::int64_t cursor = wheel_cursor_ms_;
  // Ring order == time order for deadlines within one wheel span of the
  // cursor, so the first slot holding a near entry yields the minimum.
  for (std::size_t k = 0; k < kWheelSlots; ++k) {
    const auto& slot = wheel_[(slot_of(cursor) + k) & (kWheelSlots - 1)];
    std::optional<std::int64_t> best;
    for (const auto& e : slot) {
      if (timers_.count(e.id) == 0) continue;        // cancelled tombstone
      if (e.due_ms >= cursor + kWheelSpanMs) continue;  // a later lap
      if (!best || e.due_ms < *best) best = e.due_ms;
    }
    if (best) return best;
  }
  // Every live timer is a lap or more out: sleep one span, then re-scan.
  return cursor + kWheelSpanMs;
}

int Reactor::advance_wheel(std::int64_t now) {
  if (timers_.empty()) {
    wheel_cursor_ms_ = now;
    return 0;
  }
  // Visit every slot the cursor passes over (capped at one full lap — past
  // that the ring repeats), collecting entries due by `now`. Entries for
  // future laps stay in their slot and are re-examined next pass.
  const std::int64_t elapsed = now - wheel_cursor_ms_;
  const std::int64_t steps =
      std::min<std::int64_t>(elapsed / kWheelResMs + 1, kWheelSlots);
  due_scratch_.clear();
  for (std::int64_t k = 0; k < steps; ++k) {
    auto& slot = wheel_[(slot_of(wheel_cursor_ms_) + static_cast<std::size_t>(k)) &
                        (kWheelSlots - 1)];
    for (std::size_t i = 0; i < slot.size();) {
      const WheelEntry e = slot[i];
      if (timers_.count(e.id) == 0 || e.due_ms <= now) {
        slot[i] = slot.back();
        slot.pop_back();
        if (timers_.count(e.id) != 0) due_scratch_.push_back(e);
      } else {
        ++i;
      }
    }
  }
  wheel_cursor_ms_ = now;
  // Fire in deadline order so interdependent timers observe a consistent
  // sequence (e.g. poll timeout before the liveness sweep armed later).
  std::sort(due_scratch_.begin(), due_scratch_.end(),
            [](const WheelEntry& a, const WheelEntry& b) {
              return a.due_ms < b.due_ms || (a.due_ms == b.due_ms && a.id < b.id);
            });
  int fired = 0;
  for (const auto& e : due_scratch_) {
    auto it = timers_.find(e.id);
    if (it == timers_.end()) continue;  // cancelled by an earlier callback
    TimerCallback cb = std::move(it->second);
    timers_.erase(it);
    cb();
    ++fired;
  }
  return fired;
}

int Reactor::dispatch(void* events, int n) {
  auto* evs = static_cast<epoll_event*>(events);
  int handled = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = evs[i].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t drain = 0;
      while (::read(wake_fd_, &drain, sizeof drain) > 0) {
      }
      continue;
    }
    // Lookup at dispatch time: an earlier handler in this batch may have
    // removed this fd (session teardown) — skip its stale event.
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    auto handler = it->second;  // pin across the call
    (*handler)(evs[i].events);
    ++handled;
  }
  return handled;
}

int Reactor::wait_and_dispatch(std::int64_t wait_ns) {
  constexpr int kMaxEvents = 128;
  epoll_event evs[kMaxEvents];
  int n = 0;
  if (wait_ns < 0) {
    n = ::epoll_wait(epoll_fd_, evs, kMaxEvents, -1);
  } else {
#ifdef SYS_epoll_pwait2
    timespec ts{};
    ts.tv_sec = wait_ns / 1000000000;
    ts.tv_nsec = wait_ns % 1000000000;
    n = static_cast<int>(::syscall(SYS_epoll_pwait2, epoll_fd_, evs,
                                   kMaxEvents, &ts, nullptr, 0));
    if (n < 0 && errno == ENOSYS) {
      n = ::epoll_wait(epoll_fd_, evs, kMaxEvents,
                       static_cast<int>((wait_ns + 999999) / 1000000));
    }
#else
    n = ::epoll_wait(epoll_fd_, evs, kMaxEvents,
                     static_cast<int>((wait_ns + 999999) / 1000000));
#endif
  }
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("epoll_wait");
  }
  const auto& met = reactor_metrics();
  ++stats_.wakeups;
  met.wakeups->inc();
  const std::int64_t t0 = now_ms();
  const int handled = dispatch(evs, n);
  const int fired = advance_wheel(now_ms());
  stats_.io_events += handled;
  stats_.timers_fired += fired;
  if (handled != 0) met.io_events->inc(handled);
  if (fired != 0) met.timers_fired->inc(fired);
  if (handled + fired != 0) {
    met.dispatch_ms->observe(static_cast<double>(now_ms() - t0));
  }
  return handled + fired;
}

int Reactor::run_once(int max_wait_ms) {
  std::int64_t wait_ns = -1;
  if (max_wait_ms >= 0) wait_ns = static_cast<std::int64_t>(max_wait_ms) * 1000000;
  if (auto due = next_deadline_ms()) {
    const std::int64_t until_ns = std::max<std::int64_t>(*due - now_ms(), 0) * 1000000;
    wait_ns = (wait_ns < 0) ? until_ns : std::min(wait_ns, until_ns);
  }
  return wait_and_dispatch(wait_ns);
}

int Reactor::run_once_for(std::chrono::nanoseconds max_wait) {
  std::int64_t wait_ns = std::max<std::int64_t>(max_wait.count(), 0);
  if (auto due = next_deadline_ms()) {
    const std::int64_t until_ns = std::max<std::int64_t>(*due - now_ms(), 0) * 1000000;
    wait_ns = std::min(wait_ns, until_ns);
  }
  return wait_and_dispatch(wait_ns);
}

void Reactor::wakeup() {
  const std::uint64_t one = 1;
  // Best-effort: EAGAIN means a wakeup is already pending, which is enough.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

}  // namespace volley::net
