#include "net/monitor_node.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <thread>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"

namespace volley::net {

namespace {
std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct MonitorNodeMetrics {
  obs::Counter* reconnect_attempts;
  obs::Counter* reconnects;
  obs::Counter* degraded_ticks;
  obs::Counter* task_attaches;
  obs::Counter* task_detaches;

  static MonitorNodeMetrics make(obs::MetricsRegistry& m) {
    return MonitorNodeMetrics{
        &m.counter("volley_net_reconnect_attempts_total",
                   "Coordinator reconnect attempts (successes and failures)"),
        &m.counter("volley_net_reconnects_total",
                   "Successful session resumes (Hello{resume} accepted)"),
        &m.counter("volley_net_degraded_ticks_total",
                   "Ticks spent sampling in degraded (coordinator-less) mode"),
        &m.counter("volley_net_task_attaches_total",
                   "TaskAttach frames applied (new or newer-epoch revisions)"),
        &m.counter("volley_net_task_detaches_total",
                   "TaskDetach frames applied (samplers retired)"),
    };
  }

  static const MonitorNodeMetrics& get() {
    return obs::scoped_handles(&make);
  }
};
}  // namespace

MonitorNode::MonitorNode(const MonitorNodeOptions& options,
                         const MetricSource& source)
    : options_(options),
      source_(&source),
      jitter_rng_(static_cast<std::uint64_t>(options.id) * 7919 + 17) {
  if (!options.sample_log_path.empty()) {
    sample_log_ = std::make_unique<SampleLogWriter>(options.sample_log_path);
  }
  if (options.ticks < 1)
    throw std::invalid_argument("MonitorNode: ticks >= 1");
  if (options.updating_period < 1)
    throw std::invalid_argument("MonitorNode: updating_period >= 1");
  if (options.heartbeat_interval_ms <= 0)
    throw std::invalid_argument("MonitorNode: heartbeat_interval_ms > 0");
  if (options.reconnect_backoff_ms <= 0 ||
      options.reconnect_backoff_max_ms < options.reconnect_backoff_ms)
    throw std::invalid_argument("MonitorNode: bad reconnect backoff");
  // Seed the boot task (id 0, epoch 1) from the node's own options; the
  // coordinator seeds the same record, so its attach push is a no-op here.
  TaskState boot;
  boot.epoch = kBootTaskEpoch;
  boot.updating_period = options.updating_period;
  boot.next_report = options.updating_period;
  boot.monitor = std::make_unique<Monitor>(options.id, source, options.sampler,
                                           options.local_threshold);
  boot_allowance_ = boot.monitor->error_allowance();
  tasks_.emplace(kBootTaskId, std::move(boot));
  known_epochs_[kBootTaskId] = kBootTaskEpoch;
}

std::int64_t MonitorNode::scheduled_ops() const {
  std::int64_t n = retired_scheduled_;
  for (const auto& [task, state] : tasks_) n += state.monitor->scheduled_ops();
  return n;
}

std::int64_t MonitorNode::forced_ops() const {
  std::int64_t n = retired_forced_;
  for (const auto& [task, state] : tasks_) n += state.monitor->forced_ops();
  return n;
}

std::int64_t MonitorNode::local_violations() const {
  std::int64_t n = retired_violations_;
  for (const auto& [task, state] : tasks_)
    n += state.monitor->local_violations();
  return n;
}

double MonitorNode::final_allowance() const {
  const auto it = tasks_.find(kBootTaskId);
  return it != tasks_.end() ? it->second.monitor->error_allowance()
                            : boot_allowance_;
}

std::map<TaskId, std::uint64_t> MonitorNode::task_epochs() const {
  return known_epochs_;
}

std::int64_t MonitorNode::task_local_violations(TaskId task) const {
  std::int64_t n = 0;
  const auto retired = retired_task_violations_.find(task);
  if (retired != retired_task_violations_.end()) n += retired->second;
  const auto it = tasks_.find(task);
  if (it != tasks_.end()) n += it->second.monitor->local_violations();
  return n;
}

bool MonitorNode::send(const Message& m) {
  if (!connected_) return false;
  const auto payload = encode(m);
  if (conn_.send_all(frame_payload(payload))) return true;
  drop_connection();
  return false;
}

void MonitorNode::drop_connection() {
  if (connected_) {
    VLOG_WARN("monitor", "lost coordinator link; entering degraded mode");
  }
  if (reactor_mode_ && conn_.valid()) reactor_.remove_fd(conn_.fd());
  conn_.close();
  connected_ = false;
  reader_ = FrameReader{};
  backoff_ms_ = options_.reconnect_backoff_ms;
  next_attempt_ms_ = now_ms();  // first retry is immediate
}

bool MonitorNode::try_attach_session(bool resume) {
  auto conn = TcpConnection::try_connect(options_.coordinator_host,
                                         options_.coordinator_port,
                                         options_.connect_timeout_ms);
  if (!conn) return false;
  conn->set_nonblocking(true);
  conn_ = std::move(*conn);
  if (reactor_mode_) {
    // Registered with a no-op handler: readiness only ends the tick wait;
    // wait_tick drains the socket through service_messages right after.
    reactor_.add_fd(conn_.fd(), [](std::uint32_t) {});
  }
  reader_ = FrameReader{};
  connected_ = true;
  last_rx_ms_ = now_ms();
  last_heartbeat_ms_ = 0;  // heartbeat on the next loop turn
  if (!send(Hello{options_.id, resume})) return false;
  return true;
}

void MonitorNode::maybe_reconnect(std::int64_t now) {
  if (connected_ || coordinator_lost_) return;
  if (now < next_attempt_ms_) return;
  MonitorNodeMetrics::get().reconnect_attempts->inc();
  if (try_attach_session(/*resume=*/ever_connected_)) {
    failed_attempts_ = 0;
    if (ever_connected_) {
      ++reconnects_;
      MonitorNodeMetrics::get().reconnects->inc();
      VLOG_INFO("monitor", "reconnected to coordinator (resume)");
    }
    ever_connected_ = true;
    return;
  }
  ++failed_attempts_;
  if (failed_attempts_ >= options_.max_reconnect_attempts) {
    VLOG_ERROR("monitor", "giving up on coordinator after ",
               failed_attempts_, " attempts; running degraded to the end");
    coordinator_lost_ = true;
    return;
  }
  // Capped exponential backoff with +-25% jitter so a fleet of monitors
  // does not reconnect in lockstep after a coordinator restart.
  const double jitter = jitter_rng_.uniform(0.75, 1.25);
  next_attempt_ms_ =
      now + static_cast<std::int64_t>(backoff_ms_ * jitter);
  obs::trace().record(obs::TraceKind::kReconnectAttempt, 0, options_.id,
                      static_cast<double>(failed_attempts_),
                      static_cast<double>(next_attempt_ms_ - now));
  backoff_ms_ = std::min(backoff_ms_ * 2, options_.reconnect_backoff_max_ms);
}

void MonitorNode::heartbeat_if_due(std::int64_t now) {
  if (!connected_) return;
  if (now - last_heartbeat_ms_ < options_.heartbeat_interval_ms) return;
  if (send(Heartbeat{options_.id, ++heartbeat_seq_})) {
    last_heartbeat_ms_ = now;
  }
}

void MonitorNode::retire_monitor(TaskId task, const Monitor& monitor) {
  retired_scheduled_ += monitor.scheduled_ops();
  retired_forced_ += monitor.forced_ops();
  retired_violations_ += monitor.local_violations();
  retired_task_violations_[task] += monitor.local_violations();
  if (task == kBootTaskId) boot_allowance_ = monitor.error_allowance();
}

void MonitorNode::apply_attach(const TaskAttach& attach, Tick t) {
  auto& known = known_epochs_[attach.task];
  if (attach.epoch <= known) return;  // replayed / stale revision: no-op
  known = attach.epoch;
  const auto existing = tasks_.find(attach.task);
  if (existing != tasks_.end()) {
    // Re-spec: the sampler restarts with the new knobs (adaptation state
    // does not survive a revision — the new spec may change the rules it
    // adapted under). Its op counts fold into the retired totals.
    retire_monitor(attach.task, *existing->second.monitor);
    tasks_.erase(existing);
  }
  AdaptiveSamplerOptions sampler = options_.sampler;  // keep estimator knobs
  sampler.error_allowance = attach.error_allowance;
  sampler.slack_ratio = attach.slack_ratio;
  sampler.patience = attach.patience;
  sampler.max_interval = attach.max_interval;
  TaskState state;
  state.epoch = attach.epoch;
  state.updating_period = std::max<Tick>(attach.updating_period, 1);
  state.next_report = t + state.updating_period;
  state.monitor = std::make_unique<Monitor>(options_.id, *source_, sampler,
                                            attach.local_threshold);
  tasks_.emplace(attach.task, std::move(state));
  MonitorNodeMetrics::get().task_attaches->inc();
  VLOG_INFO("monitor", "attached task ", attach.task, " at epoch ",
            attach.epoch);
}

void MonitorNode::apply_detach(const TaskDetach& detach) {
  auto& known = known_epochs_[detach.task];
  if (detach.epoch <= known) return;
  known = detach.epoch;  // tombstone: older attaches cannot resurrect it
  const auto it = tasks_.find(detach.task);
  if (it == tasks_.end()) return;
  retire_monitor(detach.task, *it->second.monitor);
  tasks_.erase(it);
  MonitorNodeMetrics::get().task_detaches->inc();
  VLOG_INFO("monitor", "detached task ", detach.task, " at epoch ",
            detach.epoch);
}

MonitorNode::ServiceResult MonitorNode::service_messages(Tick t) {
  std::array<std::byte, 4096> buf;
  bool peer_closed = false;
  while (true) {
    const auto n = conn_.recv_some(buf);
    if (!n) break;  // no data ready (non-blocking)
    if (*n == 0) {  // peer closed; frames already received still count
      peer_closed = true;
      break;
    }
    last_rx_ms_ = now_ms();
    reader_.feed(std::span<const std::byte>(buf.data(), *n));
  }
  while (auto payload = reader_.next()) {
    const auto message = decode(*payload);
    if (!message) {
      VLOG_WARN("monitor", "dropping malformed frame");
      continue;
    }
    if (std::holds_alternative<Shutdown>(*message))
      return ServiceResult::kShutdown;
    if (std::holds_alternative<HeartbeatAck>(*message)) {
      continue;  // its arrival already refreshed last_rx_ms_
    }
    if (const auto* attach = std::get_if<TaskAttach>(&*message)) {
      apply_attach(*attach, t);
    } else if (const auto* detach = std::get_if<TaskDetach>(&*message)) {
      apply_detach(*detach);
    } else if (const auto* update = std::get_if<AllowanceUpdate>(&*message)) {
      // Initial allocation, periodic reallocation, and the post-reconnect
      // allowance resync all arrive through here.
      const auto it = tasks_.find(update->task);
      if (it != tasks_.end()) {
        it->second.monitor->set_error_allowance(update->error_allowance);
      }
    } else if (const auto* poll = std::get_if<PollRequest>(&*message)) {
      // Answer with the freshest value this node can produce for the task:
      // its state at the current local tick (cached when it already sampled
      // this tick). TaskAttach rides the same FIFO connection, so a poll
      // for an unknown task means the task was detached concurrently —
      // answer 0 so the coordinator's poll still completes.
      PollResponse resp;
      resp.monitor = options_.id;
      resp.poll_id = poll->poll_id;
      resp.tick = t;
      resp.task = poll->task;
      const auto it = tasks_.find(poll->task);
      if (it != tasks_.end()) {
        const auto outcome = it->second.monitor->force_sample(t);
        log_sample(outcome);
        resp.value = outcome.sample.value;
      }
      if (!send(resp)) return ServiceResult::kDisconnected;
    }
  }
  if (peer_closed) {
    drop_connection();
    return ServiceResult::kDisconnected;
  }
  return ServiceResult::kOk;
}

MonitorNode::ServiceResult MonitorNode::wait_tick(Tick t,
                                                  std::int64_t wait_ns) {
  if (!reactor_mode_) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(wait_ns));
    return ServiceResult::kOk;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(wait_ns);
  while (!stop_.load()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    reactor_.run_once_for(deadline - now);
    if (connected_) {
      // Drain whatever woke us (level-triggered: leaving bytes unread would
      // spin the wait loop). Poll answers go out mid-tick, not at t + 1.
      const ServiceResult r = service_messages(t);
      if (r != ServiceResult::kOk) return r;
    }
  }
  return ServiceResult::kOk;
}

void MonitorNode::run() {
  reactor_mode_ = !resolve_poll_loop(options_.poll_loop);
  // One loop per monitor by design — a monitor owns a single upstream
  // connection, so VOLLEY_NET_THREADS has nothing to shard here. The
  // readiness backend (epoll / io_uring via VOLLEY_URING) applies to the
  // tick waits and socket dispatch alike.
  if (reactor_mode_) {
    VLOG_DEBUG("monitor", "reactor backend: ",
               backend_name(reactor_.backend()));
  }
  backoff_ms_ = options_.reconnect_backoff_ms;
  next_attempt_ms_ = now_ms();
  if (try_attach_session(/*resume=*/false)) {
    ever_connected_ = true;
  }

  for (Tick t = 0; t < options_.ticks && !stop_.load(); ++t) {
    const std::int64_t now = now_ms();
    if (connected_) {
      switch (service_messages(t)) {
        case ServiceResult::kShutdown:
          if (sample_log_) sample_log_->flush();
          return;
        case ServiceResult::kDisconnected:
        case ServiceResult::kOk:
          break;
      }
    }
    // A half-open link delivers nothing — not even heartbeat acks.
    if (connected_ && now - last_rx_ms_ > options_.coordinator_timeout_ms) {
      VLOG_WARN("monitor", "coordinator silent for too long");
      drop_connection();
    }
    heartbeat_if_due(now);
    maybe_reconnect(now);

    if (connected_) {
      for (auto& [task, state] : tasks_) {
        if (state.monitor->due(t)) {
          const auto outcome = state.monitor->step(t);
          log_sample(outcome);
          if (outcome.local_violation) {
            LocalViolation report;
            report.monitor = options_.id;
            report.tick = t;
            report.value = outcome.sample.value;
            report.task = task;
            send(report);  // failure flips to degraded mode; keep ticking
          }
          if (!connected_) break;
        }
      }
      for (auto& [task, state] : tasks_) {
        if (!connected_) break;
        if (t >= state.next_report) {
          const CoordStats stats = state.monitor->drain_coord_stats();
          StatsReport report;
          report.monitor = options_.id;
          report.avg_gain = stats.avg_gain;
          report.avg_allowance = stats.avg_allowance;
          report.observations = stats.observations;
          report.task = task;
          if (send(report)) state.next_report = t + state.updating_period;
        }
      }
    } else {
      // Degraded mode: fall back to periodic sampling at the default
      // interval — the conservative schedule — so the violation likelihood
      // of the unobserved window is zero while the coordinator is away.
      for (auto& [task, state] : tasks_) {
        const auto outcome = state.monitor->force_sample(t);
        log_sample(outcome);
      }
      ++degraded_ticks_;
      MonitorNodeMetrics::get().degraded_ticks->inc();
    }

    switch (wait_tick(t, static_cast<std::int64_t>(options_.tick_micros) *
                             1000)) {
      case ServiceResult::kShutdown:
        if (sample_log_) sample_log_->flush();
        return;
      case ServiceResult::kDisconnected:
      case ServiceResult::kOk:
        break;  // the next tick's service pass picks up from here
    }
  }

  if (sample_log_) sample_log_->flush();

  Bye bye;
  bye.monitor = options_.id;
  bye.scheduled_ops = scheduled_ops();
  bye.forced_ops = forced_ops();
  if (!send(bye)) return;

  // Keep answering polls (and heartbeating) for stragglers until Shutdown
  // or the grace timeout.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.shutdown_grace_ms);
  while (std::chrono::steady_clock::now() < deadline && !stop_.load()) {
    // Straggler polls are answered with the last in-range tick's state.
    if (service_messages(options_.ticks - 1) != ServiceResult::kOk) return;
    heartbeat_if_due(now_ms());
    if (reactor_mode_) {
      // Park until a straggler frame, the next heartbeat, or the deadline —
      // the legacy loop instead spins this check every millisecond.
      const auto now = std::chrono::steady_clock::now();
      const auto wait = std::min(
          deadline - now,
          std::chrono::steady_clock::duration(
              std::chrono::milliseconds(options_.heartbeat_interval_ms)));
      if (wait.count() > 0) {
        reactor_.run_once_for(
            std::chrono::duration_cast<std::chrono::nanoseconds>(wait));
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void MonitorNode::log_sample(const Monitor::Outcome& outcome) {
  if (!sample_log_) return;
  SampleRecord record;
  record.monitor = options_.id;
  record.tick = outcome.sample.tick;
  record.value = outcome.sample.value;
  record.reason = outcome.reason;
  sample_log_->append(record);
}

}  // namespace volley::net
