#include "net/monitor_node.h"

#include <array>
#include <chrono>
#include <thread>

#include "common/log.h"

namespace volley::net {

MonitorNode::MonitorNode(const MonitorNodeOptions& options,
                         const MetricSource& source)
    : options_(options),
      monitor_(options.id, source, options.sampler, options.local_threshold) {
  if (!options.sample_log_path.empty()) {
    sample_log_ = std::make_unique<SampleLogWriter>(options.sample_log_path);
  }
  if (options.ticks < 1)
    throw std::invalid_argument("MonitorNode: ticks >= 1");
  if (options.updating_period < 1)
    throw std::invalid_argument("MonitorNode: updating_period >= 1");
}

bool MonitorNode::send(TcpConnection& conn, const Message& m) {
  const auto payload = encode(m);
  return conn.send_all(frame_payload(payload));
}

bool MonitorNode::service_messages(TcpConnection& conn, FrameReader& reader,
                                   Tick t) {
  std::array<std::byte, 4096> buf;
  while (true) {
    const auto n = conn.recv_some(buf);
    if (!n) break;          // no data ready (non-blocking)
    if (*n == 0) return false;  // peer closed
    reader.feed(std::span<const std::byte>(buf.data(), *n));
  }
  while (auto payload = reader.next()) {
    const auto message = decode(*payload);
    if (!message) {
      VLOG_WARN("monitor", "dropping malformed frame");
      continue;
    }
    if (std::holds_alternative<Shutdown>(*message)) return false;
    if (const auto* update = std::get_if<AllowanceUpdate>(&*message)) {
      monitor_.set_error_allowance(update->error_allowance);
    } else if (const auto* poll = std::get_if<PollRequest>(&*message)) {
      // Answer with the freshest value this node can produce: its state at
      // the current local tick (cached when it already sampled this tick).
      const auto outcome = monitor_.force_sample(t);
      log_sample(outcome);
      PollResponse resp;
      resp.monitor = options_.id;
      resp.poll_id = poll->poll_id;
      resp.tick = t;
      resp.value = outcome.sample.value;
      if (!send(conn, resp)) return false;
    }
  }
  return true;
}

void MonitorNode::run() {
  TcpConnection conn = TcpConnection::connect(options_.coordinator_host,
                                              options_.coordinator_port);
  conn.set_nonblocking(true);
  FrameReader reader;
  if (!send(conn, Hello{options_.id})) return;

  Tick next_report = options_.updating_period;
  for (Tick t = 0; t < options_.ticks && !stop_.load(); ++t) {
    if (!service_messages(conn, reader, t)) return;

    if (monitor_.due(t)) {
      const auto outcome = monitor_.step(t);
      log_sample(outcome);
      if (outcome.local_violation) {
        LocalViolation report;
        report.monitor = options_.id;
        report.tick = t;
        report.value = outcome.sample.value;
        if (!send(conn, report)) return;
      }
    }

    if (t >= next_report) {
      next_report = t + options_.updating_period;
      const CoordStats stats = monitor_.drain_coord_stats();
      StatsReport report;
      report.monitor = options_.id;
      report.avg_gain = stats.avg_gain;
      report.avg_allowance = stats.avg_allowance;
      report.observations = stats.observations;
      if (!send(conn, report)) return;
    }

    std::this_thread::sleep_for(std::chrono::microseconds(options_.tick_micros));
  }

  if (sample_log_) sample_log_->flush();

  Bye bye;
  bye.monitor = options_.id;
  bye.scheduled_ops = monitor_.scheduled_ops();
  bye.forced_ops = monitor_.forced_ops();
  if (!send(conn, bye)) return;

  // Keep answering polls for stragglers until Shutdown or grace timeout.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.shutdown_grace_ms);
  while (std::chrono::steady_clock::now() < deadline && !stop_.load()) {
    // Straggler polls are answered with the last in-range tick's state.
    if (!service_messages(conn, reader, options_.ticks - 1)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void MonitorNode::log_sample(const Monitor::Outcome& outcome) {
  if (!sample_log_) return;
  SampleRecord record;
  record.monitor = options_.id;
  record.tick = outcome.sample.tick;
  record.value = outcome.sample.value;
  record.reason = outcome.reason;
  sample_log_->append(record);
}

}  // namespace volley::net
