// Process-wide syscall estimate for the net runtime.
//
// Every wrapper that issues a kernel I/O call (recv/send/writev/accept,
// epoll_wait/epoll_ctl, io_uring_enter) bumps one relaxed atomic. The count
// is an *estimate* of the wire runtime's syscall rate — raw ::send/::recv
// issued outside the wrappers (e.g. bench worker threads) are invisible on
// purpose, so bench_net_scale can diff the counter across a load window and
// report coordinator-side syscalls per frame (the number the io_uring
// backend exists to shrink).
#pragma once

#include <atomic>
#include <cstdint>

namespace volley::net {

inline std::atomic<std::int64_t>& io_syscall_counter() {
  static std::atomic<std::int64_t> count{0};
  return count;
}

/// One relaxed add per kernel entry; safe from any thread.
inline void count_io_syscalls(std::int64_t n = 1) {
  io_syscall_counter().fetch_add(n, std::memory_order_relaxed);
}

/// Cumulative estimate since process start (never reset).
inline std::int64_t io_syscalls_estimate() {
  return io_syscall_counter().load(std::memory_order_relaxed);
}

}  // namespace volley::net
