// RAII TCP socket primitives for the Volley wire runtime (localhost or LAN).
//
// Error policy: construction failures (bind/listen/connect) throw
// std::system_error — a node that cannot come up is a deployment error.
// Runtime I/O reports via return values (0/-1 semantics wrapped into
// optional/bool) so protocol code can treat peer disconnects as data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace volley {

/// Owning file descriptor. Move-only.
class FileDescriptor {
 public:
  FileDescriptor() = default;
  explicit FileDescriptor(int fd) : fd_(fd) {}
  ~FileDescriptor();

  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;
  FileDescriptor(FileDescriptor&& other) noexcept;
  FileDescriptor& operator=(FileDescriptor&& other) noexcept;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_{-1};
};

/// Connected TCP stream.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(FileDescriptor fd) : fd_(std::move(fd)) {}

  /// Connects to host:port (throws std::system_error on failure).
  /// `timeout_ms` bounds the connect itself (non-blocking connect + poll);
  /// < 0 waits for the kernel default, which can be minutes against a dead
  /// host — pass a deadline anywhere responsiveness matters.
  static TcpConnection connect(const std::string& host, std::uint16_t port,
                               int timeout_ms = -1);

  /// Non-throwing connect for retry loops: nullopt on refusal, timeout, or
  /// any other failure.
  static std::optional<TcpConnection> try_connect(const std::string& host,
                                                  std::uint16_t port,
                                                  int timeout_ms);

  /// Sends the whole buffer (blocking). Returns false on broken peer.
  bool send_all(std::span<const std::byte> data);

  /// Reads up to buf.size() bytes. Returns bytes read, 0 on orderly close,
  /// nullopt when the socket is non-blocking and no data is ready.
  std::optional<std::size_t> recv_some(std::span<std::byte> buf);

  void set_nonblocking(bool enabled);
  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  void close() { fd_.reset(); }

 private:
  FileDescriptor fd_;
};

/// Listening TCP socket on 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens; port 0 picks a free port (see `port()`).
  explicit TcpListener(std::uint16_t port);

  /// Accepts one connection (blocking). nullopt on EINTR/shutdown — or on
  /// an empty backlog when the listener is non-blocking.
  std::optional<TcpConnection> accept();

  void set_nonblocking(bool enabled);

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_.get(); }

 private:
  FileDescriptor fd_;
  std::uint16_t port_{0};
};

}  // namespace volley
