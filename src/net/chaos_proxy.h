// A fault-injecting TCP proxy for the Volley wire runtime.
//
// The proxy sits between monitors and a coordinator: monitors connect to
// the proxy's listen port, the proxy opens a matching upstream connection
// to the real coordinator, and every byte flows through it. Because the
// Volley protocol is length-framed (net/framing.h), the proxy reassembles
// complete frames, decodes their type, and injects faults from a *seeded*
// sim::NetFaultPlan — the net-runtime twin of the simulator's FaultPlan:
//
//  * frame drops by type  — LocalViolation frames with
//    violation_report_loss, PollResponse frames with poll_response_loss
//    (identical Bernoulli semantics to sim/faults.cpp), Heartbeat/Ack
//    frames with heartbeat_loss;
//  * delays               — a surviving frame is held delay_ms before
//    forwarding (reordering across links, never within one: queues are
//    FIFO, so TCP's in-order contract per connection is preserved);
//  * partial writes       — a frame is forwarded in two chunks a few
//    milliseconds apart, exercising the receiver's incremental FrameReader;
//  * mid-stream disconnects — after disconnect_after_frames forwarded
//    frames a link is cut on both sides (bounded by max_disconnects),
//    which is what a monitor crash or network partition looks like to the
//    nodes; the reconnecting monitor simply dials the proxy again.
//
// Determinism: all randomness comes from Rng(plan.message_loss.seed) in
// frame-arrival order, so a given message sequence sees the same faults.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/framing.h"
#include "net/socket.h"
#include "sim/faults.h"

namespace volley::net {

struct ChaosProxyOptions {
  std::uint16_t listen_port{0};  // 0 = pick a free port; read via port()
  std::string upstream_host{"127.0.0.1"};
  std::uint16_t upstream_port{0};
  int upstream_connect_timeout_ms{1000};
  NetFaultPlan plan;
};

/// Injection accounting, readable after run() returns.
struct ChaosStats {
  std::int64_t connections{0};
  std::int64_t forwarded_frames{0};
  std::int64_t dropped_violations{0};
  std::int64_t dropped_responses{0};
  std::int64_t dropped_heartbeats{0};
  std::int64_t delayed_frames{0};
  std::int64_t partial_writes{0};
  std::int64_t disconnects{0};
};

class ChaosProxy {
 public:
  explicit ChaosProxy(const ChaosProxyOptions& options);

  std::uint16_t port() const { return listener_.port(); }

  /// Blocking event loop; returns after request_stop(). Run it on its own
  /// thread next to the nodes under test.
  void run();
  void request_stop() { stop_.store(true); }

  const ChaosStats& stats() const { return stats_; }

 private:
  struct QueuedFrame {
    std::vector<std::byte> bytes;  // framed (length prefix included)
    std::int64_t due_ms{0};
    std::size_t offset{0};  // > 0 while a partial write is in flight
    bool partial{false};
  };

  struct Link {  // one proxied monitor <-> coordinator connection
    TcpConnection client;    // monitor side
    TcpConnection upstream;  // coordinator side
    FrameReader client_reader;
    FrameReader upstream_reader;
    std::deque<QueuedFrame> to_upstream;
    std::deque<QueuedFrame> to_client;
    std::int64_t frames{0};
    bool closed{false};
  };

  void ingest(Link& link, bool from_client, std::span<const std::byte> data,
              std::int64_t now);
  /// Applies the plan to one complete frame; queues it unless dropped.
  void admit_frame(Link& link, bool from_client,
                   std::vector<std::byte> payload, std::int64_t now);
  void flush(Link& link, std::int64_t now);
  void cut(Link& link);

  ChaosProxyOptions options_;
  TcpListener listener_;
  Rng rng_;
  std::vector<std::unique_ptr<Link>> links_;
  std::atomic<bool> stop_{false};
  ChaosStats stats_;
};

}  // namespace volley::net
