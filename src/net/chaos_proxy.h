// A fault-injecting TCP proxy for the Volley wire runtime.
//
// The proxy sits between monitors and a coordinator: monitors connect to
// the proxy's listen port, the proxy opens a matching upstream connection
// to the real coordinator, and every byte flows through it. Because the
// Volley protocol is length-framed (net/framing.h), the proxy reassembles
// complete frames, decodes their type, and injects faults from a *seeded*
// sim::NetFaultPlan — the net-runtime twin of the simulator's FaultPlan:
//
//  * frame drops by type  — LocalViolation frames with
//    violation_report_loss, PollResponse frames with poll_response_loss
//    (identical Bernoulli semantics to sim/faults.cpp), Heartbeat/Ack
//    frames with heartbeat_loss;
//  * delays               — a surviving frame is held delay_ms before
//    forwarding (reordering across links, never within one: queues are
//    FIFO, so TCP's in-order contract per connection is preserved);
//  * partial writes       — a frame is forwarded in two chunks a few
//    milliseconds apart, exercising the receiver's incremental FrameReader;
//  * mid-stream disconnects — after disconnect_after_frames forwarded
//    frames a link is cut on both sides (bounded by max_disconnects),
//    which is what a monitor crash or network partition looks like to the
//    nodes; the reconnecting monitor simply dials the proxy again.
//
// Determinism: all randomness comes from Rng(plan.message_loss.seed) in
// frame-arrival order, so a given message sequence sees the same faults.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/framing.h"
#include "net/reactor.h"
#include "net/socket.h"
#include "sim/faults.h"

namespace volley::net {

struct ChaosProxyOptions {
  std::uint16_t listen_port{0};  // 0 = pick a free port; read via port()
  std::string upstream_host{"127.0.0.1"};
  std::uint16_t upstream_port{0};
  int upstream_connect_timeout_ms{1000};
  NetFaultPlan plan;
  /// Event-loop selection: -1 follows VOLLEY_POLL_LOOP, 0 forces the epoll
  /// reactor, 1 forces the legacy 5 ms poll(2) loop.
  int poll_loop{-1};
};

/// Injection accounting, readable after run() returns.
struct ChaosStats {
  std::int64_t connections{0};
  std::int64_t forwarded_frames{0};
  std::int64_t dropped_violations{0};
  std::int64_t dropped_responses{0};
  std::int64_t dropped_heartbeats{0};
  std::int64_t delayed_frames{0};
  std::int64_t partial_writes{0};
  std::int64_t disconnects{0};
};

class ChaosProxy {
 public:
  explicit ChaosProxy(const ChaosProxyOptions& options);

  std::uint16_t port() const { return listener_.port(); }

  /// Blocking event loop; returns after request_stop(). Run it on its own
  /// thread next to the nodes under test.
  void run();
  void request_stop() {
    stop_.store(true);
    reactor_.wakeup();  // a sleeping reactor loop re-checks stop_ now
  }

  const ChaosStats& stats() const { return stats_; }

  /// Event-loop turns so far, readable while run() is in flight. An idle
  /// proxy on the reactor path performs zero wakeups between deadlines
  /// (the legacy loop turned every 5 ms regardless) — asserted by the
  /// NetFaults idle-proxy regression test.
  std::int64_t loop_wakeups() const {
    return loop_wakeups_.load(std::memory_order_relaxed);
  }

 private:
  struct QueuedFrame {
    std::vector<std::byte> bytes;  // framed (length prefix included)
    std::int64_t due_ms{0};
    std::size_t offset{0};  // > 0 while a partial write is in flight
    bool partial{false};
  };

  struct Link {  // one proxied monitor <-> coordinator connection
    TcpConnection client;    // monitor side
    TcpConnection upstream;  // coordinator side
    FrameReader client_reader;
    FrameReader upstream_reader;
    std::deque<QueuedFrame> to_upstream;
    std::deque<QueuedFrame> to_client;
    std::int64_t frames{0};
    bool closed{false};
    // Reactor path: one timer per link, armed at the earliest queued
    // frame's due time (FIFO — only queue fronts can become actionable).
    Reactor::TimerId timer{0};
    bool timer_armed{false};
    std::int64_t timer_due{0};
  };

  void run_poll_loop();  // the legacy 5 ms loop, preserved verbatim
  void run_reactor();
  void reactor_on_accept();
  void reactor_on_link(Link& link, bool from_client, std::uint32_t events);
  void schedule_link_timer(Link& link);

  void ingest(Link& link, bool from_client, std::span<const std::byte> data,
              std::int64_t now);
  /// Applies the plan to one complete frame; queues it unless dropped.
  void admit_frame(Link& link, bool from_client,
                   std::vector<std::byte> payload, std::int64_t now);
  void flush(Link& link, std::int64_t now);
  void cut(Link& link);

  ChaosProxyOptions options_;
  TcpListener listener_;
  Rng rng_;
  std::vector<std::unique_ptr<Link>> links_;
  Reactor reactor_;
  bool reactor_mode_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> loop_wakeups_{0};
  ChaosStats stats_;
};

}  // namespace volley::net
