#include "net/messages.h"

#include <cstring>

#include "control/task_codec.h"

namespace volley::net {

namespace {

enum class Type : std::uint8_t {
  kHello = 1,
  kLocalViolation = 2,
  kPollRequest = 3,
  kPollResponse = 4,
  kStatsReport = 5,
  kAllowanceUpdate = 6,
  kBye = 7,
  kShutdown = 8,
  kHeartbeat = 9,
  kHeartbeatAck = 10,
  kStatsRequest = 11,
  kStatsReply = 12,
  kAddTask = 13,
  kRemoveTask = 14,
  kUpdateTask = 15,
  kListTasks = 16,
  kControlReply = 17,
  kTaskListReply = 18,
  kTaskAttach = 19,
  kTaskDetach = 20,
  kShardHello = 21,
  kShardSummary = 22,
  kShardAllowance = 23,
};

class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i64(std::int64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void str(const std::string& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    raw(v.data(), v.size());
  }
  void spec(const TaskSpec& v) { control::encode_task_spec(buf_, v); }

  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  bool u8(std::uint8_t& v) { return raw(&v, 1); }
  bool u32(std::uint32_t& v) { return raw(&v, 4); }
  bool u64(std::uint64_t& v) { return raw(&v, 8); }
  bool i64(std::int64_t& v) { return raw(&v, 8); }
  bool f64(double& v) { return raw(&v, 8); }
  bool str(std::string& v) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (data_.size() - pos_ < len) return false;
    v.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return true;
  }
  bool spec(TaskSpec& v) { return control::decode_task_spec(data_, pos_, v); }
  bool done() const { return pos_ == data_.size(); }

 private:
  bool raw(void* p, std::size_t n) {
    if (data_.size() - pos_ < n) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::span<const std::byte> data_;
  std::size_t pos_{0};
};

}  // namespace

std::vector<std::byte> encode(const Message& message) {
  Writer w;
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) {
          w.u8(static_cast<std::uint8_t>(Type::kHello));
          w.u32(m.monitor);
          w.u8(m.resume ? 1 : 0);
        } else if constexpr (std::is_same_v<T, LocalViolation>) {
          w.u8(static_cast<std::uint8_t>(Type::kLocalViolation));
          w.u32(m.monitor);
          w.i64(m.tick);
          w.f64(m.value);
          w.u32(m.task);
        } else if constexpr (std::is_same_v<T, PollRequest>) {
          w.u8(static_cast<std::uint8_t>(Type::kPollRequest));
          w.i64(m.tick);
          w.u64(m.poll_id);
          w.u32(m.task);
        } else if constexpr (std::is_same_v<T, PollResponse>) {
          w.u8(static_cast<std::uint8_t>(Type::kPollResponse));
          w.u32(m.monitor);
          w.u64(m.poll_id);
          w.i64(m.tick);
          w.f64(m.value);
          w.u32(m.task);
        } else if constexpr (std::is_same_v<T, StatsReport>) {
          w.u8(static_cast<std::uint8_t>(Type::kStatsReport));
          w.u32(m.monitor);
          w.f64(m.avg_gain);
          w.f64(m.avg_allowance);
          w.i64(m.observations);
          w.u32(m.task);
        } else if constexpr (std::is_same_v<T, AllowanceUpdate>) {
          w.u8(static_cast<std::uint8_t>(Type::kAllowanceUpdate));
          w.f64(m.error_allowance);
          w.u32(m.task);
        } else if constexpr (std::is_same_v<T, Bye>) {
          w.u8(static_cast<std::uint8_t>(Type::kBye));
          w.u32(m.monitor);
          w.i64(m.scheduled_ops);
          w.i64(m.forced_ops);
        } else if constexpr (std::is_same_v<T, Shutdown>) {
          w.u8(static_cast<std::uint8_t>(Type::kShutdown));
        } else if constexpr (std::is_same_v<T, Heartbeat>) {
          w.u8(static_cast<std::uint8_t>(Type::kHeartbeat));
          w.u32(m.monitor);
          w.u64(m.seq);
        } else if constexpr (std::is_same_v<T, HeartbeatAck>) {
          w.u8(static_cast<std::uint8_t>(Type::kHeartbeatAck));
          w.u64(m.seq);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          w.u8(static_cast<std::uint8_t>(Type::kStatsRequest));
          w.u32(m.flags);
        } else if constexpr (std::is_same_v<T, StatsReply>) {
          w.u8(static_cast<std::uint8_t>(Type::kStatsReply));
          w.i64(m.global_polls);
          w.i64(m.reallocations);
          w.i64(m.alerts);
          w.str(m.metrics);
          w.str(m.trace_jsonl);
          w.u32(static_cast<std::uint32_t>(m.shards.size()));
          for (const auto& row : m.shards) {
            w.u32(row.shard);
            w.u32(row.monitors);
            w.f64(row.allowance);
            w.i64(row.last_summary_age_ms);
          }
        } else if constexpr (std::is_same_v<T, AddTask>) {
          w.u8(static_cast<std::uint8_t>(Type::kAddTask));
          w.u32(m.task);
          w.spec(m.spec);
        } else if constexpr (std::is_same_v<T, RemoveTask>) {
          w.u8(static_cast<std::uint8_t>(Type::kRemoveTask));
          w.u32(m.task);
        } else if constexpr (std::is_same_v<T, UpdateTask>) {
          w.u8(static_cast<std::uint8_t>(Type::kUpdateTask));
          w.u32(m.task);
          w.spec(m.spec);
        } else if constexpr (std::is_same_v<T, ListTasks>) {
          w.u8(static_cast<std::uint8_t>(Type::kListTasks));
        } else if constexpr (std::is_same_v<T, ControlReply>) {
          w.u8(static_cast<std::uint8_t>(Type::kControlReply));
          w.u8(static_cast<std::uint8_t>(m.status));
          w.u64(m.epoch);
          w.u64(m.registry_version);
          w.str(m.message);
        } else if constexpr (std::is_same_v<T, TaskListReply>) {
          w.u8(static_cast<std::uint8_t>(Type::kTaskListReply));
          w.u64(m.registry_version);
          w.u32(static_cast<std::uint32_t>(m.tasks.size()));
          for (const auto& entry : m.tasks) {
            w.u32(entry.task);
            w.u64(entry.epoch);
            w.f64(entry.global_threshold);
            w.f64(entry.error_allowance);
            w.i64(entry.updating_period);
            w.u32(static_cast<std::uint32_t>(entry.allowance_split.size()));
            for (const auto& [monitor, allowance] : entry.allowance_split) {
              w.u32(monitor);
              w.f64(allowance);
            }
          }
        } else if constexpr (std::is_same_v<T, TaskAttach>) {
          w.u8(static_cast<std::uint8_t>(Type::kTaskAttach));
          w.u32(m.task);
          w.u64(m.epoch);
          w.f64(m.local_threshold);
          w.f64(m.error_allowance);
          w.f64(m.slack_ratio);
          w.u32(static_cast<std::uint32_t>(m.patience));
          w.i64(m.max_interval);
          w.i64(m.updating_period);
        } else if constexpr (std::is_same_v<T, TaskDetach>) {
          w.u8(static_cast<std::uint8_t>(Type::kTaskDetach));
          w.u32(m.task);
          w.u64(m.epoch);
        } else if constexpr (std::is_same_v<T, ShardHello>) {
          w.u8(static_cast<std::uint8_t>(Type::kShardHello));
          w.u32(m.shard);
          w.u32(m.monitors);
          w.u8(m.resume ? 1 : 0);
        } else if constexpr (std::is_same_v<T, ShardSummary>) {
          w.u8(static_cast<std::uint8_t>(Type::kShardSummary));
          w.u32(m.shard);
          w.u32(m.task);
          w.f64(m.r);
          w.f64(m.e);
          w.f64(m.yield);
          w.f64(m.allowance_used);
          w.i64(m.observations);
        } else if constexpr (std::is_same_v<T, ShardAllowance>) {
          w.u8(static_cast<std::uint8_t>(Type::kShardAllowance));
          w.u32(m.task);
          w.f64(m.error_allowance);
        }
      },
      message);
  return w.take();
}

std::optional<Message> decode(std::span<const std::byte> payload) {
  Reader r(payload);
  std::uint8_t type = 0;
  if (!r.u8(type)) return std::nullopt;
  switch (static_cast<Type>(type)) {
    case Type::kHello: {
      Hello m;
      std::uint8_t resume = 0;
      if (!r.u32(m.monitor) || !r.u8(resume) || !r.done())
        return std::nullopt;
      m.resume = resume != 0;
      return m;
    }
    case Type::kLocalViolation: {
      LocalViolation m;
      if (!r.u32(m.monitor) || !r.i64(m.tick) || !r.f64(m.value) ||
          !r.u32(m.task) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kPollRequest: {
      PollRequest m;
      if (!r.i64(m.tick) || !r.u64(m.poll_id) || !r.u32(m.task) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kPollResponse: {
      PollResponse m;
      if (!r.u32(m.monitor) || !r.u64(m.poll_id) || !r.i64(m.tick) ||
          !r.f64(m.value) || !r.u32(m.task) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kStatsReport: {
      StatsReport m;
      if (!r.u32(m.monitor) || !r.f64(m.avg_gain) ||
          !r.f64(m.avg_allowance) || !r.i64(m.observations) ||
          !r.u32(m.task) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kAllowanceUpdate: {
      AllowanceUpdate m;
      if (!r.f64(m.error_allowance) || !r.u32(m.task) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kBye: {
      Bye m;
      if (!r.u32(m.monitor) || !r.i64(m.scheduled_ops) ||
          !r.i64(m.forced_ops) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kShutdown: {
      if (!r.done()) return std::nullopt;
      return Shutdown{};
    }
    case Type::kHeartbeat: {
      Heartbeat m;
      if (!r.u32(m.monitor) || !r.u64(m.seq) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kHeartbeatAck: {
      HeartbeatAck m;
      if (!r.u64(m.seq) || !r.done()) return std::nullopt;
      return m;
    }
    case Type::kStatsRequest: {
      StatsRequest m;
      if (!r.u32(m.flags) || !r.done()) return std::nullopt;
      return m;
    }
    case Type::kStatsReply: {
      StatsReply m;
      std::uint32_t shard_count = 0;
      if (!r.i64(m.global_polls) || !r.i64(m.reallocations) ||
          !r.i64(m.alerts) || !r.str(m.metrics) || !r.str(m.trace_jsonl) ||
          !r.u32(shard_count) || shard_count > StatsReply::kMaxShards)
        return std::nullopt;
      m.shards.reserve(shard_count);
      for (std::uint32_t i = 0; i < shard_count; ++i) {
        ShardStatsRow row;
        if (!r.u32(row.shard) || !r.u32(row.monitors) ||
            !r.f64(row.allowance) || !r.i64(row.last_summary_age_ms))
          return std::nullopt;
        m.shards.push_back(row);
      }
      if (!r.done()) return std::nullopt;
      return m;
    }
    case Type::kAddTask: {
      AddTask m;
      if (!r.u32(m.task) || !r.spec(m.spec) || !r.done()) return std::nullopt;
      return m;
    }
    case Type::kRemoveTask: {
      RemoveTask m;
      if (!r.u32(m.task) || !r.done()) return std::nullopt;
      return m;
    }
    case Type::kUpdateTask: {
      UpdateTask m;
      if (!r.u32(m.task) || !r.spec(m.spec) || !r.done()) return std::nullopt;
      return m;
    }
    case Type::kListTasks: {
      if (!r.done()) return std::nullopt;
      return ListTasks{};
    }
    case Type::kControlReply: {
      ControlReply m;
      std::uint8_t status = 0;
      if (!r.u8(status) ||
          status > static_cast<std::uint8_t>(control::ControlStatus::kInvalid))
        return std::nullopt;
      m.status = static_cast<control::ControlStatus>(status);
      if (!r.u64(m.epoch) || !r.u64(m.registry_version) || !r.str(m.message) ||
          !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kTaskListReply: {
      TaskListReply m;
      std::uint32_t count = 0;
      if (!r.u64(m.registry_version) || !r.u32(count) ||
          count > TaskListReply::kMaxTasks)
        return std::nullopt;
      m.tasks.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        TaskEntry entry;
        std::uint32_t split = 0;
        if (!r.u32(entry.task) || !r.u64(entry.epoch) ||
            !r.f64(entry.global_threshold) || !r.f64(entry.error_allowance) ||
            !r.i64(entry.updating_period) || !r.u32(split) ||
            split > TaskListReply::kMaxTasks)
          return std::nullopt;
        entry.allowance_split.reserve(split);
        for (std::uint32_t j = 0; j < split; ++j) {
          MonitorId monitor = 0;
          double allowance = 0.0;
          if (!r.u32(monitor) || !r.f64(allowance)) return std::nullopt;
          entry.allowance_split.emplace_back(monitor, allowance);
        }
        m.tasks.push_back(std::move(entry));
      }
      if (!r.done()) return std::nullopt;
      return m;
    }
    case Type::kTaskAttach: {
      TaskAttach m;
      std::uint32_t patience = 0;
      if (!r.u32(m.task) || !r.u64(m.epoch) || !r.f64(m.local_threshold) ||
          !r.f64(m.error_allowance) || !r.f64(m.slack_ratio) ||
          !r.u32(patience) || !r.i64(m.max_interval) ||
          !r.i64(m.updating_period) || !r.done())
        return std::nullopt;
      m.patience = static_cast<std::int32_t>(patience);
      return m;
    }
    case Type::kTaskDetach: {
      TaskDetach m;
      if (!r.u32(m.task) || !r.u64(m.epoch) || !r.done()) return std::nullopt;
      return m;
    }
    case Type::kShardHello: {
      ShardHello m;
      std::uint8_t resume = 0;
      if (!r.u32(m.shard) || !r.u32(m.monitors) || !r.u8(resume) ||
          !r.done())
        return std::nullopt;
      m.resume = resume != 0;
      return m;
    }
    case Type::kShardSummary: {
      ShardSummary m;
      if (!r.u32(m.shard) || !r.u32(m.task) || !r.f64(m.r) || !r.f64(m.e) ||
          !r.f64(m.yield) || !r.f64(m.allowance_used) ||
          !r.i64(m.observations) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kShardAllowance: {
      ShardAllowance m;
      if (!r.u32(m.task) || !r.f64(m.error_allowance) || !r.done())
        return std::nullopt;
      return m;
    }
  }
  return std::nullopt;
}

bool is_control_request(const Message& message) {
  return std::holds_alternative<AddTask>(message) ||
         std::holds_alternative<RemoveTask>(message) ||
         std::holds_alternative<UpdateTask>(message) ||
         std::holds_alternative<ListTasks>(message) ||
         std::holds_alternative<ShardAllowance>(message);
}

}  // namespace volley::net
