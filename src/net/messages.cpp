#include "net/messages.h"

#include <cstring>

namespace volley::net {

namespace {

enum class Type : std::uint8_t {
  kHello = 1,
  kLocalViolation = 2,
  kPollRequest = 3,
  kPollResponse = 4,
  kStatsReport = 5,
  kAllowanceUpdate = 6,
  kBye = 7,
  kShutdown = 8,
  kHeartbeat = 9,
  kHeartbeatAck = 10,
  kStatsRequest = 11,
  kStatsReply = 12,
};

class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i64(std::int64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void str(const std::string& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    raw(v.data(), v.size());
  }

  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  bool u8(std::uint8_t& v) { return raw(&v, 1); }
  bool u32(std::uint32_t& v) { return raw(&v, 4); }
  bool u64(std::uint64_t& v) { return raw(&v, 8); }
  bool i64(std::int64_t& v) { return raw(&v, 8); }
  bool f64(double& v) { return raw(&v, 8); }
  bool str(std::string& v) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (data_.size() - pos_ < len) return false;
    v.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return true;
  }
  bool done() const { return pos_ == data_.size(); }

 private:
  bool raw(void* p, std::size_t n) {
    if (data_.size() - pos_ < n) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::span<const std::byte> data_;
  std::size_t pos_{0};
};

}  // namespace

std::vector<std::byte> encode(const Message& message) {
  Writer w;
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) {
          w.u8(static_cast<std::uint8_t>(Type::kHello));
          w.u32(m.monitor);
          w.u8(m.resume ? 1 : 0);
        } else if constexpr (std::is_same_v<T, LocalViolation>) {
          w.u8(static_cast<std::uint8_t>(Type::kLocalViolation));
          w.u32(m.monitor);
          w.i64(m.tick);
          w.f64(m.value);
        } else if constexpr (std::is_same_v<T, PollRequest>) {
          w.u8(static_cast<std::uint8_t>(Type::kPollRequest));
          w.i64(m.tick);
          w.u64(m.poll_id);
        } else if constexpr (std::is_same_v<T, PollResponse>) {
          w.u8(static_cast<std::uint8_t>(Type::kPollResponse));
          w.u32(m.monitor);
          w.u64(m.poll_id);
          w.i64(m.tick);
          w.f64(m.value);
        } else if constexpr (std::is_same_v<T, StatsReport>) {
          w.u8(static_cast<std::uint8_t>(Type::kStatsReport));
          w.u32(m.monitor);
          w.f64(m.avg_gain);
          w.f64(m.avg_allowance);
          w.i64(m.observations);
        } else if constexpr (std::is_same_v<T, AllowanceUpdate>) {
          w.u8(static_cast<std::uint8_t>(Type::kAllowanceUpdate));
          w.f64(m.error_allowance);
        } else if constexpr (std::is_same_v<T, Bye>) {
          w.u8(static_cast<std::uint8_t>(Type::kBye));
          w.u32(m.monitor);
          w.i64(m.scheduled_ops);
          w.i64(m.forced_ops);
        } else if constexpr (std::is_same_v<T, Shutdown>) {
          w.u8(static_cast<std::uint8_t>(Type::kShutdown));
        } else if constexpr (std::is_same_v<T, Heartbeat>) {
          w.u8(static_cast<std::uint8_t>(Type::kHeartbeat));
          w.u32(m.monitor);
          w.u64(m.seq);
        } else if constexpr (std::is_same_v<T, HeartbeatAck>) {
          w.u8(static_cast<std::uint8_t>(Type::kHeartbeatAck));
          w.u64(m.seq);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          w.u8(static_cast<std::uint8_t>(Type::kStatsRequest));
          w.u32(m.flags);
        } else if constexpr (std::is_same_v<T, StatsReply>) {
          w.u8(static_cast<std::uint8_t>(Type::kStatsReply));
          w.i64(m.global_polls);
          w.i64(m.reallocations);
          w.i64(m.alerts);
          w.str(m.metrics);
          w.str(m.trace_jsonl);
        }
      },
      message);
  return w.take();
}

std::optional<Message> decode(std::span<const std::byte> payload) {
  Reader r(payload);
  std::uint8_t type = 0;
  if (!r.u8(type)) return std::nullopt;
  switch (static_cast<Type>(type)) {
    case Type::kHello: {
      Hello m;
      std::uint8_t resume = 0;
      if (!r.u32(m.monitor) || !r.u8(resume) || !r.done())
        return std::nullopt;
      m.resume = resume != 0;
      return m;
    }
    case Type::kLocalViolation: {
      LocalViolation m;
      if (!r.u32(m.monitor) || !r.i64(m.tick) || !r.f64(m.value) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kPollRequest: {
      PollRequest m;
      if (!r.i64(m.tick) || !r.u64(m.poll_id) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kPollResponse: {
      PollResponse m;
      if (!r.u32(m.monitor) || !r.u64(m.poll_id) || !r.i64(m.tick) ||
          !r.f64(m.value) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kStatsReport: {
      StatsReport m;
      if (!r.u32(m.monitor) || !r.f64(m.avg_gain) ||
          !r.f64(m.avg_allowance) || !r.i64(m.observations) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kAllowanceUpdate: {
      AllowanceUpdate m;
      if (!r.f64(m.error_allowance) || !r.done()) return std::nullopt;
      return m;
    }
    case Type::kBye: {
      Bye m;
      if (!r.u32(m.monitor) || !r.i64(m.scheduled_ops) ||
          !r.i64(m.forced_ops) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kShutdown: {
      if (!r.done()) return std::nullopt;
      return Shutdown{};
    }
    case Type::kHeartbeat: {
      Heartbeat m;
      if (!r.u32(m.monitor) || !r.u64(m.seq) || !r.done())
        return std::nullopt;
      return m;
    }
    case Type::kHeartbeatAck: {
      HeartbeatAck m;
      if (!r.u64(m.seq) || !r.done()) return std::nullopt;
      return m;
    }
    case Type::kStatsRequest: {
      StatsRequest m;
      if (!r.u32(m.flags) || !r.done()) return std::nullopt;
      return m;
    }
    case Type::kStatsReply: {
      StatsReply m;
      if (!r.i64(m.global_polls) || !r.i64(m.reallocations) ||
          !r.i64(m.alerts) || !r.str(m.metrics) || !r.str(m.trace_jsonl) ||
          !r.done())
        return std::nullopt;
      return m;
    }
  }
  return std::nullopt;
}

}  // namespace volley::net
