#include "net/reactor_pool.h"

#include <cstdlib>
#include <string>

namespace volley::net {

std::size_t net_threads_from_env() {
  const char* v = std::getenv("VOLLEY_NET_THREADS");  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr) return 1;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || n < 1) return 1;
  return static_cast<std::size_t>(n);
}

std::size_t resolve_net_threads(int override_count) {
  if (override_count < 0) return net_threads_from_env();
  return override_count < 1 ? 1 : static_cast<std::size_t>(override_count);
}

ReactorPool::ReactorPool(std::size_t n_loops, int uring_override) {
  if (n_loops < 1) n_loops = 1;
  const ReactorBackend backend = resolve_backend(uring_override);
  loops_.reserve(n_loops);
  queues_.reserve(n_loops);
  for (std::size_t i = 0; i < n_loops; ++i) {
    loops_.push_back(std::make_unique<Reactor>(backend));
    queues_.push_back(std::make_unique<TaskQueue>());
  }
}

ReactorPool::~ReactorPool() { stop(); }

void ReactorPool::start() {
  if (size() <= 1 || running()) return;
  stop_.store(false, std::memory_order_release);
  threads_.reserve(size() - 1);
  for (std::size_t i = 1; i < size(); ++i) {
    threads_.emplace_back([this, i] { run_worker(i); });
  }
}

void ReactorPool::stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  wakeup_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
}

void ReactorPool::post(std::size_t loop_index, Task task) {
  TaskQueue& q = *queues_[loop_index];
  bool was_empty = false;
  {
    std::lock_guard<std::mutex> lock(q.mu);
    was_empty = q.tasks.empty();
    q.tasks.push_back(std::move(task));
  }
  // A non-empty queue already has a wakeup in flight, or a drain holds the
  // lock and will swap the new task out with the rest — either way the task
  // runs without another kick.
  if (was_empty) loops_[loop_index]->wakeup();
}

std::size_t ReactorPool::drain_tasks(std::size_t loop_index) {
  TaskQueue& q = *queues_[loop_index];
  std::deque<Task> batch;
  {
    std::lock_guard<std::mutex> lock(q.mu);
    batch.swap(q.tasks);
  }
  for (auto& task : batch) task();
  return batch.size();
}

std::size_t ReactorPool::next_loop() {
  if (size() <= 1) return 0;
  // Round-robin over worker loops only: the home loop runs the protocol
  // state machine and the listener; session I/O goes to workers.
  const std::size_t idx = rr_next_;
  rr_next_ = rr_next_ + 1 < size() ? rr_next_ + 1 : 1;
  return idx;
}

void ReactorPool::wakeup_all() {
  for (auto& loop : loops_) loop->wakeup();
}

void ReactorPool::enable_loop_stats() {
  for (std::size_t i = 0; i < size(); ++i) loops_[i]->enable_loop_stats(i);
}

void ReactorPool::run_worker(std::size_t loop_index) {
  Reactor& r = *loops_[loop_index];
  while (!stop_.load(std::memory_order_acquire)) {
    drain_tasks(loop_index);
    r.run_once(-1);
  }
  // Final drain: a task posted between the last swap and the stop flag
  // must still run (teardown handoffs rely on it).
  drain_tasks(loop_index);
}

}  // namespace volley::net
