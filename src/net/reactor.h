// Epoll reactor + calendar-ring timer wheel for the Volley net runtime.
//
// One Reactor instance is one event loop: file descriptors register a
// handler once (persistent registration — no per-tick fd-vector rebuild
// like the legacy poll(2) loops) and are dispatched on readiness;
// millisecond timers live in a calendar bucket ring (the due-index idiom
// from core/coordinator.cpp, one ring level plus lap carry-over for
// far-out deadlines). A quiet loop therefore sleeps in epoll_wait until
// the next due timer or the next byte of I/O — zero wakeups in between —
// instead of polling on a fixed tick.
//
// Threading: everything except wakeup() is confined to the loop thread
// (the thread calling run_once). wakeup() is safe from any thread: it
// writes an eventfd registered with the epoll set, so another thread can
// nudge a sleeping loop (request_stop does this).
//
// `VOLLEY_POLL_LOOP` (set and not "0") is the escape hatch that keeps the
// legacy poll(2) loops as the behavioral baseline, same discipline as
// VOLLEY_SCAN_TICKS / VOLLEY_SCALAR_BETA; nodes read it through
// poll_loop_from_env() at construction and accept a per-node override.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace volley::net {

/// True when VOLLEY_POLL_LOOP is set (and not "0"): run the legacy
/// poll(2) loops instead of the epoll reactor.
bool poll_loop_from_env();

/// Resolves a per-node tri-state override against the environment:
/// negative = follow VOLLEY_POLL_LOOP, 0 = reactor, positive = legacy.
inline bool resolve_poll_loop(int override_flag) {
  if (override_flag < 0) return poll_loop_from_env();
  return override_flag > 0;
}

class Reactor {
 public:
  /// Raw epoll event mask; use readable()/writable()/hangup() to decode.
  using IoHandler = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;
  using TimerId = std::uint64_t;

  static bool readable(std::uint32_t events);
  static bool writable(std::uint32_t events);
  /// Peer hangup or socket error — treat like readability (the next read
  /// returns 0/err) so handlers observe EOF through their normal path.
  static bool hangup(std::uint32_t events);

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // --- fd registration ----------------------------------------------------

  /// Registers `fd` (level-triggered) for readability and, when
  /// `want_write`, writability. The handler stays registered until
  /// remove_fd; re-adding an fd replaces its handler and interest set.
  void add_fd(int fd, IoHandler handler, bool want_write = false);

  /// Arms/disarms EPOLLOUT for an already-registered fd (EAGAIN
  /// backpressure: arm when a flush blocks, disarm once drained).
  void set_want_write(int fd, bool want_write);

  /// Swaps the handler of a registered fd (pending-conn -> session rebind)
  /// without touching the kernel registration.
  void update_handler(int fd, IoHandler handler);

  /// Deregisters; safe when the fd was never added or is already closed.
  /// Pending events for the fd in the current dispatch batch are skipped.
  void remove_fd(int fd);

  bool watching(int fd) const { return handlers_.count(fd) != 0; }
  std::size_t watched_fds() const { return handlers_.size(); }

  // --- timers (calendar ring, 1 ms resolution) ----------------------------

  /// Fires `cb` once, ~delay_ms from now (never early; late only by loop
  /// dispatch time). Returns an id for cancel_timer.
  TimerId add_timer(std::int64_t delay_ms, TimerCallback cb);

  /// Cancels a pending timer; a no-op for unknown/already-fired ids.
  void cancel_timer(TimerId id);

  std::size_t pending_timers() const { return timers_.size(); }

  /// Absolute steady-clock ms deadline of the soonest pending timer (the
  /// epoll sleep bound), or nullopt when no timer is pending.
  std::optional<std::int64_t> next_deadline_ms() const;

  // --- loop ---------------------------------------------------------------

  /// One loop turn: sleeps until I/O, the next due timer, or `max_wait_ms`
  /// (-1: no bound beyond timers), then dispatches every ready fd and
  /// every due timer. Returns the number of I/O events + timers fired
  /// (0 on a pure timeout or wakeup()).
  int run_once(int max_wait_ms = -1);

  /// run_once with a sub-millisecond wait bound (epoll_pwait2 where the
  /// kernel offers it, nonblocking-poll + nanosleep otherwise) — the
  /// monitor's compressed tick cadence is 100s of microseconds.
  int run_once_for(std::chrono::nanoseconds max_wait);

  /// Nudges a sleeping loop from any thread (eventfd write).
  void wakeup();

  /// Steady-clock milliseconds, the timebase of add_timer deadlines.
  static std::int64_t now_ms();

  struct Stats {
    std::int64_t wakeups{0};       // epoll_wait returns (loop turns)
    std::int64_t io_events{0};     // fd events dispatched
    std::int64_t timers_fired{0};  // timer callbacks run
  };
  const Stats& stats() const { return stats_; }

 private:
  struct WheelEntry {
    TimerId id{0};
    std::int64_t due_ms{0};
  };

  static constexpr std::size_t kWheelSlots = 512;  // power of two
  static constexpr std::int64_t kWheelResMs = 1;
  static constexpr std::int64_t kWheelSpanMs =
      static_cast<std::int64_t>(kWheelSlots) * kWheelResMs;

  std::size_t slot_of(std::int64_t ms) const {
    return static_cast<std::size_t>(ms / kWheelResMs) & (kWheelSlots - 1);
  }

  /// Fires every timer due by `now` and advances the wheel cursor.
  int advance_wheel(std::int64_t now);
  int dispatch(void* events, int n);
  int wait_and_dispatch(std::int64_t wait_ns);

  int epoll_fd_{-1};
  int wake_fd_{-1};
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;

  std::unordered_map<TimerId, TimerCallback> timers_;
  std::vector<std::vector<WheelEntry>> wheel_{kWheelSlots};
  std::int64_t wheel_cursor_ms_{0};
  TimerId next_timer_id_{1};
  std::vector<WheelEntry> due_scratch_;

  Stats stats_;
};

}  // namespace volley::net
