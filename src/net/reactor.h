// Event-loop reactor + calendar-ring timer wheel for the Volley net runtime.
//
// One Reactor instance is one event loop: file descriptors register a
// handler once (persistent registration — no per-tick fd-vector rebuild
// like the legacy poll(2) loops) and are dispatched on readiness;
// millisecond timers live in a calendar bucket ring (the due-index idiom
// from core/coordinator.cpp, one ring level plus lap carry-over for
// far-out deadlines). A quiet loop therefore sleeps until the next due
// timer or the next byte of I/O — zero wakeups in between — instead of
// polling on a fixed tick.
//
// Backends (DESIGN.md §14): the readiness engine is pluggable behind this
// interface.
//  * kEpoll — level-triggered epoll, the identity baseline. One epoll_ctl
//    syscall per interest change, one epoll_wait per turn.
//  * kUring — io_uring (raw syscalls, no liburing): every interest change
//    (add/remove/want-write flips) becomes a batched POLL_ADD / POLL_REMOVE
//    submission and the whole batch rides the single io_uring_enter that
//    also waits for completions — a loop turn costs one syscall no matter
//    how many fds were (re)armed. Poll adds are one-shot and re-armed after
//    dispatch; a fresh arm re-checks current readiness (vfs_poll), so the
//    semantics stay exactly level-triggered epoll's. Selected by
//    `VOLLEY_URING` (set and not "0") when the kernel supports it; the
//    fallback to epoll is silent and visible via backend().
//
// Threading: everything except wakeup() is confined to the loop thread
// (the thread calling run_once). wakeup() is safe from any thread: it
// writes an eventfd registered with the readiness engine, so another
// thread can nudge a sleeping loop (request_stop and ReactorPool::post do
// this).
//
// `VOLLEY_POLL_LOOP` (set and not "0") is the escape hatch that keeps the
// legacy poll(2) loops as the behavioral baseline, same discipline as
// VOLLEY_SCAN_TICKS / VOLLEY_SCALAR_BETA; nodes read it through
// poll_loop_from_env() at construction and accept a per-node override.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace volley::net {

/// True when VOLLEY_POLL_LOOP is set (and not "0"): run the legacy
/// poll(2) loops instead of the epoll reactor.
bool poll_loop_from_env();

/// Resolves a per-node tri-state override against the environment:
/// negative = follow VOLLEY_POLL_LOOP, 0 = reactor, positive = legacy.
inline bool resolve_poll_loop(int override_flag) {
  if (override_flag < 0) return poll_loop_from_env();
  return override_flag > 0;
}

/// Readiness engine behind the Reactor interface.
enum class ReactorBackend { kEpoll, kUring };

/// True when VOLLEY_URING is set (and not "0"): prefer the io_uring
/// backend where the build and the kernel support it.
bool uring_from_env();

/// Compile-time (<linux/io_uring.h> present) + runtime (io_uring_setup
/// probe) support check; cached after the first call.
bool uring_supported();

/// Per-node tri-state, same discipline as resolve_poll_loop: negative =
/// follow VOLLEY_URING, 0 = epoll, positive = io_uring (benches force both
/// backends in one process regardless of the environment).
ReactorBackend resolve_backend(int override_flag);

const char* backend_name(ReactorBackend backend);

class Reactor {
 public:
  /// Raw epoll-style event mask; use readable()/writable()/hangup() to
  /// decode (identical bit values on both backends).
  using IoHandler = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;
  using TimerId = std::uint64_t;

  static bool readable(std::uint32_t events);
  static bool writable(std::uint32_t events);
  /// Peer hangup or socket error — treat like readability (the next read
  /// returns 0/err) so handlers observe EOF through their normal path.
  static bool hangup(std::uint32_t events);

  /// Backend from the environment (VOLLEY_URING), epoll otherwise.
  Reactor();
  /// Forced backend; silently falls back to epoll when io_uring is
  /// unavailable (check backend() for what actually runs).
  explicit Reactor(ReactorBackend requested);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  ReactorBackend backend() const { return backend_; }

  // --- fd registration ----------------------------------------------------

  /// Registers `fd` (level-triggered) for readability and, when
  /// `want_write`, writability. The handler stays registered until
  /// remove_fd; re-adding an fd replaces its handler and interest set.
  void add_fd(int fd, IoHandler handler, bool want_write = false);

  /// Arms/disarms writability interest for an already-registered fd (EAGAIN
  /// backpressure: arm when a flush blocks, disarm once drained).
  void set_want_write(int fd, bool want_write);

  /// Swaps the handler of a registered fd (pending-conn -> session rebind)
  /// without touching the kernel registration.
  void update_handler(int fd, IoHandler handler);

  /// Deregisters; safe when the fd was never added or is already closed.
  /// Pending events for the fd in the current dispatch batch are skipped.
  void remove_fd(int fd);

  bool watching(int fd) const { return handlers_.count(fd) != 0; }
  std::size_t watched_fds() const { return handlers_.size(); }

  // --- timers (calendar ring, 1 ms resolution) ----------------------------

  /// Fires `cb` once, ~delay_ms from now (never early; late only by loop
  /// dispatch time). Returns an id for cancel_timer.
  TimerId add_timer(std::int64_t delay_ms, TimerCallback cb);

  /// Cancels a pending timer; a no-op for unknown/already-fired ids.
  void cancel_timer(TimerId id);

  std::size_t pending_timers() const { return timers_.size(); }

  /// Absolute steady-clock ms deadline of the soonest pending timer (the
  /// sleep bound), or nullopt when no timer is pending.
  std::optional<std::int64_t> next_deadline_ms() const;

  // --- loop ---------------------------------------------------------------

  /// One loop turn: sleeps until I/O, the next due timer, or `max_wait_ms`
  /// (-1: no bound beyond timers), then dispatches every ready fd and
  /// every due timer. Returns the number of I/O events + timers fired
  /// (0 on a pure timeout or wakeup()).
  int run_once(int max_wait_ms = -1);

  /// run_once with a sub-millisecond wait bound (epoll_pwait2 / io_uring
  /// EXT_ARG timespec where the kernel offers it, nonblocking-poll +
  /// nanosleep otherwise) — the monitor's compressed tick cadence is 100s
  /// of microseconds.
  int run_once_for(std::chrono::nanoseconds max_wait);

  /// Nudges a sleeping loop from any thread (eventfd write).
  void wakeup();

  /// Steady-clock milliseconds, the timebase of add_timer deadlines.
  static std::int64_t now_ms();

  struct Stats {
    std::int64_t wakeups{0};       // wait returns (loop turns)
    std::int64_t io_events{0};     // fd events dispatched
    std::int64_t timers_fired{0};  // timer callbacks run
    std::int64_t syscalls{0};      // waits + interest-change kernel entries
  };
  const Stats& stats() const { return stats_; }

  /// Registers this loop's Stats as labeled gauges in the current obs
  /// metrics registry (volley_reactor_loop<i>_{wakeups,io_events,
  /// timers_fired,syscalls}) and refreshes them once per turn, so
  /// volley_stats shows each loop of a ReactorPool separately. Call from
  /// the thread whose registry should own the gauges, before the loop runs.
  void enable_loop_stats(std::size_t loop_index);

 private:
  struct WheelEntry {
    TimerId id{0};
    std::int64_t due_ms{0};
  };

  /// Per-fd registration: `mask` is the epoll-style interest set. `gen`
  /// and `armed` are io_uring bookkeeping — gen stamps every POLL_ADD's
  /// user_data so completions for a superseded registration (remove/re-add,
  /// want-write flips) are recognizably stale, and `armed` tracks whether a
  /// one-shot poll is currently in flight.
  struct FdEntry {
    std::shared_ptr<IoHandler> handler;
    std::uint32_t mask{0};
    std::uint32_t gen{0};
    bool armed{false};
  };

  static constexpr std::size_t kWheelSlots = 512;  // power of two
  static constexpr std::int64_t kWheelResMs = 1;
  static constexpr std::int64_t kWheelSpanMs =
      static_cast<std::int64_t>(kWheelSlots) * kWheelResMs;

  std::size_t slot_of(std::int64_t ms) const {
    return static_cast<std::size_t>(ms / kWheelResMs) & (kWheelSlots - 1);
  }

  /// Fires every timer due by `now` and advances the wheel cursor.
  int advance_wheel(std::int64_t now);
  int dispatch_events(int n);
  int wait_and_dispatch(std::int64_t wait_ns);
  int epoll_wait_collect(std::int64_t wait_ns);
  void refresh_loop_stats();

  // io_uring backend (reactor.cpp; nullptr on the epoll backend).
  struct Uring;
  void uring_arm(int fd, FdEntry& entry);
  void uring_cancel(int fd, std::uint32_t gen);
  int uring_wait_collect(std::int64_t wait_ns);

  ReactorBackend backend_{ReactorBackend::kEpoll};
  int epoll_fd_{-1};
  int wake_fd_{-1};
  std::unordered_map<int, FdEntry> handlers_;
  std::unique_ptr<Uring> uring_;

  /// Readiness batch collected by the backend, dispatched backend-agnostically.
  struct ReadyEvent {
    int fd{0};
    std::uint32_t events{0};
  };
  std::vector<ReadyEvent> ready_;

  std::unordered_map<TimerId, TimerCallback> timers_;
  std::vector<std::vector<WheelEntry>> wheel_{kWheelSlots};
  std::int64_t wheel_cursor_ms_{0};
  TimerId next_timer_id_{1};
  std::vector<WheelEntry> due_scratch_;

  Stats stats_;

  struct LoopStatsGauges;
  std::unique_ptr<LoopStatsGauges> loop_stats_;
};

}  // namespace volley::net
