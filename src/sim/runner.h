// Experiment drivers: run a monitoring task (Volley or periodic baseline)
// over trace series and produce the RunResult metrics the figures report.
//
// These are synchronous tick loops over the task's default-interval grid —
// the exact semantics of the testbed: at every tick each due monitor
// samples, local violations trigger a coordinator global poll, and the
// coordinator reallocates error allowance once per updating period.
// (The event-queue simulator in sim/simulation.h runs the same Coordinator
// objects at datacenter scale with heterogeneous default intervals.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/coordinator.h"
#include "core/correlation.h"
#include "core/task.h"
#include "sim/experiment.h"
#include "trace/trace.h"

namespace volley {

enum class AllocatorKind {
  kNone,      // keep the initial even split forever
  kEven,      // re-divide evenly every period (Figure 8 "even")
  kAdaptive,  // yield-proportional iterative tuning (Figure 8 "adapt")
};

struct RunOptions {
  AllocatorKind allocator{AllocatorKind::kAdaptive};
  bool record_ops{false};        // fill RunResult::op_ticks
  bool record_intervals{false};  // fill RunResult::interval_trajectory
};

/// Runs Volley over a distributed task: one monitor per series, with the
/// given local thresholds (must sum to the spec's global threshold for the
/// no-communication-when-quiet property to hold; this is asserted).
///
/// Every run executes under a *private* metrics registry (obs/metrics.h):
/// RunResult::metrics_json snapshots only the run's own counters, and the
/// private registry is merged into the caller's current registry when the
/// run finishes, preserving cumulative process-level totals. Runs confine
/// all other state to the calling thread, so independent runs are
/// share-nothing and safe to fan out in parallel (sim/sweep.h).
RunResult run_volley(const TaskSpec& spec,
                     std::span<const TimeSeries> monitor_series,
                     std::span<const double> local_thresholds,
                     const RunOptions& options = {});

/// run_volley against precomputed ground truth. A parameter sweep re-runs
/// the same series under many (err, k) settings; the aggregate series and
/// its GroundTruth are identical across those cells, so computing them once
/// (GroundTruth::from_series over TimeSeries::sum) and passing them in
/// removes an O(ticks x monitors) recomputation from every run. `truth`
/// must have been built from these series at spec.global_threshold.
RunResult run_volley(const TaskSpec& spec,
                     std::span<const TimeSeries> monitor_series,
                     std::span<const double> local_thresholds,
                     const GroundTruth& truth, const RunOptions& options = {});

/// Single-monitor convenience: the local threshold is the global one.
RunResult run_volley_single(const TaskSpec& spec, const TimeSeries& series,
                            const RunOptions& options = {});

/// Single-monitor form with precomputed ground truth (see above).
RunResult run_volley_single(const TaskSpec& spec, const TimeSeries& series,
                            const GroundTruth& truth,
                            const RunOptions& options = {});

/// Periodic-sampling baseline: every monitor samples every `interval` ticks
/// (interval = 1 is the paper's accuracy reference and by construction has
/// zero mis-detection).
RunResult run_periodic(std::span<const TimeSeries> monitor_series,
                       double global_threshold, Tick interval);

/// One task of a multi-task correlation experiment.
struct CorrelatedTask {
  TaskSpec spec;           // global_threshold is the task's own threshold
  TimeSeries series;       // single-monitor state series
  double cost_per_sample{1.0};
};

struct CorrelatedGroupResult {
  std::vector<RunResult> per_task;
  std::vector<CorrelationScheduler::Edge> final_plan;

  std::int64_t total_ops() const;
  double total_weighted_cost(std::span<const CorrelatedTask> tasks) const;
};

/// Runs a group of single-monitor tasks under the state-correlation
/// scheduler. With `enable_gating == false` the scheduler still observes
/// (so plans can be inspected) but never suppresses — the ungated baseline.
CorrelatedGroupResult run_correlated_group(
    std::span<const CorrelatedTask> tasks,
    const CorrelationScheduler::Options& scheduler_options,
    bool enable_gating);

// --- dynamic task churn ---------------------------------------------------

/// A mid-run change to the task set of run_dynamic_tasks: a task arriving
/// (with its spec) or departing at a given tick. Arrivals take effect
/// before the tick runs; departures stop the task from running that tick.
struct TaskChurnEvent {
  enum class Kind { kArrive, kDepart };
  Kind kind{Kind::kArrive};
  Tick tick{0};
  TaskId task{0};
  TaskSpec spec{};  // kArrive only
};

/// Canonical application order for churn events: ascending tick, departures
/// before arrivals at the same tick (so a task id can be retired and
/// re-added in one tick), ascending task id within each group. The ordering
/// is a pure function of the events themselves — never of how they were
/// produced — which is what makes scenario replays deterministic across
/// producer thread counts and collection orders.
std::vector<TaskChurnEvent> canonical_churn_order(
    std::vector<TaskChurnEvent> events);

/// Seed-derived random churn schedule: `arrivals` task instances with ids
/// `first_task, first_task + 1, ...`, each arriving at a tick drawn
/// uniformly from [0, ticks-1] and holding for a uniform
/// [hold_min, hold_max] tick window (departure events past the run end are
/// omitted — the instance simply lives to the end). All draws come from
/// Rng(seed) in a fixed per-instance order, so the schedule is a pure
/// function of these options; the result is in canonical_churn_order.
struct ChurnScheduleOptions {
  std::uint64_t seed{1};
  Tick ticks{0};       // run length the schedule must fit in
  int arrivals{0};     // task instances to create
  TaskId first_task{100};
  Tick hold_min{100};  // inclusive bounds on instance lifetime
  Tick hold_max{500};
  TaskSpec spec{};     // spec every arrival uses
};

std::vector<TaskChurnEvent> make_churn_schedule(
    const ChurnScheduleOptions& options);

/// One completed task instance of a dynamic run: accuracy and cost scored
/// over the instance's active window [arrived, departed).
struct DynamicTaskResult {
  TaskId task{0};
  std::uint64_t epoch{0};  // registry revision the instance ran at
  Tick arrived{0};
  Tick departed{0};        // end-of-run tick for tasks still live at the end
  RunResult result{};
};

struct DynamicRunResult {
  std::vector<DynamicTaskResult> tasks;  // completed instances, in order
  std::uint64_t registry_version{0};     // epochs consumed by the churn
  std::int64_t arrivals{0};
  std::int64_t departures{0};

  std::int64_t total_ops() const;
};

/// Runs a *dynamic* task set over the shared monitor series: tasks arrive
/// and depart mid-run per `events` (the in-process mirror of the control
/// plane's AddTask/RemoveTask), each task monitoring every series with an
/// even local-threshold split and its own error-allowance allocation. Task
/// revisions draw epochs from a control::TaskRegistry, so the run reports
/// the same epoch numbering the wire runtime would assign. Events may be
/// given in any order: they are applied in canonical_churn_order, so the
/// run (epochs included) depends only on the event *set*, never on the
/// order a generator emitted it in. An arrival for a live id or a departure
/// for an unknown id throws. Use it to measure the adaptation cost of task
/// churn — how a freshly arrived task's sampling cost converges while
/// standing tasks keep their tuned intervals.
DynamicRunResult run_dynamic_tasks(std::span<const TimeSeries> monitor_series,
                                   std::span<const TaskChurnEvent> events,
                                   AllocatorKind allocator =
                                       AllocatorKind::kAdaptive);

}  // namespace volley
