#include "sim/faults.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/rng.h"
#include "core/error_allocation.h"
#include "core/monitor.h"

namespace volley {

void FaultPlan::validate() const {
  if (violation_report_loss < 0.0 || violation_report_loss >= 1.0)
    throw std::invalid_argument("FaultPlan: report loss in [0,1)");
  if (poll_response_loss < 0.0 || poll_response_loss >= 1.0)
    throw std::invalid_argument("FaultPlan: response loss in [0,1)");
  for (const auto& outage : outages) {
    if (outage.start < 0 || outage.end <= outage.start)
      throw std::invalid_argument("FaultPlan: bad outage window");
  }
  // Overlapping windows for one monitor are almost certainly a plan bug
  // (double-counted outage ticks); reject them.
  auto sorted = outages;
  std::sort(sorted.begin(), sorted.end(),
            [](const MonitorOutage& a, const MonitorOutage& b) {
              return a.monitor != b.monitor ? a.monitor < b.monitor
                                            : a.start < b.start;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].monitor == sorted[i - 1].monitor &&
        sorted[i].start < sorted[i - 1].end)
      throw std::invalid_argument("FaultPlan: overlapping outage windows");
  }
}

void NetFaultPlan::validate() const {
  message_loss.validate();
  if (heartbeat_loss < 0.0 || heartbeat_loss >= 1.0)
    throw std::invalid_argument("NetFaultPlan: heartbeat loss in [0,1)");
  if (delay_prob < 0.0 || delay_prob > 1.0)
    throw std::invalid_argument("NetFaultPlan: delay_prob in [0,1]");
  if (delay_prob > 0.0 && delay_ms <= 0)
    throw std::invalid_argument("NetFaultPlan: delay_ms > 0 when delaying");
  if (partial_write_prob < 0.0 || partial_write_prob > 1.0)
    throw std::invalid_argument("NetFaultPlan: partial_write_prob in [0,1]");
  if (disconnect_after_frames == 0)
    throw std::invalid_argument(
        "NetFaultPlan: disconnect_after_frames > 0 (or -1 to disable)");
  if (max_disconnects < 0)
    throw std::invalid_argument("NetFaultPlan: max_disconnects >= 0");
}

namespace {
bool in_outage(const FaultPlan& plan, std::size_t monitor, Tick t) {
  for (const auto& outage : plan.outages) {
    if (outage.monitor == monitor && t >= outage.start && t < outage.end)
      return true;
  }
  return false;
}
}  // namespace

FaultyRunResult run_volley_faulty(const TaskSpec& spec,
                                  std::span<const TimeSeries> monitor_series,
                                  std::span<const double> local_thresholds,
                                  const FaultPlan& plan) {
  spec.validate();
  plan.validate();
  if (monitor_series.empty())
    throw std::invalid_argument("run_volley_faulty: no monitors");
  if (monitor_series.size() != local_thresholds.size())
    throw std::invalid_argument("run_volley_faulty: thresholds mismatch");
  const Tick ticks = monitor_series.front().ticks();
  for (const auto& s : monitor_series) {
    if (s.ticks() != ticks)
      throw std::invalid_argument("run_volley_faulty: length mismatch");
  }
  for (const auto& outage : plan.outages) {
    if (outage.monitor >= monitor_series.size())
      throw std::invalid_argument("run_volley_faulty: outage monitor id");
  }

  Rng rng(plan.seed);
  const std::size_t n = monitor_series.size();
  std::vector<std::unique_ptr<SeriesSource>> sources;
  std::vector<std::unique_ptr<Monitor>> monitors;
  const double share = spec.error_allowance / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    sources.push_back(std::make_unique<SeriesSource>(monitor_series[i]));
    monitors.push_back(std::make_unique<Monitor>(
        static_cast<MonitorId>(i), *sources[i], spec.sampler_options(share),
        local_thresholds[i]));
  }
  AdaptiveAllocation allocator;
  std::vector<double> allocation(n, share);

  FaultyRunResult result;
  result.run.ticks = ticks;
  result.run.monitors = n;
  std::vector<char> detected(static_cast<std::size_t>(ticks), 0);
  std::vector<double> last_known(n, 0.0);
  Tick next_update = spec.updating_period;

  for (Tick t = 0; t < ticks; ++t) {
    int surviving_reports = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_outage(plan, i, t)) {
        ++result.outage_monitor_ticks;
        continue;
      }
      Monitor& m = *monitors[i];
      if (!m.due(t)) continue;
      const auto outcome = m.step(t);
      last_known[i] = outcome.sample.value;
      if (outcome.local_violation) {
        ++result.run.local_violations;
        if (rng.bernoulli(plan.violation_report_loss)) {
          ++result.lost_reports;
        } else {
          ++surviving_reports;
        }
      }
    }

    if (surviving_reports > 0) {
      ++result.run.global_polls;
      bool stale = false;
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const bool down = in_outage(plan, i, t);
        const bool dropped =
            !down && rng.bernoulli(plan.poll_response_loss);
        if (down || dropped) {
          if (dropped) ++result.lost_responses;
          stale = true;
          sum += last_known[i];  // timeout fallback: stale value
          continue;
        }
        const auto outcome = monitors[i]->force_sample(t);
        last_known[i] = outcome.sample.value;
        sum += outcome.sample.value;
      }
      if (stale) ++result.stale_polls;
      if (sum > spec.global_threshold)
        detected[static_cast<std::size_t>(t)] = 1;
    }

    if (t >= next_update) {
      next_update = t + spec.updating_period;
      std::vector<CoordStats> stats;
      stats.reserve(n);
      for (auto& m : monitors) stats.push_back(m->drain_coord_stats());
      allocation =
          allocator.allocate(spec.error_allowance, allocation, stats);
      for (std::size_t i = 0; i < n; ++i)
        monitors[i]->set_error_allowance(allocation[i]);
      ++result.run.reallocations;
    }
  }

  for (const auto& m : monitors) {
    result.run.scheduled_ops += m->scheduled_ops();
    result.run.forced_ops += m->forced_ops();
    result.run.total_cost += m->total_cost();
  }
  const TimeSeries aggregate = TimeSeries::sum(monitor_series);
  const GroundTruth truth =
      GroundTruth::from_series(aggregate, spec.global_threshold);
  score_detection(result.run, truth, detected);
  return result;
}

}  // namespace volley
