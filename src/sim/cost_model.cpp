#include "sim/cost_model.h"

#include <stdexcept>

namespace volley {

void CostModelOptions::validate() const {
  if (fixed_cost_seconds < 0.0)
    throw std::invalid_argument("CostModelOptions: fixed_cost >= 0");
  if (per_packet_cost_seconds < 0.0)
    throw std::invalid_argument("CostModelOptions: per_packet_cost >= 0");
  if (window_seconds <= 0.0)
    throw std::invalid_argument("CostModelOptions: window_seconds > 0");
}

Dom0CostModel::Dom0CostModel(const CostModelOptions& options)
    : options_(options) {
  options_.validate();
}

double Dom0CostModel::op_cost_seconds(double packets) const {
  if (packets < 0.0)
    throw std::invalid_argument("op_cost_seconds: packets >= 0");
  return options_.fixed_cost_seconds +
         options_.per_packet_cost_seconds * packets;
}

TimeSeries Dom0CostModel::host_utilization(
    Tick ticks, std::span<const std::vector<Tick>> op_ticks,
    std::span<const TimeSeries> packets) const {
  if (op_ticks.size() != packets.size())
    throw std::invalid_argument("host_utilization: size mismatch");
  TimeSeries util(static_cast<std::size_t>(ticks), 0.0);
  for (std::size_t v = 0; v < op_ticks.size(); ++v) {
    const TimeSeries& pkts = packets[v];
    for (Tick t : op_ticks[v]) {
      if (t < 0 || t >= ticks)
        throw std::out_of_range("host_utilization: op tick out of range");
      util[static_cast<std::size_t>(t)] +=
          op_cost_seconds(pkts.at(static_cast<std::size_t>(t))) /
          options_.window_seconds;
    }
  }
  return util;
}

}  // namespace volley
