// Monetary monitoring cost (paper Section I): Cloud monitoring services
// charge pay-as-you-go *per sample* (the paper cites CloudWatch), and
// monitoring can reach 18% of an application's total operation cost.
// This model turns sampling-operation counts into dollars so benches and
// examples can report the fee-side savings alongside the CPU-side ones.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace volley {

struct BillingModel {
  /// Service fee per 1000 sampling operations (CloudWatch-style custom
  /// metrics were ~$0.30-0.50 per metric-month at 1-minute granularity in
  /// the paper's era; the default normalizes to a comparable per-op price).
  double dollars_per_1k_samples{0.01};
  /// The application's non-monitoring operation cost per month, used to
  /// express monitoring as a fraction of total spend (the paper's 18%).
  double base_operation_cost{1000.0};

  void validate() const {
    if (dollars_per_1k_samples < 0.0)
      throw std::invalid_argument("BillingModel: price >= 0");
    if (base_operation_cost <= 0.0)
      throw std::invalid_argument("BillingModel: base cost > 0");
  }

  /// Fee for a number of sampling operations.
  [[nodiscard]] double cost(std::int64_t samples) const {
    return dollars_per_1k_samples * static_cast<double>(samples) / 1000.0;
  }

  /// Monitoring fee as a fraction of total (base + monitoring) spend.
  [[nodiscard]] double share_of_total(std::int64_t samples) const {
    const double fee = cost(samples);
    return fee / (fee + base_operation_cost);
  }

  /// Sampling operations a periodic scheme performs per month per monitor.
  [[nodiscard]] static std::int64_t periodic_samples_per_month(
      double interval_seconds) {
    if (interval_seconds <= 0.0)
      throw std::invalid_argument("periodic_samples_per_month: interval > 0");
    return static_cast<std::int64_t>(30.0 * 24.0 * 3600.0 / interval_seconds);
  }
};

}  // namespace volley
