#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace volley {

namespace {

// 4-ary heap geometry over a 0-based flat array.
constexpr std::size_t kArity = 4;

std::size_t parent_of(std::size_t i) { return (i - 1) / kArity; }
std::size_t first_child_of(std::size_t i) { return kArity * i + 1; }

}  // namespace

std::uint64_t EventQueue::schedule_at(SimTime when, Callback fn) {
  if (when < now_)
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  if (!fn) throw std::invalid_argument("EventQueue: null callback");

  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.next_free = kNoSlot;

  heap_.push_back(Record{when, next_seq_++, slot, s.gen});
  sift_up(heap_.size() - 1);
  ++live_;
  return (static_cast<std::uint64_t>(s.gen) << 32) | slot;
}

std::uint64_t EventQueue::schedule_after(SimTime delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

void EventQueue::cancel(std::uint64_t id) {
  // Ignores ids that already ran, were already cancelled, or were never
  // issued: in all three cases the slot's generation has moved on (or the
  // slot does not exist), so the id fails the generation check.
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.gen != gen || !s.fn) return;

  // Free the closure now (cancel-heavy fault plans cancel far more than
  // they run) and retire the id. The heap record becomes dead; it is
  // skipped at pop time or swept out by compaction, whichever comes first.
  s.fn.reset();
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
  ++dead_records_;
  if (dead_records_ * 2 > heap_.size()) compact();
}

void EventQueue::sift_up(std::size_t i) {
  const Record r = heap_[i];
  while (i > 0) {
    const std::size_t p = parent_of(i);
    if (!before(r, heap_[p])) break;
    heap_[i] = heap_[p];
    i = p;
  }
  heap_[i] = r;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Record r = heap_[i];
  for (;;) {
    const std::size_t first = first_child_of(i);
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], r)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = r;
}

void EventQueue::pop_root() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

bool EventQueue::peek_live_root(Record& out) {
  while (!heap_.empty()) {
    const Record& top = heap_.front();
    if (!record_dead(top)) {
      out = top;
      return true;
    }
    --dead_records_;
    pop_root();
  }
  return false;
}

void EventQueue::run_record(const Record& r) {
  Slot& s = slots_[r.slot];
  // Move the callback out *before* invoking it: the callback may schedule
  // new events, which can legitimately reuse this very slot.
  Callback fn = std::move(s.fn);
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = r.slot;
  --live_;
  now_ = r.when;
  fn();
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Record& r) { return record_dead(r); });
  dead_records_ = 0;
  // Floyd heapify: sift down every internal node, deepest first. Records
  // keep their (when, seq) keys, so live-event order is unchanged.
  if (heap_.size() > 1) {
    for (std::size_t i = parent_of(heap_.size() - 1) + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

bool EventQueue::step() {
  Record r;
  if (!peek_live_root(r)) return false;
  pop_root();
  run_record(r);
  return true;
}

std::uint64_t EventQueue::run_until(SimTime horizon) {
  std::uint64_t executed = 0;
  Record r;
  while (peek_live_root(r)) {
    if (r.when > horizon) break;  // not yet due; stays in the heap
    pop_root();
    run_record(r);
    ++executed;
  }
  now_ = std::max(now_, horizon);
  return executed;
}

}  // namespace volley
