#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace volley {

std::uint64_t EventQueue::schedule_at(SimTime when, Callback fn) {
  if (when < now_)
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  if (!fn) throw std::invalid_argument("EventQueue: null callback");
  const std::uint64_t id = next_id_++;
  heap_.push(Event{when, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

std::uint64_t EventQueue::schedule_after(SimTime delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

void EventQueue::cancel(std::uint64_t id) {
  // Ignores ids that already ran or were already cancelled.
  live_.erase(id);
}

bool EventQueue::pop_runnable(Event& out) {
  while (!heap_.empty()) {
    // priority_queue::top is const; the callback must be moved out, so we
    // const_cast the popped node — safe because we pop immediately after.
    Event& top = const_cast<Event&>(heap_.top());
    Event ev{top.when, top.seq, top.id, std::move(top.fn)};
    heap_.pop();
    if (live_.find(ev.id) == live_.end()) continue;  // cancelled
    out = std::move(ev);
    return true;
  }
  return false;
}

bool EventQueue::step() {
  Event ev;
  if (!pop_runnable(ev)) return false;
  live_.erase(ev.id);
  now_ = ev.when;
  ev.fn();
  return true;
}

std::uint64_t EventQueue::run_until(SimTime horizon) {
  std::uint64_t executed = 0;
  Event ev;
  while (pop_runnable(ev)) {
    if (ev.when > horizon) {
      // Put the not-yet-due event back and stop at the horizon.
      heap_.push(Event{ev.when, ev.seq, ev.id, std::move(ev.fn)});
      break;
    }
    live_.erase(ev.id);
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  now_ = std::max(now_, horizon);
  return executed;
}

}  // namespace volley
