// Per-run metrics-registry scoping shared by the experiment drivers
// (sim/runner.cpp) and the sharded drivers (shard/runner.cpp).
#pragma once

#include <utility>

#include "obs/metrics.h"

namespace volley {

/// Per-run registry scope: instrumentation inside `body` records into a
/// fresh registry (so the RunResult's metrics_json is run-scoped), which is
/// then folded into the registry that was current at entry — cumulative
/// totals survive, and parallel runs never share counter cache lines.
template <typename Body>
auto with_run_registry(Body&& body) {
  obs::MetricsRegistry& parent = obs::metrics();
  obs::MetricsRegistry run_registry;
  decltype(body()) result;
  {
    obs::ScopedMetricsRegistry scope(run_registry);
    result = std::forward<Body>(body)();
  }
  parent.merge_from(run_registry);
  return result;
}

}  // namespace volley
