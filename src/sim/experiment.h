// Experiment accounting: ground truth, detection bookkeeping, and the
// metrics every figure reports.
//
// Accuracy is always judged against the paper's reference: periodic
// sampling at the default interval Id (Section III-A). Ground truth is the
// set of ticks where the aggregate state exceeds the global threshold when
// the full trace is visible. An alert *episode* is a maximal run of
// consecutive alert ticks; the paper's mis-detection rate counts missed
// alerts, which we report both per-tick and per-episode.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "trace/trace.h"

namespace volley {

struct GroundTruth {
  std::vector<char> alert;  // per tick: aggregate > T
  std::int64_t alert_ticks{0};
  std::vector<std::pair<Tick, Tick>> episodes;  // [start, end) runs

  static GroundTruth from_series(const TimeSeries& aggregate,
                                 double threshold);
};

/// Everything one task run produces.
struct RunResult {
  Tick ticks{0};
  std::size_t monitors{0};

  // Cost side.
  std::int64_t scheduled_ops{0};
  std::int64_t forced_ops{0};
  double total_cost{0.0};  // abstract source-reported cost units

  // Accuracy side.
  std::int64_t true_alert_ticks{0};
  std::int64_t detected_alert_ticks{0};
  std::int64_t true_episodes{0};
  std::int64_t detected_episodes{0};

  // Protocol side.
  std::int64_t local_violations{0};
  std::int64_t global_polls{0};
  std::int64_t reallocations{0};

  // Optional details (filled when RunOptions request them).
  std::vector<std::vector<Tick>> op_ticks;   // per monitor
  std::vector<Tick> interval_trajectory;     // monitor 0's interval per op

  // Observability side: JSON snapshot of the *run-scoped* metrics registry
  // (obs/metrics.h) taken when the run finished. Each experiment driver
  // (sim/runner.h) executes under a private registry, so these counters
  // cover exactly this run — not a cumulative cross-run total — and are
  // identical whether the run executed serially or inside a parallel
  // sweep. The process-global registry still accumulates every run's
  // counters via registry merging.
  std::string metrics_json;

  std::int64_t total_ops() const { return scheduled_ops + forced_ops; }
  /// Reference cost: periodic sampling at Id on every monitor.
  std::int64_t periodic_ops() const {
    return ticks * static_cast<std::int64_t>(monitors);
  }
  /// The y-axis of Figures 5 and 8.
  double sampling_ratio() const {
    return periodic_ops() == 0
               ? 0.0
               : static_cast<double>(total_ops()) /
                     static_cast<double>(periodic_ops());
  }
  /// Fraction of ground-truth alert ticks missed.
  double tick_miss_rate() const {
    return true_alert_ticks == 0
               ? 0.0
               : 1.0 - static_cast<double>(detected_alert_ticks) /
                           static_cast<double>(true_alert_ticks);
  }
  /// Fraction of alert episodes in which no tick was detected (Figure 7's
  /// "actual mis-detection rate of alerts").
  double episode_miss_rate() const {
    return true_episodes == 0
               ? 0.0
               : 1.0 - static_cast<double>(detected_episodes) /
                           static_cast<double>(true_episodes);
  }
};

/// Fills the accuracy fields of `result` from per-tick detection flags.
void score_detection(RunResult& result, const GroundTruth& truth,
                     std::span<const char> detected);

}  // namespace volley
