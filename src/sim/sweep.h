// Parallel experiment engine: fan a batch of independent experiment runs
// across a worker pool with deterministic, input-ordered results.
//
// Every figure bench replays the paper's evaluation as hundreds to
// thousands of *independent* full-day simulations (one per parameter-grid
// cell). A run confines its monitors/estimators/coordinator to the thread
// executing it — the only process-wide state it touches is the
// observability plane, and scoped registries/sinks (obs/metrics.h,
// obs/trace_events.h) remove that exception. That makes runs share-nothing,
// and a sweep embarrassingly parallel.
//
// Determinism guarantee: sweep(count, job) returns exactly the results the
// plain serial loop `for (i in 0..count) out[i] = job(i)` would produce —
// byte-identical RunResults including metrics_json — for every thread
// count. Results are written to input-ordered slots; each job runs under a
// private metrics registry and trace sink, so neither scheduling order nor
// worker identity can leak into a result. Per-run counters are merged into
// the sweep caller's registry afterwards (counter/histogram merging is
// commutative, so the cumulative totals are deterministic too; gauges are
// last-writer-wins across workers).
//
// Jobs must be independent: a job must not touch state shared with another
// job (series inputs are fine — they are read-only). Jobs that throw abort
// the sweep; the first failing index's exception is rethrown.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "sim/experiment.h"
#include "sim/runner.h"

namespace volley::sim {

struct SweepOptions {
  /// Worker threads; 0 means ThreadPool::default_threads() (the
  /// VOLLEY_THREADS environment variable, else the hardware count).
  /// 1 runs the jobs as a plain serial loop on the calling thread.
  std::size_t threads{0};
  /// Give each job a private metrics registry and trace sink (merged /
  /// discarded respectively when the job finishes). Disabling this is only
  /// for measuring the cost of global-plane contention.
  bool scope_observability{true};
  /// Capacity of each job's private trace ring when scoped. Sweep runs are
  /// replays whose traces are rarely inspected, so the default is small.
  std::size_t trace_capacity{256};
};

/// Resolved thread count for the given options (for benches that report it).
std::size_t resolve_threads(const SweepOptions& options);

/// Runs job(0) .. job(count-1) across a worker pool; result i is job(i)'s
/// return value. See the determinism guarantee in the file header.
std::vector<RunResult> sweep(std::size_t count,
                             const std::function<RunResult(std::size_t)>& job,
                             const SweepOptions& options = {});

/// One (TaskSpec, TimeSeries) cell of a single-monitor parameter sweep.
/// `series` must outlive the sweep call; `truth` optionally supplies
/// precomputed ground truth (identical cells across e.g. an err-row of a
/// figure grid share one GroundTruth instead of recomputing it per run).
struct SweepCell {
  TaskSpec spec;
  const TimeSeries* series{nullptr};
  const GroundTruth* truth{nullptr};
  RunOptions run_options{};
};

/// Convenience: run_volley_single over every cell.
std::vector<RunResult> sweep(std::span<const SweepCell> cells,
                             const SweepOptions& options = {});

}  // namespace volley::sim
