#include "sim/sweep.h"

#include <stdexcept>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"

namespace volley::sim {

namespace {

/// Runs one job under a private observability scope and folds its counters
/// into `parent` (the registry current on the sweep caller's thread).
RunResult run_scoped(const std::function<RunResult(std::size_t)>& job,
                     std::size_t index, obs::MetricsRegistry* parent,
                     const SweepOptions& options) {
  if (!options.scope_observability) return job(index);
  obs::MetricsRegistry job_registry;
  obs::TraceSink job_trace(options.trace_capacity);
  RunResult result;
  {
    obs::ScopedMetricsRegistry metrics_scope(job_registry);
    obs::ScopedTraceSink trace_scope(job_trace);
    result = job(index);
  }
  parent->merge_from(job_registry);
  return result;
}

}  // namespace

std::size_t resolve_threads(const SweepOptions& options) {
  return options.threads > 0 ? options.threads
                             : ThreadPool::default_threads();
}

std::vector<RunResult> sweep(std::size_t count,
                             const std::function<RunResult(std::size_t)>& job,
                             const SweepOptions& options) {
  std::vector<RunResult> results(count);
  if (count == 0) return results;
  obs::MetricsRegistry* parent = &obs::metrics();
  const std::size_t threads = resolve_threads(options);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i)
      results[i] = run_scoped(job, i, parent, options);
    return results;
  }
  ThreadPool pool(threads);
  pool.parallel_for(count, [&](std::size_t i) {
    results[i] = run_scoped(job, i, parent, options);
  });
  return results;
}

std::vector<RunResult> sweep(std::span<const SweepCell> cells,
                             const SweepOptions& options) {
  for (const auto& cell : cells) {
    if (cell.series == nullptr)
      throw std::invalid_argument("sweep: cell without a series");
  }
  return sweep(
      cells.size(),
      [&cells](std::size_t i) {
        const SweepCell& cell = cells[i];
        if (cell.truth != nullptr) {
          return run_volley_single(cell.spec, *cell.series, *cell.truth,
                                   cell.run_options);
        }
        return run_volley_single(cell.spec, *cell.series, cell.run_options);
      },
      options);
}

}  // namespace volley::sim
