// Dom0 CPU cost model (Figure 6 substrate).
//
// The paper measures that periodic network monitoring of 40 VMs at the
// 15-second default interval keeps Xen's Dom0 at 20-34% CPU — packet
// capture plus deep packet inspection over every VM's traffic — and that
// Volley's adaptation cuts this to ~5%. We reproduce the *mapping* from
// sampling activity to Dom0 utilization:
//
//   cpu_seconds(one op) = fixed_cost + per_packet_cost * packets_in_window
//   utilization(host, tick) = sum over VM ops in that tick / window_seconds
//
// Default calibration (documented here, asserted by tests):
// with the default netflow generator a VM window holds ~2.5-4.5k packets at
// peak; 40 VMs * (0.02 s + 2.8e-5 s/pkt * pkts) / 15 s then spans ~20-34%
// across the diurnal cycle at err = 0, matching the paper's measured band.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/clock.h"
#include "trace/trace.h"

namespace volley {

struct CostModelOptions {
  double fixed_cost_seconds{0.02};       // scheduling, polling, persistence
  double per_packet_cost_seconds{2.8e-5};  // capture + DPI per packet
  double window_seconds{15.0};           // Id of the network task

  void validate() const;
};

class Dom0CostModel {
 public:
  Dom0CostModel() : Dom0CostModel(CostModelOptions{}) {}
  explicit Dom0CostModel(const CostModelOptions& options);

  /// CPU seconds consumed by one sampling operation that inspects
  /// `packets` packets.
  double op_cost_seconds(double packets) const;

  /// Host utilization time series. `op_ticks[v]` lists the ticks at which
  /// VM v's monitor performed a sampling operation; `packets[v]` is VM v's
  /// per-tick inspected-packet series. The result has `ticks` entries in
  /// [0, 1+] (values above 1 mean Dom0 would be saturated).
  TimeSeries host_utilization(
      Tick ticks, std::span<const std::vector<Tick>> op_ticks,
      std::span<const TimeSeries> packets) const;

  const CostModelOptions& options() const { return options_; }

 private:
  CostModelOptions options_;
};

}  // namespace volley
