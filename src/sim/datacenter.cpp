// Datacenter is header-only; this translation unit anchors the library.
#include "sim/datacenter.h"
