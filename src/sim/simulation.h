// Event-driven multi-task simulation: runs many Coordinator-based tasks
// with heterogeneous default intervals (15 s network, 5 s system, 1 s
// application) on one virtual clock — the in-process equivalent of the
// paper's 800-VM testbed (Figure 4).
//
// Each task is advanced by a repeating event every Id seconds that calls
// Coordinator::run_tick. Tasks stop after their trace length; the
// simulation ends when every task finished or the horizon passed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/coordinator.h"
#include "sim/event_queue.h"

namespace volley {

class Simulation {
 public:
  struct TaskStats {
    Tick ticks_run{0};
    std::int64_t alerts{0};  // global violations observed
  };

  /// Registers a task owning its coordinator. `id_seconds` is the task's
  /// default sampling interval on the shared clock; `ticks` its length.
  /// `start_offset_seconds` staggers task starts (real fleets are not
  /// phase-aligned). Returns the task's index.
  std::size_t add_task(std::unique_ptr<Coordinator> coordinator,
                       double id_seconds, Tick ticks,
                       double start_offset_seconds = 0.0);

  /// Runs until all tasks finish or `horizon_seconds` passes. Returns the
  /// number of events executed.
  std::uint64_t run(SimTime horizon_seconds);

  std::size_t task_count() const { return tasks_.size(); }
  const TaskStats& stats(std::size_t task) const {
    return tasks_.at(task)->stats;
  }
  const Coordinator& coordinator(std::size_t task) const {
    return *tasks_.at(task)->coordinator;
  }
  SimTime now() const { return queue_.now(); }

 private:
  struct Task {
    std::unique_ptr<Coordinator> coordinator;
    double id_seconds{1.0};
    Tick ticks{0};
    Tick next_tick{0};
    TaskStats stats;
  };

  void schedule_tick(Task& task, SimTime when);

  EventQueue queue_;
  std::vector<std::unique_ptr<Task>> tasks_;
};

}  // namespace volley
