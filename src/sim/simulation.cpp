#include "sim/simulation.h"

#include <stdexcept>

namespace volley {

std::size_t Simulation::add_task(std::unique_ptr<Coordinator> coordinator,
                                 double id_seconds, Tick ticks,
                                 double start_offset_seconds) {
  if (!coordinator) throw std::invalid_argument("Simulation: null task");
  if (id_seconds <= 0.0)
    throw std::invalid_argument("Simulation: id_seconds > 0");
  if (ticks < 1) throw std::invalid_argument("Simulation: ticks >= 1");
  if (start_offset_seconds < 0.0)
    throw std::invalid_argument("Simulation: start offset >= 0");

  auto task = std::make_unique<Task>();
  task->coordinator = std::move(coordinator);
  task->id_seconds = id_seconds;
  task->ticks = ticks;
  tasks_.push_back(std::move(task));
  Task& ref = *tasks_.back();
  schedule_tick(ref, queue_.now() + start_offset_seconds);
  return tasks_.size() - 1;
}

void Simulation::schedule_tick(Task& task, SimTime when) {
  queue_.schedule_at(when, [this, &task, when] {
    const auto result = task.coordinator->run_tick(task.next_tick);
    if (result.global_violation) ++task.stats.alerts;
    ++task.stats.ticks_run;
    ++task.next_tick;
    if (task.next_tick < task.ticks) {
      schedule_tick(task, when + task.id_seconds);
    }
  });
}

std::uint64_t Simulation::run(SimTime horizon_seconds) {
  return queue_.run_until(horizon_seconds);
}

}  // namespace volley
