#include "sim/runner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "control/task_registry.h"
#include "obs/metrics.h"
#include "sim/run_registry.h"

namespace volley {

namespace {
std::unique_ptr<AllowanceAllocator> make_allocator(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kNone:
      return nullptr;
    case AllocatorKind::kEven:
      return std::make_unique<EvenAllocation>();
    case AllocatorKind::kAdaptive:
      return std::make_unique<AdaptiveAllocation>();
  }
  throw std::invalid_argument("make_allocator: unknown kind");
}

}  // namespace

RunResult run_volley(const TaskSpec& spec,
                     std::span<const TimeSeries> monitor_series,
                     std::span<const double> local_thresholds,
                     const RunOptions& options) {
  if (monitor_series.empty())
    throw std::invalid_argument("run_volley: no monitors");
  const TimeSeries aggregate = TimeSeries::sum(monitor_series);
  const GroundTruth truth =
      GroundTruth::from_series(aggregate, spec.global_threshold);
  return run_volley(spec, monitor_series, local_thresholds, truth, options);
}

RunResult run_volley(const TaskSpec& spec,
                     std::span<const TimeSeries> monitor_series,
                     std::span<const double> local_thresholds,
                     const GroundTruth& truth, const RunOptions& options) {
  spec.validate();
  if (monitor_series.empty())
    throw std::invalid_argument("run_volley: no monitors");
  if (monitor_series.size() != local_thresholds.size())
    throw std::invalid_argument("run_volley: thresholds size mismatch");
  const Tick ticks = monitor_series.front().ticks();
  for (const auto& s : monitor_series) {
    if (s.ticks() != ticks)
      throw std::invalid_argument("run_volley: series length mismatch");
  }
  {
    double sum = 0.0;
    for (double t : local_thresholds) sum += t;
    const double scale =
        std::max({std::abs(sum), std::abs(spec.global_threshold), 1.0});
    if (std::abs(sum - spec.global_threshold) > 1e-6 * scale)
      throw std::invalid_argument(
          "run_volley: local thresholds must sum to the global threshold");
  }

  return with_run_registry([&]() {
    // Sources must outlive the monitors.
    std::vector<std::unique_ptr<SeriesSource>> sources;
    sources.reserve(monitor_series.size());
    for (const auto& s : monitor_series)
      sources.push_back(std::make_unique<SeriesSource>(s));

    std::vector<std::unique_ptr<Monitor>> monitors;
    monitors.reserve(monitor_series.size());
    for (std::size_t i = 0; i < monitor_series.size(); ++i) {
      // The per-monitor allowance is overwritten by the coordinator's
      // initial even split; pass the task-level value as a placeholder.
      monitors.push_back(std::make_unique<Monitor>(
          static_cast<MonitorId>(i), *sources[i],
          spec.sampler_options(spec.error_allowance), local_thresholds[i]));
    }
    Coordinator coordinator(spec, std::move(monitors),
                            make_allocator(options.allocator));

    RunResult result;
    result.ticks = ticks;
    result.monitors = monitor_series.size();
    std::vector<char> detected(static_cast<std::size_t>(ticks), 0);
    std::vector<std::int64_t> prev_ops(monitor_series.size(), 0);
    if (options.record_ops) result.op_ticks.resize(monitor_series.size());

    for (Tick t = 0; t < ticks; ++t) {
      const auto tick = coordinator.run_tick(t);
      if (tick.global_violation) detected[static_cast<std::size_t>(t)] = 1;
      result.local_violations += tick.local_violations;
      if (options.record_ops || options.record_intervals) {
        for (std::size_t i = 0; i < coordinator.monitor_count(); ++i) {
          const std::int64_t ops = coordinator.monitor(i).total_ops();
          if (ops != prev_ops[i]) {
            prev_ops[i] = ops;
            if (options.record_ops)
              result.op_ticks[i].push_back(t);
            if (options.record_intervals && i == 0)
              result.interval_trajectory.push_back(
                  coordinator.monitor(0).interval());
          }
        }
      }
    }

    for (std::size_t i = 0; i < coordinator.monitor_count(); ++i) {
      result.scheduled_ops += coordinator.monitor(i).scheduled_ops();
      result.forced_ops += coordinator.monitor(i).forced_ops();
    }
    result.total_cost = coordinator.total_cost();
    result.global_polls = coordinator.global_polls();
    result.reallocations = coordinator.reallocations();

    score_detection(result, truth, detected);
    return result;
  });
}

RunResult run_volley_single(const TaskSpec& spec, const TimeSeries& series,
                            const RunOptions& options) {
  const double threshold[] = {spec.global_threshold};
  return run_volley(spec, std::span<const TimeSeries>(&series, 1), threshold,
                    options);
}

RunResult run_volley_single(const TaskSpec& spec, const TimeSeries& series,
                            const GroundTruth& truth,
                            const RunOptions& options) {
  const double threshold[] = {spec.global_threshold};
  return run_volley(spec, std::span<const TimeSeries>(&series, 1), threshold,
                    truth, options);
}

RunResult run_periodic(std::span<const TimeSeries> monitor_series,
                       double global_threshold, Tick interval) {
  if (monitor_series.empty())
    throw std::invalid_argument("run_periodic: no monitors");
  if (interval < 1) throw std::invalid_argument("run_periodic: interval >= 1");
  const Tick ticks = monitor_series.front().ticks();
  for (const auto& s : monitor_series) {
    if (s.ticks() != ticks)
      throw std::invalid_argument("run_periodic: series length mismatch");
  }

  return with_run_registry([&]() {
    RunResult result;
    result.ticks = ticks;
    result.monitors = monitor_series.size();
    std::vector<char> detected(static_cast<std::size_t>(ticks), 0);
    const TimeSeries aggregate = TimeSeries::sum(monitor_series);
    for (Tick t = 0; t < ticks; t += interval) {
      result.scheduled_ops += static_cast<std::int64_t>(monitor_series.size());
      result.total_cost += static_cast<double>(monitor_series.size());
      const auto i = static_cast<std::size_t>(t);
      if (aggregate[i] > global_threshold) {
        detected[i] = 1;
        ++result.global_polls;
      }
    }
    const GroundTruth truth =
        GroundTruth::from_series(aggregate, global_threshold);
    score_detection(result, truth, detected);
    return result;
  });
}

std::int64_t CorrelatedGroupResult::total_ops() const {
  std::int64_t ops = 0;
  for (const auto& r : per_task) ops += r.total_ops();
  return ops;
}

double CorrelatedGroupResult::total_weighted_cost(
    std::span<const CorrelatedTask> tasks) const {
  if (tasks.size() != per_task.size())
    throw std::invalid_argument("total_weighted_cost: size mismatch");
  double cost = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    cost += static_cast<double>(per_task[i].total_ops()) *
            tasks[i].cost_per_sample;
  }
  return cost;
}

CorrelatedGroupResult run_correlated_group(
    std::span<const CorrelatedTask> tasks,
    const CorrelationScheduler::Options& scheduler_options,
    bool enable_gating) {
  if (tasks.empty())
    throw std::invalid_argument("run_correlated_group: no tasks");
  const Tick ticks = tasks.front().series.ticks();
  for (const auto& task : tasks) {
    task.spec.validate();
    if (task.series.ticks() != ticks)
      throw std::invalid_argument(
          "run_correlated_group: series length mismatch");
  }

  // One registry scope for the whole group: each per-task RunResult's
  // metrics_json snapshots the group's registry (the tasks interleave on
  // one tick loop, so a finer scope would misattribute shared work).
  return with_run_registry([&]() {
  CorrelationScheduler scheduler(scheduler_options);
  std::vector<std::unique_ptr<SeriesSource>> sources;
  std::vector<std::unique_ptr<Monitor>> monitors;
  std::vector<Tick> last_op(tasks.size(), -1);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    scheduler.add_task(tasks[i].spec.global_threshold,
                       tasks[i].cost_per_sample);
    sources.push_back(std::make_unique<SeriesSource>(tasks[i].series));
    monitors.push_back(std::make_unique<Monitor>(
        static_cast<MonitorId>(i), *sources[i],
        tasks[i].spec.sampler_options(tasks[i].spec.error_allowance),
        tasks[i].spec.global_threshold));
  }

  std::vector<std::vector<char>> detected(
      tasks.size(), std::vector<char>(static_cast<std::size_t>(ticks), 0));

  for (Tick t = 0; t < ticks; ++t) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      Monitor& m = *monitors[i];
      if (!m.due(t)) continue;
      // A suppressed follower rests at the task's maximum interval: its due
      // samples are skipped until rest ticks have passed since the last op.
      if (enable_gating && scheduler.suppressed(i) && last_op[i] >= 0 &&
          t - last_op[i] < tasks[i].spec.max_interval) {
        continue;
      }
      const auto outcome = m.step(t);
      last_op[i] = t;
      scheduler.observe(i, outcome.sample.value);
      if (outcome.local_violation)
        detected[i][static_cast<std::size_t>(t)] = 1;
    }
    scheduler.end_tick();
  }

  CorrelatedGroupResult result;
  result.final_plan = scheduler.plan();
  result.per_task.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    RunResult& r = result.per_task[i];
    r.ticks = ticks;
    r.monitors = 1;
    r.scheduled_ops = monitors[i]->scheduled_ops();
    r.forced_ops = monitors[i]->forced_ops();
    r.total_cost = monitors[i]->total_cost();
    r.local_violations = monitors[i]->local_violations();
    const GroundTruth truth = GroundTruth::from_series(
        tasks[i].series, tasks[i].spec.global_threshold);
    score_detection(r, truth, detected[i]);
  }
  return result;
  });
}

namespace {

/// One live task instance of run_dynamic_tasks: its Coordinator over the
/// shared series plus the bookkeeping for window-scoped scoring.
struct LiveDynamicTask {
  std::uint64_t epoch{0};
  Tick arrived{0};
  std::unique_ptr<Coordinator> coordinator;
  std::vector<char> detected;  // full run length; zeros outside the window
  std::int64_t local_violations{0};
};

/// Accuracy scoring restricted to the instance's active window: only truth
/// ticks within [begin, end) count, and an episode counts when it overlaps
/// the window (detected when any overlap tick was detected).
void score_window(RunResult& result, const GroundTruth& truth,
                  std::span<const char> detected, Tick begin, Tick end) {
  for (Tick t = begin; t < end; ++t) {
    const auto i = static_cast<std::size_t>(t);
    if (!truth.alert[i]) continue;
    ++result.true_alert_ticks;
    if (detected[i]) ++result.detected_alert_ticks;
  }
  for (const auto& [start, stop] : truth.episodes) {
    const Tick lo = std::max(start, begin);
    const Tick hi = std::min(stop, end);
    if (lo >= hi) continue;
    ++result.true_episodes;
    for (Tick t = lo; t < hi; ++t) {
      if (detected[static_cast<std::size_t>(t)]) {
        ++result.detected_episodes;
        break;
      }
    }
  }
}

}  // namespace

std::int64_t DynamicRunResult::total_ops() const {
  std::int64_t ops = 0;
  for (const auto& task : tasks) ops += task.result.total_ops();
  return ops;
}

std::vector<TaskChurnEvent> canonical_churn_order(
    std::vector<TaskChurnEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const TaskChurnEvent& a, const TaskChurnEvent& b) {
              if (a.tick != b.tick) return a.tick < b.tick;
              const bool a_depart = a.kind == TaskChurnEvent::Kind::kDepart;
              const bool b_depart = b.kind == TaskChurnEvent::Kind::kDepart;
              if (a_depart != b_depart) return a_depart;
              return a.task < b.task;
            });
  return events;
}

std::vector<TaskChurnEvent> make_churn_schedule(
    const ChurnScheduleOptions& options) {
  if (options.ticks < 1)
    throw std::invalid_argument("make_churn_schedule: ticks >= 1");
  if (options.arrivals < 0)
    throw std::invalid_argument("make_churn_schedule: arrivals >= 0");
  if (options.hold_min < 1 || options.hold_max < options.hold_min)
    throw std::invalid_argument(
        "make_churn_schedule: 1 <= hold_min <= hold_max");
  options.spec.validate();

  Rng rng(options.seed);
  std::vector<TaskChurnEvent> events;
  events.reserve(static_cast<std::size_t>(options.arrivals) * 2);
  for (int i = 0; i < options.arrivals; ++i) {
    const auto task = static_cast<TaskId>(options.first_task +
                                          static_cast<TaskId>(i));
    // Fixed draw order per instance (arrive, then hold): inserting or
    // removing instances never shifts another instance's draws.
    const Tick arrive =
        static_cast<Tick>(rng.uniform_int(0, options.ticks - 1));
    const Tick hold = static_cast<Tick>(
        rng.uniform_int(options.hold_min, options.hold_max));
    events.push_back(
        {TaskChurnEvent::Kind::kArrive, arrive, task, options.spec});
    const Tick depart = arrive + hold;
    if (depart < options.ticks)
      events.push_back({TaskChurnEvent::Kind::kDepart, depart, task, {}});
  }
  return canonical_churn_order(std::move(events));
}

DynamicRunResult run_dynamic_tasks(std::span<const TimeSeries> monitor_series,
                                   std::span<const TaskChurnEvent> raw_events,
                                   AllocatorKind allocator) {
  if (monitor_series.empty())
    throw std::invalid_argument("run_dynamic_tasks: no monitors");
  const Tick ticks = monitor_series.front().ticks();
  for (const auto& s : monitor_series) {
    if (s.ticks() != ticks)
      throw std::invalid_argument("run_dynamic_tasks: series length mismatch");
  }
  // Canonicalize so the run — registry epochs included — is a function of
  // the event set alone, independent of producer ordering.
  const std::vector<TaskChurnEvent> events = canonical_churn_order(
      std::vector<TaskChurnEvent>(raw_events.begin(), raw_events.end()));
  const TimeSeries aggregate = TimeSeries::sum(monitor_series);

  return with_run_registry([&]() {
    control::TaskRegistry registry;
    std::vector<std::unique_ptr<SeriesSource>> sources;
    sources.reserve(monitor_series.size());
    for (const auto& s : monitor_series)
      sources.push_back(std::make_unique<SeriesSource>(s));

    DynamicRunResult run;
    std::map<TaskId, LiveDynamicTask> live;
    // Ground truth per distinct threshold, cached: churn events commonly
    // re-add tasks at a previously seen threshold.
    std::map<double, GroundTruth> truths;
    const auto truth_for = [&](double threshold) -> const GroundTruth& {
      auto it = truths.find(threshold);
      if (it == truths.end()) {
        it = truths
                 .emplace(threshold,
                          GroundTruth::from_series(aggregate, threshold))
                 .first;
      }
      return it->second;
    };

    const auto finalize = [&](TaskId id, LiveDynamicTask& task,
                              Tick departed) {
      DynamicTaskResult out;
      out.task = id;
      out.epoch = task.epoch;
      out.arrived = task.arrived;
      out.departed = departed;
      RunResult& r = out.result;
      r.ticks = departed - task.arrived;
      r.monitors = monitor_series.size();
      const Coordinator& coordinator = *task.coordinator;
      for (std::size_t i = 0; i < coordinator.monitor_count(); ++i) {
        r.scheduled_ops += coordinator.monitor(i).scheduled_ops();
        r.forced_ops += coordinator.monitor(i).forced_ops();
      }
      r.total_cost = coordinator.total_cost();
      r.local_violations = task.local_violations;
      r.global_polls = coordinator.global_polls();
      r.reallocations = coordinator.reallocations();
      score_window(r, truth_for(coordinator.spec().global_threshold),
                   task.detected, task.arrived, departed);
      run.tasks.push_back(std::move(out));
    };

    std::size_t next_event = 0;
    for (Tick t = 0; t < ticks; ++t) {
      while (next_event < events.size() && events[next_event].tick <= t) {
        const TaskChurnEvent& event = events[next_event++];
        if (event.kind == TaskChurnEvent::Kind::kArrive) {
          const auto result = registry.add(event.task, event.spec);
          if (!result.ok())
            throw std::invalid_argument("run_dynamic_tasks: arrive: " +
                                        result.error);
          const auto thresholds = split_threshold(
              event.spec.global_threshold, monitor_series.size());
          std::vector<std::unique_ptr<Monitor>> monitors;
          monitors.reserve(monitor_series.size());
          for (std::size_t i = 0; i < monitor_series.size(); ++i) {
            monitors.push_back(std::make_unique<Monitor>(
                static_cast<MonitorId>(i), *sources[i],
                event.spec.sampler_options(event.spec.error_allowance),
                thresholds[i]));
          }
          LiveDynamicTask task;
          task.epoch = result.epoch;
          task.arrived = t;
          task.coordinator = std::make_unique<Coordinator>(
              event.spec, std::move(monitors), make_allocator(allocator));
          task.detected.assign(static_cast<std::size_t>(ticks), 0);
          live.emplace(event.task, std::move(task));
          ++run.arrivals;
        } else {
          const auto it = live.find(event.task);
          if (it == live.end())
            throw std::invalid_argument(
                "run_dynamic_tasks: depart of unknown task");
          const auto removed = registry.remove(event.task);
          if (!removed.ok())
            throw std::invalid_argument("run_dynamic_tasks: depart: " +
                                        removed.error);
          finalize(event.task, it->second, t);
          live.erase(it);
          ++run.departures;
        }
      }
      for (auto& [id, task] : live) {
        const auto tick = task.coordinator->run_tick(t);
        if (tick.global_violation)
          task.detected[static_cast<std::size_t>(t)] = 1;
        task.local_violations += tick.local_violations;
      }
    }
    for (auto& [id, task] : live) finalize(id, task, ticks);
    run.registry_version = registry.version();
    return run;
  });
}

}  // namespace volley
