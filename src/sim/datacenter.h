// Datacenter topology of the paper's testbed (Section V-A, Figure 4):
// 20 physical servers x 40 VMs = 800 VMs; every server runs one monitor per
// VM inside Dom0; one coordinator serves every 5 physical servers.
//
// The topology is pure bookkeeping — placement and addressing — consumed by
// the datacenter-scale example, the Figure 6 bench (per-host utilization
// aggregation) and the socket runtime's address assignment.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace volley {

struct DatacenterOptions {
  std::size_t hosts{20};
  std::size_t vms_per_host{40};
  std::size_t hosts_per_coordinator{5};

  void validate() const {
    if (hosts == 0) throw std::invalid_argument("Datacenter: hosts > 0");
    if (vms_per_host == 0)
      throw std::invalid_argument("Datacenter: vms_per_host > 0");
    if (hosts_per_coordinator == 0)
      throw std::invalid_argument("Datacenter: hosts_per_coordinator > 0");
  }
};

class Datacenter {
 public:
  Datacenter() : Datacenter(DatacenterOptions{}) {}
  explicit Datacenter(const DatacenterOptions& options) : options_(options) {
    options_.validate();
  }

  std::size_t host_count() const { return options_.hosts; }
  std::size_t vm_count() const { return options_.hosts * options_.vms_per_host; }
  std::size_t coordinator_count() const {
    return (options_.hosts + options_.hosts_per_coordinator - 1) /
           options_.hosts_per_coordinator;
  }

  std::size_t host_of_vm(std::size_t vm) const {
    check_vm(vm);
    return vm / options_.vms_per_host;
  }
  std::size_t coordinator_of_host(std::size_t host) const {
    check_host(host);
    return host / options_.hosts_per_coordinator;
  }
  std::size_t coordinator_of_vm(std::size_t vm) const {
    return coordinator_of_host(host_of_vm(vm));
  }

  /// VM ids hosted on a physical server.
  std::vector<std::size_t> vms_on_host(std::size_t host) const {
    check_host(host);
    std::vector<std::size_t> out;
    out.reserve(options_.vms_per_host);
    const std::size_t base = host * options_.vms_per_host;
    for (std::size_t i = 0; i < options_.vms_per_host; ++i)
      out.push_back(base + i);
    return out;
  }

  /// Hosts served by a coordinator.
  std::vector<std::size_t> hosts_of_coordinator(std::size_t coord) const {
    if (coord >= coordinator_count())
      throw std::out_of_range("Datacenter: coordinator out of range");
    std::vector<std::size_t> out;
    for (std::size_t h = coord * options_.hosts_per_coordinator;
         h < std::min((coord + 1) * options_.hosts_per_coordinator,
                      options_.hosts);
         ++h) {
      out.push_back(h);
    }
    return out;
  }

  const DatacenterOptions& options() const { return options_; }

 private:
  void check_vm(std::size_t vm) const {
    if (vm >= vm_count()) throw std::out_of_range("Datacenter: vm id");
  }
  void check_host(std::size_t host) const {
    if (host >= host_count()) throw std::out_of_range("Datacenter: host id");
  }

  DatacenterOptions options_;
};

}  // namespace volley
