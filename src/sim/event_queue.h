// Discrete-event simulation core.
//
// The paper runs on an 800-VM Emulab testbed; we reproduce that scale with a
// discrete-event simulator: every monitor's sampling operation is an event
// on a virtual clock, so hundreds of tasks with different default intervals
// (15 s network, 5 s system, 1 s application) interleave exactly as they
// would on wall-clock time, at millions of events per second.
//
// Hot-path design (see DESIGN.md §10):
//  * the pending set is a flat 4-ary min-heap of POD records (when, seq,
//    slot, gen) — one contiguous vector, no node allocations, and the
//    shallower tree halves the cache misses of a binary heap at datacenter
//    event counts;
//  * callbacks live in a slot table next to the heap, wrapped in a
//    small-buffer-optimized `Callback` (the captures used by
//    Simulation::schedule_tick and the fault drivers fit inline, so the
//    steady-state schedule/run cycle performs zero heap allocations —
//    bench_micro_core asserts this with a global allocation counter);
//  * ids are generation-checked: cancelling destroys the callback
//    immediately and bumps the slot's generation, so stale ids can never
//    touch a recycled slot;
//  * cancelled records left in the heap are compacted away whenever they
//    outnumber the live ones (cancel-heavy fault plans used to pin dead
//    closures until their heap position was popped).
//
// Determinism: events at equal times fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so simulations are
// exactly reproducible. Compaction only removes dead records and re-heapifies
// on the same (when, seq) key, so it never reorders live events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace volley {

class EventQueue {
 public:
  /// Small-buffer-optimized, move-only `void()` callable. Callables up to
  /// kInlineCapacity bytes (and nothrow-move-constructible) are stored
  /// in-place; larger ones fall back to one heap allocation, exactly like
  /// std::function — but the inline budget is sized so every callback this
  /// codebase schedules stays on the fast path.
  class Callback {
   public:
    static constexpr std::size_t kInlineCapacity = 48;

    Callback() = default;
    Callback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    Callback(F&& fn) {  // NOLINT(google-explicit-constructor)
      using Fn = std::decay_t<F>;
      if constexpr (sizeof(Fn) <= kInlineCapacity &&
                    alignof(Fn) <= alignof(std::max_align_t) &&
                    std::is_nothrow_move_constructible_v<Fn>) {
        ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
        ops_ = &kInlineOps<Fn>;
      } else {
        *reinterpret_cast<Fn**>(static_cast<void*>(storage_)) =
            new Fn(std::forward<F>(fn));
        ops_ = &kHeapOps<Fn>;
      }
    }

    Callback(Callback&& other) noexcept { move_from(other); }
    Callback& operator=(Callback&& other) noexcept {
      if (this != &other) {
        reset();
        move_from(other);
      }
      return *this;
    }
    Callback(const Callback&) = delete;
    Callback& operator=(const Callback&) = delete;
    ~Callback() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }
    void operator()() { ops_->invoke(storage_); }

    /// Destroys the held callable (freeing any owned captures) and leaves
    /// the callback empty.
    void reset() {
      if (ops_ != nullptr) {
        ops_->destroy(storage_);
        ops_ = nullptr;
      }
    }

    /// True when the callable spilled to a heap allocation (its captures
    /// exceeded kInlineCapacity). Exposed so benches and tests can assert
    /// the simulator's own callbacks stay inline.
    bool on_heap() const { return ops_ != nullptr && ops_->heap; }

   private:
    struct Ops {
      void (*invoke)(unsigned char* storage);
      // Move-construct into `to` and destroy the `from` state.
      void (*relocate)(unsigned char* from, unsigned char* to);
      void (*destroy)(unsigned char* storage);
      bool heap;
    };

    template <typename Fn>
    static constexpr Ops kInlineOps{
        [](unsigned char* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
        [](unsigned char* from, unsigned char* to) {
          Fn* f = std::launder(reinterpret_cast<Fn*>(from));
          ::new (static_cast<void*>(to)) Fn(std::move(*f));
          f->~Fn();
        },
        [](unsigned char* s) {
          std::launder(reinterpret_cast<Fn*>(s))->~Fn();
        },
        false};

    template <typename Fn>
    static constexpr Ops kHeapOps{
        [](unsigned char* s) {
          (**reinterpret_cast<Fn**>(static_cast<void*>(s)))();
        },
        [](unsigned char* from, unsigned char* to) {
          *reinterpret_cast<Fn**>(static_cast<void*>(to)) =
              *reinterpret_cast<Fn**>(static_cast<void*>(from));
        },
        [](unsigned char* s) {
          delete *reinterpret_cast<Fn**>(static_cast<void*>(s));
        },
        true};

    void move_from(Callback& other) noexcept {
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
    const Ops* ops_{nullptr};
  };

  /// Schedules `fn` at absolute time `when` (>= now). Returns an id that
  /// can be cancelled.
  std::uint64_t schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` `delay` seconds from now.
  std::uint64_t schedule_after(SimTime delay, Callback fn);

  /// Cancels a scheduled event. The callback is destroyed immediately (its
  /// captures are freed); the heap record is skipped when popped or swept
  /// out by compaction, whichever comes first. Ids that already ran, were
  /// already cancelled, or were never issued are ignored.
  void cancel(std::uint64_t id);

  /// Runs events until the queue is empty or the horizon passes.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Runs a single event; returns false when the queue is empty.
  bool step();

  SimTime now() const { return now_; }
  /// Scheduled events that have neither run nor been cancelled.
  std::size_t pending() const { return live_; }
  bool empty() const { return live_ == 0; }
  /// Heap records currently held, live plus not-yet-compacted cancelled
  /// ones. Compaction keeps this below 2x pending() (+1), which is what the
  /// cancel-heavy regression tests assert.
  std::size_t heap_records() const { return heap_.size(); }

 private:
  /// POD heap node; the callback lives in slots_[slot]. A record is dead
  /// (cancelled) when its generation no longer matches the slot's.
  struct Record {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  struct Slot {
    Callback fn;
    std::uint32_t gen{0};
    std::uint32_t next_free{kNoSlot};
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  static bool before(const Record& a, const Record& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  bool record_dead(const Record& r) const {
    return slots_[r.slot].gen != r.gen;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_root();
  /// Drops dead roots; returns false when no live record remains. On true,
  /// `out` is the live minimum (not yet popped).
  bool peek_live_root(Record& out);
  /// Moves the callback out, recycles the slot, advances the clock, and
  /// invokes the callback (which may schedule further events).
  void run_record(const Record& r);
  /// Sweeps dead records out of the heap and re-heapifies.
  void compact();

  std::vector<Record> heap_;  // flat 4-ary min-heap on (when, seq)
  std::vector<Slot> slots_;
  std::uint32_t free_head_{kNoSlot};
  std::size_t live_{0};
  std::size_t dead_records_{0};  // cancelled records still in heap_
  SimTime now_{0.0};
  std::uint64_t next_seq_{0};
};

}  // namespace volley
