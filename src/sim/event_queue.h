// Discrete-event simulation core.
//
// The paper runs on an 800-VM Emulab testbed; we reproduce that scale with a
// discrete-event simulator: every monitor's sampling operation is an event
// on a virtual clock, so hundreds of tasks with different default intervals
// (15 s network, 5 s system, 1 s application) interleave exactly as they
// would on wall-clock time, at millions of events per second.
//
// Determinism: events at equal times fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so simulations are
// exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/clock.h"

namespace volley {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `when` (>= now). Returns an id that
  /// can be cancelled.
  std::uint64_t schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` `delay` seconds from now.
  std::uint64_t schedule_after(SimTime delay, Callback fn);

  /// Lazily cancels a scheduled event (it is skipped when popped).
  void cancel(std::uint64_t id);

  /// Runs events until the queue is empty or the horizon passes.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Runs a single event; returns false when the queue is empty.
  bool step();

  SimTime now() const { return now_; }
  std::size_t pending() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
    Callback fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool pop_runnable(Event& out);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> live_;  // scheduled, not yet run/cancelled
  SimTime now_{0.0};
  std::uint64_t next_seq_{0};
  std::uint64_t next_id_{1};
};

}  // namespace volley
