#include "sim/experiment.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace_events.h"

namespace volley {

GroundTruth GroundTruth::from_series(const TimeSeries& aggregate,
                                     double threshold) {
  GroundTruth truth;
  const std::size_t n = aggregate.size();
  truth.alert.assign(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    if (aggregate[t] > threshold) {
      truth.alert[t] = 1;
      ++truth.alert_ticks;
    }
  }
  // Maximal runs of alert ticks.
  std::size_t t = 0;
  while (t < n) {
    if (!truth.alert[t]) {
      ++t;
      continue;
    }
    std::size_t end = t;
    while (end < n && truth.alert[end]) ++end;
    truth.episodes.emplace_back(static_cast<Tick>(t), static_cast<Tick>(end));
    t = end;
  }
  return truth;
}

void score_detection(RunResult& result, const GroundTruth& truth,
                     std::span<const char> detected) {
  if (detected.size() != truth.alert.size())
    throw std::invalid_argument("score_detection: length mismatch");
  result.true_alert_ticks = truth.alert_ticks;
  result.true_episodes = static_cast<std::int64_t>(truth.episodes.size());
  result.detected_alert_ticks = 0;
  result.detected_episodes = 0;
  for (std::size_t t = 0; t < detected.size(); ++t) {
    if (truth.alert[t] && detected[t]) ++result.detected_alert_ticks;
  }
  auto& missed_episodes = obs::metrics().counter(
      "volley_misdetected_episodes_total",
      "Ground-truth alert episodes in which no tick was detected");
  for (const auto& [start, end] : truth.episodes) {
    bool hit = false;
    for (Tick t = start; t < end; ++t) {
      if (detected[static_cast<std::size_t>(t)]) {
        ++result.detected_episodes;
        hit = true;
        break;
      }
    }
    if (!hit) {
      missed_episodes.inc();
      obs::trace().record(obs::TraceKind::kMisdetectWindow, start, 0,
                          static_cast<double>(end),
                          static_cast<double>(end - start));
    }
  }
  // Snapshots the *current* registry — the run-scoped one installed by the
  // experiment drivers — so the result carries only this run's counters.
  result.metrics_json = obs::metrics().to_json();
}

}  // namespace volley
