// Fault injection for distributed monitoring runs.
//
// The Volley paper assumes reliable messaging; its companion work
// ("Reliable state monitoring in cloud datacenters", IEEE CLOUD 2012,
// cited as [22]) studies what message loss and node outages do to state
// monitoring accuracy. This driver reproduces that concern for Volley:
// it runs the standard monitor/coordinator protocol while dropping
// violation reports, dropping poll responses, and taking monitors offline
// for windows of time — and accounts for the resulting detection loss.
//
// Semantics:
//  * violation_report_loss — each local-violation report independently
//    fails to reach the coordinator; if no report of a tick survives, no
//    global poll happens that tick.
//  * poll_response_loss    — each polled monitor's response independently
//    fails; the coordinator then uses that monitor's last known value
//    (stale data, exactly what a timeout fallback does).
//  * outages               — a down monitor neither samples nor answers
//    polls; the coordinator keeps using its last known value.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/task.h"
#include "sim/experiment.h"
#include "sim/runner.h"

namespace volley {

struct MonitorOutage {
  std::size_t monitor{0};
  Tick start{0};
  Tick end{0};  // exclusive
};

struct FaultPlan {
  double violation_report_loss{0.0};  // in [0, 1)
  double poll_response_loss{0.0};     // in [0, 1)
  std::vector<MonitorOutage> outages;
  std::uint64_t seed{99};

  /// Throws std::invalid_argument on probabilities outside [0,1) and on
  /// inverted/empty (`end <= start`) or overlapping same-monitor outage
  /// windows.
  void validate() const;
};

/// Fault plan for the *wire* runtime (net/chaos_proxy.h): the same message
/// semantics as FaultPlan, applied per decoded frame by a chaos proxy
/// interposed on the TCP path, plus the transport-level faults a simulator
/// tick loop cannot express (delay, partial writes, mid-stream disconnects).
///
/// Mapping onto FaultPlan: `message_loss.violation_report_loss` drops
/// LocalViolation frames (monitor->coordinator) and
/// `message_loss.poll_response_loss` drops PollResponse frames, each with
/// the same independent-Bernoulli semantics the simulator uses;
/// `message_loss.outages` are ignored — real outages are produced by
/// killing nodes or cutting connections (`disconnect_after_frames`).
struct NetFaultPlan {
  FaultPlan message_loss;        // frame-type-targeted drop probabilities
  double heartbeat_loss{0.0};    // drop Heartbeat/HeartbeatAck frames, [0,1)
  double delay_prob{0.0};        // hold a surviving frame for delay_ms
  int delay_ms{0};
  double partial_write_prob{0.0};  // forward a frame in two delayed chunks
  /// Cut the proxied connection (both sides) after this many forwarded
  /// frames; -1 = never. Applies per accepted connection, so a reconnecting
  /// monitor can be cut repeatedly (bounded by max_disconnects).
  std::int64_t disconnect_after_frames{-1};
  int max_disconnects{0};  // total mid-stream cuts across the proxy's life

  void validate() const;
};

struct FaultyRunResult {
  RunResult run;                      // the usual cost/accuracy accounting
  std::int64_t lost_reports{0};       // violation reports dropped
  std::int64_t lost_responses{0};     // poll responses dropped
  std::int64_t outage_monitor_ticks{0};
  std::int64_t stale_polls{0};        // polls that used >= 1 stale value
};

/// Like run_volley, but under the fault plan. Uses the adaptive allowance
/// allocator (the paper's default scheme).
FaultyRunResult run_volley_faulty(const TaskSpec& spec,
                                  std::span<const TimeSeries> monitor_series,
                                  std::span<const double> local_thresholds,
                                  const FaultPlan& plan);

}  // namespace volley
