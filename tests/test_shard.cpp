// Tests for the two-tier shard subsystem (DESIGN.md §13): placement, the
// sharded sim driver (flat identity at shards == 1, forced-op savings and
// detection at shards > 1), two-level allowance conservation, the shard
// wire frames, and a full 1-root / 2-aggregator / 8-monitor localhost
// fleet.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/metric_source.h"
#include "net/aggregator_node.h"
#include "net/coordinator_node.h"
#include "net/messages.h"
#include "net/monitor_node.h"
#include "shard/placement.h"
#include "shard/runner.h"
#include "shard/sharded_coordinator.h"
#include "sim/runner.h"

namespace volley {
namespace {

TEST(Placement, SlicesAreContiguousNearEqualAndInvertible) {
  const auto placement = shard::contiguous_placement(10, 3);
  ASSERT_EQ(placement.size(), 3u);
  // First monitors % shards ranges carry the extra element.
  EXPECT_EQ(placement[0].size(), 4u);
  EXPECT_EQ(placement[1].size(), 3u);
  EXPECT_EQ(placement[2].size(), 3u);
  std::size_t at = 0;
  for (const auto& range : placement) {
    EXPECT_EQ(range.begin, at);
    at = range.end;
  }
  EXPECT_EQ(at, 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    const std::size_t s = shard::shard_of(placement, i);
    EXPECT_TRUE(placement[s].contains(i));
  }
  EXPECT_THROW(shard::shard_of(placement, 10), std::out_of_range);
}

TEST(Placement, RejectsDegenerateShapes) {
  EXPECT_THROW(shard::contiguous_placement(0, 1), std::invalid_argument);
  EXPECT_THROW(shard::contiguous_placement(4, 0), std::invalid_argument);
  EXPECT_THROW(shard::contiguous_placement(4, 5), std::invalid_argument);
}

TEST(Codec, ShardFramesRoundTrip) {
  {
    const net::Message m = net::ShardHello{7, 125, true};
    const auto out = net::decode(net::encode(m));
    ASSERT_TRUE(out.has_value());
    const auto* hello = std::get_if<net::ShardHello>(&*out);
    ASSERT_NE(hello, nullptr);
    EXPECT_EQ(hello->shard, 7u);
    EXPECT_EQ(hello->monitors, 125u);
    EXPECT_TRUE(hello->resume);
  }
  {
    const net::Message m = net::ShardSummary{3, 1, 0.25, 0.5, 0.5, 0.01, 42};
    const auto out = net::decode(net::encode(m));
    ASSERT_TRUE(out.has_value());
    const auto* summary = std::get_if<net::ShardSummary>(&*out);
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(summary->shard, 3u);
    EXPECT_EQ(summary->task, 1u);
    EXPECT_DOUBLE_EQ(summary->r, 0.25);
    EXPECT_DOUBLE_EQ(summary->e, 0.5);
    EXPECT_DOUBLE_EQ(summary->yield, 0.5);
    EXPECT_DOUBLE_EQ(summary->allowance_used, 0.01);
    EXPECT_EQ(summary->observations, 42);
  }
  {
    const net::Message m = net::ShardAllowance{2, 0.015};
    EXPECT_TRUE(net::is_control_request(m));
    const auto out = net::decode(net::encode(m));
    ASSERT_TRUE(out.has_value());
    const auto* budget = std::get_if<net::ShardAllowance>(&*out);
    ASSERT_NE(budget, nullptr);
    EXPECT_EQ(budget->task, 2u);
    EXPECT_DOUBLE_EQ(budget->error_allowance, 0.015);
  }
  {
    net::StatsReply reply;
    reply.global_polls = 5;
    reply.shards.push_back(net::ShardStatsRow{0, 4, 0.02, 130});
    reply.shards.push_back(net::ShardStatsRow{1, 4, 0.02, -1});
    const auto out = net::decode(net::encode(net::Message{reply}));
    ASSERT_TRUE(out.has_value());
    const auto* stats = std::get_if<net::StatsReply>(&*out);
    ASSERT_NE(stats, nullptr);
    ASSERT_EQ(stats->shards.size(), 2u);
    EXPECT_EQ(stats->shards[0].shard, 0u);
    EXPECT_EQ(stats->shards[0].monitors, 4u);
    EXPECT_DOUBLE_EQ(stats->shards[0].allowance, 0.02);
    EXPECT_EQ(stats->shards[0].last_summary_age_ms, 130);
    EXPECT_EQ(stats->shards[1].last_summary_age_ms, -1);
  }
}

TimeSeries quiet_series(Tick ticks, std::uint64_t seed, double level,
                        double noise = 0.01) {
  Rng rng(seed);
  TimeSeries s(static_cast<std::size_t>(ticks));
  for (Tick t = 0; t < ticks; ++t) {
    s[static_cast<std::size_t>(t)] = level + rng.normal(0.0, noise);
  }
  return s;
}

TaskSpec shard_spec(double threshold, double err = 0.02) {
  TaskSpec spec;
  spec.global_threshold = threshold;
  spec.error_allowance = err;
  spec.max_interval = 16;
  spec.patience = 5;
  spec.updating_period = 200;
  return spec;
}

void expect_identical_results(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.monitors, b.monitors);
  EXPECT_EQ(a.scheduled_ops, b.scheduled_ops);
  EXPECT_EQ(a.forced_ops, b.forced_ops);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.true_alert_ticks, b.true_alert_ticks);
  EXPECT_EQ(a.detected_alert_ticks, b.detected_alert_ticks);
  EXPECT_EQ(a.true_episodes, b.true_episodes);
  EXPECT_EQ(a.detected_episodes, b.detected_episodes);
  EXPECT_EQ(a.local_violations, b.local_violations);
  EXPECT_EQ(a.global_polls, b.global_polls);
  EXPECT_EQ(a.reallocations, b.reallocations);
  EXPECT_EQ(a.op_ticks, b.op_ticks);
  EXPECT_EQ(a.interval_trajectory, b.interval_trajectory);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

// shards == 1 must be the flat runner, bit for bit — including the
// run-scoped metrics snapshot, so any stray shard-tier counter or trace
// event on the single-shard path shows up here.
TEST(ShardedRunner, SingleShardIsByteIdenticalToFlat) {
  constexpr Tick kTicks = 1200;
  constexpr std::size_t kMonitors = 6;
  std::vector<TimeSeries> series;
  for (std::size_t i = 0; i < kMonitors; ++i) {
    series.push_back(quiet_series(kTicks, 100 + i, 0.2, 0.05));
  }
  // One sustained global violation window.
  for (Tick t = 700; t < 760; ++t) {
    for (auto& s : series) s[static_cast<std::size_t>(t)] = 2.0;
  }
  const TaskSpec spec = shard_spec(6.0);
  const std::vector<double> thresholds(kMonitors, 1.0);

  RunOptions flat_options;
  flat_options.record_ops = true;
  flat_options.record_intervals = true;
  const auto flat = run_volley(spec, series, thresholds, flat_options);

  shard::ShardedRunOptions sharded_options;
  sharded_options.shards = 1;
  sharded_options.record_ops = true;
  sharded_options.record_intervals = true;
  const auto sharded =
      shard::run_volley_sharded(spec, series, thresholds, sharded_options);

  expect_identical_results(flat, sharded);
}

// The scaling mechanism: a local violation confined to one shard forces
// that shard's subset poll (n/S samples), not a fleet-wide poll (n
// samples). The fleet-wide violation window must still be detected via
// escalation.
TEST(ShardedRunner, ShardsContainLocalViolationsAndStillDetect) {
  constexpr Tick kTicks = 1500;
  constexpr std::size_t kMonitors = 12;
  std::vector<TimeSeries> series;
  for (std::size_t i = 0; i < kMonitors; ++i) {
    series.push_back(quiet_series(kTicks, 300 + i, 0.1, 0.02));
  }
  // Monitor 0 trips its local threshold often, but its shard's subset
  // aggregate stays under T_s — the root tier never hears about it.
  for (Tick t = 100; t < 1400; t += 50) {
    series[0][static_cast<std::size_t>(t)] = 2.0;
  }
  // One genuine fleet-wide violation window.
  for (Tick t = 900; t < 950; ++t) {
    for (auto& s : series) s[static_cast<std::size_t>(t)] = 1.5;
  }
  const TaskSpec spec = shard_spec(12.0);
  const std::vector<double> thresholds(kMonitors, 1.0);

  const auto flat = run_volley(spec, series, thresholds);
  shard::ShardedRunOptions sharded_options;
  sharded_options.shards = 4;
  const auto sharded =
      shard::run_volley_sharded(spec, series, thresholds, sharded_options);

  EXPECT_GE(sharded.detected_episodes, 1);
  EXPECT_EQ(sharded.true_episodes, flat.true_episodes);
  // Forced samples: subset polls cost n/S, so the repeated monitor-0
  // violations are ~4x cheaper than under the flat coordinator.
  EXPECT_LT(sharded.forced_ops, flat.forced_ops);
}

// Two-level conservation: Σ_s err_s == err after every root reallocation
// round, and within each shard the per-monitor split sums to that shard's
// budget — β_c ≤ Σ_shards Σ_i β_i ≤ err needs both.
TEST(ShardedCoordinator, BudgetsConserveErrAtBothLevels) {
  constexpr Tick kTicks = 2400;
  constexpr std::size_t kMonitors = 8;
  constexpr std::size_t kShards = 4;
  constexpr double kErr = 0.02;

  // Heterogeneous noise so yields differ across shards and the adaptive
  // allocator actually moves budget at both levels.
  std::vector<TimeSeries> series;
  for (std::size_t i = 0; i < kMonitors; ++i) {
    series.push_back(
        quiet_series(kTicks, 500 + i, 0.1, i < 2 ? 0.25 : 0.01));
  }
  std::vector<std::unique_ptr<SeriesSource>> sources;
  std::vector<std::unique_ptr<Monitor>> monitors;
  TaskSpec spec = shard_spec(8.0, kErr);
  for (std::size_t i = 0; i < kMonitors; ++i) {
    sources.push_back(std::make_unique<SeriesSource>(series[i]));
    monitors.push_back(std::make_unique<Monitor>(
        static_cast<MonitorId>(i), *sources[i],
        spec.sampler_options(spec.error_allowance), 1.0));
  }
  shard::ShardedCoordinator coordinator(
      spec, std::move(monitors), kShards,
      shard::make_allocator_factory(AllocatorKind::kAdaptive));

  const auto check_conservation = [&] {
    const auto& budgets = coordinator.budgets();
    ASSERT_EQ(budgets.size(), kShards);
    const double total =
        std::accumulate(budgets.begin(), budgets.end(), 0.0);
    EXPECT_NEAR(total, kErr, 1e-12);
    for (std::size_t s = 0; s < kShards; ++s) {
      const auto& split = coordinator.shard(s).allocation();
      const double shard_sum =
          std::accumulate(split.begin(), split.end(), 0.0);
      EXPECT_NEAR(shard_sum, budgets[s], 1e-12);
      // The live samplers carry the same split.
      for (std::size_t j = 0; j < split.size(); ++j) {
        EXPECT_DOUBLE_EQ(coordinator.shard(s).monitor(j).error_allowance(),
                         split[j]);
      }
    }
  };

  check_conservation();
  for (Tick t = 0; t < kTicks; ++t) {
    coordinator.run_tick(t);
    if ((t + 1) % spec.updating_period == 0) check_conservation();
  }
  // The run must actually have exercised the root tier for the invariant
  // checks above to mean anything.
  EXPECT_GT(coordinator.root_reallocations(), 0);
  check_conservation();
}

// End-to-end two-tier fleet over localhost TCP: one root coordinator, two
// aggregator shards, eight monitors (four per shard). Monitor 0 of shard 0
// carries a sustained violation window heavy enough to push the *global*
// aggregate over T: the shard escalates, the root polls both shards
// (cached subset aggregates), and records a global alert.
TEST(NetIntegration, TwoTierFleetDetectsViolationThroughAggregators) {
  constexpr Tick kTicks = 400;
  constexpr std::size_t kShards = 2;
  constexpr std::size_t kPerShard = 4;
  constexpr double kGlobalThreshold = 16.0;

  net::CoordinatorNodeOptions root_options;
  root_options.monitors = kShards;
  root_options.total_weight = kShards * kPerShard;
  root_options.global_threshold = kGlobalThreshold;
  root_options.error_allowance = 0.04;
  net::CoordinatorNode root(root_options);

  std::vector<std::unique_ptr<net::AggregatorNode>> aggregators;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    net::AggregatorNodeOptions agg_options;
    agg_options.shard_id = s;
    agg_options.coordinator_port = root.port();
    agg_options.monitors = kPerShard;
    // The shard's slice: T_s = T * w/W, err_s = err * w/W.
    agg_options.global_threshold = kGlobalThreshold / kShards;
    agg_options.error_allowance = 0.04 / kShards;
    agg_options.summary_interval_ms = 50;
    agg_options.heartbeat_interval_ms = 100;
    aggregators.push_back(std::make_unique<net::AggregatorNode>(agg_options));
  }

  std::vector<std::unique_ptr<CallableSource>> sources;
  std::vector<std::unique_ptr<net::MonitorNode>> nodes;
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t i = 0; i < kPerShard; ++i) {
      const bool hot = s == 0 && i == 0;
      sources.push_back(std::make_unique<CallableSource>(
          [hot](Tick t) {
            return hot && t >= 150 && t < 280 ? 20.0 : 0.5;
          },
          kTicks));
      net::MonitorNodeOptions mon_options;
      mon_options.id = static_cast<MonitorId>(i);
      mon_options.coordinator_port = aggregators[s]->port();
      mon_options.local_threshold =
          kGlobalThreshold / (kShards * kPerShard);
      mon_options.sampler.error_allowance = 0.005;
      mon_options.sampler.patience = 3;
      mon_options.sampler.max_interval = 8;
      mon_options.ticks = kTicks;
      mon_options.updating_period = 100;
      mon_options.tick_micros = 300;
      nodes.push_back(
          std::make_unique<net::MonitorNode>(mon_options, *sources.back()));
    }
  }

  std::thread root_thread([&root] { root.run(); });
  std::vector<std::thread> aggregator_threads;
  for (auto& aggregator : aggregators) {
    aggregator_threads.emplace_back([&aggregator] { aggregator->run(); });
  }
  // Give the aggregators a beat to join the root before monitors start.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::vector<std::thread> monitor_threads;
  for (auto& node : nodes) {
    monitor_threads.emplace_back([&node] { node->run(); });
  }
  for (auto& t : monitor_threads) t.join();
  for (auto& t : aggregator_threads) t.join();
  root_thread.join();

  // Shard 0 saw the subset violation and escalated upstream.
  EXPECT_FALSE(aggregators[0]->downstream().alerts().empty());
  EXPECT_GT(aggregators[0]->escalations(), 0);
  EXPECT_FALSE(aggregators[0]->coordinator_lost());
  EXPECT_FALSE(aggregators[1]->coordinator_lost());
  // Both shards kept the root's summary stream alive.
  for (const auto& aggregator : aggregators) {
    EXPECT_GT(aggregator->summaries_sent(), 0);
  }
  // The root polled on escalation and the cached subset aggregates crossed
  // the global threshold.
  EXPECT_GT(root.global_polls(), 0);
  ASSERT_FALSE(root.alerts().empty());
  for (const auto& alert : root.alerts()) {
    EXPECT_GT(alert.value, kGlobalThreshold);
  }
  // Each shard's Bye carried the summed downstream sampling ops.
  ASSERT_EQ(root.reported_ops().size(), kShards);
  for (const auto& [shard, ops] : root.reported_ops()) {
    EXPECT_GT(ops, 0);
    EXPECT_LT(ops, static_cast<std::int64_t>(kTicks * kPerShard));
  }
}

}  // namespace
}  // namespace volley
