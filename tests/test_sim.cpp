// Unit tests for the simulation substrate: event queue, Dom0 cost model,
// datacenter topology, ground truth and detection scoring.
#include <gtest/gtest.h>

#include <vector>

#include <memory>

#include "core/metric_source.h"
#include "sim/cost_model.h"
#include "sim/datacenter.h"
#include "sim/event_queue.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace volley {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, TiesRunInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HorizonStopsExecution) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(1.0, [&] { ++ran; });
  q.schedule_at(5.0, [&] { ++ran; });
  EXPECT_EQ(q.run_until(2.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(10.0);
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int ran = 0;
  const auto id = q.schedule_at(1.0, [&] { ++ran; });
  q.schedule_at(2.0, [&] { ++ran; });
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(10.0);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.cancel(9999);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  std::function<void()> reschedule = [&] {
    times.push_back(q.now());
    if (times.size() < 5) q.schedule_after(2.0, reschedule);
  };
  q.schedule_at(0.0, reschedule);
  q.run_until(100.0);
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times[4], 8.0);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run_until(5.0);
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_at(6.0, nullptr), std::invalid_argument);
}

TEST(EventQueue, StepRunsExactlyOne) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(1.0, [&] { ++ran; });
  q.schedule_at(2.0, [&] { ++ran; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, CancelHeavyHeapStaysBounded) {
  // Regression: cancel used to leave dead events (and their captured
  // closures) in the heap until their position was popped. Compaction must
  // keep the record count within a small factor of the live count, and a
  // cancelled callback's captures must be freed at cancel time.
  EventQueue q;
  auto witness = std::make_shared<int>(0);
  std::vector<std::uint64_t> ids;
  ids.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    ids.push_back(
        q.schedule_at(static_cast<double>(i % 997), [witness] { ++*witness; }));
  }
  EXPECT_EQ(q.pending(), 100000u);
  EXPECT_EQ(witness.use_count(), 100001);
  for (const auto id : ids) q.cancel(id);
  EXPECT_EQ(q.pending(), 0u);
  // All 100k closures destroyed eagerly, not deferred to pop time.
  EXPECT_EQ(witness.use_count(), 1);
  // Compaction bound: dead records never exceed half the heap, so an empty
  // queue holds at most one straggler.
  EXPECT_LE(q.heap_records(), 1u);
  q.run_until(1000.0);
  EXPECT_EQ(*witness, 0);
}

TEST(EventQueue, InterleavedCancelKeepsHeapBounded) {
  // Steady-state schedule/cancel churn (a fault plan arming and disarming
  // timeouts): the heap must stay within 2x the live population + 1.
  EventQueue q;
  std::vector<std::uint64_t> live;
  int ran = 0;
  for (int round = 0; round < 2000; ++round) {
    for (int i = 0; i < 50; ++i) {
      live.push_back(
          q.schedule_after(1.0 + (round * 50 + i) % 13, [&] { ++ran; }));
    }
    // Cancel all but one per round.
    for (std::size_t i = live.size() - 50; i < live.size() - 1; ++i) {
      q.cancel(live[i]);
    }
    live.erase(live.end() - 50, live.end() - 1);
    ASSERT_LE(q.heap_records(), 2 * q.pending() + 1) << "round " << round;
  }
  EXPECT_EQ(q.pending(), 2000u);
  q.run_until(1e9);
  EXPECT_EQ(ran, 2000);
}

TEST(EventQueue, StaleIdNeverTouchesRecycledSlot) {
  // Ids are generation-checked: once an event runs, its id is dead forever,
  // even after the slot is reused by a newer event.
  EventQueue q;
  int first = 0, second = 0;
  const auto stale = q.schedule_at(1.0, [&] { ++first; });
  q.run_until(1.0);
  EXPECT_EQ(first, 1);
  // The freed slot is recycled by the next schedule.
  q.schedule_at(2.0, [&] { ++second; });
  q.cancel(stale);  // must NOT cancel the new occupant
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(3.0);
  EXPECT_EQ(second, 1);
  // Double-cancel of a live id is also single-shot.
  int third = 0;
  const auto id = q.schedule_at(4.0, [&] { ++third; });
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, SmallCapturesStayInline) {
  // The capture shapes the simulator actually schedules (a this-pointer, a
  // reference, a double) must take the no-allocation inline path; outsized
  // captures spill to the heap and still run correctly.
  struct Small {
    void* a;
    void* b;
    double c;
    void operator()() const {}
  };
  EventQueue::Callback small(Small{nullptr, nullptr, 1.0});
  EXPECT_FALSE(small.on_heap());

  struct Big {
    double payload[16];
    int* counter;
    void operator()() const { ++*counter; }
  };
  static_assert(sizeof(Big) > EventQueue::Callback::kInlineCapacity);
  int ran = 0;
  EventQueue q;
  Big big{};
  big.counter = &ran;
  EventQueue::Callback cb(big);
  EXPECT_TRUE(cb.on_heap());
  q.schedule_at(1.0, std::move(cb));
  q.run_until(1.0);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, TieBreakSurvivesCancelCompaction) {
  // Cancelling enough events to trigger compaction must not disturb the
  // (when, seq) order of the survivors.
  EventQueue q;
  std::vector<int> order;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule_at(5.0, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 1000; ++i) {
    if (i % 3 != 0) q.cancel(ids[static_cast<std::size_t>(i)]);
  }
  q.run_until(5.0);
  std::vector<int> expected;
  for (int i = 0; i < 1000; i += 3) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(CostModel, OpCostIsAffineInPackets) {
  CostModelOptions o;
  o.fixed_cost_seconds = 0.02;
  o.per_packet_cost_seconds = 1e-5;
  Dom0CostModel model(o);
  EXPECT_NEAR(model.op_cost_seconds(0), 0.02, 1e-12);
  EXPECT_NEAR(model.op_cost_seconds(1000), 0.03, 1e-12);
  EXPECT_THROW(model.op_cost_seconds(-1), std::invalid_argument);
}

TEST(CostModel, DefaultCalibrationMatchesPaperBand) {
  // 40 VMs sampled every tick at ~3000 packets/window must land inside the
  // paper's measured 20-34% Dom0 band (documented in cost_model.h).
  Dom0CostModel model;
  const double util =
      40.0 * model.op_cost_seconds(3000.0) / model.options().window_seconds;
  EXPECT_GT(util, 0.20);
  EXPECT_LT(util, 0.34);
}

TEST(CostModel, HostUtilizationAggregatesVmOps) {
  CostModelOptions o;
  o.fixed_cost_seconds = 1.5;  // cost per op
  o.per_packet_cost_seconds = 0.0;
  o.window_seconds = 15.0;
  Dom0CostModel model(o);
  std::vector<std::vector<Tick>> ops{{0, 2}, {0}};
  std::vector<TimeSeries> packets{TimeSeries(3, 0.0), TimeSeries(3, 0.0)};
  const auto util = model.host_utilization(3, ops, packets);
  EXPECT_NEAR(util[0], 2 * 1.5 / 15.0, 1e-12);  // both VMs sampled
  EXPECT_NEAR(util[1], 0.0, 1e-12);
  EXPECT_NEAR(util[2], 1.5 / 15.0, 1e-12);
}

TEST(CostModel, RejectsBadInputs) {
  Dom0CostModel model;
  std::vector<std::vector<Tick>> ops{{5}};
  std::vector<TimeSeries> packets{TimeSeries(3, 0.0)};
  EXPECT_THROW(model.host_utilization(3, ops, packets), std::out_of_range);
  std::vector<TimeSeries> wrong{};
  EXPECT_THROW(model.host_utilization(3, ops, wrong), std::invalid_argument);
}

TEST(Datacenter, PaperTopologyCounts) {
  Datacenter dc;  // defaults = the paper's testbed
  EXPECT_EQ(dc.host_count(), 20u);
  EXPECT_EQ(dc.vm_count(), 800u);
  EXPECT_EQ(dc.coordinator_count(), 4u);  // one per 5 hosts
}

TEST(Datacenter, PlacementIsConsistent) {
  Datacenter dc;
  EXPECT_EQ(dc.host_of_vm(0), 0u);
  EXPECT_EQ(dc.host_of_vm(39), 0u);
  EXPECT_EQ(dc.host_of_vm(40), 1u);
  EXPECT_EQ(dc.host_of_vm(799), 19u);
  EXPECT_EQ(dc.coordinator_of_host(0), 0u);
  EXPECT_EQ(dc.coordinator_of_host(4), 0u);
  EXPECT_EQ(dc.coordinator_of_host(5), 1u);
  EXPECT_EQ(dc.coordinator_of_vm(799), 3u);
}

TEST(Datacenter, EnumerationsRoundTrip) {
  Datacenter dc;
  const auto vms = dc.vms_on_host(7);
  EXPECT_EQ(vms.size(), 40u);
  for (auto vm : vms) EXPECT_EQ(dc.host_of_vm(vm), 7u);
  const auto hosts = dc.hosts_of_coordinator(2);
  EXPECT_EQ(hosts.size(), 5u);
  for (auto h : hosts) EXPECT_EQ(dc.coordinator_of_host(h), 2u);
}

TEST(Datacenter, OutOfRangeThrows) {
  Datacenter dc;
  EXPECT_THROW(dc.host_of_vm(800), std::out_of_range);
  EXPECT_THROW(dc.vms_on_host(20), std::out_of_range);
  EXPECT_THROW(dc.hosts_of_coordinator(4), std::out_of_range);
}

TEST(Datacenter, UnevenCoordinatorSplit) {
  DatacenterOptions o;
  o.hosts = 7;
  o.hosts_per_coordinator = 3;
  Datacenter dc(o);
  EXPECT_EQ(dc.coordinator_count(), 3u);
  EXPECT_EQ(dc.hosts_of_coordinator(2).size(), 1u);  // host 6 alone
}

TEST(GroundTruth, FindsTicksAndEpisodes) {
  TimeSeries s(std::vector<double>{0, 5, 5, 0, 5, 0, 0, 5});
  const auto truth = GroundTruth::from_series(s, 3.0);
  EXPECT_EQ(truth.alert_ticks, 4);
  ASSERT_EQ(truth.episodes.size(), 3u);
  EXPECT_EQ(truth.episodes[0], (std::pair<Tick, Tick>{1, 3}));
  EXPECT_EQ(truth.episodes[1], (std::pair<Tick, Tick>{4, 5}));
  EXPECT_EQ(truth.episodes[2], (std::pair<Tick, Tick>{7, 8}));
}

TEST(GroundTruth, ThresholdIsStrict) {
  TimeSeries s(std::vector<double>{3.0, 3.0001});
  const auto truth = GroundTruth::from_series(s, 3.0);
  EXPECT_EQ(truth.alert_ticks, 1);
}

TEST(ScoreDetection, PerTickAndPerEpisode) {
  TimeSeries s(std::vector<double>{0, 5, 5, 0, 5, 0});
  const auto truth = GroundTruth::from_series(s, 3.0);
  RunResult r;
  r.ticks = 6;
  r.monitors = 1;
  // Detect only the first tick of the first episode.
  std::vector<char> detected{0, 1, 0, 0, 0, 0};
  score_detection(r, truth, detected);
  EXPECT_EQ(r.true_alert_ticks, 3);
  EXPECT_EQ(r.detected_alert_ticks, 1);
  EXPECT_EQ(r.true_episodes, 2);
  EXPECT_EQ(r.detected_episodes, 1);
  EXPECT_NEAR(r.tick_miss_rate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.episode_miss_rate(), 0.5, 1e-12);
}

TEST(ScoreDetection, NoAlertsMeansZeroMissRate) {
  TimeSeries s(std::vector<double>{0, 0, 0});
  const auto truth = GroundTruth::from_series(s, 3.0);
  RunResult r;
  std::vector<char> detected{0, 0, 0};
  score_detection(r, truth, detected);
  EXPECT_DOUBLE_EQ(r.tick_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.episode_miss_rate(), 0.0);
}

namespace sim_test {

std::unique_ptr<Coordinator> make_task(const MetricSource& source,
                                       double threshold) {
  TaskSpec spec;
  spec.global_threshold = threshold;
  spec.error_allowance = 0.05;
  spec.max_interval = 8;
  spec.patience = 2;
  std::vector<std::unique_ptr<Monitor>> monitors;
  monitors.push_back(std::make_unique<Monitor>(
      0, source, spec.sampler_options(0.05), threshold));
  return std::make_unique<Coordinator>(spec, std::move(monitors), nullptr);
}

}  // namespace sim_test

TEST(Simulation, RunsTasksForTheirFullLength) {
  CallableSource quiet([](Tick) { return 0.0; }, 100);
  Simulation sim;
  const auto a = sim.add_task(sim_test::make_task(quiet, 10.0), 15.0, 100);
  const auto b = sim.add_task(sim_test::make_task(quiet, 10.0), 5.0, 50);
  sim.run(1e9);
  EXPECT_EQ(sim.stats(a).ticks_run, 100);
  EXPECT_EQ(sim.stats(b).ticks_run, 50);
  // Virtual time advanced to the horizon; the longest task spans 1500 s.
  EXPECT_GE(sim.now(), 15.0 * 99);
}

TEST(Simulation, HorizonLimitsProgress) {
  CallableSource quiet([](Tick) { return 0.0; }, 1000);
  Simulation sim;
  const auto a = sim.add_task(sim_test::make_task(quiet, 10.0), 1.0, 1000);
  sim.run(100.0);
  // Ticks at t = 0, 1, ..., 100 have fired (time is seconds = ticks here;
  // the adaptive interval does not change virtual-time spacing of run_tick
  // events, only which of them sample).
  EXPECT_EQ(sim.stats(a).ticks_run, 101);
  sim.run(1e9);
  EXPECT_EQ(sim.stats(a).ticks_run, 1000);
}

TEST(Simulation, CountsAlerts) {
  CallableSource spiky([](Tick t) { return t == 7 ? 50.0 : 0.0; }, 20);
  Simulation sim;
  const auto a = sim.add_task(sim_test::make_task(spiky, 10.0), 1.0, 20);
  sim.run(1e9);
  EXPECT_EQ(sim.stats(a).alerts, 1);
  EXPECT_EQ(sim.coordinator(a).global_polls(), 1);
}

TEST(Simulation, StaggeredTasksInterleaveDeterministically) {
  CallableSource quiet([](Tick) { return 0.0; }, 10);
  Simulation sim;
  sim.add_task(sim_test::make_task(quiet, 10.0), 1.0, 10, 0.5);
  sim.add_task(sim_test::make_task(quiet, 10.0), 1.0, 10, 0.0);
  const auto events = sim.run(1e9);
  EXPECT_EQ(events, 20u);
}

TEST(Simulation, RejectsBadArguments) {
  Simulation sim;
  CallableSource quiet([](Tick) { return 0.0; }, 10);
  EXPECT_THROW(sim.add_task(nullptr, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(sim.add_task(sim_test::make_task(quiet, 1.0), 0.0, 10),
               std::invalid_argument);
  EXPECT_THROW(sim.add_task(sim_test::make_task(quiet, 1.0), 1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(sim.add_task(sim_test::make_task(quiet, 1.0), 1.0, 10, -1.0),
               std::invalid_argument);
}

TEST(RunResult, SamplingRatioAgainstPeriodicReference) {
  RunResult r;
  r.ticks = 100;
  r.monitors = 2;
  r.scheduled_ops = 40;
  r.forced_ops = 10;
  EXPECT_EQ(r.periodic_ops(), 200);
  EXPECT_DOUBLE_EQ(r.sampling_ratio(), 0.25);
}

}  // namespace
}  // namespace volley
