// Scan-vs-index identity: Coordinator::run_tick must produce bit-identical
// results whether it scans every monitor per tick (the legacy loop, kept
// behind the VOLLEY_SCAN_TICKS escape hatch) or consults the due index.
// Mirrors the serial-vs-parallel identity suite from the sweep engine: the
// figure configurations (quick sizes) run through both paths and every
// RunResult field — including the byte-exact metrics_json snapshot and the
// per-monitor op schedules — must agree.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/coordinator.h"
#include "core/error_allocation.h"
#include "sim/runner.h"
#include "tasks/network_task.h"
#include "trace/trace.h"

namespace volley {
namespace {

/// RAII guard for the VOLLEY_SCAN_TICKS escape hatch (read at Coordinator
/// construction). Restores the prior state on destruction.
class ScanTicksEnv {
 public:
  explicit ScanTicksEnv(bool scan) {
    const char* prior = std::getenv("VOLLEY_SCAN_TICKS");
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    set(scan);
  }
  ~ScanTicksEnv() {
    if (had_prior_) {
      ::setenv("VOLLEY_SCAN_TICKS", prior_.c_str(), 1);
    } else {
      ::unsetenv("VOLLEY_SCAN_TICKS");
    }
  }
  ScanTicksEnv(const ScanTicksEnv&) = delete;
  ScanTicksEnv& operator=(const ScanTicksEnv&) = delete;

 private:
  static void set(bool scan) {
    if (scan) {
      ::setenv("VOLLEY_SCAN_TICKS", "1", 1);
    } else {
      ::unsetenv("VOLLEY_SCAN_TICKS");
    }
  }

  bool had_prior_{false};
  std::string prior_;
};

void expect_identical(const RunResult& scan, const RunResult& indexed) {
  EXPECT_EQ(scan.ticks, indexed.ticks);
  EXPECT_EQ(scan.monitors, indexed.monitors);
  EXPECT_EQ(scan.scheduled_ops, indexed.scheduled_ops);
  EXPECT_EQ(scan.forced_ops, indexed.forced_ops);
  EXPECT_EQ(scan.total_cost, indexed.total_cost);  // bit-exact, same op set
  EXPECT_EQ(scan.true_alert_ticks, indexed.true_alert_ticks);
  EXPECT_EQ(scan.detected_alert_ticks, indexed.detected_alert_ticks);
  EXPECT_EQ(scan.true_episodes, indexed.true_episodes);
  EXPECT_EQ(scan.detected_episodes, indexed.detected_episodes);
  EXPECT_EQ(scan.local_violations, indexed.local_violations);
  EXPECT_EQ(scan.global_polls, indexed.global_polls);
  EXPECT_EQ(scan.reallocations, indexed.reallocations);
  EXPECT_EQ(scan.op_ticks, indexed.op_ticks);
  EXPECT_EQ(scan.interval_trajectory, indexed.interval_trajectory);
  EXPECT_EQ(scan.metrics_json, indexed.metrics_json);
}

RunResult run_with(bool scan, const TaskSpec& spec, const TimeSeries& series,
                   const GroundTruth& truth, const RunOptions& options) {
  ScanTicksEnv env(scan);
  return run_volley_single(spec, series, truth, options);
}

// --- figure configurations, quick sizes -------------------------------

std::vector<NetworkTask> fig5_style_tasks(double selectivity, double err) {
  NetworkWorkloadOptions options;
  options.netflow.vms = 4;
  options.netflow.ticks = 2880;  // half a day at 15 s
  options.netflow.ticks_per_day = 5760;
  options.netflow.diurnal_phase = 1440;
  options.netflow.diurnal_depth = 0.96;
  options.netflow.mean_flows_per_tick = 10.0;
  options.netflow.off_rate = 1.0 / 1200.0;
  options.netflow.on_rate = 1.0 / 1200.0;
  options.netflow.off_floor = 0.005;
  options.netflow.seed = 91;
  options.attack_prototype.peak_syn_rate = 2500.0;
  options.attack_prototype.ramp = 8;
  options.attack_prototype.plateau = 24;
  options.attack_prototype.decay = 8;
  options.attacks_per_vm = 2;
  options.seed = 93;
  NetworkWorkload workload(options);

  std::vector<NetworkTask> tasks;
  for (auto& vm : workload.generate_traffic()) {
    auto task = NetworkWorkload::make_task(std::move(vm), selectivity, err);
    task.spec.max_interval = 40;
    task.spec.estimator.stats_window = 240;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

class Fig5Identity : public ::testing::TestWithParam<double> {};

TEST_P(Fig5Identity, ScanAndIndexAgreeByteForByte) {
  const double selectivity = GetParam();
  RunOptions options;
  options.record_ops = true;
  options.record_intervals = true;
  for (const auto& task : fig5_style_tasks(selectivity, 0.008)) {
    const GroundTruth truth =
        GroundTruth::from_series(task.traffic.rho, task.threshold);
    const auto scan = run_with(true, task.spec, task.traffic.rho, truth,
                               options);
    const auto indexed = run_with(false, task.spec, task.traffic.rho, truth,
                                  options);
    expect_identical(scan, indexed);
  }
}

INSTANTIATE_TEST_SUITE_P(Selectivities, Fig5Identity,
                         ::testing::Values(0.4, 3.2));

TEST(Fig6Identity, CpuWorkloadAgreesAcrossAllowances) {
  // Figure 6's recipe at quick size: busier traffic (higher flow volume,
  // shallower diurnal swing), k = 1, sweeping the error allowance.
  NetworkWorkloadOptions options;
  options.netflow.vms = 4;
  options.netflow.ticks = 1440;
  options.netflow.ticks_per_day = 5760;
  options.netflow.diurnal_phase = 720;
  options.netflow.diurnal_depth = 0.5;
  options.netflow.mean_flows_per_tick = 290.0;
  options.netflow.seed = 121;
  options.attack_prototype.peak_syn_rate = 20000.0;
  options.attacks_per_vm = 1;
  options.poisson_attack_counts = false;
  options.seed = 123;
  NetworkWorkload workload(options);
  const auto traffic = workload.generate_traffic();

  RunOptions run_options;
  run_options.record_ops = true;
  for (double err : {0.008, 0.032}) {
    for (const auto& vm : traffic) {
      VmTraffic copy;
      copy.rho = vm.rho;
      copy.in_packets = vm.in_packets;
      auto task = NetworkWorkload::make_task(std::move(copy), 1.0, err);
      task.spec.max_interval = 40;
      task.spec.estimator.stats_window = 240;
      const GroundTruth truth =
          GroundTruth::from_series(vm.rho, task.threshold);
      const auto scan =
          run_with(true, task.spec, vm.rho, truth, run_options);
      const auto indexed =
          run_with(false, task.spec, vm.rho, truth, run_options);
      expect_identical(scan, indexed);
    }
  }
}

TEST(DistributedIdentity, PollsAndReallocationsAgree) {
  // A multi-monitor task busy enough to exercise every index-maintenance
  // path: scheduled steps, cached and forced poll samples, and allowance
  // reallocation rounds.
  Rng rng(4242);
  const Tick ticks = 6000;
  std::vector<TimeSeries> series;
  for (int m = 0; m < 5; ++m) {
    TimeSeries s(static_cast<std::size_t>(ticks));
    double x = 0.0;
    for (Tick t = 0; t < ticks; ++t) {
      x = 0.9 * x + rng.normal(0.0, 0.3);
      s[static_cast<std::size_t>(t)] = x;
    }
    series.push_back(std::move(s));
  }
  TaskSpec spec;
  spec.global_threshold =
      TimeSeries::sum(series).threshold_for_selectivity(2.0);
  spec.error_allowance = 0.02;
  spec.max_interval = 12;
  spec.updating_period = 500;
  const auto locals = split_threshold(spec.global_threshold, series.size());

  RunOptions options;
  options.record_ops = true;
  RunResult scan, indexed;
  {
    ScanTicksEnv env(true);
    scan = run_volley(spec, series, locals, options);
  }
  {
    ScanTicksEnv env(false);
    indexed = run_volley(spec, series, locals, options);
  }
  ASSERT_GT(scan.global_polls, 0);
  ASSERT_GT(scan.reallocations, 0);
  expect_identical(scan, indexed);
}

// --- direct Coordinator exercises -------------------------------------

std::unique_ptr<Coordinator> make_coordinator(
    const std::vector<TimeSeries>& series, const TaskSpec& spec,
    std::vector<std::unique_ptr<SeriesSource>>& sources) {
  const auto locals = split_threshold(spec.global_threshold, series.size());
  std::vector<std::unique_ptr<Monitor>> monitors;
  for (std::size_t i = 0; i < series.size(); ++i) {
    sources.push_back(std::make_unique<SeriesSource>(series[i]));
    monitors.push_back(std::make_unique<Monitor>(
        static_cast<MonitorId>(i), *sources[i],
        spec.sampler_options(spec.error_allowance / series.size()),
        locals[i]));
  }
  return std::make_unique<Coordinator>(spec, std::move(monitors),
                                       std::make_unique<AdaptiveAllocation>());
}

std::vector<TimeSeries> walk_series(int monitors, Tick ticks,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimeSeries> series;
  for (int m = 0; m < monitors; ++m) {
    TimeSeries s(static_cast<std::size_t>(ticks));
    double x = 0.0;
    for (Tick t = 0; t < ticks; ++t) {
      x = 0.85 * x + rng.normal(0.0, 0.4);
      s[static_cast<std::size_t>(t)] = x;
    }
    series.push_back(std::move(s));
  }
  return series;
}

TEST(DueIndex, FirstTickAfterZeroCatchesUp) {
  // run_dynamic_tasks creates a task mid-run and immediately calls
  // run_tick(arrival) with every monitor still scheduled at tick 0: the
  // due index must catch up over the jump exactly like the scan loop.
  const Tick ticks = 2000;
  const auto series = walk_series(3, ticks, 77);
  TaskSpec spec;
  spec.global_threshold =
      TimeSeries::sum(series).threshold_for_selectivity(2.0);
  spec.error_allowance = 0.02;
  spec.max_interval = 10;
  spec.updating_period = 400;

  for (Tick start : {Tick{1}, Tick{7}, Tick{137}, Tick{500}}) {
    std::vector<std::unique_ptr<SeriesSource>> sources_a, sources_b;
    auto scan = make_coordinator(series, spec, sources_a);
    scan->set_scan_ticks(true);
    auto indexed = make_coordinator(series, spec, sources_b);
    indexed->set_scan_ticks(false);
    for (Tick t = start; t < ticks; ++t) {
      const auto a = scan->run_tick(t);
      const auto b = indexed->run_tick(t);
      ASSERT_EQ(a.any_due, b.any_due) << "start=" << start << " t=" << t;
      ASSERT_EQ(a.local_violations, b.local_violations);
      ASSERT_EQ(a.global_poll, b.global_poll);
      ASSERT_EQ(a.global_value, b.global_value);
      ASSERT_EQ(a.global_violation, b.global_violation);
    }
    EXPECT_EQ(scan->total_ops(), indexed->total_ops());
    EXPECT_EQ(scan->global_polls(), indexed->global_polls());
    EXPECT_EQ(scan->reallocations(), indexed->reallocations());
    EXPECT_EQ(scan->allocation(), indexed->allocation());
  }
}

TEST(DueIndex, ScanToggleMidRunAgrees) {
  // Flipping the escape hatch mid-run rebuilds the index from the
  // monitors' live schedules; accounting must track an always-scan twin.
  const Tick ticks = 3000;
  const auto series = walk_series(4, ticks, 99);
  TaskSpec spec;
  spec.global_threshold =
      TimeSeries::sum(series).threshold_for_selectivity(1.0);
  spec.error_allowance = 0.03;
  spec.max_interval = 8;
  spec.updating_period = 300;

  std::vector<std::unique_ptr<SeriesSource>> sources_a, sources_b;
  auto always_scan = make_coordinator(series, spec, sources_a);
  always_scan->set_scan_ticks(true);
  auto toggled = make_coordinator(series, spec, sources_b);
  toggled->set_scan_ticks(false);

  for (Tick t = 0; t < ticks; ++t) {
    if (t == ticks / 3) toggled->set_scan_ticks(true);
    if (t == 2 * ticks / 3) toggled->set_scan_ticks(false);
    const auto a = always_scan->run_tick(t);
    const auto b = toggled->run_tick(t);
    ASSERT_EQ(a.any_due, b.any_due) << "t=" << t;
    ASSERT_EQ(a.local_violations, b.local_violations) << "t=" << t;
    ASSERT_EQ(a.global_value, b.global_value) << "t=" << t;
  }
  EXPECT_EQ(always_scan->total_ops(), toggled->total_ops());
  EXPECT_EQ(always_scan->global_polls(), toggled->global_polls());
}

TEST(DueIndex, EnvVariableSelectsPath) {
  const auto series = walk_series(1, 100, 5);
  TaskSpec spec;
  spec.global_threshold = 1e9;  // quiet: no polls needed here
  spec.error_allowance = 0.01;
  {
    ScanTicksEnv env(true);
    std::vector<std::unique_ptr<SeriesSource>> sources;
    EXPECT_TRUE(make_coordinator(series, spec, sources)->scan_ticks());
  }
  {
    ScanTicksEnv env(false);
    std::vector<std::unique_ptr<SeriesSource>> sources;
    EXPECT_FALSE(make_coordinator(series, spec, sources)->scan_ticks());
  }
  {
    // "0" means off, matching the bench conventions.
    ::setenv("VOLLEY_SCAN_TICKS", "0", 1);
    std::vector<std::unique_ptr<SeriesSource>> sources;
    EXPECT_FALSE(make_coordinator(series, spec, sources)->scan_ticks());
    ::unsetenv("VOLLEY_SCAN_TICKS");
  }
}

}  // namespace
}  // namespace volley
