// Tests for the extension modules: aggregation-time-window tasks (the
// paper's stated future work), random-sampling composition, and the
// monetary billing model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/window_aggregate.h"
#include "sim/billing.h"
#include "sim/runner.h"
#include "stats/online_stats.h"
#include "trace/sampling.h"

namespace volley {
namespace {

TEST(WindowAggregator, RejectsBadWindow) {
  EXPECT_THROW(WindowAggregator(0, WindowAggregate::kAverage),
               std::invalid_argument);
}

TEST(WindowAggregator, EmptyThrows) {
  WindowAggregator agg(3, WindowAggregate::kSum);
  EXPECT_THROW(agg.value(), std::logic_error);
}

TEST(WindowAggregator, AverageOverPartialAndFullWindow) {
  WindowAggregator agg(3, WindowAggregate::kAverage);
  agg.push(3.0);
  EXPECT_DOUBLE_EQ(agg.value(), 3.0);
  agg.push(6.0);
  EXPECT_DOUBLE_EQ(agg.value(), 4.5);
  agg.push(9.0);
  EXPECT_DOUBLE_EQ(agg.value(), 6.0);
  agg.push(0.0);  // 3 drops out
  EXPECT_DOUBLE_EQ(agg.value(), 5.0);
}

TEST(WindowAggregator, SumSlides) {
  WindowAggregator agg(2, WindowAggregate::kSum);
  agg.push(1.0);
  agg.push(2.0);
  agg.push(4.0);
  EXPECT_DOUBLE_EQ(agg.value(), 6.0);
}

TEST(WindowAggregator, MaxViaMonotonicDeque) {
  WindowAggregator agg(3, WindowAggregate::kMax);
  const double xs[] = {5, 1, 2, 0, 0, 0, 7, 3};
  const double expect[] = {5, 5, 5, 2, 2, 0, 7, 7};
  for (int i = 0; i < 8; ++i) {
    agg.push(xs[i]);
    EXPECT_DOUBLE_EQ(agg.value(), expect[i]) << "i=" << i;
  }
}

TEST(WindowTransform, MatchesBruteForce) {
  Rng rng(3);
  TimeSeries in(200);
  for (std::size_t t = 0; t < in.size(); ++t) in[t] = rng.normal(0, 1);
  for (auto kind : {WindowAggregate::kAverage, WindowAggregate::kSum,
                    WindowAggregate::kMax}) {
    const auto out = window_transform(in, 7, kind);
    for (std::size_t t = 0; t < in.size(); ++t) {
      const std::size_t start = t >= 6 ? t - 6 : 0;
      double sum = 0, mx = in[start];
      for (std::size_t i = start; i <= t; ++i) {
        sum += in[i];
        mx = std::max(mx, in[i]);
      }
      double expect = 0;
      switch (kind) {
        case WindowAggregate::kSum: expect = sum; break;
        case WindowAggregate::kAverage:
          expect = sum / static_cast<double>(t - start + 1);
          break;
        case WindowAggregate::kMax: expect = mx; break;
      }
      ASSERT_NEAR(out[t], expect, 1e-9) << "t=" << t;
    }
  }
}

TEST(WindowedSource, AgreesWithTransform) {
  Rng rng(5);
  TimeSeries in(100);
  for (std::size_t t = 0; t < in.size(); ++t) in[t] = rng.uniform();
  SeriesSource raw{TimeSeries(in)};
  WindowedSource windowed(raw, 5, WindowAggregate::kAverage);
  const auto transformed = window_transform(in, 5, WindowAggregate::kAverage);
  for (Tick t = 0; t < 100; t += 7) {
    EXPECT_NEAR(windowed.value_at(t),
                transformed[static_cast<std::size_t>(t)], 1e-12);
  }
}

TEST(WindowedSource, ScanCostGrowsWithWindow) {
  SeriesSource raw{TimeSeries(100, 1.0)};
  WindowedSource windowed(raw, 10, WindowAggregate::kSum, 0.5);
  EXPECT_DOUBLE_EQ(windowed.sampling_cost(0), 1.0 + 0.5);       // 1 tick
  EXPECT_DOUBLE_EQ(windowed.sampling_cost(50), 1.0 + 0.5 * 10); // full
}

TEST(WindowedTask, SmoothingLengthensIntervals) {
  // The future-work claim, quantified: a W-average of white noise has
  // delta-sigma ~ sigma/W, so the windowed task sustains longer intervals
  // at the same error allowance.
  Rng rng(7);
  TimeSeries raw(20000);
  for (std::size_t t = 0; t < raw.size(); ++t) raw[t] = rng.normal(0, 1);
  const auto windowed = window_transform(raw, 20, WindowAggregate::kAverage);

  TaskSpec spec;
  spec.error_allowance = 0.01;
  spec.max_interval = 40;
  spec.global_threshold = raw.threshold_for_selectivity(0.5);
  const auto r_raw = run_volley_single(spec, raw);
  spec.global_threshold = windowed.threshold_for_selectivity(0.5);
  const auto r_win = run_volley_single(spec, windowed);
  EXPECT_LT(r_win.sampling_ratio(), r_raw.sampling_ratio());
}

TEST(Thinning, OptionsValidated) {
  ThinningOptions o;
  o.fraction = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = ThinningOptions{};
  o.fraction = 1.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(Thinning, FullFractionKeepsCostAndNearlyExactRho) {
  VmTraffic vm;
  vm.rho = TimeSeries(std::vector<double>{0, 10, -5, 300});
  vm.in_packets = TimeSeries(std::vector<double>{1000, 1000, 1000, 2000});
  ThinningOptions o;
  o.fraction = 1.0;
  Rng rng(9);
  const auto thin = thin_traffic(vm, o, rng);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_NEAR(thin.rho[t], vm.rho[t], 1.0);  // rounding only
    EXPECT_DOUBLE_EQ(thin.in_packets[t], vm.in_packets[t]);
  }
}

TEST(Thinning, IsUnbiasedAndNoisy) {
  VmTraffic vm;
  vm.rho = TimeSeries(4000, 50.0);
  vm.in_packets = TimeSeries(4000, 5000.0);
  ThinningOptions o;
  o.fraction = 0.1;
  Rng rng(11);
  const auto thin = thin_traffic(vm, o, rng);
  OnlineStats stats;
  for (std::size_t t = 0; t < thin.rho.size(); ++t) stats.add(thin.rho[t]);
  EXPECT_NEAR(stats.mean(), 50.0, 3.0);    // unbiased estimate of rho
  EXPECT_GT(stats.stddev(), 10.0);         // but with real thinning noise
  EXPECT_DOUBLE_EQ(thin.in_packets[0], 500.0);  // cost scaled by f
}

TEST(Thinning, SmallerFractionIsNoisier) {
  VmTraffic vm;
  vm.rho = TimeSeries(4000, 0.0);
  vm.in_packets = TimeSeries(4000, 5000.0);
  Rng rng_a(13), rng_b(13);
  ThinningOptions heavy;
  heavy.fraction = 0.5;
  ThinningOptions light;
  light.fraction = 0.05;
  const auto a = thin_traffic(vm, heavy, rng_a);
  const auto b = thin_traffic(vm, light, rng_b);
  OnlineStats sa, sb;
  for (std::size_t t = 0; t < 4000; ++t) {
    sa.add(a.rho[t]);
    sb.add(b.rho[t]);
  }
  EXPECT_GT(sb.stddev(), 2.0 * sa.stddev());
}

TEST(Billing, CostAndShare) {
  BillingModel model;
  model.dollars_per_1k_samples = 0.5;
  model.base_operation_cost = 100.0;
  model.validate();
  EXPECT_DOUBLE_EQ(model.cost(10000), 5.0);
  EXPECT_NEAR(model.share_of_total(10000), 5.0 / 105.0, 1e-12);
}

TEST(Billing, PeriodicSamplesPerMonth) {
  EXPECT_EQ(BillingModel::periodic_samples_per_month(60.0), 43200);
  EXPECT_EQ(BillingModel::periodic_samples_per_month(900.0), 2880);
  EXPECT_THROW(BillingModel::periodic_samples_per_month(0.0),
               std::invalid_argument);
}

TEST(Billing, Validation) {
  BillingModel model;
  model.dollars_per_1k_samples = -1.0;
  EXPECT_THROW(model.validate(), std::invalid_argument);
  model = BillingModel{};
  model.base_operation_cost = 0.0;
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

// The paper's 18% motivation: at 1-minute periodic sampling across a fleet
// of monitors, monitoring fees are a double-digit share of total spend;
// Volley's measured savings cut the share proportionally.
TEST(Billing, FleetShareShrinksWithVolleySavings) {
  BillingModel model;
  model.dollars_per_1k_samples = 0.01;
  model.base_operation_cost = 800.0;
  const std::int64_t monitors = 800;
  const std::int64_t periodic =
      monitors * BillingModel::periodic_samples_per_month(60.0);
  const auto volley_ops =
      static_cast<std::int64_t>(0.2 * static_cast<double>(periodic));
  EXPECT_GT(model.share_of_total(periodic), 0.15);
  EXPECT_LT(model.share_of_total(volley_ops),
            0.5 * model.share_of_total(periodic));
}

}  // namespace
}  // namespace volley
